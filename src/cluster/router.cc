#include "cluster/router.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/timer.h"

namespace kg::cluster {
namespace {

/// The node portion (third field) of a neighborhood row
/// "dir\tpredicate\tnode". Predicates must not contain tabs (DESIGN
/// §14) — the node itself may contain anything, since it is the
/// remainder after the second tab.
std::string_view NeighborRowNode(std::string_view row) {
  const size_t first = row.find('\t');
  if (first == std::string_view::npos) return {};
  const size_t second = row.find('\t', first + 1);
  if (second == std::string_view::npos) return {};
  return row.substr(second + 1);
}

/// Inverts serve::RenderNodeName: "E:alice" -> ("alice", kEntity).
bool ParseRender(std::string_view render, std::string* name,
                 graph::NodeKind* kind) {
  if (render.size() < 2 || render[1] != ':') return false;
  switch (render[0]) {
    case 'E':
      *kind = graph::NodeKind::kEntity;
      break;
    case 'T':
      *kind = graph::NodeKind::kText;
      break;
    case 'C':
      *kind = graph::NodeKind::kClass;
      break;
    default:
      return false;
  }
  *name = std::string(render.substr(2));
  return true;
}

}  // namespace

size_t ShardOf(std::string_view subject, graph::NodeKind kind,
               size_t num_shards) {
  if (num_shards <= 1) return 0;
  return Fnv1a64(serve::RenderNodeName(subject, kind)) % num_shards;
}

QueryRouter::QueryRouter(std::vector<std::vector<ShardMember*>> members,
                         std::vector<PrimaryMember*> primaries,
                         RouterOptions options)
    : members_(std::move(members)),
      primaries_(std::move(primaries)),
      options_(options) {
  committed_.reserve(members_.size());
  health_.reserve(members_.size());
  for (const auto& group : members_) {
    committed_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    std::vector<std::unique_ptr<MemberHealth>> group_health;
    group_health.reserve(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      group_health.push_back(
          std::make_unique<MemberHealth>(options_.breaker_failure_threshold));
    }
    health_.push_back(std::move(group_health));
  }
  if (options_.registry != nullptr) {
    failovers_metric_ = &options_.registry->GetCounter("cluster.failovers");
    shed_metric_ = &options_.registry->GetCounter("cluster.requests.shed");
    stale_metric_ = &options_.registry->GetCounter("cluster.stale_rejects");
    if (options_.time_stages) {
      for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
        stage_fanout_[k] = &obs::StageHistogram(
            *options_.registry, obs::Stage::kFanout,
            serve::QueryKindName(static_cast<serve::QueryKind>(k)));
      }
    }
  }
}

Status QueryRouter::Apply(std::span<const store::Mutation> mutations) {
  std::vector<std::vector<store::Mutation>> per_shard(members_.size());
  for (const store::Mutation& m : mutations) {
    per_shard[ShardOf(m.subject, m.subject_kind, members_.size())]
        .push_back(m);
  }
  for (size_t shard = 0; shard < per_shard.size(); ++shard) {
    if (per_shard[shard].empty()) continue;
    KG_RETURN_IF_ERROR(primaries_[shard]->ApplyBatch(per_shard[shard]));
    committed_[shard]->store(primaries_[shard]->log_end(),
                             std::memory_order_release);
  }
  return Status::OK();
}

bool QueryRouter::AllowMember(MemberHealth& health, bool* is_probe) {
  std::lock_guard<std::mutex> lock(health.mu);
  if (health.breaker.Allow()) return true;
  if (++health.skips_while_open >= options_.breaker_probe_interval) {
    health.skips_while_open = 0;
    *is_probe = true;
    probes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void QueryRouter::RecordOutcome(MemberHealth& health, bool ok,
                                bool was_probe) {
  std::lock_guard<std::mutex> lock(health.mu);
  if (ok) {
    if (was_probe || health.breaker.open()) {
      // CircuitBreaker opens permanently by design; a successful probe
      // of a revived member earns it a fresh breaker.
      health.breaker = CircuitBreaker(options_.breaker_failure_threshold);
    }
    health.breaker.RecordSuccess();
  } else {
    health.breaker.RecordFailure();
  }
}

Result<serve::QueryResult> QueryRouter::AskShard(size_t shard,
                                                 const serve::Query& query,
                                                 obs::Span* parent) {
  obs::Span shard_span = parent->Child("shard@" + std::to_string(shard));
  const uint64_t committed =
      committed_[shard]->load(std::memory_order_acquire);
  const uint64_t floor = committed > options_.max_staleness_bytes
                             ? committed - options_.max_staleness_bytes
                             : 0;
  const auto& group = members_[shard];
  for (size_t i = 0; i < group.size(); ++i) {
    MemberHealth& health = *health_[shard][i];
    bool is_probe = false;
    if (!AllowMember(health, &is_probe)) continue;
    obs::Span member_span = shard_span.Child("member." + group[i]->label());
    auto tagged = group[i]->ExecuteTraced(query, member_span.id());
    if (!tagged.ok()) {
      member_span.SetAttr("error", tagged.status().message());
      RecordOutcome(health, false, is_probe);
      continue;
    }
    RecordOutcome(health, true, is_probe);
    member_span.SetAttr("epoch", tagged->epoch);
    if (tagged->epoch < floor) {
      // Healthy but unable to prove freshness: not a fault, keep
      // walking the failover order.
      member_span.SetAttr("stale", "true");
      stale_rejects_.fetch_add(1, std::memory_order_relaxed);
      if (stale_metric_ != nullptr) stale_metric_->Inc();
      continue;
    }
    if (i != 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      if (failovers_metric_ != nullptr) failovers_metric_->Inc();
    }
    return std::move(tagged->rows);
  }
  shard_span.SetAttr("shed", "true");
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (shed_metric_ != nullptr) shed_metric_->Inc();
  return Status::Unavailable("shard " + std::to_string(shard) +
                             ": no member could serve at the required "
                             "staleness bound");
}

Result<serve::QueryResult> QueryRouter::FanOut(const serve::Query& query,
                                               obs::Span* parent,
                                               double* fanout_us) {
  WallTimer timer;
  auto run = [&]() -> Result<serve::QueryResult> {
    std::vector<serve::QueryResult> parts;
    parts.reserve(members_.size());
    for (size_t shard = 0; shard < members_.size(); ++shard) {
      KG_ASSIGN_OR_RETURN(serve::QueryResult rows,
                          AskShard(shard, query, parent));
      parts.push_back(std::move(rows));
    }
    return serve::MergeShardResults(std::move(parts));
  };
  Result<serve::QueryResult> result = run();
  if (fanout_us != nullptr) *fanout_us += timer.ElapsedSeconds() * 1e6;
  return result;
}

Result<serve::QueryResult> QueryRouter::TopKRelated(
    const serve::Query& query, obs::Span* parent, double* fanout_us) {
  if (query.k == 0) return serve::QueryResult{};
  const std::string center =
      serve::RenderNodeName(query.node, query.node_kind);

  // Phase 1: the center's distinct neighbors, cluster-wide (out-edges
  // live on the center's shard, in-edges on each subject's shard).
  KG_ASSIGN_OR_RETURN(
      serve::QueryResult ring,
      FanOut(serve::Query::Neighborhood(query.node, query.node_kind),
             parent, fanout_us));
  std::set<std::string> neighbors;
  for (const std::string& row : ring) {
    const std::string_view node = NeighborRowNode(row);
    if (node.empty() || node == center) continue;
    neighbors.emplace(node);
  }

  // Phase 2: for each neighbor n, its distinct neighbors m score one
  // shared-neighbor path center—n—m. This reproduces the single-store
  // engine exactly: distinct (n, m) adjacency pairs, entity candidates
  // only, the center never in its own shelf.
  std::map<std::string, size_t> score;
  for (const std::string& n : neighbors) {
    std::string name;
    graph::NodeKind kind = graph::NodeKind::kEntity;
    if (!ParseRender(n, &name, &kind)) continue;
    KG_ASSIGN_OR_RETURN(
        serve::QueryResult rows,
        FanOut(serve::Query::Neighborhood(name, kind), parent, fanout_us));
    std::set<std::string> seen;
    for (const std::string& row : rows) {
      const std::string_view m = NeighborRowNode(row);
      if (m.empty() || m == center) continue;
      if (m[0] != 'E') continue;  // Entities only.
      seen.emplace(m);
    }
    for (const std::string& m : seen) ++score[m];
  }

  // Rank: count desc, then render asc. Candidates all carry the "E:"
  // prefix, so render order equals the engine's raw-name tiebreak. The
  // map already iterates render-asc; a stable sort by count preserves
  // it within ties.
  std::vector<std::pair<std::string, size_t>> ranked(score.begin(),
                                                     score.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (ranked.size() > query.k) ranked.resize(query.k);
  serve::QueryResult rows;
  rows.reserve(ranked.size());
  for (const auto& [m, count] : ranked) {
    rows.push_back(m + '\t' + std::to_string(count));
  }
  return rows;
}

Result<serve::QueryResult> QueryRouter::Execute(const serve::Query& query) {
  const char* kind_name = serve::QueryKindName(query.kind);
  obs::Span root =
      obs::Tracer::Start(options_.tracer, std::string("route.") + kind_name);
  WallTimer timer;
  double fanout_us = 0.0;
  Result<serve::QueryResult> result =
      Status::InvalidArgument("unknown query kind");
  switch (query.kind) {
    case serve::QueryKind::kPointLookup:
      result = AskShard(
          ShardOf(query.node, query.node_kind, members_.size()), query,
          &root);
      break;
    case serve::QueryKind::kNeighborhood:
    case serve::QueryKind::kAttributeByType:
      result = FanOut(query, &root, &fanout_us);
      break;
    case serve::QueryKind::kTopKRelated:
      result = TopKRelated(query, &root, &fanout_us);
      break;
  }
  const size_t k = static_cast<size_t>(query.kind);
  if (query.kind != serve::QueryKind::kPointLookup &&
      stage_fanout_[k] != nullptr) {
    stage_fanout_[k]->Observe(fanout_us);
  }
  if (!result.ok()) root.SetAttr("error", result.status().message());
  const uint64_t root_id = root.id();
  root.End();
  if (obs::SlowQueryRing* ring = options_.slow_ring) {
    obs::SlowQuery slow;
    slow.trace_id = root_id;
    slow.root_span_id = root_id;
    slow.query_class = kind_name;
    slow.duration_ticks =
        obs::Histogram::ToTicks(timer.ElapsedSeconds() * 1e6);
    slow.seq = route_seq_.fetch_add(1, std::memory_order_relaxed);
    slow.stage_ticks = {
        {obs::Stage::kFanout, obs::Histogram::ToTicks(fanout_us)}};
    ring->Offer(std::move(slow));
  }
  return result;
}

QueryRouter::Stats QueryRouter::stats() const {
  Stats s;
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.stale_rejects = stale_rejects_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kg::cluster
