#ifndef KGRAPH_TEXT_TFIDF_H_
#define KGRAPH_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace kg::text {

/// Sparse feature vector: term id -> weight, kept sorted by id.
struct SparseVector {
  std::vector<std::pair<uint32_t, double>> entries;

  /// L2 norm.
  double Norm() const;
  /// Dot product (both inputs must be sorted by id).
  double Dot(const SparseVector& other) const;
};

/// Cosine similarity of two sparse vectors (0 when either is empty).
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// TF-IDF vectorizer over token lists. Fit() learns the vocabulary and
/// document frequencies; Transform() produces L2-normalizable sparse
/// vectors. Terms unseen during Fit are dropped at Transform time.
class TfidfVectorizer {
 public:
  TfidfVectorizer() = default;

  /// Learns vocabulary and IDF weights from `documents`.
  void Fit(const std::vector<std::vector<std::string>>& documents);

  /// TF-IDF vector of a tokenized document.
  SparseVector Transform(const std::vector<std::string>& tokens) const;

  size_t vocabulary_size() const { return idf_.size(); }

  /// Id of `term`, or -1 when out of vocabulary.
  int64_t TermId(const std::string& term) const;

 private:
  std::unordered_map<std::string, uint32_t> vocab_;
  std::vector<double> idf_;
};

}  // namespace kg::text

#endif  // KGRAPH_TEXT_TFIDF_H_
