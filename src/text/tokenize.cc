#include "text/tokenize.h"

#include <cctype>

namespace kg::text {

namespace {
bool IsTokenChar(char c, bool split_hyphens) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  if (c == '-' && !split_hyphens) return true;
  return false;
}
}  // namespace

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizeOptions& options) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i], options.split_hyphens)) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && IsTokenChar(text[i], options.split_hyphens)) {
      ++i;
    }
    if (i == start) continue;
    std::string token(text.substr(start, i - start));
    // Trim hyphens that only delimited the token.
    while (!token.empty() && token.front() == '-') token.erase(0, 1);
    while (!token.empty() && token.back() == '-') token.pop_back();
    if (token.empty()) continue;
    if (!options.keep_numbers) {
      bool all_digits = true;
      for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) continue;
    }
    if (options.lowercase) {
      for (char& c : token) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

std::vector<std::string> CharNgrams(std::string_view token, size_t n) {
  std::vector<std::string> grams;
  if (n == 0) return grams;
  std::string padded;
  padded.reserve(token.size() + 2);
  padded.push_back('^');
  padded.append(token);
  padded.push_back('$');
  if (padded.size() < n) return grams;
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  return grams;
}

std::vector<std::string> TokenNgrams(const std::vector<std::string>& tokens,
                                     size_t n) {
  std::vector<std::string> grams;
  if (n == 0 || tokens.size() < n) return grams;
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      gram.push_back('_');
      gram.append(tokens[i + j]);
    }
    grams.push_back(std::move(gram));
  }
  return grams;
}

std::string NormalizeForMatch(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_space = true;
    }
  }
  return out;
}

}  // namespace kg::text
