#ifndef KGRAPH_TEXT_TOKENIZE_H_
#define KGRAPH_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace kg::text {

/// Tokenization options for the simple rule tokenizer.
struct TokenizeOptions {
  bool lowercase = true;        ///< ASCII-lowercase each token.
  bool keep_numbers = true;     ///< Keep digit runs as tokens.
  bool split_hyphens = false;   ///< Treat '-' as a separator.
};

/// Splits `text` into word tokens: maximal runs of alphanumerics
/// (plus '-' unless split_hyphens). Punctuation is dropped. This is the
/// tokenizer used by every extractor; keeping it in one place makes
/// token offsets consistent between annotation and decoding.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizeOptions& options = {});

/// Character n-grams of `token` padded with '^'/'$' sentinels.
std::vector<std::string> CharNgrams(std::string_view token, size_t n);

/// Token n-grams joined with '_'.
std::vector<std::string> TokenNgrams(const std::vector<std::string>& tokens,
                                     size_t n);

/// Normalizes a string for matching: lowercase, collapse whitespace and
/// punctuation to single spaces, trim.
std::string NormalizeForMatch(std::string_view text);

}  // namespace kg::text

#endif  // KGRAPH_TEXT_TOKENIZE_H_
