#ifndef KGRAPH_TEXT_SIMILARITY_H_
#define KGRAPH_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace kg::text {

/// Edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1.0 for two empty strings. In [0, 1].
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with standard prefix scaling (p = 0.1, max prefix 4).
/// The workhorse of name matching in entity linkage.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// |A ∩ B| / |A ∪ B| over token multiset-as-set; 1.0 when both empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|); robust when one string contains the other
/// (e.g. "Xin Dong" vs "Xin Luna Dong").
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; callers usually take the max of both directions.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// Similarity of two numeric values: exp(-|a-b| / scale). 1.0 at equality.
double NumericSimilarity(double a, double b, double scale);

/// Dice coefficient over character bigrams; good for short noisy values.
double DiceBigramSimilarity(std::string_view a, std::string_view b);

}  // namespace kg::text

#endif  // KGRAPH_TEXT_SIMILARITY_H_
