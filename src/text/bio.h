#ifndef KGRAPH_TEXT_BIO_H_
#define KGRAPH_TEXT_BIO_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kg::text {

/// A labeled token span [begin, end) with an attribute label, the unit
/// NER-style extractors (OpenTag and descendants) produce.
struct Span {
  size_t begin = 0;  ///< First token index.
  size_t end = 0;    ///< One past the last token index.
  std::string label;

  friend bool operator==(const Span&, const Span&) = default;
};

/// Converts spans to BIO tags ("B-label", "I-label", "O") over a sequence
/// of `num_tokens` tokens. Overlapping spans are rejected.
Result<std::vector<std::string>> SpansToBio(const std::vector<Span>& spans,
                                            size_t num_tokens);

/// Converts BIO tags back to spans. Tolerates malformed sequences the way
/// seqeval does: an I-x without a preceding B-x/I-x opens a new span.
std::vector<Span> BioToSpans(const std::vector<std::string>& tags);

/// Exact-span micro P/R/F1 of predicted vs gold spans.
struct SpanScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t num_gold = 0;
  size_t num_predicted = 0;
  size_t num_correct = 0;
};

/// Accumulates span matches over many sequences.
class SpanScorer {
 public:
  /// Adds one sequence's predictions against its gold spans.
  void Add(const std::vector<Span>& gold,
           const std::vector<Span>& predicted);

  /// Final micro-averaged scores.
  SpanScore Score() const;

 private:
  size_t gold_ = 0;
  size_t predicted_ = 0;
  size_t correct_ = 0;
};

}  // namespace kg::text

#endif  // KGRAPH_TEXT_BIO_H_
