#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

namespace kg::text {

double SparseVector::Norm() const {
  double sum = 0.0;
  for (const auto& [id, w] : entries) sum += w * w;
  return std::sqrt(sum);
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < entries.size() && j < other.entries.size()) {
    if (entries[i].first < other.entries[j].first) {
      ++i;
    } else if (entries[i].first > other.entries[j].first) {
      ++j;
    } else {
      sum += entries[i].second * other.entries[j].second;
      ++i;
      ++j;
    }
  }
  return sum;
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return a.Dot(b) / (na * nb);
}

void TfidfVectorizer::Fit(
    const std::vector<std::vector<std::string>>& documents) {
  vocab_.clear();
  std::vector<size_t> doc_freq;
  for (const auto& doc : documents) {
    // Count each term once per document.
    std::vector<uint32_t> seen_ids;
    for (const auto& term : doc) {
      auto [it, inserted] = vocab_.try_emplace(
          term, static_cast<uint32_t>(vocab_.size()));
      if (inserted) doc_freq.push_back(0);
      const uint32_t id = it->second;
      if (std::find(seen_ids.begin(), seen_ids.end(), id) ==
          seen_ids.end()) {
        seen_ids.push_back(id);
        ++doc_freq[id];
      }
    }
  }
  const double n = static_cast<double>(std::max<size_t>(1, documents.size()));
  idf_.resize(doc_freq.size());
  for (size_t i = 0; i < doc_freq.size(); ++i) {
    // Smoothed IDF, never negative.
    idf_[i] = std::log((1.0 + n) / (1.0 + doc_freq[i])) + 1.0;
  }
}

SparseVector TfidfVectorizer::Transform(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<uint32_t, double> counts;
  for (const auto& t : tokens) {
    auto it = vocab_.find(t);
    if (it != vocab_.end()) counts[it->second] += 1.0;
  }
  SparseVector out;
  out.entries.reserve(counts.size());
  for (const auto& [id, tf] : counts) {
    out.entries.emplace_back(id, tf * idf_[id]);
  }
  std::sort(out.entries.begin(), out.entries.end());
  return out;
}

int64_t TfidfVectorizer::TermId(const std::string& term) const {
  auto it = vocab_.find(term);
  return it == vocab_.end() ? -1 : static_cast<int64_t>(it->second);
}

}  // namespace kg::text
