#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/tokenize.h"

namespace kg::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t del = row[i] + 1;
      const size_t ins = row[i - 1] + 1;
      const size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({del, ins, sub});
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() +
          (m - transpositions / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

namespace {
std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return {v.begin(), v.end()};
}
}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  const auto sa = ToSet(a);
  const auto sb = ToSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++intersection;
  }
  const size_t uni = sa.size() + sb.size() - intersection;
  return uni == 0 ? 1.0 : static_cast<double>(intersection) / uni;
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  const auto sa = ToSet(a);
  const auto sb = ToSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t intersection = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++intersection;
  }
  return static_cast<double>(intersection) / std::min(sa.size(), sb.size());
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const auto& ta : a) {
    double best = 0.0;
    for (const auto& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double NumericSimilarity(double a, double b, double scale) {
  if (scale <= 0.0) return a == b ? 1.0 : 0.0;
  return std::exp(-std::abs(a - b) / scale);
}

double DiceBigramSimilarity(std::string_view a, std::string_view b) {
  const auto ga = CharNgrams(a, 2);
  const auto gb = CharNgrams(b, 2);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const auto sa = ToSet(ga);
  const auto sb = ToSet(gb);
  size_t intersection = 0;
  for (const auto& g : sa) {
    if (sb.count(g)) ++intersection;
  }
  return 2.0 * static_cast<double>(intersection) /
         static_cast<double>(sa.size() + sb.size());
}

}  // namespace kg::text
