#include "text/bio.h"

#include <algorithm>

#include "common/strings.h"

namespace kg::text {

Result<std::vector<std::string>> SpansToBio(const std::vector<Span>& spans,
                                            size_t num_tokens) {
  std::vector<std::string> tags(num_tokens, "O");
  std::vector<bool> used(num_tokens, false);
  for (const Span& span : spans) {
    if (span.begin >= span.end || span.end > num_tokens) {
      return Status::InvalidArgument(
          "span out of range: [" + std::to_string(span.begin) + ", " +
          std::to_string(span.end) + ") of " + std::to_string(num_tokens));
    }
    for (size_t i = span.begin; i < span.end; ++i) {
      if (used[i]) {
        return Status::InvalidArgument("overlapping spans at token " +
                                       std::to_string(i));
      }
      used[i] = true;
      tags[i] = (i == span.begin ? "B-" : "I-") + span.label;
    }
  }
  return tags;
}

std::vector<Span> BioToSpans(const std::vector<std::string>& tags) {
  std::vector<Span> spans;
  Span current;
  bool open = false;
  auto close = [&](size_t end) {
    if (open) {
      current.end = end;
      spans.push_back(current);
      open = false;
    }
  };
  for (size_t i = 0; i < tags.size(); ++i) {
    const std::string& tag = tags[i];
    if (tag == "O" || tag.size() < 3 ||
        (tag[0] != 'B' && tag[0] != 'I') || tag[1] != '-') {
      close(i);
      continue;
    }
    const std::string label = tag.substr(2);
    if (tag[0] == 'B' || !open || current.label != label) {
      close(i);
      current.begin = i;
      current.label = label;
      open = true;
    }
  }
  close(tags.size());
  return spans;
}

void SpanScorer::Add(const std::vector<Span>& gold,
                     const std::vector<Span>& predicted) {
  gold_ += gold.size();
  predicted_ += predicted.size();
  for (const Span& p : predicted) {
    if (std::find(gold.begin(), gold.end(), p) != gold.end()) {
      ++correct_;
    }
  }
}

SpanScore SpanScorer::Score() const {
  SpanScore s;
  s.num_gold = gold_;
  s.num_predicted = predicted_;
  s.num_correct = correct_;
  s.precision = predicted_ == 0
                    ? 0.0
                    : static_cast<double>(correct_) / predicted_;
  s.recall = gold_ == 0 ? 0.0 : static_cast<double>(correct_) / gold_;
  s.f1 = (s.precision + s.recall) == 0.0
             ? 0.0
             : 2.0 * s.precision * s.recall / (s.precision + s.recall);
  return s;
}

}  // namespace kg::text
