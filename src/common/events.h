#ifndef KGRAPH_COMMON_EVENTS_H_
#define KGRAPH_COMMON_EVENTS_H_

#include <atomic>
#include <cstdint>

namespace kg::events {

/// Process-wide monotonic event counters for the common-layer
/// subsystems (thread pool, retry/backoff, circuit breakers, fault
/// injector). kg_common cannot depend on kg_obs — the dependency goes
/// the other way — so these live here as plain atomics and
/// obs::CaptureProcessEvents mirrors them into a MetricsRegistry at
/// exposition time.
///
/// All counts below are *decision* counts driven by pure functions of
/// (seed, channel, source, attempt) or of deterministic chunk
/// geometry, so their deltas across a seeded workload are identical at
/// any thread count. Tests assert on deltas, never absolutes: the
/// counters are never reset (other tests in the same binary may have
/// advanced them).
struct ProcessEvents {
  // Parallel-for accounting: loops started and chunks *scheduled*
  // (= ceil(n / chunk_size), independent of how many threads execute
  // or whether a Try loop cancels mid-flight).
  std::atomic<uint64_t> pool_loops{0};
  std::atomic<uint64_t> pool_chunks{0};

  // RetryWithBackoff: attempts made, backoff sleeps taken, calls that
  // eventually returned OK, calls that gave up (any non-OK return).
  std::atomic<uint64_t> retry_attempts{0};
  std::atomic<uint64_t> retry_backoffs{0};
  std::atomic<uint64_t> retry_successes{0};
  std::atomic<uint64_t> retry_giveups{0};

  // CircuitBreaker: closed->open transitions, and calls rejected
  // because the breaker was already open.
  std::atomic<uint64_t> breaker_trips{0};
  std::atomic<uint64_t> breaker_rejections{0};

  // FaultInjector decisions: Probe outcomes by kind, payload
  // truncations (KeepFraction < 1), and corrupted claims.
  std::atomic<uint64_t> fault_transient{0};
  std::atomic<uint64_t> fault_slow{0};
  std::atomic<uint64_t> fault_terminal{0};
  std::atomic<uint64_t> fault_truncated_payloads{0};
  std::atomic<uint64_t> fault_corrupted_claims{0};
};

/// The singleton. Increment with fetch_add(relaxed); read with
/// load(relaxed).
ProcessEvents& Process();

}  // namespace kg::events

#endif  // KGRAPH_COMMON_EVENTS_H_
