#ifndef KGRAPH_COMMON_CSV_H_
#define KGRAPH_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kg {

/// A parsed delimited file: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `column` in the header, or -1.
  int ColumnIndex(const std::string& column) const;
};

/// Parses RFC-4180-ish CSV content: quoted fields with embedded delimiters,
/// doubled quotes for literal quotes. `delimiter` defaults to ','.
Result<CsvTable> ParseCsv(const std::string& content, char delimiter = ',');

/// Reads and parses a delimited file; the first row is the header.
Result<CsvTable> ReadCsvFile(const std::string& path, char delimiter = ',');

/// Serializes a table, quoting fields that need it.
std::string WriteCsvString(const CsvTable& table, char delimiter = ',');

/// Writes a table to `path`.
Status WriteCsvFile(const CsvTable& table, const std::string& path,
                    char delimiter = ',');

}  // namespace kg

#endif  // KGRAPH_COMMON_CSV_H_
