#ifndef KGRAPH_COMMON_STAGE_TIMER_H_
#define KGRAPH_COMMON_STAGE_TIMER_H_

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timer.h"

namespace kg {

/// Lightweight per-stage metrics registry: wall time, item counts, and
/// derived throughput for pipeline stages. Builders record into an
/// optional `StageTimer*` and the bench harnesses print the rows through
/// `table_printer`, so every figure harness reports stage cost the same
/// way. Recording is mutex-guarded (stages may finish on worker threads);
/// reading is meant for after the run.
class StageTimer {
 public:
  struct Row {
    std::string stage;
    size_t calls = 0;
    double seconds = 0.0;
    size_t items = 0;
    /// items / seconds, or 0 when no time was recorded.
    double ItemsPerSec() const {
      return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
    }
  };

  /// RAII measurement: adds elapsed wall time and `items` to `stage` when
  /// destroyed. Null `timer` makes the scope a no-op, so pipelines can
  /// instrument unconditionally and callers opt in by passing a registry.
  class Scope {
   public:
    Scope(StageTimer* timer, std::string stage, size_t items = 0)
        : timer_(timer), stage_(std::move(stage)), items_(items) {}
    Scope(Scope&& other) noexcept
        : timer_(other.timer_),
          stage_(std::move(other.stage_)),
          items_(other.items_),
          clock_(other.clock_) {
      other.timer_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope() {
      if (timer_ != nullptr) {
        timer_->Record(stage_, clock_.ElapsedSeconds(), items_);
      }
    }

    /// Attributes `n` more processed items to this measurement.
    void AddItems(size_t n) { items_ += n; }

   private:
    StageTimer* timer_;
    std::string stage_;
    size_t items_;
    WallTimer clock_;
  };

  /// Adds one call with `seconds` of wall time and `items` processed to
  /// `stage`, creating the row on first use (insertion order is kept).
  void Record(const std::string& stage, double seconds, size_t items = 0);

  /// Rows in first-recorded order.
  std::vector<Row> rows() const;

  /// Renders "stage | calls | wall_s | items | items/s" via TablePrinter.
  void Print(std::ostream& os) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Row> rows_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace kg

#endif  // KGRAPH_COMMON_STAGE_TIMER_H_
