#ifndef KGRAPH_COMMON_STAGE_TIMER_H_
#define KGRAPH_COMMON_STAGE_TIMER_H_

// StageTimer moved to the observability layer, where it is a thin view
// over obs::MetricsRegistry. This forwarding header keeps existing
// `common/stage_timer.h` includes working; targets that compile it
// must link kg_obs (everything above the common layer already does).
#include "obs/stage_timer.h"

#endif  // KGRAPH_COMMON_STAGE_TIMER_H_
