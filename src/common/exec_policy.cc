#include "common/exec_policy.h"

#include <algorithm>
#include <thread>

#include "common/events.h"
#include "common/thread_pool.h"

namespace kg {

ExecPolicy ExecPolicy::Hardware() {
  ExecPolicy p;
  p.num_threads = std::max(1u, std::thread::hardware_concurrency());
  return p;
}

void ParallelForChunked(const ExecPolicy& policy, size_t n,
                        const std::function<void(size_t, size_t)>& fn) {
  (void)TryParallelForChunked(policy, n,
                              [&fn](size_t begin, size_t end) {
                                fn(begin, end);
                                return Status::OK();
                              });
}

Status TryParallelForChunked(
    const ExecPolicy& policy, size_t n,
    const std::function<Status(size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  const size_t chunk = policy.chunk_size != 0 ? policy.chunk_size
                                              : ThreadPool::ChunkSizeFor(n);
  if (!policy.parallel()) {
    // Mirror the pool's scheduled-chunk accounting so serial and
    // parallel runs of the same loop report identical event counts.
    events::Process().pool_loops.fetch_add(1, std::memory_order_relaxed);
    events::Process().pool_chunks.fetch_add((n + chunk - 1) / chunk,
                                            std::memory_order_relaxed);
    for (size_t begin = 0; begin < n; begin += chunk) {
      KG_RETURN_IF_ERROR(fn(begin, std::min(n, begin + chunk)));
    }
    return Status::OK();
  }
  // Transient pool: creation cost (tens of microseconds) is negligible
  // next to the stage bodies these loops run, and it keeps stages free of
  // pool-lifetime plumbing.
  ThreadPool pool(policy.num_threads);
  return pool.TryParallelForChunked(n, chunk, fn);
}

}  // namespace kg
