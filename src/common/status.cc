#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace kg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::optional<StatusCode> StatusCodeFromInt(int value) {
  if (value < static_cast<int>(StatusCode::kOk) ||
      value > static_cast<int>(StatusCode::kDeadlineExceeded)) {
    return std::nullopt;
  }
  return static_cast<StatusCode>(value);
}

bool IsRetriable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

void ExitIfError(const Status& status, const std::string& context) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s: %s\n", context.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kg
