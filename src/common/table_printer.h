#ifndef KGRAPH_COMMON_TABLE_PRINTER_H_
#define KGRAPH_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace kg {

/// Renders aligned ASCII tables for bench/experiment reports. Every
/// experiment harness prints its paper-figure rows through this, so output
/// stays greppable and uniform across binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table with a header rule and column alignment.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used to delimit experiment
/// phases in bench output.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace kg

#endif  // KGRAPH_COMMON_TABLE_PRINTER_H_
