#include "common/fault.h"

#include <algorithm>
#include <cmath>

#include "common/events.h"
#include "common/hash.h"

namespace kg {
namespace {

// Decision channels: each fault dimension draws from its own hash stream
// so e.g. raising the slow rate never re-rolls which sources are
// terminal.
constexpr uint64_t kChannelTransient = 1;
constexpr uint64_t kChannelSlow = 2;
constexpr uint64_t kChannelTerminal = 3;
constexpr uint64_t kChannelTruncate = 4;
constexpr uint64_t kChannelTruncateKeep = 5;
constexpr uint64_t kChannelCorrupt = 6;

// SplitMix64 finalizer (same mix as Rng::Split uses for shard seeds).
constexpr uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kTerminal:
      return "terminal";
  }
  return "unknown";
}

FaultPlan FaultPlan::Uniform(uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_rate = rate;
  plan.slow_rate = rate / 2.0;
  plan.truncate_rate = rate / 2.0;
  plan.terminal_rate = rate / 4.0;
  plan.corrupt_rate = rate / 5.0;
  return plan;
}

double FaultInjector::UnitDraw(uint64_t channel, std::string_view source_id,
                               uint64_t attempt) const {
  uint64_t h = Mix64(plan_.seed ^ Mix64(channel));
  h = Mix64(h ^ Fnv1a64(source_id));
  h = Mix64(h ^ attempt);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::IsTerminal(std::string_view source_id) const {
  return UnitDraw(kChannelTerminal, source_id, 0) < plan_.terminal_rate;
}

double FaultInjector::KeepFraction(std::string_view source_id) const {
  if (UnitDraw(kChannelTruncate, source_id, 0) >= plan_.truncate_rate) {
    return 1.0;
  }
  events::Process().fault_truncated_payloads.fetch_add(
      1, std::memory_order_relaxed);
  const double span = 1.0 - plan_.min_truncate_keep;
  return plan_.min_truncate_keep +
         span * UnitDraw(kChannelTruncateKeep, source_id, 0);
}

FaultInjector::Attempt FaultInjector::Probe(std::string_view source_id,
                                            size_t attempt) const {
  // The injected-fault tallies below count Probe *decisions* — pure
  // hashes of (seed, source, attempt) — so their deltas replay exactly.
  Attempt result;
  if (IsTerminal(source_id)) {
    events::Process().fault_terminal.fetch_add(1, std::memory_order_relaxed);
    result.kind = FaultKind::kTerminal;
    result.latency_ms = plan_.slow_latency_ms;
    result.status = Status::Unavailable(std::string(source_id) +
                                        ": terminally unavailable");
    return result;
  }
  if (UnitDraw(kChannelTransient, source_id, attempt) <
      plan_.transient_rate) {
    events::Process().fault_transient.fetch_add(1,
                                                std::memory_order_relaxed);
    result.kind = FaultKind::kTransient;
    result.latency_ms = plan_.slow_latency_ms;
    result.status = Status::Unavailable(
        std::string(source_id) + ": transient failure on attempt " +
        std::to_string(attempt));
    return result;
  }
  if (UnitDraw(kChannelSlow, source_id, attempt) < plan_.slow_rate) {
    events::Process().fault_slow.fetch_add(1, std::memory_order_relaxed);
    result.kind = FaultKind::kSlow;
    result.latency_ms = plan_.slow_latency_ms;
    return result;
  }
  result.latency_ms = plan_.base_latency_ms;
  return result;
}

std::string FaultInjector::MaybeCorrupt(std::string_view source_id,
                                        std::string_view claim_id,
                                        std::string value) const {
  if (plan_.corrupt_rate <= 0.0) return value;
  const uint64_t claim_hash = Fnv1a64(claim_id);
  if (UnitDraw(kChannelCorrupt, source_id, claim_hash) >=
      plan_.corrupt_rate) {
    return value;
  }
  events::Process().fault_corrupted_claims.fetch_add(
      1, std::memory_order_relaxed);
  // Deterministic, visibly-wrong mutation: never equals any clean value
  // (clean values contain no '\x7f'), and distinct claims corrupt
  // differently.
  value += '\x7f';
  value += "corrupt";
  value += static_cast<char>('0' + (claim_hash % 10));
  return value;
}

size_t DegradationReport::quarantined() const {
  size_t n = 0;
  for (const SourceDegradation& s : sources) n += s.quarantined ? 1 : 0;
  return n;
}

size_t DegradationReport::total_retries() const {
  size_t n = 0;
  for (const SourceDegradation& s : sources) n += s.retries;
  return n;
}

size_t DegradationReport::claims_dropped() const {
  size_t n = 0;
  for (const SourceDegradation& s : sources) n += s.claims_dropped;
  return n;
}

size_t DegradationReport::claims_corrupted() const {
  size_t n = 0;
  for (const SourceDegradation& s : sources) n += s.claims_corrupted;
  return n;
}

std::string DegradationReport::Summary() const {
  std::string out = std::to_string(sources.size()) + " sources, " +
                    std::to_string(quarantined()) + " quarantined, " +
                    std::to_string(total_retries()) + " retries, " +
                    std::to_string(claims_dropped()) + " claims dropped, " +
                    std::to_string(claims_corrupted()) + " corrupted";
  return out;
}

}  // namespace kg
