#ifndef KGRAPH_COMMON_LOGGING_H_
#define KGRAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kg {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum severity that is emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum severity that is emitted.
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after flushing. Used by KG_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

/// Emits a log line at `level` ("KG_LOG(kInfo) << ...;" style).
#define KG_LOG(level)                                                \
  if (static_cast<int>(::kg::LogLevel::level) <                      \
      static_cast<int>(::kg::GetLogLevel())) {                       \
  } else                                                             \
    ::kg::internal::LogMessage(::kg::LogLevel::level, __FILE__,      \
                               __LINE__)                             \
        .stream()

/// Aborts with a message when `condition` is false. For programmer errors
/// (violated invariants), not recoverable failures — those use Status.
#define KG_CHECK(condition)                                          \
  if (condition) {                                                   \
  } else                                                             \
    ::kg::internal::FatalLogMessage(__FILE__, __LINE__, #condition)  \
        .stream()

#define KG_CHECK_OK(expr)                                     \
  do {                                                        \
    ::kg::Status _kg_check_status = (expr);                   \
    KG_CHECK(_kg_check_status.ok()) << _kg_check_status;      \
  } while (false)

}  // namespace kg

#endif  // KGRAPH_COMMON_LOGGING_H_
