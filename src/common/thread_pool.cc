#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/events.h"

namespace kg {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  events::Process().pool_loops.fetch_add(1, std::memory_order_relaxed);
  events::Process().pool_chunks.fetch_add(n, std::memory_order_relaxed);
  // Static chunking: one contiguous range per worker keeps scheduling
  // overhead negligible for the uniform workloads we run.
  const size_t workers = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < workers; ++w) {
    Submit([&next, n, &fn] {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  WaitIdle();
}

size_t ThreadPool::ChunkSizeFor(size_t n) {
  return std::max<size_t>(1, (n + kAutoChunks - 1) / kAutoChunks);
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t chunk_size,
    const std::function<void(size_t, size_t)>& fn) {
  // Delegate to the Status path with an always-OK body; the lambda is
  // trivial so the wrapper cost is one virtual-ish call per chunk.
  (void)TryParallelForChunked(n, chunk_size,
                              [&fn](size_t begin, size_t end) {
                                fn(begin, end);
                                return Status::OK();
                              });
}

Status ThreadPool::TryParallelForChunked(
    size_t n, size_t chunk_size,
    const std::function<Status(size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (chunk_size == 0) chunk_size = ChunkSizeFor(n);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  // Scheduled-chunk accounting (not executed chunks: a cancelled Try
  // loop would make that schedule-dependent). ceil(n/chunk) is a pure
  // function of the input geometry, so the count is identical at any
  // thread count — the serial path in exec_policy.cc mirrors it.
  events::Process().pool_loops.fetch_add(1, std::memory_order_relaxed);
  events::Process().pool_chunks.fetch_add(num_chunks,
                                          std::memory_order_relaxed);

  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  // Of the chunks that failed before cancellation took effect, keep the
  // one with the lowest index — the error a serial run would hit first.
  std::mutex err_mu;
  size_t err_chunk = num_chunks;
  Status err;

  auto run_chunks = [&] {
    while (true) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      if (cancelled.load(std::memory_order_acquire)) return;
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n, begin + chunk_size);
      Status s = fn(begin, end);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (c < err_chunk) {
          err_chunk = c;
          err = std::move(s);
        }
        cancelled.store(true, std::memory_order_release);
      }
    }
  };

  const size_t workers = std::min(num_chunks, threads_.size());
  if (workers <= 1) {
    run_chunks();  // Serial fallback: chunk order == index order.
    return err;
  }
  for (size_t w = 0; w < workers; ++w) Submit(run_chunks);
  WaitIdle();
  return err;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace kg
