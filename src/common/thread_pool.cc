#include "common/thread_pool.h"

#include <atomic>

namespace kg {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Static chunking: one contiguous range per worker keeps scheduling
  // overhead negligible for the uniform workloads we run.
  const size_t workers = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < workers; ++w) {
    Submit([&next, n, &fn] {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace kg
