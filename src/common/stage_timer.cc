#include "common/stage_timer.h"

#include "common/strings.h"
#include "common/table_printer.h"

namespace kg {

void StageTimer::Record(const std::string& stage, double seconds,
                        size_t items) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = index_.emplace(stage, rows_.size());
  if (inserted) {
    rows_.push_back(Row{stage, 0, 0.0, 0});
  }
  Row& row = rows_[it->second];
  ++row.calls;
  row.seconds += seconds;
  row.items += items;
}

std::vector<StageTimer::Row> StageTimer::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void StageTimer::Print(std::ostream& os) const {
  TablePrinter table({"stage", "calls", "wall_s", "items", "items/s"});
  for (const Row& row : rows()) {
    table.AddRow({row.stage, std::to_string(row.calls),
                  FormatDouble(row.seconds, 3),
                  FormatCount(static_cast<int64_t>(row.items)),
                  FormatCount(static_cast<int64_t>(row.ItemsPerSec()))});
  }
  table.Print(os);
}

void StageTimer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  index_.clear();
}

}  // namespace kg
