#ifndef KGRAPH_COMMON_THREAD_POOL_H_
#define KGRAPH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kg {

/// Fixed-size worker pool used by the heavier experiment sweeps (random
/// forest training, label-budget grids). Tasks are `void()` closures;
/// synchronization of results is the caller's concern. `WaitIdle()` blocks
/// until the queue drains and all workers are idle.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when work arrives / stop.
  std::condition_variable idle_cv_;   // signaled when a task completes.
  std::queue<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace kg

#endif  // KGRAPH_COMMON_THREAD_POOL_H_
