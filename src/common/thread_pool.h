#ifndef KGRAPH_COMMON_THREAD_POOL_H_
#define KGRAPH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace kg {

/// Fixed-size worker pool used by the heavier experiment sweeps (random
/// forest training, label-budget grids). Tasks are `void()` closures;
/// synchronization of results is the caller's concern. `WaitIdle()` blocks
/// until the queue drains and all workers are idle.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Block-scheduled parallel loop: splits [0, n) into contiguous chunks
  /// of `chunk_size` (0 = auto, see `ChunkSizeFor`) and runs
  /// `fn(begin, end)` once per chunk. Contiguous blocks amortize
  /// scheduling overhead and keep per-shard output trivially mergeable in
  /// chunk order, which is how the pipelines stay bit-identical to their
  /// serial runs.
  void ParallelForChunked(size_t n, size_t chunk_size,
                          const std::function<void(size_t, size_t)>& fn);

  /// `ParallelForChunked` with first-error propagation: the first chunk
  /// (lowest begin index among executed chunks) returning a non-OK
  /// `Status` wins, chunks not yet started are cancelled, and that status
  /// is returned. Chunks may also cooperatively abort the loop by
  /// returning `Status::Cancelled`. Always waits for in-flight chunks
  /// before returning, so `fn` may safely capture stack state.
  Status TryParallelForChunked(
      size_t n, size_t chunk_size,
      const std::function<Status(size_t, size_t)>& fn);

  /// The auto chunk size used when callers pass `chunk_size == 0`: splits
  /// n into at most `kAutoChunks` blocks. Deliberately independent of the
  /// pool's thread count so chunk boundaries (and anything derived from
  /// them, e.g. `Rng::Split(begin)` shard streams) are identical across
  /// serial and parallel runs.
  static size_t ChunkSizeFor(size_t n);

  static constexpr size_t kAutoChunks = 64;

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when work arrives / stop.
  std::condition_variable idle_cv_;   // signaled when a task completes.
  std::queue<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace kg

#endif  // KGRAPH_COMMON_THREAD_POOL_H_
