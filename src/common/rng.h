#ifndef KGRAPH_COMMON_RNG_H_
#define KGRAPH_COMMON_RNG_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace kg {

/// Deterministic random source. Every stochastic component in kgraph takes
/// an explicit seed (directly or via an `Rng&`), so all experiments are
/// reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KG_CHECK(lo <= hi) << "UniformInt range [" << lo << ", " << hi << "]";
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Precondition: n > 0.
  size_t UniformIndex(size_t n) {
    KG_CHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal with `mean` and `stddev`.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Samples an index proportionally to non-negative `weights`.
  /// Precondition: at least one weight is positive.
  size_t Weighted(const std::vector<double>& weights);

  /// Picks a uniformly random element of `items`.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[UniformIndex(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child RNG; used to give each subsystem its own
  /// stream so adding randomness in one place does not perturb another.
  /// Advances this RNG (sequential composition); for parallel shards use
  /// `Split`, which does not.
  Rng Fork() { return Rng(engine_()); }

  /// Derives the `shard_id`-th parallel stream of this RNG. Unlike
  /// `Fork()`, the result is a pure function of this RNG's construction
  /// seed and `shard_id` — the engine state is untouched — so every shard
  /// of a parallel loop draws the same stream regardless of thread count,
  /// scheduling, or how many draws other shards make. This is what makes
  /// sharded stochastic stages bit-identical to their serial runs.
  Rng Split(uint64_t shard_id) const {
    return Rng(SplitMix64(seed_ ^ SplitMix64(shard_id + kSplitPhi)));
  }

  /// The seed this RNG was constructed with (identifies its stream).
  uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  static constexpr uint64_t kSplitPhi = 0x9e3779b97f4a7c15ULL;

  /// SplitMix64 finalizer: a strong 64-bit mix so shard seeds are
  /// decorrelated even for adjacent shard ids.
  static constexpr uint64_t SplitMix64(uint64_t z) {
    z += kSplitPhi;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

/// Zipf distribution over ranks [0, n) with exponent `s` (any s > 0);
/// rank 0 is the most popular. Precomputes the CDF once (O(n)) and draws
/// in O(log n). This is the popularity model used by all synthetic worlds.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of `rank`.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1.
};

}  // namespace kg

#endif  // KGRAPH_COMMON_RNG_H_
