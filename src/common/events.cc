#include "common/events.h"

namespace kg::events {

ProcessEvents& Process() {
  static ProcessEvents events;
  return events;
}

}  // namespace kg::events
