#ifndef KGRAPH_COMMON_HASH_H_
#define KGRAPH_COMMON_HASH_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

namespace kg {

/// 64-bit FNV-1a over bytes; stable across platforms and runs (unlike
/// std::hash), so anything persisted or printed may depend on it.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// 32-bit checksum for framed on-disk records (e.g. the store WAL): the
/// two halves of `Fnv1a64` folded together, so it inherits FNV-1a's
/// platform stability while fitting a fixed 4-byte frame header. Not
/// cryptographic — it detects torn writes and bit rot, not adversaries.
inline uint32_t Checksum32(std::string_view data) {
  const uint64_t h = Fnv1a64(data);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

/// Boost-style hash combiner.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hasher for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second));
  }
};

}  // namespace kg

#endif  // KGRAPH_COMMON_HASH_H_
