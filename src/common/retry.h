#ifndef KGRAPH_COMMON_RETRY_H_
#define KGRAPH_COMMON_RETRY_H_

#include <atomic>
#include <cstddef>
#include <functional>

#include "common/events.h"
#include "common/rng.h"
#include "common/status.h"

namespace kg {

/// Retry/backoff policy for flaky sources. All timing is *virtual*
/// milliseconds — simulated latency plus computed backoff — never wall
/// clock, so a retried run is exactly reproducible. Jitter comes from an
/// `Rng` the caller derives with `Rng::Split`, keeping backoff schedules
/// independent of thread count and of every other random stream.
struct RetryPolicy {
  /// Total attempts including the first (>= 1).
  size_t max_attempts = 4;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Backoff is scaled by a factor uniform in [1 - j, 1 + j).
  double jitter_fraction = 0.2;
  /// Virtual-time budget per fetch (latency + backoff). Exceeding it
  /// fails the fetch with kDeadlineExceeded. <= 0 disables the budget.
  double deadline_budget_ms = 10000.0;
  /// Consecutive failures that open a source's circuit breaker. Set
  /// above `max_attempts` (the default) to let retries run their course;
  /// lower it to cut off sources that fail fast and often.
  size_t breaker_failure_threshold = 6;
};

/// Nominal capped exponential backoff before retry `attempt` (0-based
/// retry index), scaled by deterministic jitter drawn from `rng`.
double BackoffMs(const RetryPolicy& policy, size_t attempt, Rng& rng);

/// Per-source circuit breaker: opens after N *consecutive* failures and
/// stays open (no half-open probes — sources here don't heal mid-run;
/// a success before the threshold resets the streak).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(size_t failure_threshold)
      : threshold_(failure_threshold) {}

  /// False once the breaker has opened.
  bool Allow() const { return !open_; }
  bool open() const { return open_; }
  size_t consecutive_failures() const { return consecutive_failures_; }

  void RecordSuccess() { consecutive_failures_ = 0; }
  void RecordFailure() {
    if (++consecutive_failures_ >= threshold_ && !open_) {
      open_ = true;
      events::Process().breaker_trips.fetch_add(1,
                                                std::memory_order_relaxed);
    }
  }

 private:
  size_t threshold_;
  size_t consecutive_failures_ = 0;
  bool open_ = false;
};

/// One attempt's result as seen by `RetryWithBackoff`.
struct AttemptResult {
  Status status;
  double latency_ms = 0.0;  ///< Virtual time the attempt consumed.
};

/// Final outcome of a retried fetch.
struct RetryOutcome {
  Status status;        ///< OK, or the terminal failure.
  size_t attempts = 0;  ///< Attempts actually made.
  size_t retries = 0;   ///< attempts - 1 (0 when none were made).
  double virtual_ms = 0.0;  ///< Latency + backoff consumed (virtual).
};

/// Runs `attempt_fn(attempt)` until it succeeds, returns a non-retriable
/// status (see `IsRetriable`), exhausts `policy.max_attempts`, trips
/// `breaker` (optional, may be null), or would blow the virtual deadline
/// budget (then kDeadlineExceeded). `jitter_rng` is consumed by value so
/// the caller's stream is never perturbed — pass `rng.Split(...)`.
RetryOutcome RetryWithBackoff(
    const RetryPolicy& policy, Rng jitter_rng, CircuitBreaker* breaker,
    const std::function<AttemptResult(size_t attempt)>& attempt_fn);

}  // namespace kg

#endif  // KGRAPH_COMMON_RETRY_H_
