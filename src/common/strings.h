#ifndef KGRAPH_COMMON_STRINGS_H_
#define KGRAPH_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace kg {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-case copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats `value` with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Formats an integer count with thousands separators ("1,234,567").
std::string FormatCount(int64_t value);

}  // namespace kg

#endif  // KGRAPH_COMMON_STRINGS_H_
