#ifndef KGRAPH_COMMON_EXEC_POLICY_H_
#define KGRAPH_COMMON_EXEC_POLICY_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace kg {

/// How a pipeline stage executes its sharded hot loops. Plumbed through
/// the builders' Options so callers choose serial or parallel execution
/// without touching stage code. The invariant every stage upholds: output
/// is bit-identical for any `num_threads` (shards write to index-addressed
/// slots or per-shard buffers merged in shard order, and any per-shard
/// randomness comes from `Rng::Split`, never from a shared stream).
struct ExecPolicy {
  /// Worker threads for sharded loops; <= 1 means serial inline execution
  /// (no pool, no extra threads).
  size_t num_threads = 1;

  /// Shard granularity for chunked loops; 0 = auto (at most
  /// ThreadPool::kAutoChunks contiguous blocks, independent of
  /// num_threads so chunk boundaries never depend on parallelism).
  size_t chunk_size = 0;

  bool parallel() const { return num_threads > 1; }

  /// Serial execution (the default).
  static ExecPolicy Serial() { return ExecPolicy{}; }

  /// One worker per hardware thread.
  static ExecPolicy Hardware();

  /// `n` worker threads.
  static ExecPolicy WithThreads(size_t n) {
    ExecPolicy p;
    p.num_threads = n;
    return p;
  }
};

/// Runs `fn(begin, end)` over contiguous chunks of [0, n) under `policy`:
/// inline (in chunk order) when serial, on a transient `ThreadPool`
/// otherwise. Chunk boundaries are identical in both modes.
void ParallelForChunked(const ExecPolicy& policy, size_t n,
                        const std::function<void(size_t, size_t)>& fn);

/// Same, with first-error/cancellation propagation (see
/// ThreadPool::TryParallelForChunked). Serially, the first failing chunk
/// aborts the loop and its status is returned.
Status TryParallelForChunked(const ExecPolicy& policy, size_t n,
                             const std::function<Status(size_t, size_t)>& fn);

}  // namespace kg

#endif  // KGRAPH_COMMON_EXEC_POLICY_H_
