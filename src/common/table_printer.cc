#include "common/table_printer.h"

#include "common/logging.h"

namespace kg {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  KG_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  KG_CHECK(cells.size() == headers_.size())
      << "row arity " << cells.size() << " vs header " << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace kg
