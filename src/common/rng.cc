#include "common/rng.h"

namespace kg {

size_t Rng::Weighted(const std::vector<double>& weights) {
  KG_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    KG_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  KG_CHECK(total > 0.0) << "all weights zero";
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  KG_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected work regardless of n.
  std::vector<size_t> out;
  out.reserve(k);
  std::vector<bool> seen(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (seen[t]) t = j;
    seen[t] = true;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  KG_CHECK(n > 0);
  KG_CHECK(s > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t rank) const {
  KG_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace kg
