#ifndef KGRAPH_COMMON_STATUS_H_
#define KGRAPH_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace kg {

/// Machine-readable failure category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kCancelled,
  kUnavailable,       ///< Transient upstream failure; retrying may succeed.
  kDeadlineExceeded,  ///< A retry/deadline budget ran out; do not retry.
};

/// Returns the canonical lower-case name of `code` (e.g. "invalid_argument").
const char* StatusCodeToString(StatusCode code);

/// Returns the StatusCode whose numeric value is `value`, or nullopt when
/// `value` lies outside the enum. Deserializers (the RPC wire protocol)
/// must route received codes through this instead of a bare static_cast,
/// so a corrupt byte can never fabricate a code the enum doesn't have.
std::optional<StatusCode> StatusCodeFromInt(int value);

/// True for codes that model transient conditions a caller may retry
/// (today only `kUnavailable`). `kDeadlineExceeded` is deliberately not
/// retriable: it means a retry budget was already spent.
bool IsRetriable(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation). Library code returns `Status`/`Result<T>` instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" (or "ok").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Prints "context: status" to stderr and exits with code 1 when
/// `status` is non-OK. Bench and example mains route fallible calls
/// through this so failures gate CI via exit codes, not log scraping.
void ExitIfError(const Status& status, const std::string& context);

/// Either a value of type `T` or a non-OK `Status`. Mirrors
/// `arrow::Result` / `absl::StatusOr` semantics.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// `Result<T>`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: allows `return Status::NotFound(...);`.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    // An OK status carries no value; normalize to an internal error so the
    // invariant "ok() implies has value" always holds.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The failure status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Precondition: `ok()`.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK `Status` to the caller.
#define KG_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::kg::Status _kg_status = (expr);        \
    if (!_kg_status.ok()) return _kg_status; \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagates its error, else assigns the
/// value to `lhs`.
#define KG_ASSIGN_OR_RETURN(lhs, rexpr)          \
  KG_ASSIGN_OR_RETURN_IMPL(                      \
      KG_STATUS_CONCAT(_kg_result, __LINE__), lhs, rexpr)

#define KG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define KG_STATUS_CONCAT_INNER(a, b) a##b
#define KG_STATUS_CONCAT(a, b) KG_STATUS_CONCAT_INNER(a, b)

}  // namespace kg

#endif  // KGRAPH_COMMON_STATUS_H_
