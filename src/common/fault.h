#ifndef KGRAPH_COMMON_FAULT_H_
#define KGRAPH_COMMON_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kg {

/// What the injector does to one (source, attempt) interaction.
enum class FaultKind {
  kNone = 0,   ///< Attempt succeeds, payload untouched.
  kTransient,  ///< Attempt fails with kUnavailable; a retry may succeed.
  kSlow,       ///< Attempt succeeds but burns extra virtual latency.
  kTerminal,   ///< Source is down on every attempt (dead upstream).
};

const char* FaultKindToString(FaultKind kind);

/// Declarative chaos profile for a pipeline run. All rates are
/// probabilities in [0, 1]; a default-constructed plan injects nothing.
/// The plan is part of the experiment seed: the same `(seed, rates)`
/// reproduces the exact same faults on every run, thread count, and
/// machine, because `FaultInjector` derives every decision purely from
/// `(seed, source_id, attempt)`.
struct FaultPlan {
  uint64_t seed = 0;

  /// P(an individual attempt fails transiently), per (source, attempt).
  double transient_rate = 0.0;
  /// P(an individual attempt responds slowly), per (source, attempt).
  double slow_rate = 0.0;
  /// P(a source is terminally down: every attempt fails), per source.
  double terminal_rate = 0.0;
  /// P(a delivered payload arrives truncated), per source.
  double truncate_rate = 0.0;
  /// P(a delivered claim value is corrupted), per claim.
  double corrupt_rate = 0.0;

  /// Truncated payloads keep at least this fraction of their records.
  double min_truncate_keep = 0.3;
  /// Virtual latency of a healthy attempt (counts against deadlines).
  double base_latency_ms = 1.0;
  /// Virtual latency of a slow or failing attempt.
  double slow_latency_ms = 25.0;

  /// True when any fault channel can fire.
  bool active() const {
    return transient_rate > 0.0 || slow_rate > 0.0 || terminal_rate > 0.0 ||
           truncate_rate > 0.0 || corrupt_rate > 0.0;
  }

  /// The profile used by chaos sweeps: one knob `rate` drives every
  /// channel (transient = rate, slow = rate/2, truncate = rate/2,
  /// terminal = rate/4, corrupt = rate/5).
  static FaultPlan Uniform(uint64_t seed, double rate);
};

/// Pure-function fault oracle. Every decision is a deterministic hash of
/// `(plan.seed, source_id, attempt, channel)` — never of wall clock,
/// thread schedule, or query order — so a chaos run replays bit-for-bit
/// at any parallelism, and probing a source twice gives the same answer.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Outcome of one simulated interaction with a source.
  struct Attempt {
    Status status;  ///< OK, or kUnavailable for transient/terminal.
    FaultKind kind = FaultKind::kNone;
    double latency_ms = 0.0;  ///< Virtual time the attempt consumed.
  };

  /// Simulates the `attempt`-th fetch of `source_id` (0-based).
  Attempt Probe(std::string_view source_id, size_t attempt) const;

  /// True when `source_id` fails on every attempt.
  bool IsTerminal(std::string_view source_id) const;

  /// Fraction of `source_id`'s payload records delivered (1.0 when the
  /// truncation channel does not fire).
  double KeepFraction(std::string_view source_id) const;

  /// Returns `value` corrupted (deterministically, and distinguishably
  /// from any clean value) when the corruption channel fires for
  /// `(source_id, claim_id)`, else `value` unchanged.
  std::string MaybeCorrupt(std::string_view source_id,
                           std::string_view claim_id,
                           std::string value) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  /// Uniform draw in [0, 1) for a (channel, source, attempt) triple.
  double UnitDraw(uint64_t channel, std::string_view source_id,
                  uint64_t attempt) const;

  FaultPlan plan_;
};

/// Per-source row of a `DegradationReport`.
struct SourceDegradation {
  std::string source;
  size_t attempts = 0;  ///< Fetch attempts made (>= 1 once probed).
  size_t retries = 0;   ///< attempts - 1 when any were needed.
  bool quarantined = false;
  Status final_status;         ///< Why quarantined (OK when healthy).
  size_t records_dropped = 0;  ///< Records lost to truncation.
  size_t claims_dropped = 0;   ///< Claims lost to truncation/quarantine.
  size_t claims_corrupted = 0;
  double virtual_ms = 0.0;  ///< Latency + backoff consumed (virtual).
};

/// Degradation summary a pipeline returns alongside its KG: which
/// sources survived, which were quarantined and why, and what the faults
/// cost in claims. Rows are appended in ingest order, so the report is
/// as deterministic as the KG itself.
struct DegradationReport {
  std::vector<SourceDegradation> sources;

  size_t attempted() const { return sources.size(); }
  size_t quarantined() const;
  size_t total_retries() const;
  size_t claims_dropped() const;
  size_t claims_corrupted() const;

  /// One-line human summary ("8 sources, 1 quarantined, 5 retries, ...").
  std::string Summary() const;
};

}  // namespace kg

#endif  // KGRAPH_COMMON_FAULT_H_
