#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace kg {

double BackoffMs(const RetryPolicy& policy, size_t attempt, Rng& rng) {
  const double nominal =
      std::min(policy.max_backoff_ms,
               policy.initial_backoff_ms *
                   std::pow(policy.backoff_multiplier,
                            static_cast<double>(attempt)));
  const double j = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  const double scale = j > 0.0 ? rng.UniformDouble(1.0 - j, 1.0 + j) : 1.0;
  return nominal * scale;
}

RetryOutcome RetryWithBackoff(
    const RetryPolicy& policy, Rng jitter_rng, CircuitBreaker* breaker,
    const std::function<AttemptResult(size_t attempt)>& attempt_fn) {
  // Every terminal outcome bumps exactly one of successes/giveups, and
  // breaker rejections additionally count as giveups — the fetch did
  // fail. All increments are driven by the same pure decisions the
  // retry loop makes, so deltas are reproducible for a seeded run.
  events::ProcessEvents& ev = events::Process();
  RetryOutcome out;
  if (breaker != nullptr && !breaker->Allow()) {
    ev.breaker_rejections.fetch_add(1, std::memory_order_relaxed);
    ev.retry_giveups.fetch_add(1, std::memory_order_relaxed);
    out.status = Status::Unavailable("circuit breaker open");
    return out;
  }
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const AttemptResult result = attempt_fn(attempt);
    ++out.attempts;
    out.retries = out.attempts - 1;
    out.virtual_ms += result.latency_ms;
    ev.retry_attempts.fetch_add(1, std::memory_order_relaxed);
    if (result.status.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      ev.retry_successes.fetch_add(1, std::memory_order_relaxed);
      out.status = Status::OK();
      return out;
    }
    if (breaker != nullptr) breaker->RecordFailure();
    if (!IsRetriable(result.status.code())) {
      ev.retry_giveups.fetch_add(1, std::memory_order_relaxed);
      out.status = result.status;
      return out;
    }
    if (breaker != nullptr && !breaker->Allow()) {
      ev.retry_giveups.fetch_add(1, std::memory_order_relaxed);
      out.status = Status::Unavailable(
          "circuit breaker opened: " + result.status.ToString());
      return out;
    }
    if (attempt + 1 == max_attempts) {
      ev.retry_giveups.fetch_add(1, std::memory_order_relaxed);
      out.status = result.status;
      return out;
    }
    const double backoff = BackoffMs(policy, attempt, jitter_rng);
    if (policy.deadline_budget_ms > 0.0 &&
        out.virtual_ms + backoff > policy.deadline_budget_ms) {
      ev.retry_giveups.fetch_add(1, std::memory_order_relaxed);
      out.status = Status::DeadlineExceeded(
          "retry budget exhausted after " +
          std::to_string(out.attempts) +
          " attempts: " + result.status.ToString());
      return out;
    }
    ev.retry_backoffs.fetch_add(1, std::memory_order_relaxed);
    out.virtual_ms += backoff;
  }
  return out;  // Unreachable: the loop always returns.
}

}  // namespace kg
