#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace kg {

int CsvTable::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Parses one record starting at `pos`; advances `pos` past the record's
// trailing newline. Returns false with a status on malformed quoting.
Status ParseRecord(const std::string& content, char delimiter, size_t* pos,
                   std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = content.size();
  while (i < n) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && content[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"') {
      if (!field.empty()) {
        return Status::InvalidArgument(
            "quote in the middle of an unquoted field");
      }
      in_quotes = true;
      ++i;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\n' || c == '\r') {
      break;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  fields->push_back(std::move(field));
  // Consume the line terminator (\n, \r\n, or \r).
  if (i < n && content[i] == '\r') ++i;
  if (i < n && content[i] == '\n') ++i;
  *pos = i;
  return Status::OK();
}

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& field, char delimiter,
                 std::string* out) {
  if (!NeedsQuoting(field, delimiter)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& content, char delimiter) {
  CsvTable table;
  size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    std::vector<std::string> fields;
    KG_RETURN_IF_ERROR(ParseRecord(content, delimiter, &pos, &fields));
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        return Status::InvalidArgument(
            "row arity mismatch: expected " +
            std::to_string(table.header.size()) + ", got " +
            std::to_string(fields.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::InvalidArgument("empty CSV content");
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, char delimiter) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), delimiter);
}

std::string WriteCsvString(const CsvTable& table, char delimiter) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      AppendField(row[i], delimiter, &out);
    }
    out.push_back('\n');
  };
  append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace kg
