#ifndef KGRAPH_DUAL_QA_EVAL_H_
#define KGRAPH_DUAL_QA_EVAL_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "dual/answerers.h"
#include "synth/qa_generator.h"

namespace kg::dual {

/// QA quality over one slice of questions, in the §4 study's terms:
/// accuracy = correct / n; hallucination = wrong-but-answered / n;
/// abstention = unanswered / n. The three sum to 1.
struct QaScore {
  size_t n = 0;
  double accuracy = 0.0;
  double hallucination_rate = 0.0;
  double abstention_rate = 0.0;
};

/// Per-bucket plus overall ("all") scores; also splits out recent facts
/// under the key index 3 when any exist.
struct QaEvaluation {
  QaScore overall;
  std::map<synth::PopularityBucket, QaScore> by_bucket;
  QaScore recent;  ///< Questions about post-cutoff facts only.
};

/// Runs `answerer` over `items`. Answers match by normalized string
/// equality.
QaEvaluation EvaluateAnswerer(Answerer& answerer,
                              const std::vector<synth::QaItem>& items,
                              Rng& rng);

}  // namespace kg::dual

#endif  // KGRAPH_DUAL_QA_EVAL_H_
