#include "dual/answerers.h"

#include "text/tokenize.h"

namespace kg::dual {

KgAnswerer::KgAnswerer(const graph::KnowledgeGraph& kg) : kg_(kg) {
  for (const char* name_pred : {"name", "title"}) {
    auto pred = kg_.FindPredicate(name_pred);
    if (!pred.ok()) continue;
    for (graph::TripleId id : kg_.TriplesWithPredicate(*pred)) {
      const graph::Triple& t = kg_.triple(id);
      // First writer wins: deterministic resolution of shared names
      // (ambiguity then surfaces as occasional wrong answers, as in any
      // real disambiguation step).
      surface_index_.emplace(
          text::NormalizeForMatch(kg_.NodeName(t.object)), t.subject);
    }
  }
}

std::optional<std::string> KgAnswerer::Lookup(
    const synth::QaItem& item) const {
  auto sit = surface_index_.find(text::NormalizeForMatch(item.subject_name));
  if (sit == surface_index_.end()) return std::nullopt;
  auto pred = kg_.FindPredicate(item.predicate);
  if (!pred.ok()) return std::nullopt;
  const auto objects = kg_.Objects(sit->second, *pred);
  if (objects.empty()) return std::nullopt;
  const graph::NodeId object = objects.front();
  if (kg_.GetNodeKind(object) == graph::NodeKind::kEntity) {
    // Surface the entity via its name attribute.
    auto name_pred = kg_.FindPredicate("name");
    if (name_pred.ok()) {
      const auto names = kg_.Objects(object, *name_pred);
      if (!names.empty()) return kg_.NodeName(names.front());
    }
    return kg_.NodeName(object);
  }
  return kg_.NodeName(object);
}

std::optional<std::string> KgAnswerer::Answer(const synth::QaItem& item,
                                              Rng& rng) {
  (void)rng;  // Symbolic lookup is deterministic.
  return Lookup(item);
}

bool KgAnswerer::CanAnswer(const synth::QaItem& item) const {
  return Lookup(item).has_value();
}

std::optional<std::string> LlmAnswerer::Answer(const synth::QaItem& item,
                                               Rng& rng) {
  const LlmAnswer answer = llm_.Query(item.subject_name, item.predicate,
                                      rng);
  if (answer.kind == AnswerKind::kAbstained) return std::nullopt;
  return answer.text;
}

std::optional<std::string> DualAnswerer::Answer(const synth::QaItem& item,
                                                Rng& rng) {
  // Route to triples first: explicit knowledge is precise and cheap to
  // verify. Fall back to the LLM only when it is confident.
  if (kg_answerer_.CanAnswer(item)) return kg_answerer_.Answer(item, rng);
  if (llm_.Confidence(item.subject_name, item.predicate) >=
      llm_confidence_floor_) {
    const LlmAnswer answer =
        llm_.Query(item.subject_name, item.predicate, rng);
    if (answer.kind != AnswerKind::kAbstained) return answer.text;
  }
  return std::nullopt;
}

RagAnswerer::RagAnswerer(const graph::KnowledgeGraph& kg,
                         const LlmSim& llm)
    : kg_(kg), llm_(llm) {
  for (const char* name_pred : {"name", "title"}) {
    auto pred = kg_.FindPredicate(name_pred);
    if (!pred.ok()) continue;
    for (graph::TripleId id : kg_.TriplesWithPredicate(*pred)) {
      const graph::Triple& t = kg_.triple(id);
      surface_index_.emplace(
          text::NormalizeForMatch(kg_.NodeName(t.object)), t.subject);
    }
  }
}

std::vector<synth::FactMention> RagAnswerer::Retrieve(
    const synth::QaItem& item) const {
  std::vector<synth::FactMention> context;
  auto sit =
      surface_index_.find(text::NormalizeForMatch(item.subject_name));
  if (sit == surface_index_.end()) return context;
  for (graph::TripleId tid : kg_.TriplesWithSubject(sit->second)) {
    const graph::Triple& t = kg_.triple(tid);
    std::string object = kg_.NodeName(t.object);
    if (kg_.GetNodeKind(t.object) == graph::NodeKind::kEntity) {
      auto name_pred = kg_.FindPredicate("name");
      if (name_pred.ok()) {
        const auto names = kg_.Objects(t.object, *name_pred);
        if (!names.empty()) object = kg_.NodeName(names.front());
      }
    }
    context.push_back({item.subject_name,
                       kg_.PredicateName(t.predicate), object, 1, false});
  }
  return context;
}

std::optional<std::string> RagAnswerer::Answer(const synth::QaItem& item,
                                               Rng& rng) {
  const LlmAnswer answer = llm_.QueryWithContext(
      item.subject_name, item.predicate, Retrieve(item), rng);
  if (answer.kind == AnswerKind::kAbstained) return std::nullopt;
  return answer.text;
}

std::optional<std::string> HybridAnswerer::Answer(const synth::QaItem& item,
                                                  Rng& rng) {
  (void)rng;  // Both halves are deterministic.
  if (auto symbolic = kg_answerer_.Answer(item, rng)) {
    last_route_ = Route::kSymbolic;
    ++symbolic_hits_;
    return symbolic;
  }
  if (auto predicted = space_.PredictObject(item.subject_name,
                                            item.predicate)) {
    last_route_ = Route::kAnn;
    ++ann_hits_;
    return predicted;
  }
  last_route_ = Route::kNone;
  ++abstains_;
  return std::nullopt;
}

}  // namespace kg::dual
