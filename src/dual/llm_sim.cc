#include "dual/llm_sim.h"

#include <algorithm>

#include "common/logging.h"
#include "text/tokenize.h"

namespace kg::dual {

std::string LlmSim::Key(const std::string& subject,
                        const std::string& predicate) {
  return text::NormalizeForMatch(subject) + "\x01" + predicate;
}

void LlmSim::Train(const std::vector<synth::FactMention>& corpus) {
  for (const synth::FactMention& m : corpus) {
    Cell& cell = memory_[Key(m.subject, m.predicate)];
    cell.object_counts[m.object] += static_cast<double>(m.count);
    cell.total += static_cast<double>(m.count);
    auto& objects = predicate_objects_[m.predicate];
    if (objects.size() < 4096) objects.push_back(m.object);
  }
}

void LlmSim::Infuse(const std::vector<synth::FactMention>& facts,
                    double boost) {
  for (const synth::FactMention& m : facts) {
    Cell& cell = memory_[Key(m.subject, m.predicate)];
    cell.object_counts[m.object] += boost;
    cell.total += boost;
    auto& objects = predicate_objects_[m.predicate];
    if (objects.size() < 4096) objects.push_back(m.object);
  }
}

double LlmSim::Confidence(const std::string& subject,
                          const std::string& predicate) const {
  auto it = memory_.find(Key(subject, predicate));
  const double count = it == memory_.end() ? 0.0 : it->second.total;
  return (count + options_.attempt_prior) /
         (count + options_.attempt_prior + options_.attempt_scale);
}

std::string LlmSim::Hallucinate(const std::string& predicate,
                                const std::string& avoid, Rng& rng) const {
  auto it = predicate_objects_.find(predicate);
  if (it == predicate_objects_.end() || it->second.empty()) {
    return "unknown-" + std::to_string(rng.UniformInt(0, 999));
  }
  for (int tries = 0; tries < 8; ++tries) {
    const std::string& candidate = rng.Choice(it->second);
    if (candidate != avoid) return candidate;
  }
  return it->second.front();
}

LlmAnswer LlmSim::Query(const std::string& subject,
                        const std::string& predicate, Rng& rng) const {
  auto it = memory_.find(Key(subject, predicate));
  const double count = it == memory_.end() ? 0.0 : it->second.total;

  const double attempt_proba =
      (count + options_.attempt_prior) /
      (count + options_.attempt_prior + options_.attempt_scale);
  if (!rng.Bernoulli(attempt_proba)) {
    return LlmAnswer{AnswerKind::kAbstained, ""};
  }

  // Majority stored object; may be absent (count == 0).
  std::string majority;
  double majority_count = 0.0;
  if (it != memory_.end()) {
    for (const auto& [object, c] : it->second.object_counts) {
      if (c > majority_count) {
        majority_count = c;
        majority = object;
      }
    }
  }
  const double recall_proba =
      majority_count / (majority_count + options_.confusion_scale);
  if (!majority.empty() && rng.Bernoulli(recall_proba)) {
    // Note: "correct" here means faithful to the training corpus; if the
    // corpus majority is itself wrong, the answer is a faithful error.
    return LlmAnswer{AnswerKind::kCorrect, majority};
  }
  return LlmAnswer{AnswerKind::kHallucinated,
                   Hallucinate(predicate, majority, rng)};
}

LlmAnswer LlmSim::QueryWithContext(
    const std::string& subject, const std::string& predicate,
    const std::vector<synth::FactMention>& context, Rng& rng) const {
  const std::string norm_subject = text::NormalizeForMatch(subject);
  for (const synth::FactMention& m : context) {
    if (m.predicate == predicate &&
        text::NormalizeForMatch(m.subject) == norm_subject) {
      return LlmAnswer{AnswerKind::kCorrect, m.object};
    }
  }
  return Query(subject, predicate, rng);
}

}  // namespace kg::dual
