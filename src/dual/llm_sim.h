#ifndef KGRAPH_DUAL_LLM_SIM_H_
#define KGRAPH_DUAL_LLM_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/qa_generator.h"

namespace kg::dual {

/// What the model did with a question.
enum class AnswerKind {
  kCorrect,      ///< Answered with the gold object.
  kHallucinated, ///< Answered confidently with a wrong object.
  kAbstained,    ///< Said it does not know.
};

struct LlmAnswer {
  AnswerKind kind = AnswerKind::kAbstained;
  std::string text;
};

/// A parametric-memory language-model simulator (the §4 substrate
/// substitute for ChatGPT). "Pretraining" aggregates fact mentions; at
/// query time, recall depends on how often the fact appeared:
///   * attempt probability grows with mention count but never reaches 0
///     at count 0 — the model answers questions it has no grounds for,
///     which is exactly where hallucination comes from;
///   * given an attempt, the majority stored object wins with probability
///     count/(count + confusion); otherwise a plausible same-type object
///     is produced (type-consistent hallucination).
/// The constants below reproduce the paper's findings (~20% hallucination,
/// ~50% unanswered, head-tail accuracy 50% -> 15%) under a Zipf corpus.
class LlmSim {
 public:
  struct Options {
    /// Pseudo-mentions added before the attempt decision: the model's
    /// overconfidence floor.
    double attempt_prior = 1.2;
    /// Mentions needed for a coin-flip attempt decision.
    double attempt_scale = 6.0;
    /// Mentions needed to reliably beat interference once attempting.
    double confusion_scale = 2.5;
  };

  LlmSim() = default;
  explicit LlmSim(Options options) : options_(options) {}

  /// Pretraining: absorbs the corpus (aggregates duplicate mentions).
  void Train(const std::vector<synth::FactMention>& corpus);

  /// Fine-tuning / knowledge infusion (§4 "head knowledge"): boosts the
  /// stored count of each fact by `boost` mentions.
  void Infuse(const std::vector<synth::FactMention>& facts, double boost);

  /// Asks "what is `predicate` of `subject`?".
  LlmAnswer Query(const std::string& subject, const std::string& predicate,
                  Rng& rng) const;

  /// Model's own confidence it can answer (the router signal): the
  /// attempt probability.
  double Confidence(const std::string& subject,
                    const std::string& predicate) const;

  /// Answers given retrieved context (RAG): the provided facts override
  /// parametric memory when they address the question.
  LlmAnswer QueryWithContext(
      const std::string& subject, const std::string& predicate,
      const std::vector<synth::FactMention>& context, Rng& rng) const;

  size_t num_keys() const { return memory_.size(); }

 private:
  struct Cell {
    std::map<std::string, double> object_counts;
    double total = 0.0;
  };

  static std::string Key(const std::string& subject,
                         const std::string& predicate);

  /// Plausible wrong object for `predicate`, drawn from the global object
  /// distribution (type-consistent hallucination).
  std::string Hallucinate(const std::string& predicate,
                          const std::string& avoid, Rng& rng) const;

  Options options_;
  std::map<std::string, Cell> memory_;
  std::map<std::string, std::vector<std::string>> predicate_objects_;
};

}  // namespace kg::dual

#endif  // KGRAPH_DUAL_LLM_SIM_H_
