#include "dual/kg_embedding.h"

#include <algorithm>

#include "common/rng.h"
#include "text/tokenize.h"

namespace kg::dual {
namespace {

const std::string kEmptyDisplay;

}  // namespace

KgEmbeddingSpace::KgEmbeddingSpace(const graph::KnowledgeGraph& kg,
                                   const KgEmbeddingOptions& options)
    : top_k_(std::max<size_t>(1, options.top_k)) {
  // Dense-id every node touched by a live non-type triple, skipping
  // class nodes ("type" edges would otherwise pull every entity toward
  // its class centroid and drown the factual structure). NodeIds are
  // assigned in interning order, so sorting them gives a deterministic
  // dense numbering independent of triple iteration order.
  const auto type_pred = kg.FindPredicate("type");
  std::vector<graph::TripleId> live = kg.AllTriples();
  std::vector<char> seen(kg.num_nodes(), 0);
  for (graph::TripleId id : live) {
    const graph::Triple& t = kg.triple(id);
    if (type_pred.ok() && t.predicate == *type_pred) continue;
    if (kg.GetNodeKind(t.object) == graph::NodeKind::kClass) continue;
    seen[t.subject] = 1;
    seen[t.object] = 1;
  }
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId n = 0; n < seen.size(); ++n) {
    if (seen[n]) nodes.push_back(n);
  }
  std::unordered_map<graph::NodeId, uint32_t> dense;
  dense.reserve(nodes.size());
  displays_.reserve(nodes.size());
  const auto name_pred = kg.FindPredicate("name");
  for (graph::NodeId n : nodes) {
    dense.emplace(n, static_cast<uint32_t>(displays_.size()));
    // Entities answer through their "name" attribute (mirroring
    // KgAnswerer); text nodes are their own surface.
    std::string display = kg.NodeName(n);
    if (kg.GetNodeKind(n) == graph::NodeKind::kEntity && name_pred.ok()) {
      const auto names = kg.Objects(n, *name_pred);
      if (!names.empty()) display = kg.NodeName(names.front());
    }
    displays_.push_back(std::move(display));
  }

  // Dense relation ids in predicate-interning order.
  std::vector<ml::IdTriple> id_triples;
  id_triples.reserve(live.size());
  for (graph::TripleId id : live) {
    const graph::Triple& t = kg.triple(id);
    auto s = dense.find(t.subject);
    auto o = dense.find(t.object);
    if (s == dense.end() || o == dense.end()) continue;
    const std::string& pred_name = kg.PredicateName(t.predicate);
    const auto rit = relation_index_
                         .emplace(pred_name, static_cast<uint32_t>(
                                                 relation_index_.size()))
                         .first;
    id_triples.push_back({s->second, rit->second, o->second});
  }

  if (!id_triples.empty()) {
    Rng rng(options.seed);
    model_.Fit(id_triples, displays_.size(), relation_index_.size(),
               options.transe, rng);
  }

  // Subject surfaces via name/title triples, first-writer-wins — the
  // same disambiguation rule as KgAnswerer so both halves of the hybrid
  // resolve a shared name to the same node.
  for (const char* pred : {"name", "title"}) {
    auto p = kg.FindPredicate(pred);
    if (!p.ok()) continue;
    for (graph::TripleId id : kg.TriplesWithPredicate(*p)) {
      const graph::Triple& t = kg.triple(id);
      auto s = dense.find(t.subject);
      if (s == dense.end()) continue;
      surface_index_.emplace(text::NormalizeForMatch(kg.NodeName(t.object)),
                             s->second);
    }
  }

  // Freeze the space into the ANN index.
  if (model_.dim() > 0) {
    ann::HnswOptions hnsw = options.hnsw;
    hnsw.dim = model_.dim();
    hnsw.seed = options.seed;
    std::vector<float> flat;
    flat.reserve(displays_.size() * model_.dim());
    for (uint32_t id = 0; id < displays_.size(); ++id) {
      for (double x : model_.entity_embedding(id)) {
        flat.push_back(static_cast<float>(x));
      }
    }
    index_ = ann::HnswIndex::Build(std::move(flat), hnsw);
  }
}

std::optional<std::vector<float>> KgEmbeddingSpace::EmbeddingQuery(
    const std::string& subject_surface,
    const std::string& predicate) const {
  if (model_.dim() == 0) return std::nullopt;
  auto sit = surface_index_.find(text::NormalizeForMatch(subject_surface));
  if (sit == surface_index_.end()) return std::nullopt;
  auto rit = relation_index_.find(predicate);
  if (rit == relation_index_.end()) return std::nullopt;
  const auto& e = model_.entity_embedding(sit->second);
  const auto& r = model_.relation_embedding(rit->second);
  std::vector<float> query(model_.dim());
  for (size_t k = 0; k < query.size(); ++k) {
    query[k] = static_cast<float>(e[k] + r[k]);
  }
  return query;
}

std::optional<std::string> KgEmbeddingSpace::PredictObject(
    const std::string& subject_surface,
    const std::string& predicate) const {
  auto query = EmbeddingQuery(subject_surface, predicate);
  if (!query) return std::nullopt;
  const uint32_t subject =
      surface_index_.at(text::NormalizeForMatch(subject_surface));
  // +1 so the subject's own point can be skipped and still leave top_k.
  for (const ann::Neighbor& hit : index_.Search(*query, top_k_ + 1)) {
    if (hit.id == subject) continue;
    return displays_[hit.id];
  }
  return std::nullopt;
}

const std::string& KgEmbeddingSpace::DisplayOf(uint32_t id) const {
  if (id >= displays_.size()) return kEmptyDisplay;
  return displays_[id];
}

}  // namespace kg::dual
