#include "dual/qa_eval.h"

#include "text/tokenize.h"

namespace kg::dual {

namespace {

struct Counts {
  size_t n = 0, correct = 0, wrong = 0, abstained = 0;

  QaScore ToScore() const {
    QaScore s;
    s.n = n;
    if (n == 0) return s;
    s.accuracy = static_cast<double>(correct) / n;
    s.hallucination_rate = static_cast<double>(wrong) / n;
    s.abstention_rate = static_cast<double>(abstained) / n;
    return s;
  }
};

}  // namespace

QaEvaluation EvaluateAnswerer(Answerer& answerer,
                              const std::vector<synth::QaItem>& items,
                              Rng& rng) {
  Counts overall;
  std::map<synth::PopularityBucket, Counts> by_bucket;
  Counts recent;
  for (const synth::QaItem& item : items) {
    const auto answer = answerer.Answer(item, rng);
    auto classify = [&](Counts& c) {
      ++c.n;
      if (!answer.has_value()) {
        ++c.abstained;
      } else if (text::NormalizeForMatch(*answer) ==
                 text::NormalizeForMatch(item.gold_object)) {
        ++c.correct;
      } else {
        ++c.wrong;
      }
    };
    classify(overall);
    classify(by_bucket[item.bucket]);
    if (item.recent) classify(recent);
  }
  QaEvaluation eval;
  eval.overall = overall.ToScore();
  for (const auto& [bucket, counts] : by_bucket) {
    eval.by_bucket[bucket] = counts.ToScore();
  }
  eval.recent = recent.ToScore();
  return eval;
}

}  // namespace kg::dual
