#ifndef KGRAPH_DUAL_ANSWERERS_H_
#define KGRAPH_DUAL_ANSWERERS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "dual/kg_embedding.h"
#include "dual/llm_sim.h"
#include "graph/knowledge_graph.h"
#include "synth/qa_generator.h"

namespace kg::dual {

/// A question-answering strategy over factoid questions. Returning
/// nullopt means abstaining.
class Answerer {
 public:
  virtual ~Answerer() = default;
  virtual std::optional<std::string> Answer(const synth::QaItem& item,
                                            Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Symbolic QA over a knowledge graph: resolve the subject surface form
/// via name/title triples, follow the predicate, surface the object. This
/// is the "knowledge-based QA" industry success of §5.
class KgAnswerer : public Answerer {
 public:
  /// `kg` must outlive the answerer. Name predicates ("name", "title")
  /// are used to build the surface-form index.
  explicit KgAnswerer(const graph::KnowledgeGraph& kg);

  std::optional<std::string> Answer(const synth::QaItem& item,
                                    Rng& rng) override;
  std::string name() const override { return "kg"; }

  /// Whether the KG can answer (subject resolvable and predicate edge
  /// present) — the router probe.
  bool CanAnswer(const synth::QaItem& item) const;

 private:
  std::optional<std::string> Lookup(const synth::QaItem& item) const;

  const graph::KnowledgeGraph& kg_;
  /// normalized surface -> subject entity node.
  std::unordered_map<std::string, graph::NodeId> surface_index_;
};

/// Parametric QA via the LLM simulator.
class LlmAnswerer : public Answerer {
 public:
  explicit LlmAnswerer(const LlmSim& llm) : llm_(llm) {}

  std::optional<std::string> Answer(const synth::QaItem& item,
                                    Rng& rng) override;
  std::string name() const override { return "llm"; }

 private:
  const LlmSim& llm_;
};

/// The dual neural KG answerer (§4): triples where they exist (torso,
/// tail, recent), the LLM where they do not. `llm_confidence_floor`
/// controls when the LLM is allowed to answer on its own.
class DualAnswerer : public Answerer {
 public:
  DualAnswerer(const graph::KnowledgeGraph& kg, const LlmSim& llm,
               double llm_confidence_floor = 0.3)
      : kg_answerer_(kg), llm_(llm),
        llm_confidence_floor_(llm_confidence_floor) {}

  std::optional<std::string> Answer(const synth::QaItem& item,
                                    Rng& rng) override;
  std::string name() const override { return "dual"; }

 private:
  KgAnswerer kg_answerer_;
  const LlmSim& llm_;
  double llm_confidence_floor_;
};

/// Retrieval-augmented answering (§4's "knowledge-augmented LLM" /
/// REPLUG direction): instead of routing AROUND the LLM, retrieve the
/// subject's triples from the KG and hand them to the LLM as context;
/// the LLM answers from context when it covers the question and falls
/// back to parametric memory otherwise.
class RagAnswerer : public Answerer {
 public:
  RagAnswerer(const graph::KnowledgeGraph& kg, const LlmSim& llm);

  std::optional<std::string> Answer(const synth::QaItem& item,
                                    Rng& rng) override;
  std::string name() const override { return "rag"; }

 private:
  /// All triples about the resolved subject, as fact mentions.
  std::vector<synth::FactMention> Retrieve(
      const synth::QaItem& item) const;

  const graph::KnowledgeGraph& kg_;
  const LlmSim& llm_;
  std::unordered_map<std::string, graph::NodeId> surface_index_;
};

/// The gen-3 hybrid: symbolic triple lookup first (precise, cheap to
/// verify), ANN top-k through the TransE embedding space when the
/// symbolic path has no edge to follow. Unlike DualAnswerer this never
/// consults a language model — the fallback is the KG's own learned
/// geometry, the "dual neural KG" of §4.
class HybridAnswerer : public Answerer {
 public:
  /// How the last Answer() call was served.
  enum class Route { kNone, kSymbolic, kAnn };

  /// Both `kg` and `space` must outlive the answerer (and `space` must
  /// be built over the same graph, or subject resolution will disagree).
  HybridAnswerer(const graph::KnowledgeGraph& kg,
                 const KgEmbeddingSpace& space)
      : kg_answerer_(kg), space_(space) {}

  std::optional<std::string> Answer(const synth::QaItem& item,
                                    Rng& rng) override;
  std::string name() const override { return "hybrid"; }

  Route last_route() const { return last_route_; }
  size_t symbolic_hits() const { return symbolic_hits_; }
  size_t ann_hits() const { return ann_hits_; }
  size_t abstains() const { return abstains_; }

 private:
  KgAnswerer kg_answerer_;
  const KgEmbeddingSpace& space_;
  Route last_route_ = Route::kNone;
  size_t symbolic_hits_ = 0;
  size_t ann_hits_ = 0;
  size_t abstains_ = 0;
};

}  // namespace kg::dual

#endif  // KGRAPH_DUAL_ANSWERERS_H_
