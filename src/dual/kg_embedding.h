#ifndef KGRAPH_DUAL_KG_EMBEDDING_H_
#define KGRAPH_DUAL_KG_EMBEDDING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ann/hnsw.h"
#include "graph/knowledge_graph.h"
#include "ml/transe.h"

namespace kg::dual {

/// Knobs for building a KgEmbeddingSpace. One seed drives both the TransE
/// init/negative-sampling stream and the HNSW level draws, so the whole
/// space is a pure function of (graph, options).
struct KgEmbeddingOptions {
  ml::TransEOptions transe;
  /// HNSW shape; `dim` and `seed` are overwritten from `transe.dim` and
  /// `seed` below at build time.
  ann::HnswOptions hnsw;
  uint64_t seed = 7;
  /// How many ANN hits PredictObject scans past the subject itself.
  size_t top_k = 8;
};

/// The neural half of the gen-3 dual path: TransE embeddings of every
/// node that participates in a (non-type) triple, indexed by a
/// deterministic HNSW. Text value nodes are embedded alongside entities,
/// so attribute questions ("release_year of Avatar") are answerable — the
/// answer node "2009" lives in the same space the query walks.
///
/// Immutable after construction; safe for concurrent readers.
class KgEmbeddingSpace {
 public:
  /// Trains + indexes. Cost is TransE epochs x triples; intended for the
  /// worlds the QA benches build (thousands of triples).
  KgEmbeddingSpace(const graph::KnowledgeGraph& kg,
                   const KgEmbeddingOptions& options);

  /// ANN link prediction: resolve `subject_surface` through name/title
  /// triples, form the TransE query e_subject + r_predicate, take the
  /// nearest embedded node that is not the subject itself. nullopt when
  /// the subject or predicate never made it into the space.
  std::optional<std::string> PredictObject(
      const std::string& subject_surface,
      const std::string& predicate) const;

  /// The raw query point for (subject, predicate) — what PredictObject
  /// searches with. Exposed so recall tests can replay the exact queries
  /// against HnswIndex::BruteForce.
  std::optional<std::vector<float>> EmbeddingQuery(
      const std::string& subject_surface,
      const std::string& predicate) const;

  const ann::HnswIndex& index() const { return index_; }
  size_t num_embedded_nodes() const { return displays_.size(); }

  /// Human-readable surface of dense id `id` (entities through their
  /// "name" attribute, text nodes verbatim). Empty when out of range.
  const std::string& DisplayOf(uint32_t id) const;

 private:
  ann::HnswIndex index_;
  ml::TransE model_;
  /// normalized subject surface -> dense embedding id.
  std::unordered_map<std::string, uint32_t> surface_index_;
  /// predicate name -> dense relation id.
  std::unordered_map<std::string, uint32_t> relation_index_;
  /// dense id -> answer string.
  std::vector<std::string> displays_;
  size_t top_k_ = 8;
};

}  // namespace kg::dual

#endif  // KGRAPH_DUAL_KG_EMBEDDING_H_
