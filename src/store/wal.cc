#include "store/wal.h"

#include <filesystem>
#include <sstream>

#include "common/hash.h"
#include "common/strings.h"
#include "graph/serialization.h"

namespace kg::store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;
/// Refuse to believe a single logged mutation exceeds this; a larger
/// declared length is corruption, not data (keeps a flipped length bit
/// from swallowing the rest of the file as one "record").
constexpr uint32_t kMaxPayloadBytes = 1u << 24;

const char* KindName(graph::NodeKind kind) {
  switch (kind) {
    case graph::NodeKind::kEntity:
      return "entity";
    case graph::NodeKind::kText:
      return "text";
    case graph::NodeKind::kClass:
      return "class";
  }
  return "entity";
}

Result<graph::NodeKind> ParseKind(const std::string& name) {
  if (name == "entity") return graph::NodeKind::kEntity;
  if (name == "text") return graph::NodeKind::kText;
  if (name == "class") return graph::NodeKind::kClass;
  return Status::InvalidArgument("unknown node kind: " + name);
}

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void AppendU32Le(std::string* buf, uint32_t v) {
  buf->push_back(static_cast<char>(v & 0xff));
  buf->push_back(static_cast<char>((v >> 8) & 0xff));
  buf->push_back(static_cast<char>((v >> 16) & 0xff));
  buf->push_back(static_cast<char>((v >> 24) & 0xff));
}

}  // namespace

Mutation Mutation::Upsert(std::string subject, std::string predicate,
                          std::string object, graph::NodeKind subject_kind,
                          graph::NodeKind object_kind,
                          graph::Provenance prov) {
  Mutation m;
  m.op = MutationOp::kUpsert;
  m.subject = std::move(subject);
  m.subject_kind = subject_kind;
  m.predicate = std::move(predicate);
  m.object = std::move(object);
  m.object_kind = object_kind;
  m.prov = std::move(prov);
  return m;
}

Mutation Mutation::Retract(std::string subject, std::string predicate,
                           std::string object, graph::NodeKind subject_kind,
                           graph::NodeKind object_kind) {
  Mutation m;
  m.op = MutationOp::kRetract;
  m.subject = std::move(subject);
  m.subject_kind = subject_kind;
  m.predicate = std::move(predicate);
  m.object = std::move(object);
  m.object_kind = object_kind;
  m.prov = graph::Provenance{"", 0.0, 0};
  return m;
}

std::string EncodeMutation(const Mutation& m) {
  std::ostringstream out;
  out << (m.op == MutationOp::kUpsert ? 'U' : 'R') << '\t'
      << graph::EscapeTsvField(m.subject) << '\t'
      << KindName(m.subject_kind) << '\t'
      << graph::EscapeTsvField(m.predicate) << '\t'
      << graph::EscapeTsvField(m.object) << '\t' << KindName(m.object_kind)
      << '\t' << graph::EscapeTsvField(m.prov.source) << '\t'
      // %.17g round-trips any double exactly, so a replayed provenance is
      // bit-identical to the logged one.
      << StrFormat("%.17g", m.prov.confidence) << '\t' << m.prov.timestamp;
  return out.str();
}

Result<Mutation> DecodeMutation(std::string_view payload) {
  const std::vector<std::string> fields = Split(payload, '\t');
  if (fields.size() != 9) {
    return Status::InvalidArgument(
        "mutation record needs 9 fields, got " +
        std::to_string(fields.size()));
  }
  Mutation m;
  if (fields[0] == "U") {
    m.op = MutationOp::kUpsert;
  } else if (fields[0] == "R") {
    m.op = MutationOp::kRetract;
  } else {
    return Status::InvalidArgument("unknown mutation op: " + fields[0]);
  }
  m.subject = graph::UnescapeTsvField(fields[1]);
  KG_ASSIGN_OR_RETURN(m.subject_kind, ParseKind(fields[2]));
  m.predicate = graph::UnescapeTsvField(fields[3]);
  m.object = graph::UnescapeTsvField(fields[4]);
  KG_ASSIGN_OR_RETURN(m.object_kind, ParseKind(fields[5]));
  m.prov.source = graph::UnescapeTsvField(fields[6]);
  try {
    m.prov.confidence = std::stod(fields[7]);
    m.prov.timestamp = std::stoll(fields[8]);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad confidence/timestamp");
  }
  return m;
}

void AppendWalFrame(std::string* buf, std::string_view payload) {
  AppendU32Le(buf, static_cast<uint32_t>(payload.size()));
  AppendU32Le(buf, Checksum32(payload));
  buf->append(payload);
}

WalReplay ReplayWalBuffer(std::string_view data) {
  WalReplay replay;
  size_t offset = 0;
  while (offset + kFrameHeaderBytes <= data.size()) {
    const uint32_t length = ReadU32Le(data.data() + offset);
    const uint32_t checksum = ReadU32Le(data.data() + offset + 4);
    if (length > kMaxPayloadBytes) break;
    if (offset + kFrameHeaderBytes + length > data.size()) break;
    const std::string_view payload =
        data.substr(offset + kFrameHeaderBytes, length);
    if (Checksum32(payload) != checksum) break;
    auto decoded = DecodeMutation(payload);
    if (!decoded.ok()) break;
    replay.mutations.push_back(std::move(*decoded));
    replay.frame_offsets.push_back(offset);
    offset += kFrameHeaderBytes + length;
  }
  replay.valid_bytes = offset;
  replay.dropped_bytes = data.size() - offset;
  replay.clean = replay.dropped_bytes == 0;
  return replay;
}

Result<Wal> Wal::Open(const std::string& path, WalReplay* replay) {
  WalReplay scanned;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    KG_ASSIGN_OR_RETURN(scanned, Replay(path));
    if (!scanned.clean) {
      // Drop the torn tail so future appends extend the valid prefix.
      std::filesystem::resize_file(path, scanned.valid_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn WAL tail: " + path);
      }
    }
  }
  Wal wal;
  wal.path_ = path;
  wal.size_bytes_ = scanned.valid_bytes;
  wal.out_.open(path, std::ios::binary | std::ios::app);
  if (!wal.out_) return Status::IoError("cannot open WAL: " + path);
  if (replay != nullptr) *replay = std::move(scanned);
  return wal;
}

Result<WalReplay> Wal::Replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open WAL: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  return ReplayWalBuffer(data);
}

Status Wal::Append(const Mutation& m) {
  return AppendBatch(std::span<const Mutation>(&m, 1));
}

Status Wal::AppendBatch(std::span<const Mutation> mutations) {
  std::string buf;
  for (const Mutation& m : mutations) {
    AppendWalFrame(&buf, EncodeMutation(m));
  }
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out_.flush();
  if (!out_) return Status::IoError("WAL append failed: " + path_);
  size_bytes_ += buf.size();
  return Status::OK();
}

}  // namespace kg::store
