#ifndef KGRAPH_STORE_MEM_DELTA_H_
#define KGRAPH_STORE_MEM_DELTA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <tuple>

#include "graph/knowledge_graph.h"
#include "store/wal.h"

namespace kg::store {

/// A triple addressed by names, the mutation/overlay coordinate system
/// (snapshot ids are epoch-local; names are forever).
struct TripleName {
  graph::NodeKind subject_kind = graph::NodeKind::kEntity;
  std::string subject;
  std::string predicate;
  graph::NodeKind object_kind = graph::NodeKind::kEntity;
  std::string object;

  static TripleName Of(const Mutation& m) {
    return TripleName{m.subject_kind, m.subject, m.predicate,
                      m.object_kind, m.object};
  }

  friend bool operator==(const TripleName&, const TripleName&) = default;
  friend auto operator<=>(const TripleName& a, const TripleName& b) {
    return std::tie(a.subject_kind, a.subject, a.predicate, a.object_kind,
                    a.object) <=> std::tie(b.subject_kind, b.subject,
                                           b.predicate, b.object_kind,
                                           b.object);
  }
};

/// The in-memory overlay of mutations not yet folded into the base
/// snapshot. Each touched triple carries its *final* state (last op in
/// log order wins) plus the sequence number of that op, so:
///   - query-time merges shadow the base with one ordered-map probe
///     (kRetracted hides a base triple, kUpserted surfaces a new one);
///   - compaction can fold everything through sequence S into a new base
///     and keep only entries whose last op is newer — an entry's state
///     shadows any base correctly regardless of where the fold line
///     falls.
///
/// Ordered (std::map over TripleName, subject-major) so iteration order —
/// and everything derived from it, e.g. merged query answers — is a pure
/// function of content. A secondary object-major index serves in-edge
/// merges. Not internally synchronized: the store publishes deltas as
/// immutable copy-on-write snapshots behind an epoch swap.
class MemDelta {
 public:
  enum class State : uint8_t {
    kUntouched = 0,  ///< The overlay says nothing; the base decides.
    kUpserted = 1,   ///< Present regardless of the base.
    kRetracted = 2,  ///< Absent regardless of the base.
  };

  struct Entry {
    State state = State::kUntouched;
    uint64_t seq = 0;  ///< Log sequence of the last op on this triple.
  };

  /// Records `m` as operation `seq`, overwriting any previous state of
  /// the same triple (last op wins).
  void Apply(const Mutation& m, uint64_t seq);

  /// The overlay's verdict on one triple.
  State Lookup(const TripleName& t) const;

  /// True when the overlay touches any triple with this subject
  /// (cheap pre-check so base-edge merges skip per-edge probes for
  /// untouched subjects).
  bool TouchesSubject(graph::NodeKind kind, std::string_view name) const;
  bool TouchesObject(graph::NodeKind kind, std::string_view name) const;

  /// True when the overlay touches any triple carrying this predicate —
  /// the pre-check that lets predicate-scoped scans (attribute-by-type)
  /// skip the merge entirely and read the base snapshot directly.
  bool TouchesPredicate(std::string_view name) const;

  /// Visits entries with the given subject in (predicate, object_kind,
  /// object) order.
  void ForEachBySubject(
      graph::NodeKind kind, std::string_view name,
      const std::function<void(const TripleName&, const Entry&)>& fn) const;

  /// Visits entries with the given object in (predicate, subject_kind,
  /// subject) order.
  void ForEachByObject(
      graph::NodeKind kind, std::string_view name,
      const std::function<void(const TripleName&, const Entry&)>& fn) const;

  /// Visits every entry in subject-major order.
  void ForEach(
      const std::function<void(const TripleName&, const Entry&)>& fn) const;

  /// Drops entries whose last op is <= `seq` — the fold line of a
  /// completed compaction (those states are now the base's).
  void TrimThrough(uint64_t seq);

  size_t size() const { return by_subject_.size(); }
  bool empty() const { return by_subject_.empty(); }

  /// Highest sequence applied (0 when empty since construction).
  uint64_t last_seq() const { return last_seq_; }

 private:
  /// Object-major key: (object_kind, object, predicate, subject_kind,
  /// subject).
  using ObjectKey = std::tuple<graph::NodeKind, std::string, std::string,
                               graph::NodeKind, std::string>;

  // Entries are duplicated (by value) across both maps so the default
  // copy — the store's copy-on-write publish — stays trivially correct.
  std::map<TripleName, Entry> by_subject_;
  std::map<ObjectKey, Entry> by_object_;
  /// Live-entry count per predicate, kept in lockstep with by_subject_.
  std::map<std::string, size_t, std::less<>> predicate_counts_;
  uint64_t last_seq_ = 0;
};

}  // namespace kg::store

#endif  // KGRAPH_STORE_MEM_DELTA_H_
