#include "store/mem_delta.h"

namespace kg::store {

namespace {

MemDelta::State StateOf(const Mutation& m) {
  return m.op == MutationOp::kUpsert ? MemDelta::State::kUpserted
                                     : MemDelta::State::kRetracted;
}

}  // namespace

void MemDelta::Apply(const Mutation& m, uint64_t seq) {
  const TripleName name = TripleName::Of(m);
  const Entry entry{StateOf(m), seq};
  const auto [it, inserted] = by_subject_.insert_or_assign(name, entry);
  if (inserted) ++predicate_counts_[name.predicate];
  by_object_[ObjectKey{name.object_kind, name.object, name.predicate,
                       name.subject_kind, name.subject}] = entry;
  if (seq > last_seq_) last_seq_ = seq;
}

MemDelta::State MemDelta::Lookup(const TripleName& t) const {
  const auto it = by_subject_.find(t);
  return it == by_subject_.end() ? State::kUntouched : it->second.state;
}

bool MemDelta::TouchesSubject(graph::NodeKind kind,
                              std::string_view name) const {
  const auto it = by_subject_.lower_bound(
      TripleName{kind, std::string(name), "", graph::NodeKind::kEntity, ""});
  return it != by_subject_.end() && it->first.subject_kind == kind &&
         it->first.subject == name;
}

bool MemDelta::TouchesPredicate(std::string_view name) const {
  const auto it = predicate_counts_.find(name);
  return it != predicate_counts_.end() && it->second > 0;
}

bool MemDelta::TouchesObject(graph::NodeKind kind,
                             std::string_view name) const {
  const auto it = by_object_.lower_bound(ObjectKey{
      kind, std::string(name), "", graph::NodeKind::kEntity, ""});
  return it != by_object_.end() && std::get<0>(it->first) == kind &&
         std::get<1>(it->first) == name;
}

void MemDelta::ForEachBySubject(
    graph::NodeKind kind, std::string_view name,
    const std::function<void(const TripleName&, const Entry&)>& fn) const {
  for (auto it = by_subject_.lower_bound(TripleName{
           kind, std::string(name), "", graph::NodeKind::kEntity, ""});
       it != by_subject_.end() && it->first.subject_kind == kind &&
       it->first.subject == name;
       ++it) {
    fn(it->first, it->second);
  }
}

void MemDelta::ForEachByObject(
    graph::NodeKind kind, std::string_view name,
    const std::function<void(const TripleName&, const Entry&)>& fn) const {
  for (auto it = by_object_.lower_bound(ObjectKey{
           kind, std::string(name), "", graph::NodeKind::kEntity, ""});
       it != by_object_.end() && std::get<0>(it->first) == kind &&
       std::get<1>(it->first) == name;
       ++it) {
    const auto& [o_kind, object, predicate, s_kind, subject] = it->first;
    fn(TripleName{s_kind, subject, predicate, o_kind, object}, it->second);
  }
}

void MemDelta::ForEach(
    const std::function<void(const TripleName&, const Entry&)>& fn) const {
  for (const auto& [name, entry] : by_subject_) fn(name, entry);
}

void MemDelta::TrimThrough(uint64_t seq) {
  for (auto it = by_subject_.begin(); it != by_subject_.end();) {
    if (it->second.seq <= seq) {
      const auto count = predicate_counts_.find(it->first.predicate);
      if (count != predicate_counts_.end() && --count->second == 0) {
        predicate_counts_.erase(count);
      }
      it = by_subject_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = by_object_.begin(); it != by_object_.end();) {
    it = it->second.seq <= seq ? by_object_.erase(it) : std::next(it);
  }
}

}  // namespace kg::store
