#include "store/versioned_store.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "obs/introspect.h"

namespace kg::store {

namespace {

/// Name-space node address used by the merged read path: snapshot ids are
/// epoch-local, so the overlay merge works in (kind, name) coordinates and
/// renders at the end.
using NodeRef = std::pair<graph::NodeKind, std::string>;

std::string Render(const NodeRef& n) {
  return serve::RenderNodeName(n.second, n.first);
}

NodeRef RefOf(const serve::KgSnapshot& base, serve::NodeId id) {
  return NodeRef{base.NodeKindOf(id), std::string(base.NodeName(id))};
}

/// One epoch's worth of read state: a base snapshot plus the overlay that
/// shadows it. Every method mirrors a QueryEngine access pattern with the
/// delta folded in, and is checked (store_property_test) to answer exactly
/// like QueryEngine over a from-scratch rebuild at the same version.
struct MergedView {
  const serve::KgSnapshot& base;
  const MemDelta& delta;
  /// Sorted base ids of every node the overlay names (as subject or
  /// object). Lets per-node hot loops (top-k adjacency) test "does the
  /// overlay touch this node" with an integer binary search instead of
  /// two string-keyed map probes; built once per view in O(|delta|).
  std::vector<uint32_t> touched_ids;

  MergedView(const serve::KgSnapshot& b, const MemDelta& d)
      : base(b), delta(d) {
    delta.ForEach([&](const TripleName& t, const MemDelta::Entry&) {
      if (const auto s = base.FindNode(t.subject, t.subject_kind); s.ok()) {
        touched_ids.push_back(static_cast<uint32_t>(*s));
      }
      if (const auto o = base.FindNode(t.object, t.object_kind); o.ok()) {
        touched_ids.push_back(static_cast<uint32_t>(*o));
      }
    });
    std::sort(touched_ids.begin(), touched_ids.end());
    touched_ids.erase(std::unique(touched_ids.begin(), touched_ids.end()),
                      touched_ids.end());
  }

  bool TouchedBaseNode(uint32_t id) const {
    return std::binary_search(touched_ids.begin(), touched_ids.end(), id);
  }

  bool BaseHasTriple(const TripleName& t) const {
    const auto s = base.FindNode(t.subject, t.subject_kind);
    const auto p = base.FindPredicate(t.predicate);
    const auto o = base.FindNode(t.object, t.object_kind);
    return s.ok() && p.ok() && o.ok() && base.HasTriple(*s, *p, *o);
  }

  bool Retracted(const TripleName& t) const {
    return delta.Lookup(t) == MemDelta::State::kRetracted;
  }

  /// Objects o with (s, pred, o) live in the merged view: base objects
  /// not shadowed by a retract, plus overlay upserts the base lacks
  /// (upserts the base already has would double-count).
  std::vector<NodeRef> Objects(const NodeRef& s,
                               const std::string& pred) const {
    std::vector<NodeRef> out;
    const bool touched = delta.TouchesSubject(s.first, s.second);
    const auto s_id = base.FindNode(s.second, s.first);
    const auto p_id = base.FindPredicate(pred);
    if (s_id.ok() && p_id.ok()) {
      for (const serve::NodeId o : base.Objects(*s_id, *p_id)) {
        if (touched &&
            Retracted(TripleName{s.first, s.second, pred, base.NodeKindOf(o),
                                 std::string(base.NodeName(o))})) {
          continue;
        }
        out.push_back(RefOf(base, o));
      }
    }
    if (touched) {
      delta.ForEachBySubject(
          s.first, s.second,
          [&](const TripleName& t, const MemDelta::Entry& e) {
            if (e.state != MemDelta::State::kUpserted) return;
            if (t.predicate != pred) return;
            if (BaseHasTriple(t)) return;
            out.emplace_back(t.object_kind, t.object);
          });
    }
    return out;
  }

  /// Appends "out\t<pred>\t<object>" rows for every live out-edge of `c`.
  void AppendOutRows(const NodeRef& c, serve::QueryResult* rows) const {
    const bool touched = delta.TouchesSubject(c.first, c.second);
    const auto c_id = base.FindNode(c.second, c.first);
    if (c_id.ok()) {
      for (const serve::KgSnapshot::Edge& e : base.OutEdges(*c_id)) {
        const std::string pred(base.PredicateName(e.first));
        if (touched &&
            Retracted(TripleName{c.first, c.second, pred,
                                 base.NodeKindOf(e.second),
                                 std::string(base.NodeName(e.second))})) {
          continue;
        }
        rows->push_back("out\t" + pred + '\t' + Render(RefOf(base, e.second)));
      }
    }
    if (touched) {
      delta.ForEachBySubject(
          c.first, c.second,
          [&](const TripleName& t, const MemDelta::Entry& e) {
            if (e.state != MemDelta::State::kUpserted) return;
            if (BaseHasTriple(t)) return;
            rows->push_back("out\t" + t.predicate + '\t' +
                            Render(NodeRef{t.object_kind, t.object}));
          });
    }
  }

  /// Appends "in\t<pred>\t<subject>" rows for every live in-edge of `c`.
  void AppendInRows(const NodeRef& c, serve::QueryResult* rows) const {
    const bool touched = delta.TouchesObject(c.first, c.second);
    const auto c_id = base.FindNode(c.second, c.first);
    if (c_id.ok()) {
      for (const serve::KgSnapshot::Edge& e : base.InEdges(*c_id)) {
        const std::string pred(base.PredicateName(e.first));
        if (touched &&
            Retracted(TripleName{base.NodeKindOf(e.second),
                                 std::string(base.NodeName(e.second)), pred,
                                 c.first, c.second})) {
          continue;
        }
        rows->push_back("in\t" + pred + '\t' + Render(RefOf(base, e.second)));
      }
    }
    if (touched) {
      delta.ForEachByObject(
          c.first, c.second,
          [&](const TripleName& t, const MemDelta::Entry& e) {
            if (e.state != MemDelta::State::kUpserted) return;
            if (BaseHasTriple(t)) return;
            rows->push_back("in\t" + t.predicate + '\t' +
                            Render(NodeRef{t.subject_kind, t.subject}));
          });
    }
  }

  /// Members of class `type_name` under `type_pred` (distinct subjects).
  std::vector<NodeRef> ClassMembers(const std::string& type_name,
                                    const std::string& type_pred) const {
    std::vector<NodeRef> members;
    const bool touched =
        delta.TouchesObject(graph::NodeKind::kClass, type_name);
    const auto cls = base.FindNode(type_name, graph::NodeKind::kClass);
    const auto tp = base.FindPredicate(type_pred);
    if (cls.ok() && tp.ok()) {
      for (serve::NodeId s : base.Subjects(*tp, *cls)) {
        if (touched &&
            Retracted(TripleName{base.NodeKindOf(s),
                                 std::string(base.NodeName(s)), type_pred,
                                 graph::NodeKind::kClass, type_name})) {
          continue;
        }
        members.push_back(RefOf(base, s));
      }
    }
    if (touched) {
      delta.ForEachByObject(
          graph::NodeKind::kClass, type_name,
          [&](const TripleName& t, const MemDelta::Entry& e) {
            if (e.state != MemDelta::State::kUpserted) return;
            if (t.predicate != type_pred) return;
            if (BaseHasTriple(t)) return;
            members.emplace_back(t.subject_kind, t.subject);
          });
    }
    return members;
  }

  /// Sorted-unique nodes adjacent to `n` over live merged edges, either
  /// direction — the merged twin of the engine's AdjacentNodes (multiple
  /// predicates between a pair collapse to one adjacency).
  std::vector<NodeRef> AdjacentNodes(const NodeRef& n) const {
    std::vector<NodeRef> out;
    const auto n_id = base.FindNode(n.second, n.first);
    const bool touches_s = delta.TouchesSubject(n.first, n.second);
    const bool touches_o = delta.TouchesObject(n.first, n.second);
    if (n_id.ok()) {
      for (const serve::KgSnapshot::Edge& e : base.OutEdges(*n_id)) {
        if (touches_s &&
            Retracted(TripleName{n.first, n.second,
                                 std::string(base.PredicateName(e.first)),
                                 base.NodeKindOf(e.second),
                                 std::string(base.NodeName(e.second))})) {
          continue;
        }
        out.push_back(RefOf(base, e.second));
      }
      for (const serve::KgSnapshot::Edge& e : base.InEdges(*n_id)) {
        if (touches_o &&
            Retracted(TripleName{base.NodeKindOf(e.second),
                                 std::string(base.NodeName(e.second)),
                                 std::string(base.PredicateName(e.first)),
                                 n.first, n.second})) {
          continue;
        }
        out.push_back(RefOf(base, e.second));
      }
    }
    if (touches_s) {
      delta.ForEachBySubject(
          n.first, n.second,
          [&](const TripleName& t, const MemDelta::Entry& e) {
            if (e.state != MemDelta::State::kUpserted) return;
            if (BaseHasTriple(t)) return;
            out.emplace_back(t.object_kind, t.object);
          });
    }
    if (touches_o) {
      delta.ForEachByObject(
          n.first, n.second,
          [&](const TripleName& t, const MemDelta::Entry& e) {
            if (e.state != MemDelta::State::kUpserted) return;
            if (BaseHasTriple(t)) return;
            out.emplace_back(t.subject_kind, t.subject);
          });
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

serve::QueryResult MergedPointLookup(const MergedView& view,
                                     const serve::Query& q) {
  serve::QueryResult rows;
  for (const NodeRef& o :
       view.Objects(NodeRef{q.node_kind, q.node}, q.predicate)) {
    rows.push_back(Render(o));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

serve::QueryResult MergedNeighborhood(const MergedView& view,
                                      const serve::Query& q) {
  serve::QueryResult rows;
  const NodeRef c{q.node_kind, q.node};
  view.AppendOutRows(c, &rows);
  view.AppendInRows(c, &rows);
  std::sort(rows.begin(), rows.end());
  return rows;
}

serve::QueryResult MergedAttributeByType(const MergedView& view,
                                         const serve::Query& q) {
  serve::QueryResult rows;
  const serve::KgSnapshot& base = view.base;
  // Base members iterate by id; only members the overlay names (an
  // integer check against the precomputed touched set) pay string-keyed
  // overlay probes. The overlay is small (bounded by compaction), so
  // nearly every member takes the raw CSR path, same as the engine.
  const auto cls = base.FindNode(q.type_name, graph::NodeKind::kClass);
  const auto tp = base.FindPredicate(q.type_predicate);
  const auto p_id = base.FindPredicate(q.predicate);
  const bool class_touched =
      view.delta.TouchesObject(graph::NodeKind::kClass, q.type_name);
  if (cls.ok() && tp.ok()) {
    for (serve::NodeId s : base.Subjects(*tp, *cls)) {
      const bool touched = view.TouchedBaseNode(static_cast<uint32_t>(s));
      if (class_touched && touched &&
          view.Retracted(TripleName{base.NodeKindOf(s),
                                    std::string(base.NodeName(s)),
                                    q.type_predicate,
                                    graph::NodeKind::kClass, q.type_name})) {
        continue;
      }
      const std::string subject =
          serve::RenderNodeName(base.NodeName(s), base.NodeKindOf(s));
      if (touched) {
        for (const NodeRef& o :
             view.Objects(RefOf(base, s), q.predicate)) {
          rows.push_back(subject + '\t' + Render(o));
        }
      } else if (p_id.ok()) {
        for (const serve::NodeId o : base.Objects(s, *p_id)) {
          rows.push_back(subject + '\t' +
                         serve::RenderNodeName(base.NodeName(o),
                                               base.NodeKindOf(o)));
        }
      }
    }
  }
  // Members the overlay adds to the class (absent from the base).
  if (class_touched) {
    view.delta.ForEachByObject(
        graph::NodeKind::kClass, q.type_name,
        [&](const TripleName& t, const MemDelta::Entry& e) {
          if (e.state != MemDelta::State::kUpserted) return;
          if (t.predicate != q.type_predicate) return;
          if (view.BaseHasTriple(t)) return;
          const NodeRef member{t.subject_kind, t.subject};
          const std::string subject = Render(member);
          for (const NodeRef& o : view.Objects(member, q.predicate)) {
            rows.push_back(subject + '\t' + Render(o));
          }
        });
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Merged top-k in id space. Nodes present in the base use their snapshot
/// ids; delta-only nodes get local ids appended past base.num_nodes().
/// Adjacency for a node the overlay doesn't touch is a raw CSR scan
/// (integer ops, no string work — the hot path, since the overlay is
/// small); touched nodes fall back to the name-space merge and map back.
/// Strings are materialized only for ranking tie-breaks and the final k
/// rendered rows, so a miss costs about what the immutable engine pays.
serve::QueryResult MergedTopKRelated(const MergedView& view,
                                     const serve::Query& q) {
  if (q.k == 0) return {};
  const serve::KgSnapshot& base = view.base;
  const uint32_t base_n = static_cast<uint32_t>(base.num_nodes());
  std::map<NodeRef, uint32_t> extra_ids;
  std::vector<const NodeRef*> extra_refs;
  const auto local_id = [&](const NodeRef& n) -> uint32_t {
    const auto id = base.FindNode(n.second, n.first);
    if (id.ok()) return static_cast<uint32_t>(*id);
    const auto [it, inserted] =
        extra_ids.emplace(n, base_n + static_cast<uint32_t>(extra_refs.size()));
    if (inserted) extra_refs.push_back(&it->first);
    return it->second;
  };
  const auto adjacency = [&](uint32_t id) {
    std::vector<uint32_t> out;
    if (id < base_n) {
      if (!view.TouchedBaseNode(id)) {
        out.reserve(base.OutDegree(id) + base.InDegree(id));
        for (const serve::KgSnapshot::Edge& e : base.OutEdges(id)) {
          out.push_back(e.second);
        }
        for (const serve::KgSnapshot::Edge& e : base.InEdges(id)) {
          out.push_back(e.second);
        }
      } else {
        // Touched node, still id space: a retracted base edge names both
        // endpoints in the overlay, so only edges into *other touched
        // nodes* need the string-keyed retract probe; everything else is
        // a raw CSR read. Overlay additions come from the per-node delta
        // scans (a handful of entries).
        const graph::NodeKind kind = base.NodeKindOf(id);
        const std::string name(base.NodeName(id));
        for (const serve::KgSnapshot::Edge& e : base.OutEdges(id)) {
          if (view.TouchedBaseNode(e.second) &&
              view.Retracted(TripleName{
                  kind, name, std::string(base.PredicateName(e.first)),
                  base.NodeKindOf(e.second),
                  std::string(base.NodeName(e.second))})) {
            continue;
          }
          out.push_back(e.second);
        }
        for (const serve::KgSnapshot::Edge& e : base.InEdges(id)) {
          if (view.TouchedBaseNode(e.second) &&
              view.Retracted(TripleName{
                  base.NodeKindOf(e.second),
                  std::string(base.NodeName(e.second)),
                  std::string(base.PredicateName(e.first)), kind, name})) {
            continue;
          }
          out.push_back(e.second);
        }
        view.delta.ForEachBySubject(
            kind, name, [&](const TripleName& t, const MemDelta::Entry& e) {
              if (e.state != MemDelta::State::kUpserted) return;
              if (view.BaseHasTriple(t)) return;
              out.push_back(local_id(NodeRef{t.object_kind, t.object}));
            });
        view.delta.ForEachByObject(
            kind, name, [&](const TripleName& t, const MemDelta::Entry& e) {
              if (e.state != MemDelta::State::kUpserted) return;
              if (view.BaseHasTriple(t)) return;
              out.push_back(local_id(NodeRef{t.subject_kind, t.subject}));
            });
      }
    } else {
      for (const NodeRef& n : view.AdjacentNodes(*extra_refs[id - base_n])) {
        out.push_back(local_id(n));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  const auto kind_of = [&](uint32_t id) {
    return id < base_n ? base.NodeKindOf(id) : extra_refs[id - base_n]->first;
  };
  const auto name_of = [&](uint32_t id) -> std::string_view {
    if (id < base_n) return base.NodeName(id);
    return extra_refs[id - base_n]->second;
  };

  const uint32_t center = local_id(NodeRef{q.node_kind, q.node});
  std::unordered_map<uint32_t, size_t> score;
  for (const uint32_t n : adjacency(center)) {
    if (n == center) continue;
    for (const uint32_t m : adjacency(n)) {
      if (m == center) continue;
      if (kind_of(m) != graph::NodeKind::kEntity) continue;
      ++score[m];
    }
  }
  std::vector<std::pair<uint32_t, size_t>> ranked(score.begin(), score.end());
  // Count desc, then raw entity name asc — scored nodes are all kEntity,
  // whose names are unique, so the name is a complete tie-break.
  std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return name_of(a.first) < name_of(b.first);
  });
  if (ranked.size() > q.k) ranked.resize(q.k);
  serve::QueryResult rows;
  rows.reserve(ranked.size());
  for (const auto& [m, count] : ranked) {
    rows.push_back(
        serve::RenderNodeName(name_of(m), graph::NodeKind::kEntity) + '\t' +
        std::to_string(count));
  }
  return rows;
}

}  // namespace

Result<std::unique_ptr<VersionedKgStore>> VersionedKgStore::Open(
    graph::KnowledgeGraph base, StoreOptions options) {
  std::unique_ptr<VersionedKgStore> store(new VersionedKgStore());
  store->options_ = options;
  store->kg_ = std::move(base);
  if (obs::MetricsRegistry* reg = options.registry) {
    store->metrics_.applied_mutations =
        &reg->GetCounter("store.applied_mutations");
    store->metrics_.wal_appended =
        &reg->GetCounter("store.wal.appended_records");
    store->metrics_.compactions = &reg->GetCounter("store.compactions");
    store->metrics_.folded = &reg->GetCounter("store.compaction.folded");
    store->metrics_.epoch_version = &reg->GetGauge("store.epoch.version");
    store->metrics_.delta_size = &reg->GetGauge("store.delta.size");
    store->metrics_.wal_replayed =
        &reg->GetGauge("store.wal.replayed_records");
    store->metrics_.compaction_last_us =
        &reg->GetGauge("store.compaction.last_us");
    store->metrics_.stage_wal_append =
        &obs::StageHistogram(*reg, obs::Stage::kWalAppend);
    store->metrics_.stage_overlay_merge =
        &obs::StageHistogram(*reg, obs::Stage::kOverlayMerge);
    if (options.time_stages) {
      for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
        store->metrics_.stage_cache_probe[k] = &obs::StageHistogram(
            *reg, obs::Stage::kCacheProbe,
            serve::QueryKindName(static_cast<serve::QueryKind>(k)));
      }
    }
  }
  if (!options.wal_path.empty()) {
    WalReplay replay;
    KG_ASSIGN_OR_RETURN(Wal wal, Wal::Open(options.wal_path, &replay));
    store->wal_.emplace(std::move(wal));
    // Recovered mutations consume sequence numbers exactly as the live
    // appends that wrote them did, so a reopened store is bit-identical
    // to one that never crashed.
    for (const Mutation& m : replay.mutations) {
      store->ApplyToGraph(m);
      ++store->next_seq_;
    }
    if (store->metrics_.wal_replayed != nullptr) {
      store->metrics_.wal_replayed->Set(
          static_cast<int64_t>(replay.mutations.size()));
    }
  }
  if (options.cache_capacity > 0) {
    store->cache_ = std::make_unique<serve::ShardedLruCache>(
        options.cache_capacity, options.cache_shards);
  }
  auto epoch = std::make_shared<StoreEpoch>();
  epoch->version = 0;
  epoch->base = std::make_shared<const serve::KgSnapshot>(
      serve::KgSnapshot::Compile(store->kg_));
  epoch->delta = std::make_shared<const MemDelta>();
  store->current_ = std::move(epoch);
  return store;
}

void VersionedKgStore::ApplyToGraph(const Mutation& m) {
  if (m.op == MutationOp::kUpsert) {
    kg_.AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                  m.object_kind, m.prov);
    return;
  }
  const auto s = kg_.FindNode(m.subject, m.subject_kind);
  const auto p = kg_.FindPredicate(m.predicate);
  const auto o = kg_.FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;  // retracting the absent: no-op
  const graph::TripleId id = kg_.FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg_.RemoveTriple(id);
}

std::vector<std::string> VersionedKgStore::AffectedCacheKeys(
    const Mutation& m) {
  // A mutation (s, p, o) can only change the answers of the point lookup
  // (s, p) and the neighborhoods of s and o — the full invalidation set
  // for the erase-based query classes.
  return {
      serve::Query::PointLookup(m.subject, m.predicate, m.subject_kind)
          .CacheKey(),
      serve::Query::Neighborhood(m.subject, m.subject_kind).CacheKey(),
      serve::Query::Neighborhood(m.object, m.object_kind).CacheKey(),
  };
}

void VersionedKgStore::PublishEpoch(std::shared_ptr<const StoreEpoch> epoch,
                                    const std::function<void()>& invalidate) {
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  current_ = std::move(epoch);
  // Cache maintenance happens inside the exclusive section so no reader
  // can fill a stale answer between the swap and the invalidation.
  if (invalidate) invalidate();
}

Status VersionedKgStore::Apply(const Mutation& mutation) {
  return ApplyBatch(std::span<const Mutation>(&mutation, 1));
}

Status VersionedKgStore::ApplyBatch(std::span<const Mutation> mutations) {
  if (mutations.empty()) return Status::OK();
  std::lock_guard<std::mutex> writer(writer_mu_);
  const auto t_wal = std::chrono::steady_clock::now();
  if (wal_) {
    // Log before apply: if the append fails, no state changed and the
    // caller may retry; if we crash after it, replay redoes the batch.
    KG_RETURN_IF_ERROR(wal_->AppendBatch(mutations));
  }
  const auto t_merge = std::chrono::steady_clock::now();
  if (metrics_.stage_wal_append != nullptr && wal_) {
    metrics_.stage_wal_append->Observe(
        std::chrono::duration<double, std::micro>(t_merge - t_wal).count());
  }
  // Holding writer_mu_ makes the unlocked read of current_ safe: only
  // writers store to it, and they all serialize here.
  auto next_delta = std::make_shared<MemDelta>(*current_->delta);
  std::vector<std::string> affected;
  for (const Mutation& m : mutations) {
    ApplyToGraph(m);
    next_delta->Apply(m, next_seq_++);
    if (cache_) {
      for (std::string& key : AffectedCacheKeys(m)) {
        affected.push_back(std::move(key));
      }
    }
  }
  auto epoch = std::make_shared<StoreEpoch>();
  epoch->version = current_->version + 1;
  epoch->base = current_->base;
  epoch->delta = std::move(next_delta);
  const uint64_t published_version = epoch->version;
  const size_t published_delta = epoch->delta->size();
  PublishEpoch(std::move(epoch), [&] {
    for (const std::string& key : affected) cache_->Erase(key);
  });
  if (cache_) BumpGenerations(mutations);
  if (metrics_.stage_overlay_merge != nullptr) {
    metrics_.stage_overlay_merge->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t_merge)
            .count());
  }
  if (metrics_.applied_mutations != nullptr) {
    metrics_.applied_mutations->Inc(mutations.size());
    if (wal_) metrics_.wal_appended->Inc(mutations.size());
    metrics_.epoch_version->Set(static_cast<int64_t>(published_version));
    metrics_.delta_size->Set(static_cast<int64_t>(published_delta));
  }
  return Status::OK();
}

std::string VersionedKgStore::GenTag(const serve::Query& q) const {
  const auto gen = [](const std::unordered_map<std::string, uint64_t>& map,
                      const std::string& key) -> uint64_t {
    const auto it = map.find(key);
    return it == map.end() ? 0 : it->second;
  };
  std::shared_lock<std::shared_mutex> lock(gen_mu_);
  switch (q.kind) {
    case serve::QueryKind::kAttributeByType:
      // The answer is members(type_predicate) x objects(predicate): only
      // triples carrying one of those two predicates can change it.
      return "#g" + std::to_string(gen(predicate_gen_, q.predicate)) + '.' +
             std::to_string(gen(predicate_gen_, q.type_predicate));
    case serve::QueryKind::kTopKRelated:
      return "#g" + std::to_string(gen(
                        node_gen_, serve::RenderNodeName(q.node, q.node_kind)));
    default:
      return {};
  }
}

void VersionedKgStore::BumpGenerations(std::span<const Mutation> mutations) {
  // Top-k(x) depends on edges incident to x (first hop) and to x's
  // neighbors (second hop). A mutation of edge (s, o) therefore affects
  // {s, o}, plus N(s) — but only when o is an entity (for x in N(s) the
  // edge contributes the candidate o via the path x–s–o, and candidates
  // are entity-filtered) — and symmetrically N(o) only when s is an
  // entity. Adjacency is read from the just-published epoch; within a
  // batch that post-state union still covers every intermediate state,
  // because a neighbor another batch entry disconnected appears in that
  // entry's own {s, o} set.
  const MergedView view{*current_->base, *current_->delta};
  std::set<std::string> preds;
  std::set<std::string> nodes;
  for (const Mutation& m : mutations) {
    preds.insert(m.predicate);
    const NodeRef s{m.subject_kind, m.subject};
    const NodeRef o{m.object_kind, m.object};
    nodes.insert(Render(s));
    nodes.insert(Render(o));
    if (o.first == graph::NodeKind::kEntity) {
      for (const NodeRef& n : view.AdjacentNodes(s)) nodes.insert(Render(n));
    }
    if (s.first == graph::NodeKind::kEntity) {
      for (const NodeRef& n : view.AdjacentNodes(o)) nodes.insert(Render(n));
    }
  }
  std::unique_lock<std::shared_mutex> lock(gen_mu_);
  for (const std::string& p : preds) ++predicate_gen_[p];
  for (const std::string& n : nodes) ++node_gen_[n];
}

std::shared_ptr<const StoreEpoch> VersionedKgStore::PinEpoch() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return current_;
}

serve::QueryResult VersionedKgStore::ExecuteAt(
    const StoreEpoch& epoch, const serve::Query& query) const {
  // An empty overlay (fresh store, or right after a fold) makes the
  // merged path the identity: serve straight off the base snapshot's
  // id-space engine.
  if (epoch.delta->empty()) {
    return serve::QueryEngine(*epoch.base).ExecuteUncached(query);
  }
  const MergedView view{*epoch.base, *epoch.delta};
  switch (query.kind) {
    case serve::QueryKind::kPointLookup:
      return MergedPointLookup(view, query);
    case serve::QueryKind::kNeighborhood:
      return MergedNeighborhood(view, query);
    case serve::QueryKind::kAttributeByType:
      // The answer only depends on triples carrying the attribute or the
      // type predicate; when the overlay has neither, the base snapshot
      // is exact and the id-space scan is much cheaper than the merge.
      if (!epoch.delta->TouchesPredicate(query.predicate) &&
          !epoch.delta->TouchesPredicate(query.type_predicate)) {
        return serve::QueryEngine(*epoch.base).ExecuteUncached(query);
      }
      return MergedAttributeByType(view, query);
    case serve::QueryKind::kTopKRelated:
      return MergedTopKRelated(view, query);
  }
  return {};
}

Result<serve::QueryResult> VersionedKgStore::TryExecute(
    const serve::Query& query) const {
  const auto epoch = PinEpoch();
  if (epoch->base->schema_version() > serve::kSnapshotSchemaVersion) {
    return Status::Unavailable(
        "snapshot schema version " +
        std::to_string(epoch->base->schema_version()) +
        " is newer than this store supports (" +
        std::to_string(serve::kSnapshotSchemaVersion) + ")");
  }
  return Execute(query);
}

Result<serve::EpochTaggedResult> VersionedKgStore::TryExecuteTagged(
    const serve::Query& query) const {
  serve::EpochTaggedResult tagged;
  // Watermark before rows: the content the rows are computed from can
  // only be at or past the tag, never behind it.
  tagged.epoch = applied_watermark();
  KG_ASSIGN_OR_RETURN(tagged.rows, TryExecute(query));
  return tagged;
}

serve::QueryResult VersionedKgStore::Execute(const serve::Query& query) const {
  if (cache_ == nullptr) return ExecuteAt(*PinEpoch(), query);
  const bool erase_invalidated =
      query.kind == serve::QueryKind::kPointLookup ||
      query.kind == serve::QueryKind::kNeighborhood;
  // Gen-tagged classes read the tag BEFORE pinning: the pinned state is
  // then always at-or-after the tag, so a fill can never park an older
  // answer under a current tag. (The converse — a newer answer under an
  // old tag — only happens when a concurrent write already retired that
  // tag, so nothing stale survives it.) The tag lives in row 0 of the
  // cached value — not in the key — so every query owns exactly one
  // entry: a retired generation is overwritten in place by the next
  // read instead of lingering as unreachable garbage that would crowd
  // live entries out of the LRU.
  obs::Histogram* probe_hist =
      metrics_.stage_cache_probe[static_cast<size_t>(query.kind)];
  const auto t_probe = probe_hist != nullptr
                           ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  const std::string key = query.CacheKey();
  const std::string tag = erase_invalidated ? std::string() : GenTag(query);
  serve::QueryResult cached;
  bool hit = false;
  if (cache_->Get(key, &cached)) {
    if (erase_invalidated) {
      hit = true;
    } else if (!cached.empty() && cached.front() == tag) {
      cached.erase(cached.begin());
      hit = true;
    }
    // Otherwise: retired generation, recompute and overwrite below.
  }
  if (probe_hist != nullptr) {
    probe_hist->Observe(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t_probe)
                            .count());
  }
  if (hit) return cached;
  const std::shared_ptr<const StoreEpoch> epoch = PinEpoch();
  serve::QueryResult result = ExecuteAt(*epoch, query);
  if (erase_invalidated) {
    // Fill only while the epoch we computed against is still current.
    // try_to_lock so a publisher holding the exclusive lock is never
    // waited on (writers must not block readers); losing the race just
    // skips the fill.
    std::shared_lock<std::shared_mutex> lock(epoch_mu_, std::try_to_lock);
    if (lock.owns_lock() && current_->version == epoch->version) {
      cache_->Put(key, result);
    }
  } else {
    serve::QueryResult stored;
    stored.reserve(result.size() + 1);
    stored.push_back(tag);
    stored.insert(stored.end(), result.begin(), result.end());
    cache_->Put(key, std::move(stored));
  }
  return result;
}

std::vector<serve::QueryResult> VersionedKgStore::BatchExecute(
    const std::vector<serve::Query>& queries, const ExecPolicy& exec) const {
  const std::shared_ptr<const StoreEpoch> epoch = PinEpoch();
  std::vector<serve::QueryResult> results(queries.size());
  // One pinned epoch + index-addressed slots: the output is a pure
  // function of (epoch, queries), identical at any thread count.
  ParallelForChunked(exec, queries.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = ExecuteAt(*epoch, queries[i]);
    }
  });
  return results;
}

VersionedKgStore::CompactionStats VersionedKgStore::Compact() {
  CompactionStats stats;
  if (compaction_in_flight_.exchange(true, std::memory_order_acq_rel)) {
    return stats;  // another fold is running; ran stays false
  }
  const auto started = std::chrono::steady_clock::now();
  graph::KnowledgeGraph frozen;
  uint64_t fold_seq = 0;
  {
    std::lock_guard<std::mutex> writer(writer_mu_);
    frozen = kg_;  // O(graph) copy; Apply resumes as soon as we unlock
    fold_seq = next_seq_ - 1;
  }
  // The slow part — compiling the CSR snapshot — runs without any lock,
  // so writers and readers proceed at full speed underneath it.
  auto base = std::make_shared<const serve::KgSnapshot>(
      serve::KgSnapshot::Compile(frozen));
  {
    std::lock_guard<std::mutex> writer(writer_mu_);
    const std::shared_ptr<const MemDelta> old_delta = current_->delta;
    auto next_delta = std::make_shared<MemDelta>(*old_delta);
    // Entries at or before the fold line are the new base's; newer ones
    // keep shadowing it (their state already accounts for any base).
    next_delta->TrimThrough(fold_seq);
    stats.folded = old_delta->size() - next_delta->size();
    std::set<size_t> shards;
    if (cache_) {
      // Defense in depth: cached answers are maintained incrementally by
      // Apply and stay correct across the swap, but flushing the shards
      // the folded mutations map to keeps the blast radius of any future
      // merge bug bounded — and only those shards, the rest keep serving.
      old_delta->ForEach([&](const TripleName& t, const MemDelta::Entry& e) {
        if (e.seq > fold_seq) return;
        Mutation m;
        m.subject = t.subject;
        m.subject_kind = t.subject_kind;
        m.predicate = t.predicate;
        m.object = t.object;
        m.object_kind = t.object_kind;
        for (const std::string& key : AffectedCacheKeys(m)) {
          shards.insert(cache_->ShardOf(key));
        }
      });
    }
    auto epoch = std::make_shared<StoreEpoch>();
    epoch->version = current_->version + 1;
    epoch->base = std::move(base);
    epoch->delta = std::move(next_delta);
    stats.version = epoch->version;
    stats.base_fingerprint = epoch->base->Fingerprint();
    const size_t remaining_delta = epoch->delta->size();
    PublishEpoch(std::move(epoch), [&] {
      for (size_t shard : shards) {
        cache_->InvalidateShard(shard);
        ++stats.shards_invalidated;
      }
    });
    if (metrics_.delta_size != nullptr) {
      metrics_.epoch_version->Set(static_cast<int64_t>(stats.version));
      metrics_.delta_size->Set(static_cast<int64_t>(remaining_delta));
    }
  }
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  stats.ran = true;
  if (metrics_.compactions != nullptr) {
    metrics_.compactions->Inc();
    metrics_.folded->Inc(stats.folded);
    metrics_.compaction_last_us->Set(
        static_cast<int64_t>(stats.seconds * 1e6));
  }
  compaction_in_flight_.store(false, std::memory_order_release);
  return stats;
}

bool VersionedKgStore::CompactInBackground(ThreadPool& pool) {
  if (compaction_in_flight_.load(std::memory_order_acquire)) return false;
  pool.Submit([this] { Compact(); });
  return true;
}

uint64_t VersionedKgStore::version() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return current_->version;
}

uint64_t VersionedKgStore::applied_mutations() const {
  std::lock_guard<std::mutex> writer(writer_mu_);
  return next_seq_ - 1;
}

size_t VersionedKgStore::delta_size() const { return PinEpoch()->delta->size(); }

uint64_t VersionedKgStore::AuthoritativeFingerprint() const {
  std::lock_guard<std::mutex> writer(writer_mu_);
  return graph::TripleSetFingerprint(kg_);
}

}  // namespace kg::store
