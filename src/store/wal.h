#ifndef KGRAPH_STORE_WAL_H_
#define KGRAPH_STORE_WAL_H_

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace kg::store {

/// The two mutations a versioned KG store accepts. Upsert asserts a
/// triple (appending provenance when it already exists — the
/// `KnowledgeGraph::AddTriple` semantics); Retract tombstones it.
enum class MutationOp : uint8_t {
  kUpsert = 0,
  kRetract = 1,
};

/// One logged mutation. Nodes are addressed by (name, kind) exactly as in
/// the KnowledgeGraph vocabulary, so a mutation stream plus a base KG
/// fully determines the resulting graph — the store's determinism
/// argument rests on this (mutation order is the log order, nothing
/// else).
struct Mutation {
  MutationOp op = MutationOp::kUpsert;
  std::string subject;
  graph::NodeKind subject_kind = graph::NodeKind::kEntity;
  std::string predicate;
  std::string object;
  graph::NodeKind object_kind = graph::NodeKind::kEntity;
  /// Meaningful for upserts only; retracts carry an empty provenance.
  graph::Provenance prov;

  static Mutation Upsert(std::string subject, std::string predicate,
                         std::string object, graph::NodeKind subject_kind,
                         graph::NodeKind object_kind,
                         graph::Provenance prov);
  static Mutation Retract(std::string subject, std::string predicate,
                          std::string object, graph::NodeKind subject_kind,
                          graph::NodeKind object_kind);

  friend bool operator==(const Mutation& a, const Mutation& b) {
    return a.op == b.op && a.subject == b.subject &&
           a.subject_kind == b.subject_kind && a.predicate == b.predicate &&
           a.object == b.object && a.object_kind == b.object_kind &&
           a.prov.source == b.prov.source &&
           a.prov.confidence == b.prov.confidence &&
           a.prov.timestamp == b.prov.timestamp;
  }
};

/// Renders a mutation as one tab-separated payload (9 fields, every text
/// field through `graph::EscapeTsvField`, confidence at full double
/// precision). Deterministic: equal mutations encode byte-identically.
std::string EncodeMutation(const Mutation& m);

/// Inverts `EncodeMutation`; rejects malformed payloads with a
/// descriptive status (the WAL replay treats any such record as the
/// start of a torn tail).
Result<Mutation> DecodeMutation(std::string_view payload);

/// Appends one framed record to `*buf`: a fixed 8-byte header
/// (little-endian uint32 payload length, little-endian uint32
/// `Checksum32(payload)`) followed by the payload bytes.
void AppendWalFrame(std::string* buf, std::string_view payload);

/// The result of scanning a WAL image. `mutations` is the longest valid
/// record prefix; `valid_bytes` is where that prefix ends (the recovery
/// truncation point); `clean` is true when the scan consumed every byte.
/// `frame_offsets[i]` is the byte offset where `mutations[i]`'s frame
/// starts, so `frame_offsets.back()` is the offset of the last valid
/// frame — the resume point a catch-up subscriber needs: replaying the
/// suffix from any `frame_offsets[i]` yields exactly `mutations[i..]`
/// (store_wal_test proves the bit-identical-resume property).
struct WalReplay {
  std::vector<Mutation> mutations;
  std::vector<uint64_t> frame_offsets;
  uint64_t valid_bytes = 0;
  uint64_t dropped_bytes = 0;
  bool clean = true;
};

/// Truncation-tolerant scan of a WAL byte image. Replay stops — without
/// failing — at the first frame that is incomplete, overruns the buffer,
/// fails its checksum, or does not decode; everything before it is
/// returned. A WAL torn at *any* byte boundary therefore recovers every
/// fully-written record (store_wal_test cuts at every offset to prove
/// it). Never crashes on arbitrary bytes (store_wal_fuzz_test).
WalReplay ReplayWalBuffer(std::string_view data);

/// Append-only write-ahead log for store mutations, one framed record
/// per mutation. Not internally synchronized: the store serializes
/// appends under its writer lock.
class Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending. When
  /// the existing file ends in a torn or corrupt tail, the tail is
  /// truncated away — re-opening after a crash never leaves garbage for
  /// later appends to land after. The replay of the surviving prefix is
  /// written to `*replay` when non-null.
  static Result<Wal> Open(const std::string& path,
                          WalReplay* replay = nullptr);

  /// Reads and scans the log at `path` without opening it for append.
  static Result<WalReplay> Replay(const std::string& path);

  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;

  /// Appends one record and flushes it to the OS.
  Status Append(const Mutation& m);

  /// Appends a batch, flushing once at the end (one batch == one
  /// logical commit).
  Status AppendBatch(std::span<const Mutation> mutations);

  const std::string& path() const { return path_; }

  /// Bytes of valid log written or recovered so far.
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  Wal() = default;

  std::string path_;
  std::ofstream out_;
  uint64_t size_bytes_ = 0;
};

}  // namespace kg::store

#endif  // KGRAPH_STORE_WAL_H_
