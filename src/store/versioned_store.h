#ifndef KGRAPH_STORE_VERSIONED_STORE_H_
#define KGRAPH_STORE_VERSIONED_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_policy.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/knowledge_graph.h"
#include "obs/metrics.h"
#include "serve/lru_cache.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/mem_delta.h"
#include "store/wal.h"

namespace kg::store {

struct StoreOptions {
  /// WAL file for durability; empty runs the store in-memory (tests,
  /// ephemeral replicas). When the file exists, Open replays it —
  /// truncating any torn tail — before serving.
  std::string wal_path;
  /// Result-cache entries; 0 disables caching.
  size_t cache_capacity = 0;
  size_t cache_shards = 8;
  /// Write-path metrics land here when non-null (not owned; must outlive
  /// the store): "store.applied_mutations" / "store.wal.appended_records"
  /// / "store.compactions" / "store.compaction.folded" counters plus
  /// "store.epoch.version" / "store.delta.size" /
  /// "store.wal.replayed_records" / "store.compaction.last_us" gauges.
  /// All updates happen on the (serialized) write path, never per read.
  /// Also feeds the write path's stage attribution: "stage_us.wal_append"
  /// (durable log flush) and "stage_us.overlay_merge" (graph + delta
  /// apply and epoch publish) per applied batch.
  obs::MetricsRegistry* registry = nullptr;
  /// With `registry`, also time the read path's result-cache probe into
  /// per-class "stage_us.cache_probe.<class>" histograms. Two extra
  /// clock reads per cached read, so opt-in like serve's time_queries.
  bool time_stages = false;
};

/// One immutable MVCC version of the store: a base snapshot plus the
/// overlay of mutations applied after the base was compiled. Readers pin
/// an epoch with a `shared_ptr` and keep a frozen, consistent view for
/// as long as they hold it, while writers publish successors; an epoch
/// is reclaimed when its last pin drops.
struct StoreEpoch {
  uint64_t version = 0;  ///< Bumps on every applied batch and compaction.
  std::shared_ptr<const serve::KgSnapshot> base;
  std::shared_ptr<const MemDelta> delta;
};

/// A versioned, mutable KG store layered on the immutable serving
/// snapshot — the LSM-style write path production KGs use so a stream of
/// corrections never forces a rebuild-the-world redeploy:
///
///   Apply --> WAL (durable, framed+checksummed)
///         --> authoritative KnowledgeGraph (writer-only)
///         --> copy-on-write MemDelta --> new StoreEpoch published
///
/// Reads pin an epoch and merge base CSR range reads with the overlay
/// (retractions shadow base triples, upserts surface new ones), so every
/// answer is byte-identical to `serve::QueryEngine` over a from-scratch
/// rebuild at that version (store_property_test, 100 worlds). Background
/// compaction compiles base+overlay into a fresh `KgSnapshot` on a
/// `ThreadPool` and swaps it in atomically; because the delta keeps any
/// entry newer than the fold line, serving is never wrong during or
/// after the fold, and the compacted snapshot's fingerprint equals the
/// batch-build fingerprint by construction.
///
/// Concurrency contract:
///   - Writers (Apply*/Compact) serialize on an internal writer lock.
///   - Readers never block writers and writers never block readers
///     beyond the epoch-pointer swap (a pointer assignment under a brief
///     exclusive lock). Pinned epochs stay valid forever.
///   - Mutation order is fully specified by the log; replaying the WAL
///     onto the same base yields a bit-identical store.
///
/// Cache policy — every query class is cached, with a class-appropriate
/// targeted invalidation:
///   - Node-addressed classes (point lookup, neighborhood) have an exact
///     erase set: a mutation (s, p, o) can only change the point lookup
///     (s, p) and the neighborhoods of s and o. Apply erases exactly
///     those keys inside the publish section, and fills are gated on the
///     epoch still being current, so a slow reader can never poison the
///     cache with a stale answer.
///   - Scan-shaped classes (attribute-by-type, top-k related) are cached
///     under generation-tagged keys instead: an attribute-by-type answer
///     depends only on triples whose predicate is the queried attribute
///     or the type predicate, so its tag is those two predicates'
///     generation counters; a top-k answer depends only on the 2-hop
///     ball around its center, so its tag is the center's node
///     generation, and a mutation of edge (s, o) bumps {s, o}, plus
///     N(s) when o is an entity and N(o) when s is an entity (second-hop
///     candidates are entity-filtered, so a center two hops away only
///     sees the edge through its entity endpoint). The tag is stored in
///     the cached value (row 0) under a stable key, so a bump retires an
///     entry logically and the next read overwrites it in place — no
///     scans, no flushes, no unreachable garbage crowding the LRU, and
///     untouched predicates/nodes keep their hits across writes.
class VersionedKgStore {
 public:
  struct CompactionStats {
    bool ran = false;         ///< False when another fold was in flight.
    uint64_t folded = 0;      ///< Overlay entries folded into the base.
    uint64_t version = 0;     ///< Version of the installed epoch.
    uint64_t base_fingerprint = 0;
    size_t shards_invalidated = 0;
    double seconds = 0.0;
  };

  /// Builds a store over `base`. With a WAL path, existing records are
  /// replayed (torn tail truncated) before the first epoch is compiled,
  /// so reopening after a crash reproduces the pre-crash state
  /// bit-identically.
  static Result<std::unique_ptr<VersionedKgStore>> Open(
      graph::KnowledgeGraph base, StoreOptions options = {});

  VersionedKgStore(const VersionedKgStore&) = delete;
  VersionedKgStore& operator=(const VersionedKgStore&) = delete;

  // --- Write path -------------------------------------------------------

  Status Apply(const Mutation& mutation);

  /// Applies `mutations` in order as one logical commit (one WAL flush,
  /// one published epoch).
  Status ApplyBatch(std::span<const Mutation> mutations);

  // --- Read path --------------------------------------------------------

  /// Pins the current epoch. The returned view is immutable and
  /// consistent; concurrent writers publish successors without
  /// disturbing it.
  std::shared_ptr<const StoreEpoch> PinEpoch() const;

  /// Answers `query` against the current epoch, through the result
  /// cache when enabled.
  serve::QueryResult Execute(const serve::Query& query) const;

  /// Execute with the forward-compatibility gate: kUnavailable when the
  /// current epoch's base snapshot claims a schema generation newer
  /// than this build (serve::kSnapshotSchemaVersion). The path the RPC
  /// server fronts a mutable store through.
  Result<serve::QueryResult> TryExecute(const serve::Query& query) const;

  /// TryExecute plus the replication-epoch tag (see applied_watermark).
  /// The tag is read *before* the rows are computed, so the rows always
  /// reflect at least the tagged offset — the inequality the cluster
  /// router's bounded-staleness policy rests on.
  Result<serve::EpochTaggedResult> TryExecuteTagged(
      const serve::Query& query) const;

  /// Answers `query` against a pinned epoch, bypassing the cache (the
  /// cache tracks the *current* version; time-travel reads must not mix
  /// with it). This is the reference path Execute is checked against.
  serve::QueryResult ExecuteAt(const StoreEpoch& epoch,
                               const serve::Query& query) const;

  /// Answers `queries[i]` into slot i over one pinned epoch, sharded by
  /// `exec` with index-addressed slots — bit-identical at any thread
  /// count (store_property_test pins 1/2/8).
  std::vector<serve::QueryResult> BatchExecute(
      const std::vector<serve::Query>& queries,
      const ExecPolicy& exec = {}) const;

  // --- Compaction -------------------------------------------------------

  /// Folds the overlay into a fresh base snapshot and publishes it.
  /// Runs on the calling thread; concurrent Apply keeps working (the
  /// writer lock is held only to copy the graph and to install the
  /// result, not while compiling). Returns `ran == false` when another
  /// compaction is in flight.
  CompactionStats Compact();

  /// Schedules Compact() on `pool`; returns false (and does nothing)
  /// when one is already queued or running. Use `pool.WaitIdle()` to
  /// join it.
  bool CompactInBackground(ThreadPool& pool);

  bool compaction_in_flight() const {
    return compaction_in_flight_.load(std::memory_order_acquire);
  }

  // --- Introspection ----------------------------------------------------

  /// Version of the current epoch (0 right after Open).
  uint64_t version() const;

  /// Mutations applied since Open (includes WAL-replayed ones).
  uint64_t applied_mutations() const;

  /// Overlay entries awaiting compaction.
  size_t delta_size() const;

  /// `graph::TripleSetFingerprint` of the authoritative graph — equals
  /// the fingerprint of a from-scratch batch build that applied the
  /// same mutation log.
  uint64_t AuthoritativeFingerprint() const;

  /// Null when caching is disabled.
  serve::ShardedLruCache* cache() const { return cache_.get(); }

  const Wal* wal() const { return wal_ ? &*wal_ : nullptr; }

  /// Replication watermark: an opaque monotone offset (the shipped-WAL
  /// byte offset in kg::cluster) describing how much of some external
  /// log this store's content reflects. The store never interprets it;
  /// a replica's apply loop advances it *after* the matching ApplyBatch
  /// commits, so content always covers the watermark.
  uint64_t applied_watermark() const {
    return applied_watermark_.load(std::memory_order_acquire);
  }
  void set_applied_watermark(uint64_t offset) {
    applied_watermark_.store(offset, std::memory_order_release);
  }

 private:
  VersionedKgStore() = default;

  /// Applies one mutation to the authoritative graph (upsert = AddTriple
  /// provenance-append semantics; retracting an absent triple is a
  /// no-op). Caller holds `writer_mu_`.
  void ApplyToGraph(const Mutation& m);

  /// The node-addressed cache keys whose answers `m` can change.
  static std::vector<std::string> AffectedCacheKeys(const Mutation& m);

  /// The generation suffix for `q`'s cache key ("" for node-addressed
  /// classes, which use erase-based invalidation instead).
  std::string GenTag(const serve::Query& q) const;

  /// Advances the generation counters invalidated by `mutations`
  /// (computed against the just-published epoch; caller holds
  /// `writer_mu_`).
  void BumpGenerations(std::span<const Mutation> mutations);

  /// Publishes `epoch` and runs `invalidate` (cache maintenance) under
  /// the epoch lock, so no stale fill can slip between the two.
  void PublishEpoch(std::shared_ptr<const StoreEpoch> epoch,
                    const std::function<void()>& invalidate);

  /// Pre-resolved registry handles (all null when options_.registry is);
  /// registration locks once in Open, never on the write path.
  struct StoreMetrics {
    obs::Counter* applied_mutations = nullptr;
    obs::Counter* wal_appended = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* folded = nullptr;
    obs::Gauge* epoch_version = nullptr;
    obs::Gauge* delta_size = nullptr;
    obs::Gauge* wal_replayed = nullptr;
    obs::Gauge* compaction_last_us = nullptr;
    obs::Histogram* stage_wal_append = nullptr;
    obs::Histogram* stage_overlay_merge = nullptr;
    std::array<obs::Histogram*, serve::kNumQueryKinds> stage_cache_probe{};
  };

  StoreOptions options_;
  StoreMetrics metrics_{};
  std::optional<Wal> wal_;

  /// Serializes writers; guards kg_ and next_seq_.
  mutable std::mutex writer_mu_;
  graph::KnowledgeGraph kg_;
  uint64_t next_seq_ = 1;

  /// Guards the current-epoch pointer and gates cache fills against
  /// concurrent publishes. Shared: pin + fill; exclusive: publish.
  mutable std::shared_mutex epoch_mu_;
  std::shared_ptr<const StoreEpoch> current_;

  std::unique_ptr<serve::ShardedLruCache> cache_;
  std::atomic<bool> compaction_in_flight_{false};
  std::atomic<uint64_t> applied_watermark_{0};

  /// Generation counters behind the gen-tagged cache keys. Written by
  /// writers (after publish, still inside the writer section), read by
  /// every attribute-by-type / top-k Execute. Entries accumulate per
  /// distinct touched predicate/node — bounded by the vocabulary, not by
  /// the write count.
  mutable std::shared_mutex gen_mu_;
  std::unordered_map<std::string, uint64_t> predicate_gen_;
  std::unordered_map<std::string, uint64_t> node_gen_;
};

}  // namespace kg::store

#endif  // KGRAPH_STORE_VERSIONED_STORE_H_
