#ifndef KGRAPH_RPC_CLIENT_H_
#define KGRAPH_RPC_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "rpc/frame.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace kg::rpc {

struct RpcClientOptions {
  /// Newest snapshot schema generation this client can consume; the
  /// handshake refuses (kUnavailable) servers serving something newer.
  uint32_t max_schema_version = serve::kSnapshotSchemaVersion;
  /// Per-response wall-clock wait. A frame lost on the wire (chaos, dead
  /// server) turns into kUnavailable after this long instead of a hung
  /// read; -1 blocks until the stream closes.
  int read_timeout_ms = 2000;
};

/// Synchronous client for one connection: Handshake once, then
/// Execute serially. Every failure mode the wire can produce — refused
/// handshake, shed request, lost or garbled response, closed stream,
/// timeout — surfaces as a Status, and the retriable ones all map to
/// kUnavailable so RetryWithBackoff treats local and remote failures
/// identically. Not thread-safe; use one RpcClient per thread.
class RpcClient {
 public:
  explicit RpcClient(std::unique_ptr<ITransport> transport,
                     RpcClientOptions options = {});

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Negotiates schema versions. Must succeed before Execute; returns
  /// the server's schema version, or kUnavailable when the server
  /// serves a newer generation than options.max_schema_version.
  Result<uint32_t> Handshake();

  /// Sends one query and waits for its response (request-id
  /// correlated; stale responses from abandoned requests are skipped).
  /// A non-OK response status is returned as that status. A non-null
  /// `trace` rides the frame's trace-context extension, so the server's
  /// spans join the caller's trace tree.
  Result<serve::QueryResult> Execute(const serve::Query& query,
                                     const TraceContext* trace = nullptr);

  /// Scrapes one of the server's live observability surfaces (metrics
  /// exposition, slow-query ring, trace dump). A non-OK response status
  /// is returned as that status.
  Result<std::string> Introspect(IntrospectWhat what);

  /// False once the stream has broken (framing error, closed transport,
  /// failed handshake). A broken client never recovers; reconnect.
  bool healthy() const { return healthy_; }

  /// True once Handshake completed. A healthy but never-handshook
  /// client (its handshake response was lost in flight) cannot serve
  /// queries and should be reconnected.
  bool handshook() const { return handshook_; }

  ITransport* transport() { return transport_.get(); }

 private:
  /// Reads frames until one with `request_id` arrives, the timeout
  /// expires, or the stream breaks. Frames of type `expected_type` with
  /// older request ids are stale (their request was abandoned after a
  /// lost response) and are skipped.
  Result<Frame> ReadResponse(uint32_t request_id, MessageType expected_type);

  std::unique_ptr<ITransport> transport_;
  RpcClientOptions options_;
  FrameDecoder decoder_;
  uint32_t next_request_id_ = 1;
  bool handshook_ = false;
  bool healthy_ = true;
};

/// How RetryingClient reaches the server: returns a fresh connected
/// transport, or a Status when the dial itself fails.
using TransportFactory =
    std::function<Result<std::unique_ptr<ITransport>>()>;

/// Wraps a transport factory with dial-time chaos: the `attempt`-th
/// dial consults `injector->Probe(channel + "/connect", attempt)`, and
/// a transient or terminal fault refuses the connection with
/// kUnavailable — a dead or unreachable peer, without real process
/// death — so failover paths (RetryingClient reconnects, cluster
/// primary→replica routing) can be exercised deterministically.
/// Successful dials pass through `inner` untouched; compose with
/// ChaosTransport inside `inner` for stream-level faults. The injector
/// must outlive the returned factory.
TransportFactory ChaosConnectFactory(TransportFactory inner,
                                     const FaultInjector* injector,
                                     std::string channel);

/// RpcClient wrapped in the repo's standard resilience machinery:
/// RetryWithBackoff over kUnavailable (virtual-time backoff, seeded
/// jitter) plus a CircuitBreaker, reconnecting through the factory
/// whenever the stream breaks. This is the piece rpc_chaos_test leans
/// on: under dropped/garbled/slow frames it either converges to the
/// correct answer or degrades to a clean terminal status,
/// deterministically per seed.
class RetryingClient {
 public:
  struct Stats {
    uint64_t attempts = 0;    ///< Individual wire attempts made.
    uint64_t reconnects = 0;  ///< Fresh transports dialed.
    double virtual_ms = 0.0;  ///< Backoff consumed (virtual time).
  };

  RetryingClient(TransportFactory factory, RetryPolicy policy,
                 uint64_t jitter_seed, RpcClientOptions options = {});

  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;

  /// Executes with retries. Returns the final answer, or the terminal
  /// status once retries are exhausted, the breaker opens, or a
  /// non-retriable status (e.g. kInvalidArgument) comes back. A
  /// non-null `trace` is attached to every wire attempt.
  Result<serve::QueryResult> Execute(const serve::Query& query,
                                     const TraceContext* trace = nullptr);

  /// Scrapes the server with the same retry/reconnect machinery.
  Result<std::string> Introspect(IntrospectWhat what);

  const Stats& stats() const { return stats_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  TransportFactory factory_;
  RetryPolicy policy_;
  RpcClientOptions options_;
  Rng rng_;
  CircuitBreaker breaker_;
  std::unique_ptr<RpcClient> client_;
  Stats stats_;
};

}  // namespace kg::rpc

#endif  // KGRAPH_RPC_CLIENT_H_
