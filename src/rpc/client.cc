#include "rpc/client.h"

#include <atomic>
#include <chrono>
#include <utility>

namespace kg::rpc {

TransportFactory ChaosConnectFactory(TransportFactory inner,
                                     const FaultInjector* injector,
                                     std::string channel) {
  auto attempts = std::make_shared<std::atomic<size_t>>(0);
  return [inner = std::move(inner), injector,
          channel = channel + "/connect",
          attempts]() -> Result<std::unique_ptr<ITransport>> {
    const size_t attempt =
        attempts->fetch_add(1, std::memory_order_relaxed);
    const FaultInjector::Attempt probe = injector->Probe(channel, attempt);
    if (probe.kind == FaultKind::kTransient ||
        probe.kind == FaultKind::kTerminal) {
      return Status::Unavailable("injected: connection refused");
    }
    return inner();
  };
}

RpcClient::RpcClient(std::unique_ptr<ITransport> transport,
                     RpcClientOptions options)
    : transport_(std::move(transport)), options_(options) {}

Result<Frame> RpcClient::ReadResponse(uint32_t request_id,
                                      MessageType expected_type) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.read_timeout_ms < 0
                                    ? 0
                                    : options_.read_timeout_ms);
  std::string chunk;
  for (;;) {
    Frame frame;
    FrameDecoder::Step step;
    while ((step = decoder_.Next(&frame)) == FrameDecoder::Step::kFrame) {
      if (frame.request_id < request_id) {
        // A response to a request we abandoned after its own response
        // was lost on the wire; the answer is no longer wanted. (Any
        // type: an abandoned Execute's response may limp in while a
        // later Introspect waits, and vice versa.)
        continue;
      }
      if (frame.type != expected_type || frame.request_id != request_id) {
        healthy_ = false;
        transport_->Close();
        return Status::Unavailable("protocol error: unexpected frame");
      }
      return frame;
    }
    if (step == FrameDecoder::Step::kError) {
      // Garbled stream: nothing after the bad frame can be trusted.
      healthy_ = false;
      transport_->Close();
      return Status::Unavailable("stream corrupted: " +
                                 decoder_.error().message());
    }
    int timeout_ms = -1;
    if (options_.read_timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        if (decoder_.buffered_bytes() > 0) {
          // The deadline landed mid-frame: a partial header or body is
          // sitting in the decoder. Carrying on would splice the next
          // response's bytes onto this fragment and "resynchronize" on
          // garbage — the stream is broken, not merely slow.
          healthy_ = false;
          transport_->Close();
          return Status::Unavailable(
              "response timed out mid-frame; stream broken");
        }
        // The response never arrived (lost frame, stalled server). The
        // stream stays usable: if the answer limps in later it carries
        // an older request id and the skip above discards it.
        return Status::Unavailable("response timed out");
      }
      timeout_ms = static_cast<int>(left.count());
    }
    chunk.clear();
    auto read = transport_->Read(&chunk, 64 * 1024, timeout_ms);
    if (!read.ok()) {
      healthy_ = false;
      return read.status();
    }
    if (*read == 0 && options_.read_timeout_ms >= 0) continue;  // Re-check.
    decoder_.Feed(chunk);
  }
}

Result<uint32_t> RpcClient::Handshake() {
  if (!healthy_) return Status::Unavailable("client stream is broken");
  if (handshook_) return Status::FailedPrecondition("already handshook");
  const uint32_t id = next_request_id_++;
  HandshakeRequest req;
  req.max_schema_version = options_.max_schema_version;
  std::string frame;
  AppendFrame(&frame, MessageType::kHandshakeRequest, id,
              EncodeHandshakeRequest(req));
  auto write = transport_->Write(frame);
  if (!write.ok()) {
    healthy_ = false;
    return write;
  }
  KG_ASSIGN_OR_RETURN(Frame resp_frame,
                      ReadResponse(id, MessageType::kHandshakeResponse));
  auto resp = DecodeHandshakeResponse(resp_frame.body);
  if (!resp.ok()) {
    healthy_ = false;
    transport_->Close();
    return Status::Unavailable("bad handshake response: " +
                               resp.status().message());
  }
  if (resp->code != StatusCode::kOk) {
    healthy_ = false;
    return Status(resp->code, resp->message);
  }
  handshook_ = true;
  return resp->schema_version;
}

Result<serve::QueryResult> RpcClient::Execute(const serve::Query& query,
                                              const TraceContext* trace) {
  if (!healthy_) return Status::Unavailable("client stream is broken");
  if (!handshook_) {
    return Status::FailedPrecondition("Execute before Handshake");
  }
  const uint32_t id = next_request_id_++;
  std::string frame;
  AppendFrame(&frame, MessageType::kQueryRequest, id, trace,
              EncodeQuery(query));
  auto write = transport_->Write(frame);
  if (!write.ok()) {
    healthy_ = false;
    return write;
  }
  KG_ASSIGN_OR_RETURN(Frame resp_frame,
                      ReadResponse(id, MessageType::kQueryResponse));
  auto resp = DecodeQueryResponse(resp_frame.body);
  if (!resp.ok()) {
    healthy_ = false;
    transport_->Close();
    return Status::Unavailable("bad query response: " +
                               resp.status().message());
  }
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return std::move(resp->rows);
}

Result<std::string> RpcClient::Introspect(IntrospectWhat what) {
  if (!healthy_) return Status::Unavailable("client stream is broken");
  if (!handshook_) {
    return Status::FailedPrecondition("Introspect before Handshake");
  }
  const uint32_t id = next_request_id_++;
  IntrospectRequest req;
  req.what = what;
  std::string frame;
  AppendFrame(&frame, MessageType::kIntrospectRequest, id,
              EncodeIntrospectRequest(req));
  auto write = transport_->Write(frame);
  if (!write.ok()) {
    healthy_ = false;
    return write;
  }
  KG_ASSIGN_OR_RETURN(Frame resp_frame,
                      ReadResponse(id, MessageType::kIntrospectResponse));
  auto resp = DecodeIntrospectResponse(resp_frame.body);
  if (!resp.ok()) {
    healthy_ = false;
    transport_->Close();
    return Status::Unavailable("bad introspect response: " +
                               resp.status().message());
  }
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return std::move(resp->payload);
}

RetryingClient::RetryingClient(TransportFactory factory, RetryPolicy policy,
                               uint64_t jitter_seed, RpcClientOptions options)
    : factory_(std::move(factory)),
      policy_(policy),
      options_(options),
      rng_(jitter_seed),
      breaker_(policy.breaker_failure_threshold) {}

Result<serve::QueryResult> RetryingClient::Execute(
    const serve::Query& query, const TraceContext* trace) {
  Result<serve::QueryResult> result =
      Status::Unavailable("no attempt made");
  const RetryOutcome outcome = RetryWithBackoff(
      policy_, rng_.Split(stats_.attempts), &breaker_,
      [&](size_t) -> AttemptResult {
        ++stats_.attempts;
        if (client_ == nullptr || !client_->healthy() ||
            !client_->handshook()) {
          client_.reset();
          auto transport = factory_();
          if (!transport.ok()) {
            result = transport.status();
            return {transport.status(), 0.0};
          }
          ++stats_.reconnects;
          client_ = std::make_unique<RpcClient>(std::move(*transport),
                                                options_);
          auto handshake = client_->Handshake();
          if (!handshake.ok()) {
            result = handshake.status();
            return {handshake.status(), 0.0};
          }
        }
        result = client_->Execute(query, trace);
        return {result.status(), 0.0};
      });
  stats_.virtual_ms += outcome.virtual_ms;
  if (!outcome.status.ok() && result.ok()) {
    // The breaker or deadline budget cut in before any attempt ran.
    return outcome.status;
  }
  return result;
}

Result<std::string> RetryingClient::Introspect(IntrospectWhat what) {
  Result<std::string> result = Status::Unavailable("no attempt made");
  const RetryOutcome outcome = RetryWithBackoff(
      policy_, rng_.Split(stats_.attempts), &breaker_,
      [&](size_t) -> AttemptResult {
        ++stats_.attempts;
        if (client_ == nullptr || !client_->healthy() ||
            !client_->handshook()) {
          client_.reset();
          auto transport = factory_();
          if (!transport.ok()) {
            result = transport.status();
            return {transport.status(), 0.0};
          }
          ++stats_.reconnects;
          client_ = std::make_unique<RpcClient>(std::move(*transport),
                                                options_);
          auto handshake = client_->Handshake();
          if (!handshake.ok()) {
            result = handshake.status();
            return {handshake.status(), 0.0};
          }
        }
        result = client_->Introspect(what);
        return {result.status(), 0.0};
      });
  stats_.virtual_ms += outcome.virtual_ms;
  if (!outcome.status.ok() && result.ok()) {
    return outcome.status;
  }
  return result;
}

}  // namespace kg::rpc
