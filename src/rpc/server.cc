#include "rpc/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "store/versioned_store.h"

namespace kg::rpc {

namespace {
/// One poll pass reads at most this many bytes per connection, so a
/// firehose connection cannot starve its neighbors inside a pass.
constexpr size_t kReadChunkBytes = 64 * 1024;
/// Event-loop nap when a full pass over every connection read nothing.
constexpr auto kIdleNap = std::chrono::microseconds(200);
}  // namespace

QueryHandler EngineHandler(const serve::QueryEngine* engine) {
  return [engine](const serve::Query& query) {
    return engine->TryExecute(query);
  };
}

QueryHandler StoreHandler(const store::VersionedKgStore* store) {
  return [store](const serve::Query& query) {
    return store->TryExecute(query);
  };
}

struct RpcServer::Connection {
  explicit Connection(std::unique_ptr<ITransport> t)
      : transport(std::move(t)) {}

  std::unique_ptr<ITransport> transport;
  FrameDecoder decoder;
  bool handshook = false;
  /// WAL subscription state; owned by the event-loop thread (HandleFrame
  /// and ServeSubscriptions both run there, so no lock is needed).
  bool subscribed = false;
  uint64_t sub_offset = 0;
  uint32_t sub_request_id = 0;
  std::chrono::steady_clock::time_point last_push{};
  std::atomic<bool> closed{false};
  /// Requests queued or executing on this connection (admission bound).
  std::atomic<size_t> queued{0};
  /// Serializes response writes (workers and the event loop interleave).
  std::mutex write_mu;
};

struct RpcServer::Task {
  std::shared_ptr<Connection> conn;
  uint32_t request_id = 0;
  serve::Query query;
  std::chrono::steady_clock::time_point received;
};

struct RpcServer::Impl {
  QueryHandler handler;
  RpcServerOptions options;

  std::atomic<bool> running{false};
  std::thread acceptor;
  std::thread event_loop;
  std::vector<std::thread> workers;

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Connection>> conns;

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Task> queue;

  std::atomic<size_t> inflight{0};

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_accepted{0};
  std::atomic<uint64_t> requests_shed{0};
  std::atomic<uint64_t> frame_errors{0};

  // Pre-resolved registry handles (all null without a registry):
  // registration locks once at Start, never per frame.
  obs::Counter* m_accepted_conns = nullptr;
  obs::Counter* m_accepted_reqs = nullptr;
  obs::Counter* m_shed = nullptr;
  obs::Counter* m_frame_errors = nullptr;
  obs::Gauge* m_active_conns = nullptr;
  obs::Gauge* m_inflight = nullptr;
  std::array<obs::Histogram*, serve::kNumQueryKinds> m_latency_us{};
};

RpcServer::RpcServer(QueryHandler handler,
                     std::unique_ptr<ITransportServer> listener,
                     RpcServerOptions options)
    : impl_(std::make_unique<Impl>()), listener_(std::move(listener)) {
  impl_->handler = std::move(handler);
  impl_->options = options;
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  if (impl_->running.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (auto* registry = impl_->options.registry) {
    impl_->m_accepted_conns =
        &registry->GetCounter("rpc.connections.accepted");
    impl_->m_accepted_reqs = &registry->GetCounter("rpc.requests.accepted");
    impl_->m_shed = &registry->GetCounter("rpc.requests.shed");
    impl_->m_frame_errors = &registry->GetCounter("rpc.frame_errors");
    impl_->m_active_conns = &registry->GetGauge("rpc.connections.active");
    impl_->m_inflight = &registry->GetGauge("rpc.inflight");
    for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
      impl_->m_latency_us[k] = &registry->GetHistogram(
          std::string("rpc.latency_us.") +
              serve::QueryKindName(static_cast<serve::QueryKind>(k)),
          obs::LatencyBucketsUs());
    }
  }
  impl_->acceptor = std::thread([this] { AcceptLoop(); });
  impl_->event_loop = std::thread([this] { EventLoop(); });
  const size_t workers = std::max<size_t>(1, impl_->options.worker_threads);
  impl_->workers.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void RpcServer::Drain(int max_wait_ms) {
  if (!impl_->running.load(std::memory_order_acquire)) return;
  // New connections stop here; established ones keep their streams so
  // in-flight responses still go out.
  listener_->Shutdown();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(max_wait_ms < 0 ? 0
                                                                  : max_wait_ms);
  for (;;) {
    bool queue_empty;
    {
      std::lock_guard<std::mutex> lock(impl_->queue_mu);
      queue_empty = impl_->queue.empty();
    }
    if (queue_empty &&
        impl_->inflight.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop();
}

void RpcServer::Stop() {
  if (!impl_->running.exchange(false)) return;
  listener_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    for (auto& conn : impl_->conns) {
      conn->closed.store(true, std::memory_order_release);
      conn->transport->Close();
    }
  }
  impl_->queue_cv.notify_all();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  if (impl_->event_loop.joinable()) impl_->event_loop.join();
  for (auto& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
  {
    // Tasks still queued die with their connections: the transports are
    // closed, so clients see kUnavailable, the retriable signal.
    std::lock_guard<std::mutex> lock(impl_->queue_mu);
    impl_->queue.clear();
  }
}

RpcServer::Stats RpcServer::stats() const {
  Stats stats;
  stats.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  stats.requests_accepted =
      impl_->requests_accepted.load(std::memory_order_relaxed);
  stats.requests_shed =
      impl_->requests_shed.load(std::memory_order_relaxed);
  stats.frame_errors = impl_->frame_errors.load(std::memory_order_relaxed);
  return stats;
}

void RpcServer::AcceptLoop() {
  while (impl_->running.load(std::memory_order_acquire)) {
    auto accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (!impl_->running.load(std::memory_order_acquire)) return;
      // kCancelled means Shutdown(); anything else is a listener
      // failure — either way there is nothing to serve on.
      return;
    }
    impl_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    if (impl_->m_accepted_conns) impl_->m_accepted_conns->Inc();
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    impl_->conns.push_back(
        std::make_shared<Connection>(std::move(*accepted)));
    if (impl_->m_active_conns) {
      impl_->m_active_conns->Set(static_cast<int64_t>(impl_->conns.size()));
    }
  }
}

void RpcServer::EventLoop() {
  std::string chunk;
  while (impl_->running.load(std::memory_order_acquire)) {
    std::vector<std::shared_ptr<Connection>> snapshot;
    {
      std::lock_guard<std::mutex> lock(impl_->conns_mu);
      snapshot = impl_->conns;
    }
    bool did_work = false;
    bool any_closed = false;
    for (const auto& conn : snapshot) {
      if (conn->closed.load(std::memory_order_acquire)) {
        any_closed = true;
        continue;
      }
      chunk.clear();
      auto read = conn->transport->TryRead(&chunk, kReadChunkBytes);
      if (!read.ok()) {
        conn->closed.store(true, std::memory_order_release);
        any_closed = true;
        continue;
      }
      if (*read == 0) continue;
      did_work = true;
      conn->decoder.Feed(chunk);
      Frame frame;
      FrameDecoder::Step step;
      while ((step = conn->decoder.Next(&frame)) ==
             FrameDecoder::Step::kFrame) {
        HandleFrame(conn, std::move(frame));
        if (conn->closed.load(std::memory_order_acquire)) break;
      }
      if (step == FrameDecoder::Step::kError) {
        // Framing is gone; nothing sent on this stream can be trusted
        // or answered. Drop the connection — the client sees
        // kUnavailable and retries elsewhere.
        impl_->frame_errors.fetch_add(1, std::memory_order_relaxed);
        if (impl_->m_frame_errors) impl_->m_frame_errors->Inc();
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
        any_closed = true;
      }
    }
    if (impl_->options.wal_source != nullptr &&
        ServeSubscriptions(snapshot)) {
      did_work = true;
    }
    if (any_closed) {
      std::lock_guard<std::mutex> lock(impl_->conns_mu);
      std::erase_if(impl_->conns, [](const auto& conn) {
        return conn->closed.load(std::memory_order_acquire) &&
               conn->queued.load(std::memory_order_acquire) == 0;
      });
      if (impl_->m_active_conns) {
        impl_->m_active_conns->Set(
            static_cast<int64_t>(impl_->conns.size()));
      }
    }
    if (!did_work) std::this_thread::sleep_for(kIdleNap);
  }
}

bool RpcServer::ServeSubscriptions(
    const std::vector<std::shared_ptr<Connection>>& conns) {
  WalSource* log = impl_->options.wal_source;
  const auto now = std::chrono::steady_clock::now();
  const auto heartbeat =
      std::chrono::milliseconds(impl_->options.wal_heartbeat_interval_ms);
  bool sent = false;
  for (const auto& conn : conns) {
    if (!conn->subscribed || conn->closed.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t end = log->EndOffset();
    if (end > conn->sub_offset) {
      WalBatch batch;
      batch.start_offset = conn->sub_offset;
      batch.frames =
          log->ReadFrom(conn->sub_offset, impl_->options.wal_batch_max_bytes,
                        &batch.end_offset, &batch.chain_after);
      batch.log_end = std::max(end, batch.end_offset);
      WriteResponse(conn, MessageType::kWalBatch, conn->sub_request_id,
                    EncodeWalBatch(batch));
      conn->sub_offset = batch.end_offset;
      conn->last_push = now;
      sent = true;
    } else if (now - conn->last_push >= heartbeat) {
      WalHeartbeat hb;
      hb.log_end = end;
      hb.chain_at_end = log->ChainAt(end);
      WriteResponse(conn, MessageType::kWalHeartbeat, conn->sub_request_id,
                    EncodeWalHeartbeat(hb));
      conn->last_push = now;
      sent = true;
    }
  }
  return sent;
}

void RpcServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                              MessageType type, uint32_t request_id,
                              std::string_view body) {
  std::string frame;
  AppendFrame(&frame, type, request_id, body);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (!conn->transport->Write(frame).ok()) {
    conn->closed.store(true, std::memory_order_release);
  }
}

void RpcServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            Frame&& frame) {
  switch (frame.type) {
    case MessageType::kHandshakeRequest: {
      HandshakeResponse resp;
      resp.schema_version = impl_->options.schema_version;
      auto req = DecodeHandshakeRequest(frame.body);
      if (!req.ok()) {
        resp.code = req.status().code();
        resp.message = req.status().message();
      } else if (req->max_schema_version < impl_->options.schema_version) {
        // The client cannot consume what this server serves. Refuse
        // retriably: an older replica may still speak its dialect.
        resp.code = StatusCode::kUnavailable;
        resp.message = "serving snapshot schema version " +
                       std::to_string(impl_->options.schema_version) +
                       " is newer than client supports (" +
                       std::to_string(req->max_schema_version) + ")";
      } else {
        conn->handshook = true;
      }
      WriteResponse(conn, MessageType::kHandshakeResponse, frame.request_id,
                    EncodeHandshakeResponse(resp));
      if (!conn->handshook) {
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
      }
      return;
    }
    case MessageType::kQueryRequest: {
      if (!conn->handshook) {
        QueryResponse resp;
        resp.code = StatusCode::kFailedPrecondition;
        resp.message = "query before handshake";
        WriteResponse(conn, MessageType::kQueryResponse, frame.request_id,
                      EncodeQueryResponse(resp));
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
        return;
      }
      // Admission control: shed rather than queue without bound. The
      // response goes out on the event-loop thread immediately, so an
      // overloaded server stays responsive about being overloaded.
      const size_t inflight =
          impl_->inflight.load(std::memory_order_acquire);
      const size_t queued = conn->queued.load(std::memory_order_acquire);
      if (inflight >= impl_->options.max_inflight ||
          queued >= impl_->options.max_queue_per_connection) {
        impl_->requests_shed.fetch_add(1, std::memory_order_relaxed);
        if (impl_->m_shed) impl_->m_shed->Inc();
        QueryResponse resp;
        resp.code = StatusCode::kUnavailable;
        resp.message =
            inflight >= impl_->options.max_inflight
                ? "server overloaded: global in-flight limit"
                : "server overloaded: per-connection queue limit";
        WriteResponse(conn, MessageType::kQueryResponse, frame.request_id,
                      EncodeQueryResponse(resp));
        return;
      }
      auto query = DecodeQuery(frame.body);
      if (!query.ok()) {
        // The frame was well-formed (checksum passed) but the body is
        // not a query: a client bug, answered cleanly, not a stream
        // corruption worth killing the connection over.
        QueryResponse resp;
        resp.code = query.status().code();
        resp.message = query.status().message();
        WriteResponse(conn, MessageType::kQueryResponse, frame.request_id,
                      EncodeQueryResponse(resp));
        return;
      }
      impl_->requests_accepted.fetch_add(1, std::memory_order_relaxed);
      if (impl_->m_accepted_reqs) impl_->m_accepted_reqs->Inc();
      impl_->inflight.fetch_add(1, std::memory_order_acq_rel);
      if (impl_->m_inflight) impl_->m_inflight->Add(1);
      conn->queued.fetch_add(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(impl_->queue_mu);
        impl_->queue.push_back(Task{conn, frame.request_id,
                                    std::move(*query),
                                    std::chrono::steady_clock::now()});
      }
      impl_->queue_cv.notify_one();
      return;
    }
    case MessageType::kWalSubscribe: {
      // The subscription answer rides the kWalBatch shape either way:
      // a refusal is a non-OK batch, acceptance is an immediate
      // heartbeat (the ack carrying the log end) followed by batches
      // from ServeSubscriptions as the log grows.
      WalBatch refusal;
      auto req = DecodeWalSubscribe(frame.body);
      WalSource* log = impl_->options.wal_source;
      if (!conn->handshook) {
        refusal.code = StatusCode::kFailedPrecondition;
        refusal.message = "subscribe before handshake";
      } else if (log == nullptr) {
        refusal.code = StatusCode::kFailedPrecondition;
        refusal.message = "no wal behind this server";
      } else if (!req.ok()) {
        refusal.code = req.status().code();
        refusal.message = req.status().message();
      } else if (req->from_offset > log->EndOffset() ||
                 !log->IsBoundary(req->from_offset)) {
        refusal.code = StatusCode::kInvalidArgument;
        refusal.message = "subscribe offset " +
                          std::to_string(req->from_offset) +
                          " is not a frame boundary of this log";
      } else {
        conn->subscribed = true;
        conn->sub_offset = req->from_offset;
        conn->sub_request_id = frame.request_id;
        conn->last_push = std::chrono::steady_clock::now();
        WalHeartbeat ack;
        ack.log_end = log->EndOffset();
        ack.chain_at_end = log->ChainAt(ack.log_end);
        WriteResponse(conn, MessageType::kWalHeartbeat, frame.request_id,
                      EncodeWalHeartbeat(ack));
        return;
      }
      WriteResponse(conn, MessageType::kWalBatch, frame.request_id,
                    EncodeWalBatch(refusal));
      conn->closed.store(true, std::memory_order_release);
      conn->transport->Close();
      return;
    }
    case MessageType::kHandshakeResponse:
    case MessageType::kQueryResponse:
    case MessageType::kWalBatch:
    case MessageType::kWalHeartbeat:
      // Responses flowing toward the server are a protocol violation.
      conn->closed.store(true, std::memory_order_release);
      conn->transport->Close();
      return;
  }
}

void RpcServer::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(impl_->queue_mu);
      impl_->queue_cv.wait(lock, [this] {
        return !impl_->queue.empty() ||
               !impl_->running.load(std::memory_order_acquire);
      });
      if (impl_->queue.empty()) return;  // Only on shutdown.
      task = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }
    QueryResponse resp;
    auto result = impl_->handler(task.query);
    if (result.ok()) {
      resp.rows = std::move(*result);
    } else {
      resp.code = result.status().code();
      resp.message = result.status().message();
    }
    WriteResponse(task.conn, MessageType::kQueryResponse, task.request_id,
                  EncodeQueryResponse(resp));
    task.conn->queued.fetch_sub(1, std::memory_order_acq_rel);
    impl_->inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (impl_->m_inflight) impl_->m_inflight->Add(-1);
    if (auto* histogram =
            impl_->m_latency_us[static_cast<size_t>(task.query.kind)]) {
      histogram->Observe(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - task.received)
                             .count());
    }
  }
}

}  // namespace kg::rpc
