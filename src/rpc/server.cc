#include "rpc/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/introspect.h"
#include "obs/trace.h"
#include "store/versioned_store.h"

namespace kg::rpc {

namespace {
/// One poll pass reads at most this many bytes per connection, so a
/// firehose connection cannot starve its neighbors inside a pass.
constexpr size_t kReadChunkBytes = 64 * 1024;
/// Event-loop nap when a full pass over every connection read nothing.
constexpr auto kIdleNap = std::chrono::microseconds(200);
}  // namespace

QueryHandler EngineHandler(const serve::QueryEngine* engine) {
  return [engine](const serve::Query& query) {
    return engine->TryExecute(query);
  };
}

QueryHandler StoreHandler(const store::VersionedKgStore* store) {
  return [store](const serve::Query& query) {
    return store->TryExecute(query);
  };
}

struct RpcServer::Connection {
  explicit Connection(std::unique_ptr<ITransport> t)
      : transport(std::move(t)) {}

  std::unique_ptr<ITransport> transport;
  FrameDecoder decoder;
  bool handshook = false;
  /// WAL subscription state; owned by the event-loop thread (HandleFrame
  /// and ServeSubscriptions both run there, so no lock is needed).
  bool subscribed = false;
  uint64_t sub_offset = 0;
  uint32_t sub_request_id = 0;
  /// Trace context the subscriber sent on its kWalSubscribe; echoed (or
  /// extended with a "wal.ship" span) on every kWalBatch pushed to it,
  /// so shipped batches join the replica's trace tree across the wire.
  bool sub_traced = false;
  TraceContext sub_trace;
  std::chrono::steady_clock::time_point last_push{};
  std::atomic<bool> closed{false};
  /// Requests queued or executing on this connection (admission bound).
  std::atomic<size_t> queued{0};
  /// Serializes response writes (workers and the event loop interleave).
  std::mutex write_mu;
};

struct RpcServer::Task {
  std::shared_ptr<Connection> conn;
  uint32_t request_id = 0;
  serve::Query query;
  std::chrono::steady_clock::time_point received;
  /// Server-side request span ("serve.<class>"), inert without a
  /// tracer; ends after the response is written.
  obs::Span span;
  /// Trace identity for the slow-query ring: the wire trace id when the
  /// request carried one, else the local span id.
  uint64_t trace_id = 0;
  /// Admission order, for deterministic slow-ring tie-breaks.
  uint64_t seq = 0;
  /// Stage time already spent on the event loop before queuing.
  double admission_us = 0.0;
  double decode_us = 0.0;
};

struct RpcServer::Impl {
  QueryHandler handler;
  RpcServerOptions options;

  std::atomic<bool> running{false};
  std::thread acceptor;
  std::thread event_loop;
  std::vector<std::thread> workers;

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Connection>> conns;

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Task> queue;

  std::atomic<size_t> inflight{0};

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_accepted{0};
  std::atomic<uint64_t> requests_shed{0};
  std::atomic<uint64_t> frame_errors{0};

  // Pre-resolved registry handles (all null without a registry):
  // registration locks once at Start, never per frame.
  obs::Counter* m_accepted_conns = nullptr;
  obs::Counter* m_accepted_reqs = nullptr;
  obs::Counter* m_shed = nullptr;
  obs::Counter* m_frame_errors = nullptr;
  obs::Gauge* m_active_conns = nullptr;
  obs::Gauge* m_inflight = nullptr;
  std::array<obs::Histogram*, serve::kNumQueryKinds> m_latency_us{};
  // Per-class stage attribution for the four server-owned stages; the
  // engine/store stages (cache probe, WAL append, overlay merge) are
  // observed by their own layers into the same registry.
  std::array<obs::Histogram*, serve::kNumQueryKinds> m_stage_admission{};
  std::array<obs::Histogram*, serve::kNumQueryKinds> m_stage_decode{};
  std::array<obs::Histogram*, serve::kNumQueryKinds> m_stage_queue_wait{};
  std::array<obs::Histogram*, serve::kNumQueryKinds> m_stage_execute{};

  /// Admission order of accepted queries (slow-ring tie-break key).
  std::atomic<uint64_t> admission_seq{0};
};

namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

RpcServer::RpcServer(QueryHandler handler,
                     std::unique_ptr<ITransportServer> listener,
                     RpcServerOptions options)
    : impl_(std::make_unique<Impl>()), listener_(std::move(listener)) {
  impl_->handler = std::move(handler);
  impl_->options = options;
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  if (impl_->running.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (auto* registry = impl_->options.registry) {
    impl_->m_accepted_conns =
        &registry->GetCounter("rpc.connections.accepted");
    impl_->m_accepted_reqs = &registry->GetCounter("rpc.requests.accepted");
    impl_->m_shed = &registry->GetCounter("rpc.requests.shed");
    impl_->m_frame_errors = &registry->GetCounter("rpc.frame_errors");
    impl_->m_active_conns = &registry->GetGauge("rpc.connections.active");
    impl_->m_inflight = &registry->GetGauge("rpc.inflight");
    for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
      const char* kind_name =
          serve::QueryKindName(static_cast<serve::QueryKind>(k));
      impl_->m_latency_us[k] = &registry->GetHistogram(
          std::string("rpc.latency_us.") + kind_name,
          obs::LatencyBucketsUs());
      impl_->m_stage_admission[k] = &obs::StageHistogram(
          *registry, obs::Stage::kAdmission, kind_name);
      impl_->m_stage_decode[k] =
          &obs::StageHistogram(*registry, obs::Stage::kDecode, kind_name);
      impl_->m_stage_queue_wait[k] = &obs::StageHistogram(
          *registry, obs::Stage::kQueueWait, kind_name);
      impl_->m_stage_execute[k] = &obs::StageHistogram(
          *registry, obs::Stage::kEngineExecute, kind_name);
    }
  }
  impl_->acceptor = std::thread([this] { AcceptLoop(); });
  impl_->event_loop = std::thread([this] { EventLoop(); });
  const size_t workers = std::max<size_t>(1, impl_->options.worker_threads);
  impl_->workers.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void RpcServer::Drain(int max_wait_ms) {
  if (!impl_->running.load(std::memory_order_acquire)) return;
  // New connections stop here; established ones keep their streams so
  // in-flight responses still go out.
  listener_->Shutdown();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(max_wait_ms < 0 ? 0
                                                                  : max_wait_ms);
  for (;;) {
    bool queue_empty;
    {
      std::lock_guard<std::mutex> lock(impl_->queue_mu);
      queue_empty = impl_->queue.empty();
    }
    if (queue_empty &&
        impl_->inflight.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop();
}

void RpcServer::Stop() {
  if (!impl_->running.exchange(false)) return;
  listener_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    for (auto& conn : impl_->conns) {
      conn->closed.store(true, std::memory_order_release);
      conn->transport->Close();
    }
  }
  impl_->queue_cv.notify_all();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  if (impl_->event_loop.joinable()) impl_->event_loop.join();
  for (auto& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();
  {
    // Tasks still queued die with their connections: the transports are
    // closed, so clients see kUnavailable, the retriable signal.
    std::lock_guard<std::mutex> lock(impl_->queue_mu);
    impl_->queue.clear();
  }
}

RpcServer::Stats RpcServer::stats() const {
  Stats stats;
  stats.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  stats.requests_accepted =
      impl_->requests_accepted.load(std::memory_order_relaxed);
  stats.requests_shed =
      impl_->requests_shed.load(std::memory_order_relaxed);
  stats.frame_errors = impl_->frame_errors.load(std::memory_order_relaxed);
  return stats;
}

void RpcServer::AcceptLoop() {
  while (impl_->running.load(std::memory_order_acquire)) {
    auto accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (!impl_->running.load(std::memory_order_acquire)) return;
      // kCancelled means Shutdown(); anything else is a listener
      // failure — either way there is nothing to serve on.
      return;
    }
    impl_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    if (impl_->m_accepted_conns) impl_->m_accepted_conns->Inc();
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    impl_->conns.push_back(
        std::make_shared<Connection>(std::move(*accepted)));
    if (impl_->m_active_conns) {
      impl_->m_active_conns->Set(static_cast<int64_t>(impl_->conns.size()));
    }
  }
}

void RpcServer::EventLoop() {
  std::string chunk;
  while (impl_->running.load(std::memory_order_acquire)) {
    std::vector<std::shared_ptr<Connection>> snapshot;
    {
      std::lock_guard<std::mutex> lock(impl_->conns_mu);
      snapshot = impl_->conns;
    }
    bool did_work = false;
    bool any_closed = false;
    for (const auto& conn : snapshot) {
      if (conn->closed.load(std::memory_order_acquire)) {
        any_closed = true;
        continue;
      }
      chunk.clear();
      auto read = conn->transport->TryRead(&chunk, kReadChunkBytes);
      if (!read.ok()) {
        conn->closed.store(true, std::memory_order_release);
        any_closed = true;
        continue;
      }
      if (*read == 0) continue;
      did_work = true;
      conn->decoder.Feed(chunk);
      Frame frame;
      FrameDecoder::Step step;
      while ((step = conn->decoder.Next(&frame)) ==
             FrameDecoder::Step::kFrame) {
        HandleFrame(conn, std::move(frame));
        if (conn->closed.load(std::memory_order_acquire)) break;
      }
      if (step == FrameDecoder::Step::kError) {
        // Framing is gone; nothing sent on this stream can be trusted
        // or answered. Drop the connection — the client sees
        // kUnavailable and retries elsewhere.
        impl_->frame_errors.fetch_add(1, std::memory_order_relaxed);
        if (impl_->m_frame_errors) impl_->m_frame_errors->Inc();
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
        any_closed = true;
      }
    }
    if (impl_->options.wal_source != nullptr &&
        ServeSubscriptions(snapshot)) {
      did_work = true;
    }
    if (any_closed) {
      std::lock_guard<std::mutex> lock(impl_->conns_mu);
      std::erase_if(impl_->conns, [](const auto& conn) {
        return conn->closed.load(std::memory_order_acquire) &&
               conn->queued.load(std::memory_order_acquire) == 0;
      });
      if (impl_->m_active_conns) {
        impl_->m_active_conns->Set(
            static_cast<int64_t>(impl_->conns.size()));
      }
    }
    if (!did_work) std::this_thread::sleep_for(kIdleNap);
  }
}

bool RpcServer::ServeSubscriptions(
    const std::vector<std::shared_ptr<Connection>>& conns) {
  WalSource* log = impl_->options.wal_source;
  const auto now = std::chrono::steady_clock::now();
  const auto heartbeat =
      std::chrono::milliseconds(impl_->options.wal_heartbeat_interval_ms);
  bool sent = false;
  for (const auto& conn : conns) {
    if (!conn->subscribed || conn->closed.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t end = log->EndOffset();
    if (end > conn->sub_offset) {
      WalBatch batch;
      batch.start_offset = conn->sub_offset;
      batch.frames =
          log->ReadFrom(conn->sub_offset, impl_->options.wal_batch_max_bytes,
                        &batch.end_offset, &batch.chain_after);
      batch.log_end = std::max(end, batch.end_offset);
      // A traced subscription gets its context back on every batch —
      // extended through a server-side "wal.ship" span when a tracer is
      // configured, echoed verbatim otherwise — so the receiver can
      // parent its apply span under the ship that produced the bytes.
      TraceContext ship_ctx = conn->sub_trace;
      obs::Span ship;
      if (conn->sub_traced && conn->sub_trace.sampled) {
        ship = obs::Tracer::StartWithParent(impl_->options.tracer,
                                            conn->sub_trace.parent_span_id,
                                            "wal.ship");
        if (ship.active()) {
          ship.SetAttr("start_offset", batch.start_offset);
          ship.SetAttr("end_offset", batch.end_offset);
          ship_ctx.parent_span_id = ship.id();
        }
      }
      WriteResponse(conn, MessageType::kWalBatch, conn->sub_request_id,
                    EncodeWalBatch(batch),
                    conn->sub_traced ? &ship_ctx : nullptr);
      conn->sub_offset = batch.end_offset;
      conn->last_push = now;
      sent = true;
    } else if (now - conn->last_push >= heartbeat) {
      WalHeartbeat hb;
      hb.log_end = end;
      hb.chain_at_end = log->ChainAt(end);
      WriteResponse(conn, MessageType::kWalHeartbeat, conn->sub_request_id,
                    EncodeWalHeartbeat(hb));
      conn->last_push = now;
      sent = true;
    }
  }
  return sent;
}

void RpcServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                              MessageType type, uint32_t request_id,
                              std::string_view body,
                              const TraceContext* trace) {
  std::string frame;
  AppendFrame(&frame, type, request_id, trace, body);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (!conn->transport->Write(frame).ok()) {
    conn->closed.store(true, std::memory_order_release);
  }
}

void RpcServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            Frame&& frame) {
  switch (frame.type) {
    case MessageType::kHandshakeRequest: {
      HandshakeResponse resp;
      resp.schema_version = impl_->options.schema_version;
      auto req = DecodeHandshakeRequest(frame.body);
      if (!req.ok()) {
        resp.code = req.status().code();
        resp.message = req.status().message();
      } else if (req->max_schema_version < impl_->options.schema_version) {
        // The client cannot consume what this server serves. Refuse
        // retriably: an older replica may still speak its dialect.
        resp.code = StatusCode::kUnavailable;
        resp.message = "serving snapshot schema version " +
                       std::to_string(impl_->options.schema_version) +
                       " is newer than client supports (" +
                       std::to_string(req->max_schema_version) + ")";
      } else {
        conn->handshook = true;
      }
      WriteResponse(conn, MessageType::kHandshakeResponse, frame.request_id,
                    EncodeHandshakeResponse(resp));
      if (!conn->handshook) {
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
      }
      return;
    }
    case MessageType::kQueryRequest: {
      const auto t_admit = std::chrono::steady_clock::now();
      if (!conn->handshook) {
        QueryResponse resp;
        resp.code = StatusCode::kFailedPrecondition;
        resp.message = "query before handshake";
        WriteResponse(conn, MessageType::kQueryResponse, frame.request_id,
                      EncodeQueryResponse(resp));
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
        return;
      }
      // Admission control: shed rather than queue without bound. The
      // response goes out on the event-loop thread immediately, so an
      // overloaded server stays responsive about being overloaded.
      const size_t inflight =
          impl_->inflight.load(std::memory_order_acquire);
      const size_t queued = conn->queued.load(std::memory_order_acquire);
      if (inflight >= impl_->options.max_inflight ||
          queued >= impl_->options.max_queue_per_connection) {
        impl_->requests_shed.fetch_add(1, std::memory_order_relaxed);
        if (impl_->m_shed) impl_->m_shed->Inc();
        QueryResponse resp;
        resp.code = StatusCode::kUnavailable;
        resp.message =
            inflight >= impl_->options.max_inflight
                ? "server overloaded: global in-flight limit"
                : "server overloaded: per-connection queue limit";
        WriteResponse(conn, MessageType::kQueryResponse, frame.request_id,
                      EncodeQueryResponse(resp));
        return;
      }
      const auto t_decode = std::chrono::steady_clock::now();
      auto query = DecodeQuery(frame.body);
      if (!query.ok()) {
        // The frame was well-formed (checksum passed) but the body is
        // not a query: a client bug, answered cleanly, not a stream
        // corruption worth killing the connection over.
        QueryResponse resp;
        resp.code = query.status().code();
        resp.message = query.status().message();
        WriteResponse(conn, MessageType::kQueryResponse, frame.request_id,
                      EncodeQueryResponse(resp));
        return;
      }
      const auto t_queued = std::chrono::steady_clock::now();
      impl_->requests_accepted.fetch_add(1, std::memory_order_relaxed);
      if (impl_->m_accepted_reqs) impl_->m_accepted_reqs->Inc();
      impl_->inflight.fetch_add(1, std::memory_order_acq_rel);
      if (impl_->m_inflight) impl_->m_inflight->Add(1);
      conn->queued.fetch_add(1, std::memory_order_acq_rel);
      Task task;
      task.conn = conn;
      task.request_id = frame.request_id;
      task.query = std::move(*query);
      task.received = t_queued;
      task.seq = impl_->admission_seq.fetch_add(1, std::memory_order_relaxed);
      task.admission_us = ElapsedUs(t_admit, t_decode);
      task.decode_us = ElapsedUs(t_decode, t_queued);
      if (obs::Tracer* tracer = impl_->options.tracer;
          tracer != nullptr && (!frame.has_trace || frame.trace.sampled)) {
        // Sampled wire context roots the span under the remote caller's
        // span; a context-free request starts a server-local trace.
        task.span = obs::Tracer::StartWithParent(
            tracer, frame.has_trace ? frame.trace.parent_span_id : 0,
            std::string("serve.") + serve::QueryKindName(task.query.kind));
      }
      task.trace_id =
          frame.has_trace ? frame.trace.trace_id : task.span.id();
      {
        std::lock_guard<std::mutex> lock(impl_->queue_mu);
        impl_->queue.push_back(std::move(task));
      }
      impl_->queue_cv.notify_one();
      return;
    }
    case MessageType::kWalSubscribe: {
      // The subscription answer rides the kWalBatch shape either way:
      // a refusal is a non-OK batch, acceptance is an immediate
      // heartbeat (the ack carrying the log end) followed by batches
      // from ServeSubscriptions as the log grows.
      WalBatch refusal;
      auto req = DecodeWalSubscribe(frame.body);
      WalSource* log = impl_->options.wal_source;
      if (!conn->handshook) {
        refusal.code = StatusCode::kFailedPrecondition;
        refusal.message = "subscribe before handshake";
      } else if (log == nullptr) {
        refusal.code = StatusCode::kFailedPrecondition;
        refusal.message = "no wal behind this server";
      } else if (!req.ok()) {
        refusal.code = req.status().code();
        refusal.message = req.status().message();
      } else if (req->from_offset > log->EndOffset() ||
                 !log->IsBoundary(req->from_offset)) {
        refusal.code = StatusCode::kInvalidArgument;
        refusal.message = "subscribe offset " +
                          std::to_string(req->from_offset) +
                          " is not a frame boundary of this log";
      } else {
        conn->subscribed = true;
        conn->sub_offset = req->from_offset;
        conn->sub_request_id = frame.request_id;
        if (frame.has_trace) {
          conn->sub_traced = true;
          conn->sub_trace = frame.trace;
        }
        conn->last_push = std::chrono::steady_clock::now();
        WalHeartbeat ack;
        ack.log_end = log->EndOffset();
        ack.chain_at_end = log->ChainAt(ack.log_end);
        WriteResponse(conn, MessageType::kWalHeartbeat, frame.request_id,
                      EncodeWalHeartbeat(ack));
        return;
      }
      WriteResponse(conn, MessageType::kWalBatch, frame.request_id,
                    EncodeWalBatch(refusal));
      conn->closed.store(true, std::memory_order_release);
      conn->transport->Close();
      return;
    }
    case MessageType::kIntrospectRequest: {
      IntrospectResponse resp;
      if (!conn->handshook) {
        resp.code = StatusCode::kFailedPrecondition;
        resp.message = "introspect before handshake";
        WriteResponse(conn, MessageType::kIntrospectResponse,
                      frame.request_id, EncodeIntrospectResponse(resp));
        conn->closed.store(true, std::memory_order_release);
        conn->transport->Close();
        return;
      }
      auto req = DecodeIntrospectRequest(frame.body);
      if (!req.ok()) {
        // Valid frame, malformed body: answered cleanly, like a bad
        // query body.
        resp.code = req.status().code();
        resp.message = req.status().message();
        WriteResponse(conn, MessageType::kIntrospectResponse,
                      frame.request_id, EncodeIntrospectResponse(resp));
        return;
      }
      switch (req->what) {
        case IntrospectWhat::kMetricsJson:
        case IntrospectWhat::kMetricsPrometheus:
          if (impl_->options.registry == nullptr) {
            resp.code = StatusCode::kFailedPrecondition;
            resp.message = "no metrics registry behind this server";
          } else if (req->what == IntrospectWhat::kMetricsJson) {
            resp.payload = impl_->options.registry->ToJson();
          } else {
            resp.payload = impl_->options.registry->ToPrometheus();
          }
          break;
        case IntrospectWhat::kSlowQueries:
          if (impl_->options.slow_ring == nullptr) {
            resp.code = StatusCode::kFailedPrecondition;
            resp.message = "no slow-query ring behind this server";
          } else {
            resp.payload = impl_->options.slow_ring->ToJson();
          }
          break;
        case IntrospectWhat::kTrace:
          if (impl_->options.tracer == nullptr) {
            resp.code = StatusCode::kFailedPrecondition;
            resp.message = "no tracer behind this server";
          } else {
            resp.payload = impl_->options.tracer->ToJson();
          }
          break;
      }
      WriteResponse(conn, MessageType::kIntrospectResponse, frame.request_id,
                    EncodeIntrospectResponse(resp));
      return;
    }
    case MessageType::kHandshakeResponse:
    case MessageType::kQueryResponse:
    case MessageType::kWalBatch:
    case MessageType::kWalHeartbeat:
    case MessageType::kIntrospectResponse:
      // Responses flowing toward the server are a protocol violation.
      conn->closed.store(true, std::memory_order_release);
      conn->transport->Close();
      return;
  }
}

void RpcServer::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(impl_->queue_mu);
      impl_->queue_cv.wait(lock, [this] {
        return !impl_->queue.empty() ||
               !impl_->running.load(std::memory_order_acquire);
      });
      if (impl_->queue.empty()) return;  // Only on shutdown.
      task = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }
    const auto t_exec = std::chrono::steady_clock::now();
    const double queue_wait_us = ElapsedUs(task.received, t_exec);
    QueryResponse resp;
    obs::Span exec_span = task.span.Child("execute");
    auto result = impl_->handler(task.query);
    exec_span.End();
    const auto t_done = std::chrono::steady_clock::now();
    const double execute_us = ElapsedUs(t_exec, t_done);
    if (result.ok()) {
      resp.rows = std::move(*result);
    } else {
      resp.code = result.status().code();
      resp.message = result.status().message();
      task.span.SetAttr("error", result.status().message());
    }
    WriteResponse(task.conn, MessageType::kQueryResponse, task.request_id,
                  EncodeQueryResponse(resp));
    task.conn->queued.fetch_sub(1, std::memory_order_acq_rel);
    impl_->inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (impl_->m_inflight) impl_->m_inflight->Add(-1);
    const size_t kind = static_cast<size_t>(task.query.kind);
    if (auto* histogram = impl_->m_latency_us[kind]) {
      histogram->Observe(ElapsedUs(task.received, t_done));
    }
    if (impl_->m_stage_admission[kind]) {
      impl_->m_stage_admission[kind]->Observe(task.admission_us);
      impl_->m_stage_decode[kind]->Observe(task.decode_us);
      impl_->m_stage_queue_wait[kind]->Observe(queue_wait_us);
      impl_->m_stage_execute[kind]->Observe(execute_us);
    }
    const uint64_t root_span_id = task.span.id();
    task.span.End();
    if (obs::SlowQueryRing* ring = impl_->options.slow_ring) {
      obs::SlowQuery slow;
      slow.trace_id = task.trace_id;
      slow.root_span_id = root_span_id;
      slow.query_class = serve::QueryKindName(task.query.kind);
      slow.duration_ticks = obs::Histogram::ToTicks(
          task.admission_us + task.decode_us + queue_wait_us + execute_us);
      slow.seq = task.seq;
      slow.stage_ticks = {
          {obs::Stage::kAdmission, obs::Histogram::ToTicks(task.admission_us)},
          {obs::Stage::kDecode, obs::Histogram::ToTicks(task.decode_us)},
          {obs::Stage::kQueueWait, obs::Histogram::ToTicks(queue_wait_us)},
          {obs::Stage::kEngineExecute, obs::Histogram::ToTicks(execute_us)},
      };
      ring->Offer(std::move(slow));
    }
  }
}

}  // namespace kg::rpc
