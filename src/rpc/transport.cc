#include "rpc/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace kg::rpc {

namespace {

/// One direction of a loopback connection: an ordered byte queue with
/// close semantics matching a socket (writes to a closed pipe fail;
/// reads drain the buffer, then fail).
struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  std::string buf;
  bool closed = false;

  Status Write(std::string_view bytes) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return Status::Unavailable("loopback pipe closed");
    buf.append(bytes);
    cv.notify_all();
    return Status::OK();
  }

  Result<size_t> Take(std::string* out, size_t max) {
    const size_t n = std::min(max, buf.size());
    if (n == 0) {
      if (closed) return Status::Unavailable("loopback connection closed");
      return size_t{0};
    }
    out->append(buf, 0, n);
    buf.erase(0, n);
    return n;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
};

class InMemoryTransport : public ITransport {
 public:
  InMemoryTransport(std::shared_ptr<Pipe> read_pipe,
                    std::shared_ptr<Pipe> write_pipe, std::string label)
      : read_(std::move(read_pipe)),
        write_(std::move(write_pipe)),
        label_(std::move(label)) {}

  ~InMemoryTransport() override { Close(); }

  Status Write(std::string_view bytes) override {
    return write_->Write(bytes);
  }

  Result<size_t> TryRead(std::string* out, size_t max) override {
    std::unique_lock<std::mutex> lock(read_->mu);
    return read_->Take(out, max);
  }

  Result<size_t> Read(std::string* out, size_t max,
                      int timeout_ms) override {
    std::unique_lock<std::mutex> lock(read_->mu);
    const auto ready = [this] { return !read_->buf.empty() || read_->closed; };
    if (timeout_ms < 0) {
      read_->cv.wait(lock, ready);
    } else if (!read_->cv.wait_for(
                   lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return size_t{0};  // Timeout: stream still healthy, nothing arrived.
    }
    return read_->Take(out, max);
  }

  void Close() override {
    read_->Close();
    write_->Close();
  }

  std::string peer() const override { return label_; }

 private:
  std::shared_ptr<Pipe> read_;
  std::shared_ptr<Pipe> write_;
  std::string label_;
};

}  // namespace

// ---- InMemoryTransportServer --------------------------------------------

struct InMemoryTransportServer::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::unique_ptr<ITransport>> pending;
  bool shutdown = false;
  size_t next_id = 0;
};

InMemoryTransportServer::InMemoryTransportServer()
    : state_(std::make_shared<State>()) {}

InMemoryTransportServer::~InMemoryTransportServer() { Shutdown(); }

Result<std::unique_ptr<ITransport>> InMemoryTransportServer::Connect() {
  auto client_to_server = std::make_shared<Pipe>();
  auto server_to_client = std::make_shared<Pipe>();
  std::unique_ptr<ITransport> client_end;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->shutdown) {
      return Status::Unavailable("loopback server is shut down");
    }
    const std::string label = "loopback#" + std::to_string(state_->next_id++);
    client_end = std::make_unique<InMemoryTransport>(
        server_to_client, client_to_server, label);
    state_->pending.push_back(std::make_unique<InMemoryTransport>(
        client_to_server, server_to_client, label));
    state_->cv.notify_one();
  }
  return client_end;
}

Result<std::unique_ptr<ITransport>> InMemoryTransportServer::Accept() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] {
    return !state_->pending.empty() || state_->shutdown;
  });
  if (!state_->pending.empty()) {
    auto transport = std::move(state_->pending.front());
    state_->pending.pop_front();
    return transport;
  }
  return Status::Cancelled("loopback server shut down");
}

void InMemoryTransportServer::Shutdown() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->shutdown = true;
  state_->cv.notify_all();
}

// ---- TCP ----------------------------------------------------------------

namespace {

/// Milliseconds between shutdown-flag checks while blocked in poll().
constexpr int kPollTickMs = 50;

class TcpTransport : public ITransport {
 public:
  TcpTransport(int fd, std::string label)
      : fd_(fd), label_(std::move(label)) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override {
    Close();
    // The descriptor is released only here, when no other thread can
    // still hold a reference to this transport — close()ing it in
    // Close() would race a reader mid-recv() and hand the fd number to
    // whoever opens one next.
    ::close(fd_);
  }

  Status Write(std::string_view bytes) override {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(std::string("tcp send failed: ") +
                                   std::strerror(errno));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Result<size_t> TryRead(std::string* out, size_t max) override {
    return DoRead(out, max, MSG_DONTWAIT);
  }

  Result<size_t> Read(std::string* out, size_t max,
                      int timeout_ms) override {
    int waited_ms = 0;
    while (!closed_.load(std::memory_order_acquire)) {
      pollfd pfd{fd_, POLLIN, 0};
      const int tick = timeout_ms < 0
                           ? kPollTickMs
                           : std::min(kPollTickMs, timeout_ms - waited_ms);
      const int rc = ::poll(&pfd, 1, tick);
      if (rc < 0 && errno != EINTR) {
        return Status::Unavailable(std::string("tcp poll failed: ") +
                                   std::strerror(errno));
      }
      if (rc > 0) return DoRead(out, max, 0);
      if (timeout_ms >= 0) {
        waited_ms += tick;
        if (waited_ms >= timeout_ms) return size_t{0};
      }
    }
    return Status::Unavailable("tcp connection closed");
  }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      // shutdown() only: it unblocks threads parked in poll()/recv()
      // on this socket while keeping the descriptor valid under them.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string peer() const override { return label_; }

 private:
  Result<size_t> DoRead(std::string* out, size_t max, int flags) {
    char chunk[4096];
    const size_t want = std::min(max, sizeof(chunk));
    const ssize_t n = ::recv(fd_, chunk, want, flags);
    if (n > 0) {
      out->append(chunk, static_cast<size_t>(n));
      return static_cast<size_t>(n);
    }
    if (n == 0) return Status::Unavailable("tcp connection closed by peer");
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return size_t{0};
    }
    return Status::Unavailable(std::string("tcp recv failed: ") +
                               std::strerror(errno));
  }

  int fd_;
  std::string label_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<std::unique_ptr<TcpTransportServer>> TcpTransportServer::Listen(
    uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(
        std::string("bind(127.0.0.1:") + std::to_string(port) +
        ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status = Status::IoError(std::string("listen() failed: ") +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status status = Status::IoError(
        std::string("getsockname() failed: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpTransportServer>(
      new TcpTransportServer(fd, ntohs(addr.sin_port)));
}

TcpTransportServer::~TcpTransportServer() {
  Shutdown();
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<ITransport>> TcpTransportServer::Accept() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return Status::Cancelled("tcp server shut down");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollTickMs);
    if (rc < 0 && errno != EINTR) {
      return Status::IoError(std::string("accept poll failed: ") +
                             std::strerror(errno));
    }
    if (rc <= 0) continue;
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int conn =
        ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IoError(std::string("accept() failed: ") +
                             std::strerror(errno));
    }
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    return std::unique_ptr<ITransport>(std::make_unique<TcpTransport>(
        conn, std::string("tcp:") + ip + ":" +
                  std::to_string(ntohs(addr.sin_port))));
  }
}

void TcpTransportServer::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
}

std::string TcpTransportServer::address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

Result<std::unique_ptr<ITransport>> TcpConnect(const std::string& host,
                                               uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::Unavailable(
        "connect(" + host + ":" + std::to_string(port) +
        ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<ITransport>(std::make_unique<TcpTransport>(
      fd, "tcp:" + host + ":" + std::to_string(port)));
}

// ---- ChaosTransport -----------------------------------------------------

ChaosTransport::ChaosTransport(std::unique_ptr<ITransport> inner,
                               const FaultInjector* injector,
                               std::string channel)
    : inner_(std::move(inner)),
      injector_(injector),
      write_channel_(channel + "/tx"),
      read_channel_(channel + "/rx") {}

Status ChaosTransport::Write(std::string_view bytes) {
  const FaultInjector::Attempt attempt =
      injector_->Probe(write_channel_, writes_++);
  virtual_latency_ms_ += attempt.latency_ms;
  switch (attempt.kind) {
    case FaultKind::kTransient:
      // The frame vanishes in flight; the caller's read deadline and
      // retry policy must recover, exactly as with a lost packet.
      ++frames_dropped_;
      return Status::OK();
    case FaultKind::kTerminal: {
      // The wire itself is dead from here on.
      inner_->Close();
      return Status::Unavailable("injected: connection reset");
    }
    case FaultKind::kSlow:
    case FaultKind::kNone:
      break;
  }
  if (injector_->MaybeCorrupt(write_channel_,
                              std::to_string(writes_ - 1), "x") != "x") {
    // Corruption channel fired: deliver the frame with one bit flipped
    // mid-payload, so the peer's Checksum32 rejects it.
    std::string garbled(bytes);
    garbled[garbled.size() / 2] =
        static_cast<char>(garbled[garbled.size() / 2] ^ 0x20);
    ++frames_garbled_;
    return inner_->Write(garbled);
  }
  return inner_->Write(bytes);
}

Result<size_t> ChaosTransport::TryRead(std::string* out, size_t max) {
  const size_t before = out->size();
  auto read = inner_->TryRead(out, max);
  if (read.ok() && *read > 0) MaybeGarbleRead(out, before);
  return read;
}

Result<size_t> ChaosTransport::Read(std::string* out, size_t max,
                                    int timeout_ms) {
  const size_t before = out->size();
  auto read = inner_->Read(out, max, timeout_ms);
  if (read.ok() && *read > 0) MaybeGarbleRead(out, before);
  return read;
}

void ChaosTransport::MaybeGarbleRead(std::string* out, size_t before) {
  const FaultInjector::Attempt attempt =
      injector_->Probe(read_channel_, reads_++);
  virtual_latency_ms_ += attempt.latency_ms;
  if (attempt.kind == FaultKind::kTransient && out->size() > before) {
    const size_t at = before + (out->size() - before) / 2;
    (*out)[at] = static_cast<char>((*out)[at] ^ 0x20);
    ++frames_garbled_;
  }
}

void ChaosTransport::Close() { inner_->Close(); }

std::string ChaosTransport::peer() const {
  return inner_->peer() + " (chaos)";
}

}  // namespace kg::rpc
