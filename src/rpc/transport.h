#ifndef KGRAPH_RPC_TRANSPORT_H_
#define KGRAPH_RPC_TRANSPORT_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/fault.h"
#include "common/status.h"

namespace kg::rpc {

/// One bidirectional byte stream between a client and the server. The
/// protocol layers above see only ordered bytes — framing, checksums,
/// and message semantics all live in frame.h — so a TCP socket and an
/// in-memory queue pair are interchangeable underneath the same server
/// and client code.
///
/// Close() from either side unblocks every pending Read/Write on the
/// stream; after the peer closes, reads drain buffered bytes and then
/// fail with kUnavailable (a dead connection is a retriable condition —
/// another replica may answer).
class ITransport {
 public:
  virtual ~ITransport() = default;

  /// Writes all of `bytes` in order, or fails. Writers on one stream
  /// must be externally serialized (the server takes a per-connection
  /// write lock).
  virtual Status Write(std::string_view bytes) = 0;

  /// Non-blocking read: appends up to `max` already-available bytes to
  /// `*out` and returns how many. 0 with OK means "nothing available
  /// yet"; a closed/broken stream returns kUnavailable once drained.
  virtual Result<size_t> TryRead(std::string* out, size_t max) = 0;

  /// Blocking read: waits until at least one byte is available, then
  /// behaves like TryRead. Returns kUnavailable when the stream closes
  /// with nothing left to drain. `timeout_ms >= 0` bounds the wait and
  /// returns OK with 0 bytes on expiry (a timeout is the caller's
  /// policy decision, not a stream failure); -1 waits indefinitely.
  virtual Result<size_t> Read(std::string* out, size_t max,
                              int timeout_ms = -1) = 0;

  /// Idempotent; unblocks both directions.
  virtual void Close() = 0;

  /// Diagnostic label ("loopback#3", "tcp:127.0.0.1:41973").
  virtual std::string peer() const = 0;
};

/// Accepts transports on the serving side.
class ITransportServer {
 public:
  virtual ~ITransportServer() = default;

  /// Blocks until a connection arrives (returns it) or Shutdown() is
  /// called (returns kCancelled).
  virtual Result<std::unique_ptr<ITransport>> Accept() = 0;

  /// Stops accepting; unblocks pending Accept() calls. Idempotent.
  virtual void Shutdown() = 0;

  /// Printable listen address ("loopback", "127.0.0.1:41973").
  virtual std::string address() const = 0;
};

// ---- In-memory loopback -------------------------------------------------

/// Same-process transport: two bounded-latency byte queues, no sockets,
/// no kernel, no ports. This is the deterministic rig the wire-level
/// test battery runs on — byte-exact, ordering-exact, and immune to CI
/// network flakiness — and the honest upper bound for what the protocol
/// itself costs (bench_rpc reports it next to TCP).
class InMemoryTransportServer : public ITransportServer {
 public:
  InMemoryTransportServer();
  ~InMemoryTransportServer() override;

  /// Creates a connected pair, queues the server end for Accept(), and
  /// returns the client end. Fails with kUnavailable after Shutdown().
  Result<std::unique_ptr<ITransport>> Connect();

  Result<std::unique_ptr<ITransport>> Accept() override;
  void Shutdown() override;
  std::string address() const override { return "loopback"; }

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// ---- TCP ----------------------------------------------------------------

/// POSIX TCP stream transport. Listen on port 0 to let the kernel pick;
/// address() reports the bound port.
class TcpTransportServer : public ITransportServer {
 public:
  static Result<std::unique_ptr<TcpTransportServer>> Listen(uint16_t port);
  ~TcpTransportServer() override;

  Result<std::unique_ptr<ITransport>> Accept() override;
  void Shutdown() override;
  std::string address() const override;
  uint16_t port() const { return port_; }

 private:
  TcpTransportServer(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
  std::mutex mu_;
  bool shutdown_ = false;
};

/// Connects to a TCP endpoint ("127.0.0.1", port).
Result<std::unique_ptr<ITransport>> TcpConnect(const std::string& host,
                                               uint16_t port);

// ---- Chaos wrapper ------------------------------------------------------

/// Wraps a transport with FaultInjector-driven wire chaos: per written
/// frame, the injector's pure hash of (seed, channel, frame index)
/// decides drop / garble (one flipped byte — the peer's checksum catches
/// it) / slow (virtual latency surfaced to the caller); received bytes
/// can be garbled the same way on a separate channel. Decisions never
/// depend on wall clock or thread schedule, so a chaos run replays
/// bit-for-bit per seed (rpc_chaos_test).
///
/// Writes are assumed to be whole frames (the client writes one frame
/// per call), so "drop" loses exactly one message, like a lost packet
/// carrying it.
class ChaosTransport : public ITransport {
 public:
  /// `channel` names this connection in the fault plan ("client-3").
  ChaosTransport(std::unique_ptr<ITransport> inner,
                 const FaultInjector* injector, std::string channel);

  Status Write(std::string_view bytes) override;
  Result<size_t> TryRead(std::string* out, size_t max) override;
  Result<size_t> Read(std::string* out, size_t max,
                      int timeout_ms = -1) override;
  void Close() override;
  std::string peer() const override;

  /// Virtual milliseconds of injected latency so far (for deadline
  /// accounting in retry loops; nothing here sleeps for real).
  double virtual_latency_ms() const { return virtual_latency_ms_; }

  size_t frames_dropped() const { return frames_dropped_; }
  size_t frames_garbled() const { return frames_garbled_; }

 private:
  /// Applies the read-direction corruption channel to bytes appended to
  /// `*out` after `before`.
  void MaybeGarbleRead(std::string* out, size_t before);

  std::unique_ptr<ITransport> inner_;
  const FaultInjector* injector_;
  std::string write_channel_;
  std::string read_channel_;
  size_t writes_ = 0;
  size_t reads_ = 0;
  size_t frames_dropped_ = 0;
  size_t frames_garbled_ = 0;
  double virtual_latency_ms_ = 0.0;
};

}  // namespace kg::rpc

#endif  // KGRAPH_RPC_TRANSPORT_H_
