#ifndef KGRAPH_RPC_FRAME_H_
#define KGRAPH_RPC_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/query_engine.h"

namespace kg::rpc {

/// Protocol generation of the wire format itself. Carried in every
/// message header; a decoder rejects frames from a different generation
/// before looking at the body, so incompatible peers fail fast with a
/// clean error instead of misparsing each other.
inline constexpr uint8_t kProtocolVersion = 1;

/// Refuse to believe a single message exceeds this; a larger declared
/// length is corruption, not data (the WAL framing rule — keeps a
/// flipped length bit from swallowing the stream as one "frame").
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;

/// Bytes of the fixed frame prefix: u32 payload length, u32 checksum.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Bytes of the message header inside the payload: u8 protocol version,
/// u8 message type, u16 flags (reserved, zero), u32 request id.
inline constexpr size_t kMessageHeaderBytes = 8;

/// The message shapes of the protocol: the four request/response pairs
/// of the serving path, the three WAL-shipping messages of the
/// replication path (a subscriber sends kWalSubscribe once after the
/// handshake; the server then streams kWalBatch frames as the log grows
/// and kWalHeartbeat frames when it does not), and the introspection
/// pair (a handshaken client scrapes the server's live metrics / slow
/// queries / trace dump).
enum class MessageType : uint8_t {
  kHandshakeRequest = 0,   ///< First message on every connection.
  kHandshakeResponse = 1,
  kQueryRequest = 2,
  kQueryResponse = 3,
  kWalSubscribe = 4,       ///< Client: stream the WAL from this offset.
  kWalBatch = 5,           ///< Server: whole WAL frames + checksum chain.
  kWalHeartbeat = 6,       ///< Server: liveness + log end while idle.
  kIntrospectRequest = 7,  ///< Client: scrape metrics/slow-ring/traces.
  kIntrospectResponse = 8,
};

/// Highest MessageType value the decoder accepts.
inline constexpr uint8_t kMaxMessageType =
    static_cast<uint8_t>(MessageType::kIntrospectResponse);

const char* MessageTypeName(MessageType type);

/// The one assigned bit of the u16 flags field: the message header is
/// followed by a trace-context extension. All other bits stay reserved
/// and must be zero.
inline constexpr uint16_t kFlagTraceContext = 0x1;

/// Bytes of the trace-context extension payload (after its own u8
/// length prefix): u64 trace id, u64 parent span id, u8 sampled.
inline constexpr uint8_t kTraceContextBytes = 17;

/// Distributed trace context carried across the wire so one request
/// yields one connected span tree across router -> shard -> store. The
/// ids come from the deterministic obs::Tracer scheme (Fnv1a64 of
/// seed|path), so same-seed runs propagate identical ids.
struct TraceContext {
  uint64_t trace_id = 0;        ///< Root span id of the request's tree.
  uint64_t parent_span_id = 0;  ///< Span on the sender that caused this.
  bool sampled = false;         ///< Receiver should record spans.
};

/// One decoded message. `request_id` correlates a response with its
/// request (the client assigns ids; the server echoes them). When the
/// sender attached a trace context, `has_trace` is set and `trace`
/// holds it.
struct Frame {
  uint8_t protocol_version = kProtocolVersion;
  MessageType type = MessageType::kQueryRequest;
  uint32_t request_id = 0;
  bool has_trace = false;
  TraceContext trace;
  std::string body;
};

/// Appends one framed message to `*buf`:
///   [u32le payload length][u32le Checksum32(payload)][payload]
/// where payload = [u8 version][u8 type][u16le flags=0][u32le request id]
/// [body]. The checksum covers the message header too, so a bit flip in
/// the version/type/id fields is caught like one in the body.
void AppendFrame(std::string* buf, MessageType type, uint32_t request_id,
                 std::string_view body);

/// Same, but with a trace-context extension when `trace` is non-null:
/// flags gains kFlagTraceContext and the header is followed by
/// [u8 ext_len=17][u64le trace id][u64le parent span id][u8 sampled]
/// before the body. A null `trace` encodes byte-identically to the
/// four-argument overload, so untraced peers keep their golden bytes.
void AppendFrame(std::string* buf, MessageType type, uint32_t request_id,
                 const TraceContext* trace, std::string_view body);

/// Incremental frame scanner for a byte stream. Feed() appends received
/// bytes; Next() yields complete frames until the buffer holds only a
/// partial one. Any malformed input — oversize length, checksum
/// mismatch, wrong protocol version, unknown type, unassigned flag
/// bits, bad trace-context extension — parks the decoder in an error
/// state (the stream is unrecoverable
/// once framing is lost; the connection must be dropped). Never throws
/// or crashes on arbitrary bytes (rpc_frame_fuzz_test).
class FrameDecoder {
 public:
  enum class Step {
    kFrame,     ///< *out holds the next complete frame.
    kNeedMore,  ///< No complete frame buffered; feed more bytes.
    kError,     ///< Stream corrupt; see error(). Sticky.
  };

  void Feed(std::string_view bytes);
  Step Next(Frame* out);

  const Status& error() const { return error_; }
  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  Status error_;
};

// ---- Message bodies -----------------------------------------------------
// All integers little-endian; all strings length-prefixed (u32le), so
// every encoding is injective and byte-deterministic. Decoders reject
// short bodies, out-of-range enums, and trailing garbage.

/// Client hello: the newest snapshot schema generation the client can
/// consume. The server refuses (kUnavailable) when its snapshot is
/// newer — the wire twin of serve::QueryEngine::TryExecute's check.
struct HandshakeRequest {
  uint32_t max_schema_version = 0;
};

/// Server reply: OK plus the serving snapshot's schema generation, or a
/// non-OK status explaining the refusal.
struct HandshakeResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint32_t schema_version = 0;
};

/// Query answer: the result rows on success, else the failure status.
/// kUnavailable is the load-shed/overload signal — retriable by design,
/// so the common retry/breaker machinery applies across the wire.
struct QueryResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  serve::QueryResult rows;
};

std::string EncodeHandshakeRequest(const HandshakeRequest& req);
Result<HandshakeRequest> DecodeHandshakeRequest(std::string_view body);

std::string EncodeHandshakeResponse(const HandshakeResponse& resp);
Result<HandshakeResponse> DecodeHandshakeResponse(std::string_view body);

/// Serializes a serve::Query (kind, node kind, k, then the four string
/// fields). Deterministic: equal queries encode byte-identically.
std::string EncodeQuery(const serve::Query& query);
Result<serve::Query> DecodeQuery(std::string_view body);

std::string EncodeQueryResponse(const QueryResponse& resp);
Result<QueryResponse> DecodeQueryResponse(std::string_view body);

// ---- WAL shipping (replication path) ------------------------------------

/// Subscriber hello: stream the primary's WAL to me starting at
/// `from_offset` (a frame boundary the subscriber has verified —
/// byte offset 0 for a fresh replica, its persisted applied offset for
/// a catch-up resume).
struct WalSubscribe {
  uint64_t from_offset = 0;
};

/// One shipped slice of the primary's WAL: whole framed records
/// covering [start_offset, end_offset), plus `chain_after` — the
/// primary's Checksum32 chain value at end_offset — so the subscriber
/// proves its replayed prefix is byte-identical before serving from it.
/// `log_end` is the primary's current log end (lag = log_end -
/// end_offset). A non-OK `code` refuses the subscription (bad offset,
/// no log behind this server) and the connection closes after it.
struct WalBatch {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint64_t start_offset = 0;
  uint64_t end_offset = 0;
  uint32_t chain_after = 0;
  uint64_t log_end = 0;
  std::string frames;
};

/// Idle-stream liveness: the log end and the chain value there, so a
/// fully-caught-up subscriber keeps verifying it has not diverged.
struct WalHeartbeat {
  uint64_t log_end = 0;
  uint32_t chain_at_end = 0;
};

std::string EncodeWalSubscribe(const WalSubscribe& req);
Result<WalSubscribe> DecodeWalSubscribe(std::string_view body);

std::string EncodeWalBatch(const WalBatch& batch);
Result<WalBatch> DecodeWalBatch(std::string_view body);

std::string EncodeWalHeartbeat(const WalHeartbeat& hb);
Result<WalHeartbeat> DecodeWalHeartbeat(std::string_view body);

// ---- Introspection (observability path) ----------------------------------

/// What a kIntrospectRequest asks the server to expose.
enum class IntrospectWhat : uint8_t {
  kMetricsJson = 0,        ///< MetricsRegistry::ToJson().
  kMetricsPrometheus = 1,  ///< MetricsRegistry::ToPrometheus().
  kSlowQueries = 2,        ///< SlowQueryRing::ToJson().
  kTrace = 3,              ///< Tracer::ToJson() span dump.
};

/// Highest IntrospectWhat value the decoder accepts.
inline constexpr uint8_t kMaxIntrospectWhat =
    static_cast<uint8_t>(IntrospectWhat::kTrace);

const char* IntrospectWhatName(IntrospectWhat what);

/// Client: expose one of your live observability surfaces.
struct IntrospectRequest {
  IntrospectWhat what = IntrospectWhat::kMetricsJson;
};

/// Server reply: the requested exposition in `payload` on success, else
/// a non-OK status (kInvalidArgument for a malformed request body,
/// kFailedPrecondition when the server has no such source wired).
struct IntrospectResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string payload;
};

std::string EncodeIntrospectRequest(const IntrospectRequest& req);
Result<IntrospectRequest> DecodeIntrospectRequest(std::string_view body);

std::string EncodeIntrospectResponse(const IntrospectResponse& resp);
Result<IntrospectResponse> DecodeIntrospectResponse(std::string_view body);

}  // namespace kg::rpc

#endif  // KGRAPH_RPC_FRAME_H_
