#include "rpc/frame.h"

#include <cstring>

#include "common/hash.h"

namespace kg::rpc {

namespace {

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void AppendU32Le(std::string* buf, uint32_t v) {
  buf->push_back(static_cast<char>(v & 0xff));
  buf->push_back(static_cast<char>((v >> 8) & 0xff));
  buf->push_back(static_cast<char>((v >> 16) & 0xff));
  buf->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU16Le(std::string* buf, uint16_t v) {
  buf->push_back(static_cast<char>(v & 0xff));
  buf->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU64Le(std::string* buf, uint64_t v) {
  AppendU32Le(buf, static_cast<uint32_t>(v & 0xffffffffu));
  AppendU32Le(buf, static_cast<uint32_t>(v >> 32));
}

void AppendString(std::string* buf, std::string_view s) {
  AppendU32Le(buf, static_cast<uint32_t>(s.size()));
  buf->append(s);
}

/// Sequential reader over a body; every Take* fails cleanly at the end
/// of the buffer instead of reading past it.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  Result<uint8_t> TakeU8() {
    if (pos_ + 1 > body_.size()) return Short("u8");
    return static_cast<uint8_t>(body_[pos_++]);
  }
  Result<uint16_t> TakeU16() {
    if (pos_ + 2 > body_.size()) return Short("u16");
    const uint16_t v =
        static_cast<uint16_t>(static_cast<uint8_t>(body_[pos_])) |
        static_cast<uint16_t>(static_cast<uint8_t>(body_[pos_ + 1])) << 8;
    pos_ += 2;
    return v;
  }
  Result<uint32_t> TakeU32() {
    if (pos_ + 4 > body_.size()) return Short("u32");
    const uint32_t v = ReadU32Le(body_.data() + pos_);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> TakeU64() {
    KG_ASSIGN_OR_RETURN(const uint32_t lo, TakeU32());
    KG_ASSIGN_OR_RETURN(const uint32_t hi, TakeU32());
    return static_cast<uint64_t>(hi) << 32 | lo;
  }
  Result<std::string> TakeString() {
    KG_ASSIGN_OR_RETURN(const uint32_t len, TakeU32());
    if (len > body_.size() - pos_) return Short("string body");
    std::string out(body_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  /// Decoders call this last: a well-formed body has no trailing bytes.
  Status ExpectEnd() const {
    if (pos_ != body_.size()) {
      return Status::InvalidArgument(
          "trailing bytes after message body: " +
          std::to_string(body_.size() - pos_));
    }
    return Status::OK();
  }

 private:
  Status Short(const char* what) const {
    return Status::InvalidArgument(std::string("message body truncated at ") +
                                   what);
  }

  std::string_view body_;
  size_t pos_ = 0;
};

Result<StatusCode> TakeStatusCode(BodyReader* reader) {
  KG_ASSIGN_OR_RETURN(const uint8_t raw, reader->TakeU8());
  const auto code = StatusCodeFromInt(raw);
  if (!code.has_value()) {
    return Status::InvalidArgument("unknown status code on wire: " +
                                   std::to_string(raw));
  }
  return *code;
}

Result<graph::NodeKind> NodeKindFromWire(uint8_t raw) {
  switch (raw) {
    case 0:
      return graph::NodeKind::kEntity;
    case 1:
      return graph::NodeKind::kText;
    case 2:
      return graph::NodeKind::kClass;
  }
  return Status::InvalidArgument("unknown node kind on wire: " +
                                 std::to_string(raw));
}

uint8_t NodeKindToWire(graph::NodeKind kind) {
  switch (kind) {
    case graph::NodeKind::kEntity:
      return 0;
    case graph::NodeKind::kText:
      return 1;
    case graph::NodeKind::kClass:
      return 2;
  }
  return 0;
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHandshakeRequest:
      return "handshake_request";
    case MessageType::kHandshakeResponse:
      return "handshake_response";
    case MessageType::kQueryRequest:
      return "query_request";
    case MessageType::kQueryResponse:
      return "query_response";
    case MessageType::kWalSubscribe:
      return "wal_subscribe";
    case MessageType::kWalBatch:
      return "wal_batch";
    case MessageType::kWalHeartbeat:
      return "wal_heartbeat";
    case MessageType::kIntrospectRequest:
      return "introspect_request";
    case MessageType::kIntrospectResponse:
      return "introspect_response";
  }
  return "unknown";
}

const char* IntrospectWhatName(IntrospectWhat what) {
  switch (what) {
    case IntrospectWhat::kMetricsJson:
      return "metrics_json";
    case IntrospectWhat::kMetricsPrometheus:
      return "metrics_prometheus";
    case IntrospectWhat::kSlowQueries:
      return "slow_queries";
    case IntrospectWhat::kTrace:
      return "trace";
  }
  return "unknown";
}

void AppendFrame(std::string* buf, MessageType type, uint32_t request_id,
                 std::string_view body) {
  AppendFrame(buf, type, request_id, nullptr, body);
}

void AppendFrame(std::string* buf, MessageType type, uint32_t request_id,
                 const TraceContext* trace, std::string_view body) {
  std::string payload;
  payload.reserve(kMessageHeaderBytes +
                  (trace != nullptr ? 1 + kTraceContextBytes : 0) +
                  body.size());
  payload.push_back(static_cast<char>(kProtocolVersion));
  payload.push_back(static_cast<char>(type));
  AppendU16Le(&payload, trace != nullptr ? kFlagTraceContext : 0);
  AppendU32Le(&payload, request_id);
  if (trace != nullptr) {
    payload.push_back(static_cast<char>(kTraceContextBytes));
    AppendU64Le(&payload, trace->trace_id);
    AppendU64Le(&payload, trace->parent_span_id);
    payload.push_back(trace->sampled ? 1 : 0);
  }
  payload.append(body);
  AppendU32Le(buf, static_cast<uint32_t>(payload.size()));
  AppendU32Le(buf, Checksum32(payload));
  buf->append(payload);
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact lazily: drop consumed prefix before growing the buffer.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

FrameDecoder::Step FrameDecoder::Next(Frame* out) {
  if (!error_.ok()) return Step::kError;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Step::kNeedMore;
  const uint32_t length = ReadU32Le(buf_.data() + pos_);
  const uint32_t checksum = ReadU32Le(buf_.data() + pos_ + 4);
  if (length > kMaxPayloadBytes) {
    error_ = Status::InvalidArgument("frame length " + std::to_string(length) +
                                     " exceeds limit");
    return Step::kError;
  }
  if (length < kMessageHeaderBytes) {
    error_ = Status::InvalidArgument("frame length " + std::to_string(length) +
                                     " shorter than message header");
    return Step::kError;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + length) return Step::kNeedMore;
  const std::string_view payload(buf_.data() + pos_ + kFrameHeaderBytes,
                                 length);
  if (Checksum32(payload) != checksum) {
    error_ = Status::InvalidArgument("frame checksum mismatch");
    return Step::kError;
  }
  const uint8_t version = static_cast<uint8_t>(payload[0]);
  if (version != kProtocolVersion) {
    error_ = Status::InvalidArgument("unsupported protocol version " +
                                     std::to_string(version));
    return Step::kError;
  }
  const uint8_t raw_type = static_cast<uint8_t>(payload[1]);
  if (raw_type > kMaxMessageType) {
    error_ = Status::InvalidArgument("unknown message type " +
                                     std::to_string(raw_type));
    return Step::kError;
  }
  const uint16_t flags =
      static_cast<uint16_t>(static_cast<uint8_t>(payload[2])) |
      static_cast<uint16_t>(static_cast<uint8_t>(payload[3])) << 8;
  if ((flags & ~kFlagTraceContext) != 0) {
    error_ = Status::InvalidArgument("nonzero reserved flags " +
                                     std::to_string(flags));
    return Step::kError;
  }
  size_t body_start = kMessageHeaderBytes;
  out->has_trace = false;
  out->trace = TraceContext{};
  if ((flags & kFlagTraceContext) != 0) {
    // [u8 ext_len=17][u64le trace id][u64le parent span id][u8 sampled].
    // The length prefix lets a future extension grow without moving the
    // body, but today exactly one layout is valid — anything else is a
    // peer this decoder cannot trust.
    if (length < kMessageHeaderBytes + 1) {
      error_ = Status::InvalidArgument("trace flag set but extension absent");
      return Step::kError;
    }
    const uint8_t ext_len =
        static_cast<uint8_t>(payload[kMessageHeaderBytes]);
    if (ext_len != kTraceContextBytes) {
      error_ = Status::InvalidArgument("trace extension length " +
                                       std::to_string(ext_len) +
                                       " is not " +
                                       std::to_string(kTraceContextBytes));
      return Step::kError;
    }
    if (length < kMessageHeaderBytes + 1 + kTraceContextBytes) {
      error_ = Status::InvalidArgument("trace extension truncated");
      return Step::kError;
    }
    const char* ext = payload.data() + kMessageHeaderBytes + 1;
    out->trace.trace_id = static_cast<uint64_t>(ReadU32Le(ext)) |
                          static_cast<uint64_t>(ReadU32Le(ext + 4)) << 32;
    out->trace.parent_span_id =
        static_cast<uint64_t>(ReadU32Le(ext + 8)) |
        static_cast<uint64_t>(ReadU32Le(ext + 12)) << 32;
    const uint8_t sampled = static_cast<uint8_t>(ext[16]);
    if (sampled > 1) {
      error_ = Status::InvalidArgument("trace sampled byte " +
                                       std::to_string(sampled) +
                                       " is not 0 or 1");
      return Step::kError;
    }
    out->trace.sampled = sampled != 0;
    out->has_trace = true;
    body_start += 1 + kTraceContextBytes;
  }
  out->protocol_version = version;
  out->type = static_cast<MessageType>(raw_type);
  out->request_id = ReadU32Le(payload.data() + 4);
  out->body.assign(payload.substr(body_start));
  pos_ += kFrameHeaderBytes + length;
  return Step::kFrame;
}

// ---- Handshake ----------------------------------------------------------

std::string EncodeHandshakeRequest(const HandshakeRequest& req) {
  std::string body;
  AppendU32Le(&body, req.max_schema_version);
  return body;
}

Result<HandshakeRequest> DecodeHandshakeRequest(std::string_view body) {
  BodyReader reader(body);
  HandshakeRequest req;
  KG_ASSIGN_OR_RETURN(req.max_schema_version, reader.TakeU32());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeHandshakeResponse(const HandshakeResponse& resp) {
  std::string body;
  body.push_back(static_cast<char>(resp.code));
  AppendString(&body, resp.message);
  AppendU32Le(&body, resp.schema_version);
  return body;
}

Result<HandshakeResponse> DecodeHandshakeResponse(std::string_view body) {
  BodyReader reader(body);
  HandshakeResponse resp;
  KG_ASSIGN_OR_RETURN(resp.code, TakeStatusCode(&reader));
  KG_ASSIGN_OR_RETURN(resp.message, reader.TakeString());
  KG_ASSIGN_OR_RETURN(resp.schema_version, reader.TakeU32());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return resp;
}

// ---- Query --------------------------------------------------------------

std::string EncodeQuery(const serve::Query& query) {
  std::string body;
  body.push_back(static_cast<char>(query.kind));
  body.push_back(static_cast<char>(NodeKindToWire(query.node_kind)));
  AppendU64Le(&body, query.k);
  AppendString(&body, query.node);
  AppendString(&body, query.predicate);
  AppendString(&body, query.type_name);
  AppendString(&body, query.type_predicate);
  return body;
}

Result<serve::Query> DecodeQuery(std::string_view body) {
  BodyReader reader(body);
  serve::Query query;
  KG_ASSIGN_OR_RETURN(const uint8_t raw_kind, reader.TakeU8());
  if (raw_kind >= serve::kNumQueryKinds) {
    return Status::InvalidArgument("unknown query kind on wire: " +
                                   std::to_string(raw_kind));
  }
  query.kind = static_cast<serve::QueryKind>(raw_kind);
  KG_ASSIGN_OR_RETURN(const uint8_t raw_node_kind, reader.TakeU8());
  KG_ASSIGN_OR_RETURN(query.node_kind, NodeKindFromWire(raw_node_kind));
  KG_ASSIGN_OR_RETURN(const uint64_t k, reader.TakeU64());
  query.k = static_cast<size_t>(k);
  KG_ASSIGN_OR_RETURN(query.node, reader.TakeString());
  KG_ASSIGN_OR_RETURN(query.predicate, reader.TakeString());
  KG_ASSIGN_OR_RETURN(query.type_name, reader.TakeString());
  KG_ASSIGN_OR_RETURN(query.type_predicate, reader.TakeString());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return query;
}

// ---- Query response -----------------------------------------------------

std::string EncodeQueryResponse(const QueryResponse& resp) {
  std::string body;
  body.push_back(static_cast<char>(resp.code));
  AppendString(&body, resp.message);
  AppendU32Le(&body, static_cast<uint32_t>(resp.rows.size()));
  for (const std::string& row : resp.rows) {
    AppendString(&body, row);
  }
  return body;
}

Result<QueryResponse> DecodeQueryResponse(std::string_view body) {
  BodyReader reader(body);
  QueryResponse resp;
  KG_ASSIGN_OR_RETURN(resp.code, TakeStatusCode(&reader));
  KG_ASSIGN_OR_RETURN(resp.message, reader.TakeString());
  KG_ASSIGN_OR_RETURN(const uint32_t rows, reader.TakeU32());
  // Each row costs at least its 4-byte length prefix; a count promising
  // more rows than the body could hold is corruption, not data.
  if (static_cast<uint64_t>(rows) * 4 > body.size()) {
    return Status::InvalidArgument("row count " + std::to_string(rows) +
                                   " exceeds body capacity");
  }
  resp.rows.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    KG_ASSIGN_OR_RETURN(std::string row, reader.TakeString());
    resp.rows.push_back(std::move(row));
  }
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return resp;
}

// ---- WAL shipping -------------------------------------------------------

std::string EncodeWalSubscribe(const WalSubscribe& req) {
  std::string body;
  AppendU64Le(&body, req.from_offset);
  return body;
}

Result<WalSubscribe> DecodeWalSubscribe(std::string_view body) {
  BodyReader reader(body);
  WalSubscribe req;
  KG_ASSIGN_OR_RETURN(req.from_offset, reader.TakeU64());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeWalBatch(const WalBatch& batch) {
  std::string body;
  body.push_back(static_cast<char>(batch.code));
  AppendString(&body, batch.message);
  AppendU64Le(&body, batch.start_offset);
  AppendU64Le(&body, batch.end_offset);
  AppendU32Le(&body, batch.chain_after);
  AppendU64Le(&body, batch.log_end);
  AppendString(&body, batch.frames);
  return body;
}

Result<WalBatch> DecodeWalBatch(std::string_view body) {
  BodyReader reader(body);
  WalBatch batch;
  KG_ASSIGN_OR_RETURN(batch.code, TakeStatusCode(&reader));
  KG_ASSIGN_OR_RETURN(batch.message, reader.TakeString());
  KG_ASSIGN_OR_RETURN(batch.start_offset, reader.TakeU64());
  KG_ASSIGN_OR_RETURN(batch.end_offset, reader.TakeU64());
  KG_ASSIGN_OR_RETURN(batch.chain_after, reader.TakeU32());
  KG_ASSIGN_OR_RETURN(batch.log_end, reader.TakeU64());
  KG_ASSIGN_OR_RETURN(batch.frames, reader.TakeString());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  if (batch.end_offset < batch.start_offset ||
      batch.end_offset - batch.start_offset != batch.frames.size()) {
    return Status::InvalidArgument(
        "wal batch offsets disagree with frame bytes");
  }
  return batch;
}

std::string EncodeWalHeartbeat(const WalHeartbeat& hb) {
  std::string body;
  AppendU64Le(&body, hb.log_end);
  AppendU32Le(&body, hb.chain_at_end);
  return body;
}

Result<WalHeartbeat> DecodeWalHeartbeat(std::string_view body) {
  BodyReader reader(body);
  WalHeartbeat hb;
  KG_ASSIGN_OR_RETURN(hb.log_end, reader.TakeU64());
  KG_ASSIGN_OR_RETURN(hb.chain_at_end, reader.TakeU32());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return hb;
}

// ---- Introspection ------------------------------------------------------

std::string EncodeIntrospectRequest(const IntrospectRequest& req) {
  std::string body;
  body.push_back(static_cast<char>(req.what));
  return body;
}

Result<IntrospectRequest> DecodeIntrospectRequest(std::string_view body) {
  BodyReader reader(body);
  IntrospectRequest req;
  KG_ASSIGN_OR_RETURN(const uint8_t raw, reader.TakeU8());
  if (raw > kMaxIntrospectWhat) {
    return Status::InvalidArgument("unknown introspect selector on wire: " +
                                   std::to_string(raw));
  }
  req.what = static_cast<IntrospectWhat>(raw);
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeIntrospectResponse(const IntrospectResponse& resp) {
  std::string body;
  body.push_back(static_cast<char>(resp.code));
  AppendString(&body, resp.message);
  AppendString(&body, resp.payload);
  return body;
}

Result<IntrospectResponse> DecodeIntrospectResponse(std::string_view body) {
  BodyReader reader(body);
  IntrospectResponse resp;
  KG_ASSIGN_OR_RETURN(resp.code, TakeStatusCode(&reader));
  KG_ASSIGN_OR_RETURN(resp.message, reader.TakeString());
  KG_ASSIGN_OR_RETURN(resp.payload, reader.TakeString());
  KG_RETURN_IF_ERROR(reader.ExpectEnd());
  return resp;
}

}  // namespace kg::rpc
