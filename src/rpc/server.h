#ifndef KGRAPH_RPC_SERVER_H_
#define KGRAPH_RPC_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "rpc/frame.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace kg::store {
class VersionedKgStore;
}  // namespace kg::store

namespace kg::obs {
class SlowQueryRing;
class Tracer;
}  // namespace kg::obs

namespace kg::rpc {

/// What the server fronts: anything that can answer a serve::Query with
/// a Result. Must be thread-safe (worker threads call it concurrently);
/// both QueryEngine and VersionedKgStore read paths are.
using QueryHandler =
    std::function<Result<serve::QueryResult>(const serve::Query&)>;

/// Handler over an immutable serving engine (TryExecute: answers carry
/// the schema-version gate).
QueryHandler EngineHandler(const serve::QueryEngine* engine);

/// Handler over a mutable versioned store (TryExecute against the
/// current epoch; writers keep publishing underneath).
QueryHandler StoreHandler(const store::VersionedKgStore* store);

/// What a replication-enabled server streams to kWalSubscribe
/// subscribers: an append-only log of framed WAL records (the
/// store::AppendWalFrame framing) with a running Checksum32 chain over
/// whole frames, so a subscriber can prove its replayed prefix is
/// byte-identical to the primary's before serving from it.
///
/// Offsets are byte offsets into the log; a "boundary" is an offset
/// that starts a frame (or the log end). Implementations must be
/// thread-safe: the event loop reads while the owner appends.
class WalSource {
 public:
  virtual ~WalSource() = default;

  /// Current log end (a boundary by construction).
  virtual uint64_t EndOffset() const = 0;

  /// True when `offset` is a frame boundary (0 and EndOffset included).
  virtual bool IsBoundary(uint64_t offset) const = 0;

  /// Chain value at boundary `offset`: 0 at offset 0, then
  /// chain' = Checksum32(le32(chain) ++ frame_bytes) per frame.
  virtual uint32_t ChainAt(uint64_t offset) const = 0;

  /// Copies whole frames from boundary `offset`, at most `max_bytes`
  /// (always at least one frame when any exists). Writes the boundary
  /// after the last copied frame to `*end_offset` and the chain value
  /// there to `*chain_after`.
  virtual std::string ReadFrom(uint64_t offset, size_t max_bytes,
                               uint64_t* end_offset,
                               uint32_t* chain_after) const = 0;
};

struct RpcServerOptions {
  /// Threads executing queries (the event loop and acceptor are extra).
  size_t worker_threads = 2;
  /// Admission control: a connection may have at most this many
  /// requests queued or executing; the excess is shed immediately with
  /// kUnavailable instead of building an unbounded backlog.
  size_t max_queue_per_connection = 64;
  /// Global in-flight cap across all connections — the server's
  /// load-shedding horizon.
  size_t max_inflight = 256;
  /// Schema generation of the snapshot being served; the handshake
  /// refuses clients that cannot consume it.
  uint32_t schema_version = serve::kSnapshotSchemaVersion;
  /// "rpc.*" counters/gauges/histograms land here when non-null (not
  /// owned; must outlive the server): accepted/active connections,
  /// accepted/shed requests, frame errors, inflight, and per-class
  /// "rpc.latency_us.<class>" wire latency.
  obs::MetricsRegistry* registry = nullptr;
  /// WAL log served to kWalSubscribe subscribers; null refuses
  /// subscriptions with kFailedPrecondition. Not owned; must outlive
  /// the server.
  WalSource* wal_source = nullptr;
  /// Heartbeat cadence on idle subscriptions (the replica's liveness
  /// signal; its receiver treats several missed intervals as a dead
  /// primary and reconnects).
  int wal_heartbeat_interval_ms = 25;
  /// Largest kWalBatch frame payload; bigger backlogs ship as several
  /// batches across event-loop passes.
  size_t wal_batch_max_bytes = 256 * 1024;
  /// Distributed tracing (not owned; must outlive the server). Each
  /// accepted query gets a "serve.<class>" span — rooted at the wire
  /// trace context when the request carries a sampled one, a local root
  /// otherwise — and kIntrospect(kTrace) dumps this tracer.
  obs::Tracer* tracer = nullptr;
  /// Worst-N slow-request retention fed per accepted query (not owned);
  /// kIntrospect(kSlowQueries) exposes it.
  obs::SlowQueryRing* slow_ring = nullptr;
};

/// Multi-connection RPC front-end over an ITransportServer:
///
///   acceptor thread --> connection table --> event-loop thread
///       (one non-blocking TryRead poll pass over every connection,
///        frames decoded incrementally, admission decided inline)
///   --> bounded work queue --> worker pool --> handler --> response
///
/// Contract highlights, in the order the wire sees them:
///   - First message on a connection must be a handshake; the server
///     refuses (kUnavailable) clients whose supported snapshot schema
///     is older than what it serves, so version skew fails loudly at
///     connect time, not as garbage answers later.
///   - Backpressure is load-shedding, not buffering: past the bounded
///     per-connection queue or the global in-flight cap, a request gets
///     an immediate kUnavailable response — retriable by contract, so
///     client RetryWithBackoff + CircuitBreaker apply unchanged across
///     the wire.
///   - A framing error (bad checksum, wrong version, unknown type) is
///     unrecoverable mid-stream: the connection is dropped. Malformed
///     *bodies* inside valid frames get clean kInvalidArgument
///     responses. Neither ever crashes the server (rpc_frame_fuzz_test,
///     rpc_chaos_test).
class RpcServer {
 public:
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t requests_accepted = 0;
    uint64_t requests_shed = 0;
    uint64_t frame_errors = 0;
  };

  RpcServer(QueryHandler handler,
            std::unique_ptr<ITransportServer> listener,
            RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Spawns the acceptor, event loop, and workers. Call once.
  Status Start();

  /// Stops accepting, closes every connection, joins every thread.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Graceful shutdown: stops accepting new connections, lets queued
  /// and in-flight requests finish (bounded by `max_wait_ms`), then
  /// Stop()s. This is what a SIGTERM handler should call — no request
  /// that was admitted dies mid-frame (examples/rpc_server.cpp).
  void Drain(int max_wait_ms = 5000);

  const ITransportServer* listener() const { return listener_.get(); }
  std::string address() const { return listener_->address(); }

  Stats stats() const;

 private:
  struct Connection;
  struct Task;
  struct Impl;

  void AcceptLoop();
  void EventLoop();
  /// One pass over subscribed connections: pushes a kWalBatch where the
  /// log has grown past the subscriber, a kWalHeartbeat where it has
  /// been idle past the interval. Returns true when anything was sent.
  bool ServeSubscriptions(
      const std::vector<std::shared_ptr<Connection>>& conns);
  void WorkerLoop();
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   Frame&& frame);
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     MessageType type, uint32_t request_id,
                     std::string_view body,
                     const TraceContext* trace = nullptr);

  std::unique_ptr<Impl> impl_;
  std::unique_ptr<ITransportServer> listener_;
};

}  // namespace kg::rpc

#endif  // KGRAPH_RPC_SERVER_H_
