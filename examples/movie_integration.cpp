// End-to-end entity-based KG construction (Figure 4a): transform an
// anchor source, integrate two more structured sources with RF entity
// linkage, fuse conflicting values, and inspect the result — the §2.1-2.2
// workflow on a synthetic movie universe.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "core/entity_kg_pipeline.h"

int main() {
  using namespace kg;  // NOLINT
  Rng rng(7);
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1000;
  uopt.num_songs = 100;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  // Three sources with different schemas, coverage and quality.
  synth::SourceOptions wiki, imdb, fanwiki;
  wiki.name = "wikipedia";
  wiki.coverage = 0.4;
  wiki.value_accuracy = 0.98;
  imdb.name = "imdb";
  imdb.coverage = 0.7;
  imdb.schema_dialect = 1;
  fanwiki.name = "fanwiki";
  fanwiki.coverage = 0.35;
  fanwiki.schema_dialect = 2;
  fanwiki.value_accuracy = 0.8;

  core::EntityKgBuilder::Options options;
  core::EntityKgBuilder builder(synth::SourceDomain::kMovies, options);
  builder.IngestAnchor(synth::EmitSource(universe, wiki, rng), rng);
  builder.IngestAndLink(synth::EmitSource(universe, imdb, rng), rng);
  builder.IngestAndLink(synth::EmitSource(universe, fanwiki, rng), rng);
  builder.FuseValues();

  for (const auto& report : builder.reports()) {
    std::cout << report.source << ": " << report.records << " records, "
              << report.linked << " linked to existing entities, "
              << report.new_entities << " new entities";
    if (report.linked > 0) {
      std::cout << " (link precision "
                << FormatDouble(report.linkage_precision, 3) << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nFinal KG: " << builder.kg().num_triples()
            << " fused triples across "
            << builder.reports().back().kg_entities_after
            << " entities\n";

  // Show one fused entity.
  const auto& kg = builder.kg();
  for (graph::TripleId t : kg.TriplesWithSubject(0)) {
    std::cout << "  " << kg.TripleToString(t) << "  (confidence "
              << FormatDouble(kg.MaxConfidence(t), 2) << ")\n";
  }
  return 0;
}
