// Quickstart: build the Figure 1a music-domain knowledge graph by hand,
// declare its ontology, and run the basic query patterns — the smallest
// possible tour of kgraph's core API.

#include <iostream>

#include "graph/knowledge_graph.h"
#include "graph/ontology.h"
#include "graph/paths.h"

int main() {
  using namespace kg::graph;  // NOLINT
  KnowledgeGraph kg;
  const Provenance prov{"quickstart", 1.0, 0};

  // --- Ontology: classes and typed relations (the KG schema) -----------
  Ontology ontology;
  auto& taxonomy = ontology.taxonomy();
  const TypeId person = taxonomy.AddType("Person", taxonomy.root());
  const TypeId artist = taxonomy.AddType("Artist", person);
  const TypeId song = taxonomy.AddType("Song", taxonomy.root());
  const TypeId movie = taxonomy.AddType("Movie", taxonomy.root());
  ontology.DeclareRelation({"performed_by", song, RangeKind::kEntity,
                            artist, false});
  ontology.DeclareRelation({"featured_song", movie, RangeKind::kEntity,
                            song, false});
  ontology.DeclareRelation({"acted_in", person, RangeKind::kEntity,
                            movie, false});

  // --- Data: entities and triples ---------------------------------------
  auto add = [&](const char* s, const char* p, const char* o) {
    kg.AddTriple(s, p, o, NodeKind::kEntity, NodeKind::kEntity, prov);
  };
  add("Shallow", "performed_by", "Lady Gaga");
  add("A Star Is Born", "featured_song", "Shallow");
  add("Lady Gaga", "acted_in", "A Star Is Born");
  kg.AddTriple("Lady Gaga", "birth_year", "1986", NodeKind::kEntity,
               NodeKind::kText, prov);
  ontology.SetInstanceType(*kg.FindNode("Lady Gaga", NodeKind::kEntity),
                           artist);
  ontology.SetInstanceType(*kg.FindNode("Shallow", NodeKind::kEntity),
                           song);
  ontology.SetInstanceType(
      *kg.FindNode("A Star Is Born", NodeKind::kEntity), movie);

  std::cout << "Graph: " << kg.num_nodes() << " nodes, "
            << kg.num_triples() << " triples\n\n";

  // --- Queries -----------------------------------------------------------
  const NodeId gaga = *kg.FindNode("Lady Gaga", NodeKind::kEntity);
  const PredicateId performed = *kg.FindPredicate("performed_by");
  std::cout << "Songs performed by Lady Gaga:\n";
  for (NodeId s : kg.Subjects(performed, gaga)) {
    std::cout << "  " << kg.NodeName(s) << "\n";
  }

  // Cross-domain connection (the Movie and Music domains joined by a
  // person — exactly the selling point §1 describes).
  const NodeId star_is_born =
      *kg.FindNode("A Star Is Born", NodeKind::kEntity);
  const NodeId shallow = *kg.FindNode("Shallow", NodeKind::kEntity);
  std::cout << "\nPath from the movie to the song:\n";
  for (TripleId t : ShortestPath(kg, star_is_born, shallow)) {
    std::cout << "  " << kg.TripleToString(t) << "\n";
  }

  // Schema validation: the ontology rejects an ill-typed triple.
  const TripleId bad = kg.AddTriple(
      "Shallow", "acted_in", "A Star Is Born", NodeKind::kEntity,
      NodeKind::kEntity, prov);
  std::cout << "\nValidating (Shallow acted_in A Star Is Born): "
            << ontology.ValidateTriple(kg, bad) << "\n";
  kg.RemoveTriple(bad);
  std::cout << "Removed the bad triple; " << kg.num_triples()
            << " triples remain.\n";
  return 0;
}
