// Semi-structured web extraction end to end (§2.3): generate a templated
// website, induce a wrapper from a handful of annotated pages, run
// Ceres-style distant supervision with no annotations at all, and compare
// — then show OpenIE picking up attributes the ontology does not know.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "core/extraction_scoring.h"
#include "extract/distant_supervision.h"
#include "extract/open_extraction.h"
#include "extract/wrapper_induction.h"
#include "synth/website_generator.h"

int main() {
  using namespace kg;  // NOLINT
  Rng rng(7);
  synth::UniverseOptions uopt;
  uopt.num_people = 500;
  uopt.num_movies = 600;
  uopt.num_songs = 50;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  synth::WebsiteOptions wopt;
  wopt.site_name = "cinemadb";
  wopt.num_pages = 150;
  const auto site = GenerateWebsite(universe, wopt, rng);
  std::cout << "site '" << site.name << "': " << site.pages.size()
            << " templated pages\n\n";

  // --- Wrapper induction: 5 annotated pages -> site-wide rules ---------
  {
    std::vector<const extract::DomPage*> pages;
    std::vector<extract::PageAnnotation> annotations;
    for (size_t p = 0; p < 5; ++p) {
      pages.push_back(&site.pages[p].dom);
      extract::PageAnnotation ann;
      for (const auto& [attr, node] : site.pages[p].value_nodes) {
        ann[attr] = node;
      }
      annotations.push_back(std::move(ann));
    }
    const auto wrapper = extract::Wrapper::Induce(pages, annotations);
    core::ExtractionQuality q;
    for (size_t p = 5; p < site.pages.size(); ++p) {
      core::ScoreClosedExtractions(
          site.pages[p], wrapper.Extract(site.pages[p].dom), &q);
    }
    q.Finish();
    std::cout << "wrapper induction: " << q.extracted
              << " extractions at accuracy "
              << FormatDouble(q.accuracy, 3)
              << " (cost: 5 annotated pages)\n";
  }

  // --- Ceres: seed KG + distant supervision, zero annotations ----------
  {
    extract::SeedKnowledge seed;
    for (size_t i = 0; i < 200; ++i) {
      const auto& m = universe.movies()[i];
      seed.AddEntity(m.title,
                     {{"release_year", std::to_string(m.release_year)},
                      {"genre", m.genre},
                      {"director", universe.people()[m.director].name}});
    }
    std::vector<const extract::DomPage*> pages;
    for (const auto& page : site.pages) pages.push_back(&page.dom);
    extract::DistantlySupervisedExtractor extractor;
    const size_t matches = extractor.Fit(pages, seed, {});
    core::ExtractionQuality q;
    for (const auto& page : site.pages) {
      core::ScoreClosedExtractions(page, extractor.Extract(page.dom), &q);
    }
    q.Finish();
    std::cout << "Ceres (distant supervision): " << q.extracted
              << " extractions at accuracy "
              << FormatDouble(q.accuracy, 3) << " (auto-annotated from "
              << matches << " KG matches, 0 human annotations)\n";
  }

  // --- OpenIE: no schema, maximum yield ---------------------------------
  {
    core::ExtractionQuality q;
    for (const auto& page : site.pages) {
      core::ScoreOpenExtractions(site, page,
                                 extract::OpenExtract(page.dom, {}), &q);
    }
    q.Finish();
    std::cout << "OpenIE: " << q.extracted << " extractions at accuracy "
              << FormatDouble(q.accuracy, 3) << ", including "
              << q.correct_open
              << " correct values for attributes missing from the "
                 "ontology\n";
  }
  return 0;
}
