// Text-rich KG construction (Figures 1b and 4b): extract attributes from
// noisy product titles with a one-size-fits-all tagger, clean them
// against the population, mine the taxonomy from shopping behavior, and
// assemble the bipartite product graph — the §3 AutoKnow workflow.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "core/textrich_kg_pipeline.h"
#include "textrich/product_graph.h"

int main() {
  using namespace kg;  // NOLINT
  Rng rng(7);
  synth::CatalogOptions copt;
  copt.num_types = 20;
  copt.num_products = 800;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 20000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  std::cout << "catalog: " << catalog.products().size() << " products, "
            << catalog.leaf_types().size() << " leaf types, "
            << catalog.attributes().size() << " attributes\n";
  const auto& sample = catalog.products()[0];
  std::cout << "sample title: \"" << sample.title << "\"\n\n";

  core::TextRichBuildOptions options;
  const auto build = BuildTextRichKg(catalog, behavior, options, rng);
  const auto& r = build.report;
  std::cout << "extracted " << r.extracted_assertions
            << " attribute assertions (accuracy "
            << FormatDouble(r.accuracy_before_cleaning, 3) << ")\n";
  std::cout << "after cleaning: " << r.after_cleaning << " (accuracy "
            << FormatDouble(r.accuracy_after_cleaning, 3) << ")\n";
  std::cout << "mined " << r.hypernyms_mined << " hypernym edges and "
            << r.synonyms_added << " synonym pairs from "
            << behavior.searches.size() << " search events\n";
  std::cout << "product KG: " << r.kg_triples << " triples, "
            << FormatDouble(100 * r.text_object_fraction, 1)
            << "% of objects are free text (bipartite shape)\n\n";

  // Walk one product's neighborhood in the finished graph.
  const auto& kg = build.kg;
  auto node = kg.FindNode("product:0", graph::NodeKind::kEntity);
  if (node.ok()) {
    std::cout << "product:0 in the graph:\n";
    for (graph::TripleId t : kg.TriplesWithSubject(*node)) {
      std::cout << "  " << kg.TripleToString(t) << "\n";
    }
  }
  return 0;
}
