// Dual neural KG question answering (§4): a parametric LLM simulator
// answers what it absorbed from a popularity-skewed corpus; the
// knowledge graph serves torso/tail and post-cutoff facts; the dual
// router combines them. The second half swaps the LLM for the KG's own
// learned geometry: a HybridAnswerer tries the symbolic triple lookup
// first and falls back to ANN search through TransE embeddings,
// printing which route served each question.

#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/strings.h"
#include "dual/answerers.h"
#include "dual/kg_embedding.h"
#include "dual/qa_eval.h"
#include "graph/knowledge_graph.h"
#include "synth/qa_generator.h"

namespace {

const char* RouteName(kg::dual::HybridAnswerer::Route route) {
  switch (route) {
    case kg::dual::HybridAnswerer::Route::kSymbolic:
      return "symbolic";
    case kg::dual::HybridAnswerer::Route::kAnn:
      return "ann-fallback";
    default:
      return "abstain";
  }
}

}  // namespace

int main() {
  using namespace kg;  // NOLINT
  Rng rng(7);
  synth::UniverseOptions uopt;
  uopt.num_people = 3000;
  uopt.num_movies = 2000;
  uopt.num_songs = 200;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  // Pretrain the LLM simulator on the world's text corpus (recent facts
  // are after its training cutoff).
  synth::CorpusOptions copt;
  copt.mention_exponent = 1.05;
  dual::LlmSim llm;
  llm.Train(GenerateFactCorpus(universe, copt, rng));

  // The symbolic side: the (complete, fresh) universe KG.
  const auto kg = universe.ToKnowledgeGraph();

  dual::LlmAnswerer llm_only(llm);
  dual::DualAnswerer dual(kg, llm);

  // Ask a few concrete questions.
  synth::QaOptions qopt;
  qopt.num_questions = 9;
  const auto questions = GenerateQaWorkload(universe, qopt, rng);
  for (const auto& q : questions) {
    Rng r1(1), r2(1);
    const auto from_llm = llm_only.Answer(q, r1);
    const auto from_dual = dual.Answer(q, r2);
    std::cout << "Q: " << q.predicate << " of \"" << q.subject_name
              << "\"? [" << synth::PopularityBucketName(q.bucket)
              << (q.recent ? ", recent" : "") << "]\n"
              << "   LLM:  "
              << (from_llm ? *from_llm : std::string("(no answer)"))
              << "\n   dual: "
              << (from_dual ? *from_dual : std::string("(no answer)"))
              << "\n   gold: " << q.gold_object << "\n";
  }

  // And measure at scale.
  synth::QaOptions big;
  big.num_questions = 3000;
  const auto workload = GenerateQaWorkload(universe, big, rng);
  Rng r1(2), r2(2);
  const auto llm_eval = EvaluateAnswerer(llm_only, workload, r1);
  const auto dual_eval = EvaluateAnswerer(dual, workload, r2);
  std::cout << "\nover " << workload.size() << " questions:\n"
            << "  LLM only:  accuracy "
            << FormatDouble(llm_eval.overall.accuracy, 3)
            << ", hallucination "
            << FormatDouble(llm_eval.overall.hallucination_rate, 3)
            << "\n  dual:      accuracy "
            << FormatDouble(dual_eval.overall.accuracy, 3)
            << ", hallucination "
            << FormatDouble(dual_eval.overall.hallucination_rate, 3)
            << "\n";

  // --- Hybrid symbolic/ANN routing (gen-3, no LLM involved) -----------
  // Serve from a KG with holes (every third movie loses release_year)
  // while the embedding space keeps the full geometry — the "index lags
  // the stream" shape. The hybrid tries the triple lookup first and
  // answers the holes through ANN search; each question prints the
  // route that served it.
  graph::KnowledgeGraph pruned = universe.ToKnowledgeGraph();
  if (const auto pred = pruned.FindPredicate("release_year"); pred.ok()) {
    for (uint32_t id = 0; id < universe.movies().size(); id += 3) {
      const auto node = pruned.FindNode(
          synth::EntityUniverse::MovieNodeName(id),
          graph::NodeKind::kEntity);
      if (!node.ok()) continue;
      for (graph::TripleId t : pruned.TriplesWithSubject(*node)) {
        if (pruned.triple(t).predicate == *pred) {
          pruned.RemoveTriple(t);
          break;
        }
      }
    }
  }
  dual::KgEmbeddingOptions eopt;
  eopt.transe.dim = 24;
  eopt.transe.epochs = 30;
  eopt.seed = 7;
  const dual::KgEmbeddingSpace space(kg, eopt);
  dual::HybridAnswerer hybrid(pruned, space);

  std::cout << "\nhybrid symbolic/ANN routing (pruned KG, full "
               "embedding space):\n";
  for (const auto& q : questions) {
    Rng r(1);
    const auto answer = hybrid.Answer(q, r);
    std::cout << "  " << q.predicate << " of \"" << q.subject_name
              << "\" -> "
              << (answer ? *answer : std::string("(no answer)")) << "  ["
              << RouteName(hybrid.last_route()) << "]\n";
  }
  Rng r3(2);
  const auto hybrid_eval = EvaluateAnswerer(hybrid, workload, r3);
  std::cout << "  hybrid over " << workload.size()
            << " questions: accuracy "
            << FormatDouble(hybrid_eval.overall.accuracy, 3)
            << ", abstention "
            << FormatDouble(hybrid_eval.overall.abstention_rate, 3)
            << "  (" << hybrid.symbolic_hits() << " symbolic, "
            << hybrid.ann_hits() << " ann, " << hybrid.abstains()
            << " abstained)\n";
  return 0;
}
