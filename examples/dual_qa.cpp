// Dual neural KG question answering (§4): a parametric LLM simulator
// answers what it absorbed from a popularity-skewed corpus; the
// knowledge graph serves torso/tail and post-cutoff facts; the dual
// router combines them.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "dual/answerers.h"
#include "dual/qa_eval.h"
#include "synth/qa_generator.h"

int main() {
  using namespace kg;  // NOLINT
  Rng rng(7);
  synth::UniverseOptions uopt;
  uopt.num_people = 3000;
  uopt.num_movies = 2000;
  uopt.num_songs = 200;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  // Pretrain the LLM simulator on the world's text corpus (recent facts
  // are after its training cutoff).
  synth::CorpusOptions copt;
  copt.mention_exponent = 1.05;
  dual::LlmSim llm;
  llm.Train(GenerateFactCorpus(universe, copt, rng));

  // The symbolic side: the (complete, fresh) universe KG.
  const auto kg = universe.ToKnowledgeGraph();

  dual::LlmAnswerer llm_only(llm);
  dual::DualAnswerer dual(kg, llm);

  // Ask a few concrete questions.
  synth::QaOptions qopt;
  qopt.num_questions = 9;
  const auto questions = GenerateQaWorkload(universe, qopt, rng);
  for (const auto& q : questions) {
    Rng r1(1), r2(1);
    const auto from_llm = llm_only.Answer(q, r1);
    const auto from_dual = dual.Answer(q, r2);
    std::cout << "Q: " << q.predicate << " of \"" << q.subject_name
              << "\"? [" << synth::PopularityBucketName(q.bucket)
              << (q.recent ? ", recent" : "") << "]\n"
              << "   LLM:  "
              << (from_llm ? *from_llm : std::string("(no answer)"))
              << "\n   dual: "
              << (from_dual ? *from_dual : std::string("(no answer)"))
              << "\n   gold: " << q.gold_object << "\n";
  }

  // And measure at scale.
  synth::QaOptions big;
  big.num_questions = 3000;
  const auto workload = GenerateQaWorkload(universe, big, rng);
  Rng r1(2), r2(2);
  const auto llm_eval = EvaluateAnswerer(llm_only, workload, r1);
  const auto dual_eval = EvaluateAnswerer(dual, workload, r2);
  std::cout << "\nover " << workload.size() << " questions:\n"
            << "  LLM only:  accuracy "
            << FormatDouble(llm_eval.overall.accuracy, 3)
            << ", hallucination "
            << FormatDouble(llm_eval.overall.hallucination_rate, 3)
            << "\n  dual:      accuracy "
            << FormatDouble(dual_eval.overall.accuracy, 3)
            << ", hallucination "
            << FormatDouble(dual_eval.overall.hallucination_rate, 3)
            << "\n";
  return 0;
}
