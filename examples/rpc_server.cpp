// RPC quickstart: compile a small knowledge graph into a serving
// snapshot, put an RpcServer in front of it on a real TCP port, then
// talk to it with an RpcClient — handshake, a few queries, graceful
// SIGINT/SIGTERM drain. The same server code runs behind the in-memory
// loopback transport in the tests and bench_rpc; TCP is just a
// different ITransport.

#include <csignal>
#include <iostream>
#include <memory>
#include <utility>

#include "graph/knowledge_graph.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace {

// Async-signal-safe shutdown latch: the handler only flips the flag;
// all real teardown (Drain) happens on the main thread.
volatile sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void InstallSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace

int main() {
  using namespace kg;  // NOLINT
  using graph::NodeKind;

  // --- A tiny movie KG, compiled for serving -----------------------------
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"rpc_example", 1.0, 0};
  auto add = [&](const char* s, const char* p, const char* o,
                 NodeKind ok = NodeKind::kEntity) {
    kg.AddTriple(s, p, o, NodeKind::kEntity, ok, prov);
  };
  add("A Star Is Born", "type", "Movie", NodeKind::kClass);
  add("A Star Is Born", "title", "A Star Is Born", NodeKind::kText);
  add("A Star Is Born", "release_year", "2018", NodeKind::kText);
  add("Lady Gaga", "acted_in", "A Star Is Born");
  add("Bradley Cooper", "acted_in", "A Star Is Born");
  add("Bradley Cooper", "directed", "A Star Is Born");
  add("Shallow", "featured_in", "A Star Is Born");

  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  // --- Server: TCP on a kernel-picked port -------------------------------
  auto listener = rpc::TcpTransportServer::Listen(0);
  if (!listener.ok()) {
    std::cerr << "listen failed: " << listener.status() << "\n";
    return 1;
  }
  const uint16_t port = (*listener)->port();
  rpc::RpcServer server(rpc::EngineHandler(&engine), std::move(*listener));
  InstallSignalHandlers();
  if (auto st = server.Start(); !st.ok()) {
    std::cerr << "start failed: " << st << "\n";
    return 1;
  }
  std::cout << "serving " << snap.num_triples() << " triples on "
            << server.address() << "\n";

  // --- Client: connect, negotiate schema versions, query -----------------
  auto transport = rpc::TcpConnect("127.0.0.1", port);
  if (!transport.ok()) {
    std::cerr << "connect failed: " << transport.status() << "\n";
    return 1;
  }
  rpc::RpcClient client(std::move(*transport));
  const auto schema = client.Handshake();
  if (!schema.ok()) {
    std::cerr << "handshake failed: " << schema.status() << "\n";
    return 1;
  }
  std::cout << "handshake ok, server schema v" << *schema << "\n\n";

  const serve::Query queries[] = {
      serve::Query::PointLookup("A Star Is Born", "release_year"),
      serve::Query::Neighborhood("Bradley Cooper"),
      serve::Query::AttributeByType("Movie", "title"),
  };
  for (const serve::Query& q : queries) {
    const auto rows = client.Execute(q);
    if (!rows.ok()) {
      std::cerr << "query failed: " << rows.status() << "\n";
      return 1;
    }
    std::cout << q.CacheKey() << "\n";
    for (const auto& row : *rows) std::cout << "  " << row << "\n";
  }

  // --- Graceful shutdown -------------------------------------------------
  // A real deployment parks here until SIGINT/SIGTERM arrives; the demo
  // sends itself SIGTERM so the drain path runs unattended in CI.
  // Drain (unlike Stop) refuses *new* connections but lets every
  // admitted request finish before tearing the workers down, so a
  // rolling restart never kills an answer mid-frame.
  raise(SIGTERM);
  while (g_shutdown == 0) {
  }
  std::cout << "\nsignal received, draining in-flight requests...\n";
  server.Drain();
  std::cout << "server stats: "
            << server.stats().requests_accepted << " requests, "
            << server.stats().requests_shed << " shed\n";
  return 0;
}
