file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_text.dir/bench_micro_text.cc.o"
  "CMakeFiles/bench_micro_text.dir/bench_micro_text.cc.o.d"
  "bench_micro_text"
  "bench_micro_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
