
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec22_integration.cc" "bench/CMakeFiles/bench_sec22_integration.dir/bench_sec22_integration.cc.o" "gcc" "bench/CMakeFiles/bench_sec22_integration.dir/bench_sec22_integration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dual/CMakeFiles/kg_dual.dir/DependInfo.cmake"
  "/root/repo/build/src/textrich/CMakeFiles/kg_textrich.dir/DependInfo.cmake"
  "/root/repo/build/src/fuse/CMakeFiles/kg_fuse.dir/DependInfo.cmake"
  "/root/repo/build/src/integrate/CMakeFiles/kg_integrate.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/kg_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/kg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
