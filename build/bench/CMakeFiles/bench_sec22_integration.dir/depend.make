# Empty dependencies file for bench_sec22_integration.
# This may be replaced when dependencies are built.
