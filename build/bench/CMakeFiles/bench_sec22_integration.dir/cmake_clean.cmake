file(REMOVE_RECURSE
  "CMakeFiles/bench_sec22_integration.dir/bench_sec22_integration.cc.o"
  "CMakeFiles/bench_sec22_integration.dir/bench_sec22_integration.cc.o.d"
  "bench_sec22_integration"
  "bench_sec22_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec22_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
