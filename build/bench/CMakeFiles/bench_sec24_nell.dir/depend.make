# Empty dependencies file for bench_sec24_nell.
# This may be replaced when dependencies are built.
