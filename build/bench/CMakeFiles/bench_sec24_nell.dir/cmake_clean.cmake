file(REMOVE_RECURSE
  "CMakeFiles/bench_sec24_nell.dir/bench_sec24_nell.cc.o"
  "CMakeFiles/bench_sec24_nell.dir/bench_sec24_nell.cc.o.d"
  "bench_sec24_nell"
  "bench_sec24_nell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec24_nell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
