# Empty dependencies file for bench_sec5_linkpred.
# This may be replaced when dependencies are built.
