file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_linkpred.dir/bench_sec5_linkpred.cc.o"
  "CMakeFiles/bench_sec5_linkpred.dir/bench_sec5_linkpred.cc.o.d"
  "bench_sec5_linkpred"
  "bench_sec5_linkpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_linkpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
