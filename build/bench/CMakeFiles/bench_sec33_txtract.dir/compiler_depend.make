# Empty compiler generated dependencies file for bench_sec33_txtract.
# This may be replaced when dependencies are built.
