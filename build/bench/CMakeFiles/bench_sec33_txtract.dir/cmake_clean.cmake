file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_txtract.dir/bench_sec33_txtract.cc.o"
  "CMakeFiles/bench_sec33_txtract.dir/bench_sec33_txtract.cc.o.d"
  "bench_sec33_txtract"
  "bench_sec33_txtract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_txtract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
