file(REMOVE_RECURSE
  "CMakeFiles/bench_sec34_pam.dir/bench_sec34_pam.cc.o"
  "CMakeFiles/bench_sec34_pam.dir/bench_sec34_pam.cc.o.d"
  "bench_sec34_pam"
  "bench_sec34_pam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec34_pam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
