file(REMOVE_RECURSE
  "CMakeFiles/bench_sec31_taxonomy.dir/bench_sec31_taxonomy.cc.o"
  "CMakeFiles/bench_sec31_taxonomy.dir/bench_sec31_taxonomy.cc.o.d"
  "bench_sec31_taxonomy"
  "bench_sec31_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
