# Empty compiler generated dependencies file for bench_sec31_taxonomy.
# This may be replaced when dependencies are built.
