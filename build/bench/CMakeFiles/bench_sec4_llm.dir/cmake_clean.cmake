file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_llm.dir/bench_sec4_llm.cc.o"
  "CMakeFiles/bench_sec4_llm.dir/bench_sec4_llm.cc.o.d"
  "bench_sec4_llm"
  "bench_sec4_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
