# Empty dependencies file for bench_sec4_llm.
# This may be replaced when dependencies are built.
