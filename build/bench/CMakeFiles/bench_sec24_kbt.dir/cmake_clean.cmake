file(REMOVE_RECURSE
  "CMakeFiles/bench_sec24_kbt.dir/bench_sec24_kbt.cc.o"
  "CMakeFiles/bench_sec24_kbt.dir/bench_sec24_kbt.cc.o.d"
  "bench_sec24_kbt"
  "bench_sec24_kbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec24_kbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
