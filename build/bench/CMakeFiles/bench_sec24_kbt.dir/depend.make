# Empty dependencies file for bench_sec24_kbt.
# This may be replaced when dependencies are built.
