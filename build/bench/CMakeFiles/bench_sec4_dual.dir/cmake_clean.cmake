file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_dual.dir/bench_sec4_dual.cc.o"
  "CMakeFiles/bench_sec4_dual.dir/bench_sec4_dual.cc.o.d"
  "bench_sec4_dual"
  "bench_sec4_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
