file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_adatag.dir/bench_sec33_adatag.cc.o"
  "CMakeFiles/bench_sec33_adatag.dir/bench_sec33_adatag.cc.o.d"
  "bench_sec33_adatag"
  "bench_sec33_adatag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_adatag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
