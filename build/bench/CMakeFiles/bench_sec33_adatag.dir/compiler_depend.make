# Empty compiler generated dependencies file for bench_sec33_adatag.
# This may be replaced when dependencies are built.
