file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_linkage.dir/bench_fig2_linkage.cc.o"
  "CMakeFiles/bench_fig2_linkage.dir/bench_fig2_linkage.cc.o.d"
  "bench_fig2_linkage"
  "bench_fig2_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
