# Empty dependencies file for bench_fig2_linkage.
# This may be replaced when dependencies are built.
