# Empty dependencies file for bench_sec24_webscale.
# This may be replaced when dependencies are built.
