file(REMOVE_RECURSE
  "CMakeFiles/bench_sec24_webscale.dir/bench_sec24_webscale.cc.o"
  "CMakeFiles/bench_sec24_webscale.dir/bench_sec24_webscale.cc.o.d"
  "bench_sec24_webscale"
  "bench_sec24_webscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec24_webscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
