add_test([=[CrossModuleTest.BuildSerializeReloadQuery]=]  /root/repo/build/tests/cross_module_test [==[--gtest_filter=CrossModuleTest.BuildSerializeReloadQuery]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CrossModuleTest.BuildSerializeReloadQuery]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cross_module_test_TESTS CrossModuleTest.BuildSerializeReloadQuery)
