# Empty compiler generated dependencies file for synth_behavior_qa_test.
# This may be replaced when dependencies are built.
