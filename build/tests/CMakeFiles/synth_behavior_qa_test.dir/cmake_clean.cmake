file(REMOVE_RECURSE
  "CMakeFiles/synth_behavior_qa_test.dir/synth_behavior_qa_test.cc.o"
  "CMakeFiles/synth_behavior_qa_test.dir/synth_behavior_qa_test.cc.o.d"
  "synth_behavior_qa_test"
  "synth_behavior_qa_test.pdb"
  "synth_behavior_qa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_behavior_qa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
