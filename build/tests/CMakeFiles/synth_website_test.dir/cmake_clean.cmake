file(REMOVE_RECURSE
  "CMakeFiles/synth_website_test.dir/synth_website_test.cc.o"
  "CMakeFiles/synth_website_test.dir/synth_website_test.cc.o.d"
  "synth_website_test"
  "synth_website_test.pdb"
  "synth_website_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_website_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
