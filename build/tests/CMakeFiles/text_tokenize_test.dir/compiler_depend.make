# Empty compiler generated dependencies file for text_tokenize_test.
# This may be replaced when dependencies are built.
