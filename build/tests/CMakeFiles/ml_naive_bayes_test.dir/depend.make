# Empty dependencies file for ml_naive_bayes_test.
# This may be replaced when dependencies are built.
