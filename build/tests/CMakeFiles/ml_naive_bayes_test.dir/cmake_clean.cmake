file(REMOVE_RECURSE
  "CMakeFiles/ml_naive_bayes_test.dir/ml_naive_bayes_test.cc.o"
  "CMakeFiles/ml_naive_bayes_test.dir/ml_naive_bayes_test.cc.o.d"
  "ml_naive_bayes_test"
  "ml_naive_bayes_test.pdb"
  "ml_naive_bayes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_naive_bayes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
