file(REMOVE_RECURSE
  "CMakeFiles/synth_catalog_test.dir/synth_catalog_test.cc.o"
  "CMakeFiles/synth_catalog_test.dir/synth_catalog_test.cc.o.d"
  "synth_catalog_test"
  "synth_catalog_test.pdb"
  "synth_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
