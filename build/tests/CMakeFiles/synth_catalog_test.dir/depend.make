# Empty dependencies file for synth_catalog_test.
# This may be replaced when dependencies are built.
