file(REMOVE_RECURSE
  "CMakeFiles/extract_dom_test.dir/extract_dom_test.cc.o"
  "CMakeFiles/extract_dom_test.dir/extract_dom_test.cc.o.d"
  "extract_dom_test"
  "extract_dom_test.pdb"
  "extract_dom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_dom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
