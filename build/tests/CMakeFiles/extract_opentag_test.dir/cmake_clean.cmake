file(REMOVE_RECURSE
  "CMakeFiles/extract_opentag_test.dir/extract_opentag_test.cc.o"
  "CMakeFiles/extract_opentag_test.dir/extract_opentag_test.cc.o.d"
  "extract_opentag_test"
  "extract_opentag_test.pdb"
  "extract_opentag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_opentag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
