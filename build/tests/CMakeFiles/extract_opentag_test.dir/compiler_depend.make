# Empty compiler generated dependencies file for extract_opentag_test.
# This may be replaced when dependencies are built.
