file(REMOVE_RECURSE
  "CMakeFiles/graph_kg_test.dir/graph_kg_test.cc.o"
  "CMakeFiles/graph_kg_test.dir/graph_kg_test.cc.o.d"
  "graph_kg_test"
  "graph_kg_test.pdb"
  "graph_kg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_kg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
