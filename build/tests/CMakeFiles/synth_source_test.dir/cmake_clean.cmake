file(REMOVE_RECURSE
  "CMakeFiles/synth_source_test.dir/synth_source_test.cc.o"
  "CMakeFiles/synth_source_test.dir/synth_source_test.cc.o.d"
  "synth_source_test"
  "synth_source_test.pdb"
  "synth_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
