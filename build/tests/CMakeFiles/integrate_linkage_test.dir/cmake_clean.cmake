file(REMOVE_RECURSE
  "CMakeFiles/integrate_linkage_test.dir/integrate_linkage_test.cc.o"
  "CMakeFiles/integrate_linkage_test.dir/integrate_linkage_test.cc.o.d"
  "integrate_linkage_test"
  "integrate_linkage_test.pdb"
  "integrate_linkage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate_linkage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
