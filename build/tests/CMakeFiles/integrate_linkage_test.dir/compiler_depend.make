# Empty compiler generated dependencies file for integrate_linkage_test.
# This may be replaced when dependencies are built.
