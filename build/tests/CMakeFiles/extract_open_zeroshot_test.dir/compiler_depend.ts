# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for extract_open_zeroshot_test.
