# Empty dependencies file for extract_open_zeroshot_test.
# This may be replaced when dependencies are built.
