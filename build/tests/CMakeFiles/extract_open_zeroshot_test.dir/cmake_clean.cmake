file(REMOVE_RECURSE
  "CMakeFiles/extract_open_zeroshot_test.dir/extract_open_zeroshot_test.cc.o"
  "CMakeFiles/extract_open_zeroshot_test.dir/extract_open_zeroshot_test.cc.o.d"
  "extract_open_zeroshot_test"
  "extract_open_zeroshot_test.pdb"
  "extract_open_zeroshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_open_zeroshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
