file(REMOVE_RECURSE
  "CMakeFiles/integrate_copy_detection_test.dir/integrate_copy_detection_test.cc.o"
  "CMakeFiles/integrate_copy_detection_test.dir/integrate_copy_detection_test.cc.o.d"
  "integrate_copy_detection_test"
  "integrate_copy_detection_test.pdb"
  "integrate_copy_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate_copy_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
