# Empty dependencies file for integrate_copy_detection_test.
# This may be replaced when dependencies are built.
