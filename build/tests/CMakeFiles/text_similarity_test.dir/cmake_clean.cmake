file(REMOVE_RECURSE
  "CMakeFiles/text_similarity_test.dir/text_similarity_test.cc.o"
  "CMakeFiles/text_similarity_test.dir/text_similarity_test.cc.o.d"
  "text_similarity_test"
  "text_similarity_test.pdb"
  "text_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
