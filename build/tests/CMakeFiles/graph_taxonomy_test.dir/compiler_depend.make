# Empty compiler generated dependencies file for graph_taxonomy_test.
# This may be replaced when dependencies are built.
