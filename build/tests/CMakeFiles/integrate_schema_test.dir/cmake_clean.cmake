file(REMOVE_RECURSE
  "CMakeFiles/integrate_schema_test.dir/integrate_schema_test.cc.o"
  "CMakeFiles/integrate_schema_test.dir/integrate_schema_test.cc.o.d"
  "integrate_schema_test"
  "integrate_schema_test.pdb"
  "integrate_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
