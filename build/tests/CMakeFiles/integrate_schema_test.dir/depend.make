# Empty dependencies file for integrate_schema_test.
# This may be replaced when dependencies are built.
