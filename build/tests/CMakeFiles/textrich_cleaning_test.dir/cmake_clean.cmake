file(REMOVE_RECURSE
  "CMakeFiles/textrich_cleaning_test.dir/textrich_cleaning_test.cc.o"
  "CMakeFiles/textrich_cleaning_test.dir/textrich_cleaning_test.cc.o.d"
  "textrich_cleaning_test"
  "textrich_cleaning_test.pdb"
  "textrich_cleaning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textrich_cleaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
