# Empty dependencies file for textrich_cleaning_test.
# This may be replaced when dependencies are built.
