file(REMOVE_RECURSE
  "CMakeFiles/textrich_description_test.dir/textrich_description_test.cc.o"
  "CMakeFiles/textrich_description_test.dir/textrich_description_test.cc.o.d"
  "textrich_description_test"
  "textrich_description_test.pdb"
  "textrich_description_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textrich_description_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
