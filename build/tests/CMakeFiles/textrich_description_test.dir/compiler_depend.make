# Empty compiler generated dependencies file for textrich_description_test.
# This may be replaced when dependencies are built.
