# Empty dependencies file for extract_ceres_test.
# This may be replaced when dependencies are built.
