file(REMOVE_RECURSE
  "CMakeFiles/extract_ceres_test.dir/extract_ceres_test.cc.o"
  "CMakeFiles/extract_ceres_test.dir/extract_ceres_test.cc.o.d"
  "extract_ceres_test"
  "extract_ceres_test.pdb"
  "extract_ceres_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_ceres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
