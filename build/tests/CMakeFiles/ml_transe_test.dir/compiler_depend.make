# Empty compiler generated dependencies file for ml_transe_test.
# This may be replaced when dependencies are built.
