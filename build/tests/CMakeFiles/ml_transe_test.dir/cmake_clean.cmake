file(REMOVE_RECURSE
  "CMakeFiles/ml_transe_test.dir/ml_transe_test.cc.o"
  "CMakeFiles/ml_transe_test.dir/ml_transe_test.cc.o.d"
  "ml_transe_test"
  "ml_transe_test.pdb"
  "ml_transe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_transe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
