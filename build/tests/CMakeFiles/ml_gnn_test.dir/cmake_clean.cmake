file(REMOVE_RECURSE
  "CMakeFiles/ml_gnn_test.dir/ml_gnn_test.cc.o"
  "CMakeFiles/ml_gnn_test.dir/ml_gnn_test.cc.o.d"
  "ml_gnn_test"
  "ml_gnn_test.pdb"
  "ml_gnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_gnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
