# Empty dependencies file for ml_gnn_test.
# This may be replaced when dependencies are built.
