# Empty dependencies file for synth_universe_test.
# This may be replaced when dependencies are built.
