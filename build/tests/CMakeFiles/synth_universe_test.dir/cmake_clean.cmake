file(REMOVE_RECURSE
  "CMakeFiles/synth_universe_test.dir/synth_universe_test.cc.o"
  "CMakeFiles/synth_universe_test.dir/synth_universe_test.cc.o.d"
  "synth_universe_test"
  "synth_universe_test.pdb"
  "synth_universe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_universe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
