# Empty dependencies file for textrich_mining_test.
# This may be replaced when dependencies are built.
