file(REMOVE_RECURSE
  "CMakeFiles/textrich_mining_test.dir/textrich_mining_test.cc.o"
  "CMakeFiles/textrich_mining_test.dir/textrich_mining_test.cc.o.d"
  "textrich_mining_test"
  "textrich_mining_test.pdb"
  "textrich_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textrich_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
