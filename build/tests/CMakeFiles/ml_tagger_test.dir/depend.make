# Empty dependencies file for ml_tagger_test.
# This may be replaced when dependencies are built.
