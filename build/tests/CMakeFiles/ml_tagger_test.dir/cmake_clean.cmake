file(REMOVE_RECURSE
  "CMakeFiles/ml_tagger_test.dir/ml_tagger_test.cc.o"
  "CMakeFiles/ml_tagger_test.dir/ml_tagger_test.cc.o.d"
  "ml_tagger_test"
  "ml_tagger_test.pdb"
  "ml_tagger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
