file(REMOVE_RECURSE
  "CMakeFiles/integrate_fusion_test.dir/integrate_fusion_test.cc.o"
  "CMakeFiles/integrate_fusion_test.dir/integrate_fusion_test.cc.o.d"
  "integrate_fusion_test"
  "integrate_fusion_test.pdb"
  "integrate_fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
