# Empty dependencies file for integrate_fusion_test.
# This may be replaced when dependencies are built.
