file(REMOVE_RECURSE
  "CMakeFiles/integrate_dedup_test.dir/integrate_dedup_test.cc.o"
  "CMakeFiles/integrate_dedup_test.dir/integrate_dedup_test.cc.o.d"
  "integrate_dedup_test"
  "integrate_dedup_test.pdb"
  "integrate_dedup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate_dedup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
