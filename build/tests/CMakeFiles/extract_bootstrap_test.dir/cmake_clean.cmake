file(REMOVE_RECURSE
  "CMakeFiles/extract_bootstrap_test.dir/extract_bootstrap_test.cc.o"
  "CMakeFiles/extract_bootstrap_test.dir/extract_bootstrap_test.cc.o.d"
  "extract_bootstrap_test"
  "extract_bootstrap_test.pdb"
  "extract_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
