# Empty dependencies file for extract_bootstrap_test.
# This may be replaced when dependencies are built.
