# Empty compiler generated dependencies file for fuse_pra_test.
# This may be replaced when dependencies are built.
