file(REMOVE_RECURSE
  "CMakeFiles/fuse_pra_test.dir/fuse_pra_test.cc.o"
  "CMakeFiles/fuse_pra_test.dir/fuse_pra_test.cc.o.d"
  "fuse_pra_test"
  "fuse_pra_test.pdb"
  "fuse_pra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_pra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
