file(REMOVE_RECURSE
  "CMakeFiles/textrich_pipeline_test.dir/textrich_pipeline_test.cc.o"
  "CMakeFiles/textrich_pipeline_test.dir/textrich_pipeline_test.cc.o.d"
  "textrich_pipeline_test"
  "textrich_pipeline_test.pdb"
  "textrich_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textrich_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
