# Empty dependencies file for textrich_pipeline_test.
# This may be replaced when dependencies are built.
