# Empty dependencies file for fuse_confidence_test.
# This may be replaced when dependencies are built.
