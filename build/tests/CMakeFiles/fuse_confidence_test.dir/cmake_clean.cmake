file(REMOVE_RECURSE
  "CMakeFiles/fuse_confidence_test.dir/fuse_confidence_test.cc.o"
  "CMakeFiles/fuse_confidence_test.dir/fuse_confidence_test.cc.o.d"
  "fuse_confidence_test"
  "fuse_confidence_test.pdb"
  "fuse_confidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_confidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
