file(REMOVE_RECURSE
  "CMakeFiles/extract_wrapper_test.dir/extract_wrapper_test.cc.o"
  "CMakeFiles/extract_wrapper_test.dir/extract_wrapper_test.cc.o.d"
  "extract_wrapper_test"
  "extract_wrapper_test.pdb"
  "extract_wrapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
