file(REMOVE_RECURSE
  "CMakeFiles/core_cleaning_test.dir/core_cleaning_test.cc.o"
  "CMakeFiles/core_cleaning_test.dir/core_cleaning_test.cc.o.d"
  "core_cleaning_test"
  "core_cleaning_test.pdb"
  "core_cleaning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cleaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
