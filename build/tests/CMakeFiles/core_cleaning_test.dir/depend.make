# Empty dependencies file for core_cleaning_test.
# This may be replaced when dependencies are built.
