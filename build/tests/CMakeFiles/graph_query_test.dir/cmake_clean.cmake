file(REMOVE_RECURSE
  "CMakeFiles/graph_query_test.dir/graph_query_test.cc.o"
  "CMakeFiles/graph_query_test.dir/graph_query_test.cc.o.d"
  "graph_query_test"
  "graph_query_test.pdb"
  "graph_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
