# Empty dependencies file for graph_query_test.
# This may be replaced when dependencies are built.
