file(REMOVE_RECURSE
  "CMakeFiles/ml_active_learning_test.dir/ml_active_learning_test.cc.o"
  "CMakeFiles/ml_active_learning_test.dir/ml_active_learning_test.cc.o.d"
  "ml_active_learning_test"
  "ml_active_learning_test.pdb"
  "ml_active_learning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_active_learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
