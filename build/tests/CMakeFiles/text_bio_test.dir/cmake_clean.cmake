file(REMOVE_RECURSE
  "CMakeFiles/text_bio_test.dir/text_bio_test.cc.o"
  "CMakeFiles/text_bio_test.dir/text_bio_test.cc.o.d"
  "text_bio_test"
  "text_bio_test.pdb"
  "text_bio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_bio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
