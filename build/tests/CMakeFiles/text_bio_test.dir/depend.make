# Empty dependencies file for text_bio_test.
# This may be replaced when dependencies are built.
