file(REMOVE_RECURSE
  "CMakeFiles/synth_names_test.dir/synth_names_test.cc.o"
  "CMakeFiles/synth_names_test.dir/synth_names_test.cc.o.d"
  "synth_names_test"
  "synth_names_test.pdb"
  "synth_names_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_names_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
