# Empty dependencies file for synth_names_test.
# This may be replaced when dependencies are built.
