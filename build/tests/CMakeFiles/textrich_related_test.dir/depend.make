# Empty dependencies file for textrich_related_test.
# This may be replaced when dependencies are built.
