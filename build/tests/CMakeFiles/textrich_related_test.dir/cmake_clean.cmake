file(REMOVE_RECURSE
  "CMakeFiles/textrich_related_test.dir/textrich_related_test.cc.o"
  "CMakeFiles/textrich_related_test.dir/textrich_related_test.cc.o.d"
  "textrich_related_test"
  "textrich_related_test.pdb"
  "textrich_related_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textrich_related_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
