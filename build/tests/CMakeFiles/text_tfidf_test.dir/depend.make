# Empty dependencies file for text_tfidf_test.
# This may be replaced when dependencies are built.
