# Empty compiler generated dependencies file for dual_rag_test.
# This may be replaced when dependencies are built.
