file(REMOVE_RECURSE
  "CMakeFiles/dual_rag_test.dir/dual_rag_test.cc.o"
  "CMakeFiles/dual_rag_test.dir/dual_rag_test.cc.o.d"
  "dual_rag_test"
  "dual_rag_test.pdb"
  "dual_rag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_rag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
