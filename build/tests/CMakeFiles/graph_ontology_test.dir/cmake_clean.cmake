file(REMOVE_RECURSE
  "CMakeFiles/graph_ontology_test.dir/graph_ontology_test.cc.o"
  "CMakeFiles/graph_ontology_test.dir/graph_ontology_test.cc.o.d"
  "graph_ontology_test"
  "graph_ontology_test.pdb"
  "graph_ontology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_ontology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
