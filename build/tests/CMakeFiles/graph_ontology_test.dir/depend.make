# Empty dependencies file for graph_ontology_test.
# This may be replaced when dependencies are built.
