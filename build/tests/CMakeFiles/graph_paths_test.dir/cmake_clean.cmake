file(REMOVE_RECURSE
  "CMakeFiles/graph_paths_test.dir/graph_paths_test.cc.o"
  "CMakeFiles/graph_paths_test.dir/graph_paths_test.cc.o.d"
  "graph_paths_test"
  "graph_paths_test.pdb"
  "graph_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
