# Empty compiler generated dependencies file for graph_paths_test.
# This may be replaced when dependencies are built.
