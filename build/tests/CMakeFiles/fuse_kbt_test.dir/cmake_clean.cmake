file(REMOVE_RECURSE
  "CMakeFiles/fuse_kbt_test.dir/fuse_kbt_test.cc.o"
  "CMakeFiles/fuse_kbt_test.dir/fuse_kbt_test.cc.o.d"
  "fuse_kbt_test"
  "fuse_kbt_test.pdb"
  "fuse_kbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuse_kbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
