# Empty compiler generated dependencies file for fuse_kbt_test.
# This may be replaced when dependencies are built.
