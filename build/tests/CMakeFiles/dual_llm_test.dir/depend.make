# Empty dependencies file for dual_llm_test.
# This may be replaced when dependencies are built.
