file(REMOVE_RECURSE
  "CMakeFiles/dual_llm_test.dir/dual_llm_test.cc.o"
  "CMakeFiles/dual_llm_test.dir/dual_llm_test.cc.o.d"
  "dual_llm_test"
  "dual_llm_test.pdb"
  "dual_llm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
