file(REMOVE_RECURSE
  "CMakeFiles/movie_integration.dir/movie_integration.cpp.o"
  "CMakeFiles/movie_integration.dir/movie_integration.cpp.o.d"
  "movie_integration"
  "movie_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
