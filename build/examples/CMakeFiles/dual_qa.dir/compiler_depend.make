# Empty compiler generated dependencies file for dual_qa.
# This may be replaced when dependencies are built.
