file(REMOVE_RECURSE
  "CMakeFiles/dual_qa.dir/dual_qa.cpp.o"
  "CMakeFiles/dual_qa.dir/dual_qa.cpp.o.d"
  "dual_qa"
  "dual_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
