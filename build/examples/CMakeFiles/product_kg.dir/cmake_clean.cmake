file(REMOVE_RECURSE
  "CMakeFiles/product_kg.dir/product_kg.cpp.o"
  "CMakeFiles/product_kg.dir/product_kg.cpp.o.d"
  "product_kg"
  "product_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
