# Empty compiler generated dependencies file for product_kg.
# This may be replaced when dependencies are built.
