
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/distant_supervision.cc" "src/extract/CMakeFiles/kg_extract.dir/distant_supervision.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/distant_supervision.cc.o.d"
  "/root/repo/src/extract/dom.cc" "src/extract/CMakeFiles/kg_extract.dir/dom.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/dom.cc.o.d"
  "/root/repo/src/extract/open_extraction.cc" "src/extract/CMakeFiles/kg_extract.dir/open_extraction.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/open_extraction.cc.o.d"
  "/root/repo/src/extract/opentag.cc" "src/extract/CMakeFiles/kg_extract.dir/opentag.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/opentag.cc.o.d"
  "/root/repo/src/extract/pattern_bootstrap.cc" "src/extract/CMakeFiles/kg_extract.dir/pattern_bootstrap.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/pattern_bootstrap.cc.o.d"
  "/root/repo/src/extract/wrapper_induction.cc" "src/extract/CMakeFiles/kg_extract.dir/wrapper_induction.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/wrapper_induction.cc.o.d"
  "/root/repo/src/extract/zeroshot_extraction.cc" "src/extract/CMakeFiles/kg_extract.dir/zeroshot_extraction.cc.o" "gcc" "src/extract/CMakeFiles/kg_extract.dir/zeroshot_extraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
