# Empty dependencies file for kg_extract.
# This may be replaced when dependencies are built.
