file(REMOVE_RECURSE
  "libkg_extract.a"
)
