file(REMOVE_RECURSE
  "CMakeFiles/kg_extract.dir/distant_supervision.cc.o"
  "CMakeFiles/kg_extract.dir/distant_supervision.cc.o.d"
  "CMakeFiles/kg_extract.dir/dom.cc.o"
  "CMakeFiles/kg_extract.dir/dom.cc.o.d"
  "CMakeFiles/kg_extract.dir/open_extraction.cc.o"
  "CMakeFiles/kg_extract.dir/open_extraction.cc.o.d"
  "CMakeFiles/kg_extract.dir/opentag.cc.o"
  "CMakeFiles/kg_extract.dir/opentag.cc.o.d"
  "CMakeFiles/kg_extract.dir/pattern_bootstrap.cc.o"
  "CMakeFiles/kg_extract.dir/pattern_bootstrap.cc.o.d"
  "CMakeFiles/kg_extract.dir/wrapper_induction.cc.o"
  "CMakeFiles/kg_extract.dir/wrapper_induction.cc.o.d"
  "CMakeFiles/kg_extract.dir/zeroshot_extraction.cc.o"
  "CMakeFiles/kg_extract.dir/zeroshot_extraction.cc.o.d"
  "libkg_extract.a"
  "libkg_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
