file(REMOVE_RECURSE
  "libkg_common.a"
)
