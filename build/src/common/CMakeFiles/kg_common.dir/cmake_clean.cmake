file(REMOVE_RECURSE
  "CMakeFiles/kg_common.dir/csv.cc.o"
  "CMakeFiles/kg_common.dir/csv.cc.o.d"
  "CMakeFiles/kg_common.dir/logging.cc.o"
  "CMakeFiles/kg_common.dir/logging.cc.o.d"
  "CMakeFiles/kg_common.dir/rng.cc.o"
  "CMakeFiles/kg_common.dir/rng.cc.o.d"
  "CMakeFiles/kg_common.dir/status.cc.o"
  "CMakeFiles/kg_common.dir/status.cc.o.d"
  "CMakeFiles/kg_common.dir/strings.cc.o"
  "CMakeFiles/kg_common.dir/strings.cc.o.d"
  "CMakeFiles/kg_common.dir/table_printer.cc.o"
  "CMakeFiles/kg_common.dir/table_printer.cc.o.d"
  "CMakeFiles/kg_common.dir/thread_pool.cc.o"
  "CMakeFiles/kg_common.dir/thread_pool.cc.o.d"
  "libkg_common.a"
  "libkg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
