file(REMOVE_RECURSE
  "libkg_graph.a"
)
