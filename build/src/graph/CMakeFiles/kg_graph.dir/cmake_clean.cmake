file(REMOVE_RECURSE
  "CMakeFiles/kg_graph.dir/knowledge_graph.cc.o"
  "CMakeFiles/kg_graph.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/kg_graph.dir/ontology.cc.o"
  "CMakeFiles/kg_graph.dir/ontology.cc.o.d"
  "CMakeFiles/kg_graph.dir/paths.cc.o"
  "CMakeFiles/kg_graph.dir/paths.cc.o.d"
  "CMakeFiles/kg_graph.dir/query.cc.o"
  "CMakeFiles/kg_graph.dir/query.cc.o.d"
  "CMakeFiles/kg_graph.dir/serialization.cc.o"
  "CMakeFiles/kg_graph.dir/serialization.cc.o.d"
  "CMakeFiles/kg_graph.dir/taxonomy.cc.o"
  "CMakeFiles/kg_graph.dir/taxonomy.cc.o.d"
  "libkg_graph.a"
  "libkg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
