# Empty compiler generated dependencies file for kg_graph.
# This may be replaced when dependencies are built.
