
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/knowledge_graph.cc" "src/graph/CMakeFiles/kg_graph.dir/knowledge_graph.cc.o" "gcc" "src/graph/CMakeFiles/kg_graph.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/graph/ontology.cc" "src/graph/CMakeFiles/kg_graph.dir/ontology.cc.o" "gcc" "src/graph/CMakeFiles/kg_graph.dir/ontology.cc.o.d"
  "/root/repo/src/graph/paths.cc" "src/graph/CMakeFiles/kg_graph.dir/paths.cc.o" "gcc" "src/graph/CMakeFiles/kg_graph.dir/paths.cc.o.d"
  "/root/repo/src/graph/query.cc" "src/graph/CMakeFiles/kg_graph.dir/query.cc.o" "gcc" "src/graph/CMakeFiles/kg_graph.dir/query.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/graph/CMakeFiles/kg_graph.dir/serialization.cc.o" "gcc" "src/graph/CMakeFiles/kg_graph.dir/serialization.cc.o.d"
  "/root/repo/src/graph/taxonomy.cc" "src/graph/CMakeFiles/kg_graph.dir/taxonomy.cc.o" "gcc" "src/graph/CMakeFiles/kg_graph.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
