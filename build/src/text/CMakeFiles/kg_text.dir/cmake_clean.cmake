file(REMOVE_RECURSE
  "CMakeFiles/kg_text.dir/bio.cc.o"
  "CMakeFiles/kg_text.dir/bio.cc.o.d"
  "CMakeFiles/kg_text.dir/similarity.cc.o"
  "CMakeFiles/kg_text.dir/similarity.cc.o.d"
  "CMakeFiles/kg_text.dir/tfidf.cc.o"
  "CMakeFiles/kg_text.dir/tfidf.cc.o.d"
  "CMakeFiles/kg_text.dir/tokenize.cc.o"
  "CMakeFiles/kg_text.dir/tokenize.cc.o.d"
  "libkg_text.a"
  "libkg_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
