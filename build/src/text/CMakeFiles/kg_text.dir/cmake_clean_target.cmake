file(REMOVE_RECURSE
  "libkg_text.a"
)
