# Empty dependencies file for kg_text.
# This may be replaced when dependencies are built.
