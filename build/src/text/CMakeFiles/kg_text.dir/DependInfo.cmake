
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bio.cc" "src/text/CMakeFiles/kg_text.dir/bio.cc.o" "gcc" "src/text/CMakeFiles/kg_text.dir/bio.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/text/CMakeFiles/kg_text.dir/similarity.cc.o" "gcc" "src/text/CMakeFiles/kg_text.dir/similarity.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/text/CMakeFiles/kg_text.dir/tfidf.cc.o" "gcc" "src/text/CMakeFiles/kg_text.dir/tfidf.cc.o.d"
  "/root/repo/src/text/tokenize.cc" "src/text/CMakeFiles/kg_text.dir/tokenize.cc.o" "gcc" "src/text/CMakeFiles/kg_text.dir/tokenize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
