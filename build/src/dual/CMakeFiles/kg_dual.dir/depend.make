# Empty dependencies file for kg_dual.
# This may be replaced when dependencies are built.
