file(REMOVE_RECURSE
  "libkg_dual.a"
)
