
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dual/answerers.cc" "src/dual/CMakeFiles/kg_dual.dir/answerers.cc.o" "gcc" "src/dual/CMakeFiles/kg_dual.dir/answerers.cc.o.d"
  "/root/repo/src/dual/llm_sim.cc" "src/dual/CMakeFiles/kg_dual.dir/llm_sim.cc.o" "gcc" "src/dual/CMakeFiles/kg_dual.dir/llm_sim.cc.o.d"
  "/root/repo/src/dual/qa_eval.cc" "src/dual/CMakeFiles/kg_dual.dir/qa_eval.cc.o" "gcc" "src/dual/CMakeFiles/kg_dual.dir/qa_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/kg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/kg_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
