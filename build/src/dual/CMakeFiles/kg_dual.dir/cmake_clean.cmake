file(REMOVE_RECURSE
  "CMakeFiles/kg_dual.dir/answerers.cc.o"
  "CMakeFiles/kg_dual.dir/answerers.cc.o.d"
  "CMakeFiles/kg_dual.dir/llm_sim.cc.o"
  "CMakeFiles/kg_dual.dir/llm_sim.cc.o.d"
  "CMakeFiles/kg_dual.dir/qa_eval.cc.o"
  "CMakeFiles/kg_dual.dir/qa_eval.cc.o.d"
  "libkg_dual.a"
  "libkg_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
