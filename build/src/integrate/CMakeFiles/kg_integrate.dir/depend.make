# Empty dependencies file for kg_integrate.
# This may be replaced when dependencies are built.
