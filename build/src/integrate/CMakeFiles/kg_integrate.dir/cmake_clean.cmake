file(REMOVE_RECURSE
  "CMakeFiles/kg_integrate.dir/copy_detection.cc.o"
  "CMakeFiles/kg_integrate.dir/copy_detection.cc.o.d"
  "CMakeFiles/kg_integrate.dir/dedup.cc.o"
  "CMakeFiles/kg_integrate.dir/dedup.cc.o.d"
  "CMakeFiles/kg_integrate.dir/fusion.cc.o"
  "CMakeFiles/kg_integrate.dir/fusion.cc.o.d"
  "CMakeFiles/kg_integrate.dir/linkage.cc.o"
  "CMakeFiles/kg_integrate.dir/linkage.cc.o.d"
  "CMakeFiles/kg_integrate.dir/record.cc.o"
  "CMakeFiles/kg_integrate.dir/record.cc.o.d"
  "CMakeFiles/kg_integrate.dir/schema_alignment.cc.o"
  "CMakeFiles/kg_integrate.dir/schema_alignment.cc.o.d"
  "libkg_integrate.a"
  "libkg_integrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
