
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integrate/copy_detection.cc" "src/integrate/CMakeFiles/kg_integrate.dir/copy_detection.cc.o" "gcc" "src/integrate/CMakeFiles/kg_integrate.dir/copy_detection.cc.o.d"
  "/root/repo/src/integrate/dedup.cc" "src/integrate/CMakeFiles/kg_integrate.dir/dedup.cc.o" "gcc" "src/integrate/CMakeFiles/kg_integrate.dir/dedup.cc.o.d"
  "/root/repo/src/integrate/fusion.cc" "src/integrate/CMakeFiles/kg_integrate.dir/fusion.cc.o" "gcc" "src/integrate/CMakeFiles/kg_integrate.dir/fusion.cc.o.d"
  "/root/repo/src/integrate/linkage.cc" "src/integrate/CMakeFiles/kg_integrate.dir/linkage.cc.o" "gcc" "src/integrate/CMakeFiles/kg_integrate.dir/linkage.cc.o.d"
  "/root/repo/src/integrate/record.cc" "src/integrate/CMakeFiles/kg_integrate.dir/record.cc.o" "gcc" "src/integrate/CMakeFiles/kg_integrate.dir/record.cc.o.d"
  "/root/repo/src/integrate/schema_alignment.cc" "src/integrate/CMakeFiles/kg_integrate.dir/schema_alignment.cc.o" "gcc" "src/integrate/CMakeFiles/kg_integrate.dir/schema_alignment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
