file(REMOVE_RECURSE
  "libkg_integrate.a"
)
