file(REMOVE_RECURSE
  "CMakeFiles/kg_ml.dir/active_learning.cc.o"
  "CMakeFiles/kg_ml.dir/active_learning.cc.o.d"
  "CMakeFiles/kg_ml.dir/dataset.cc.o"
  "CMakeFiles/kg_ml.dir/dataset.cc.o.d"
  "CMakeFiles/kg_ml.dir/decision_tree.cc.o"
  "CMakeFiles/kg_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/kg_ml.dir/graph_propagation.cc.o"
  "CMakeFiles/kg_ml.dir/graph_propagation.cc.o.d"
  "CMakeFiles/kg_ml.dir/kmeans.cc.o"
  "CMakeFiles/kg_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/kg_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/kg_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/kg_ml.dir/metrics.cc.o"
  "CMakeFiles/kg_ml.dir/metrics.cc.o.d"
  "CMakeFiles/kg_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/kg_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/kg_ml.dir/random_forest.cc.o"
  "CMakeFiles/kg_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/kg_ml.dir/sequence_tagger.cc.o"
  "CMakeFiles/kg_ml.dir/sequence_tagger.cc.o.d"
  "CMakeFiles/kg_ml.dir/transe.cc.o"
  "CMakeFiles/kg_ml.dir/transe.cc.o.d"
  "libkg_ml.a"
  "libkg_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
