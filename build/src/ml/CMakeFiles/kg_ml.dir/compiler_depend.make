# Empty compiler generated dependencies file for kg_ml.
# This may be replaced when dependencies are built.
