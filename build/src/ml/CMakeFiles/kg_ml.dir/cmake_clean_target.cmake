file(REMOVE_RECURSE
  "libkg_ml.a"
)
