file(REMOVE_RECURSE
  "libkg_synth.a"
)
