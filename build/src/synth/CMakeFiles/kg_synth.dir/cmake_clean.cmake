file(REMOVE_RECURSE
  "CMakeFiles/kg_synth.dir/behavior_generator.cc.o"
  "CMakeFiles/kg_synth.dir/behavior_generator.cc.o.d"
  "CMakeFiles/kg_synth.dir/catalog_generator.cc.o"
  "CMakeFiles/kg_synth.dir/catalog_generator.cc.o.d"
  "CMakeFiles/kg_synth.dir/entity_universe.cc.o"
  "CMakeFiles/kg_synth.dir/entity_universe.cc.o.d"
  "CMakeFiles/kg_synth.dir/names.cc.o"
  "CMakeFiles/kg_synth.dir/names.cc.o.d"
  "CMakeFiles/kg_synth.dir/qa_generator.cc.o"
  "CMakeFiles/kg_synth.dir/qa_generator.cc.o.d"
  "CMakeFiles/kg_synth.dir/structured_source.cc.o"
  "CMakeFiles/kg_synth.dir/structured_source.cc.o.d"
  "CMakeFiles/kg_synth.dir/text_corpus.cc.o"
  "CMakeFiles/kg_synth.dir/text_corpus.cc.o.d"
  "CMakeFiles/kg_synth.dir/website_generator.cc.o"
  "CMakeFiles/kg_synth.dir/website_generator.cc.o.d"
  "libkg_synth.a"
  "libkg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
