
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/behavior_generator.cc" "src/synth/CMakeFiles/kg_synth.dir/behavior_generator.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/behavior_generator.cc.o.d"
  "/root/repo/src/synth/catalog_generator.cc" "src/synth/CMakeFiles/kg_synth.dir/catalog_generator.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/catalog_generator.cc.o.d"
  "/root/repo/src/synth/entity_universe.cc" "src/synth/CMakeFiles/kg_synth.dir/entity_universe.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/entity_universe.cc.o.d"
  "/root/repo/src/synth/names.cc" "src/synth/CMakeFiles/kg_synth.dir/names.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/names.cc.o.d"
  "/root/repo/src/synth/qa_generator.cc" "src/synth/CMakeFiles/kg_synth.dir/qa_generator.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/qa_generator.cc.o.d"
  "/root/repo/src/synth/structured_source.cc" "src/synth/CMakeFiles/kg_synth.dir/structured_source.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/structured_source.cc.o.d"
  "/root/repo/src/synth/text_corpus.cc" "src/synth/CMakeFiles/kg_synth.dir/text_corpus.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/text_corpus.cc.o.d"
  "/root/repo/src/synth/website_generator.cc" "src/synth/CMakeFiles/kg_synth.dir/website_generator.cc.o" "gcc" "src/synth/CMakeFiles/kg_synth.dir/website_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/kg_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
