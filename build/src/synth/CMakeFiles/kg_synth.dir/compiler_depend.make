# Empty compiler generated dependencies file for kg_synth.
# This may be replaced when dependencies are built.
