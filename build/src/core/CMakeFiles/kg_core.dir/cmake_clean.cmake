file(REMOVE_RECURSE
  "CMakeFiles/kg_core.dir/conversions.cc.o"
  "CMakeFiles/kg_core.dir/conversions.cc.o.d"
  "CMakeFiles/kg_core.dir/entity_kg_pipeline.cc.o"
  "CMakeFiles/kg_core.dir/entity_kg_pipeline.cc.o.d"
  "CMakeFiles/kg_core.dir/extraction_scoring.cc.o"
  "CMakeFiles/kg_core.dir/extraction_scoring.cc.o.d"
  "CMakeFiles/kg_core.dir/knowledge_cleaning.cc.o"
  "CMakeFiles/kg_core.dir/knowledge_cleaning.cc.o.d"
  "CMakeFiles/kg_core.dir/textrich_kg_pipeline.cc.o"
  "CMakeFiles/kg_core.dir/textrich_kg_pipeline.cc.o.d"
  "libkg_core.a"
  "libkg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
