# Empty dependencies file for kg_core.
# This may be replaced when dependencies are built.
