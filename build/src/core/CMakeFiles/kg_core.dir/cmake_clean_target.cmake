file(REMOVE_RECURSE
  "libkg_core.a"
)
