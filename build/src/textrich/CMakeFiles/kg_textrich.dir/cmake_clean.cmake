file(REMOVE_RECURSE
  "CMakeFiles/kg_textrich.dir/cleaning.cc.o"
  "CMakeFiles/kg_textrich.dir/cleaning.cc.o.d"
  "CMakeFiles/kg_textrich.dir/description_extractor.cc.o"
  "CMakeFiles/kg_textrich.dir/description_extractor.cc.o.d"
  "CMakeFiles/kg_textrich.dir/example_builder.cc.o"
  "CMakeFiles/kg_textrich.dir/example_builder.cc.o.d"
  "CMakeFiles/kg_textrich.dir/pipeline.cc.o"
  "CMakeFiles/kg_textrich.dir/pipeline.cc.o.d"
  "CMakeFiles/kg_textrich.dir/product_graph.cc.o"
  "CMakeFiles/kg_textrich.dir/product_graph.cc.o.d"
  "CMakeFiles/kg_textrich.dir/related_products.cc.o"
  "CMakeFiles/kg_textrich.dir/related_products.cc.o.d"
  "CMakeFiles/kg_textrich.dir/taxonomy_mining.cc.o"
  "CMakeFiles/kg_textrich.dir/taxonomy_mining.cc.o.d"
  "libkg_textrich.a"
  "libkg_textrich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_textrich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
