# Empty compiler generated dependencies file for kg_textrich.
# This may be replaced when dependencies are built.
