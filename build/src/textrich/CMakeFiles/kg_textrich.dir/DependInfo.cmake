
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textrich/cleaning.cc" "src/textrich/CMakeFiles/kg_textrich.dir/cleaning.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/cleaning.cc.o.d"
  "/root/repo/src/textrich/description_extractor.cc" "src/textrich/CMakeFiles/kg_textrich.dir/description_extractor.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/description_extractor.cc.o.d"
  "/root/repo/src/textrich/example_builder.cc" "src/textrich/CMakeFiles/kg_textrich.dir/example_builder.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/example_builder.cc.o.d"
  "/root/repo/src/textrich/pipeline.cc" "src/textrich/CMakeFiles/kg_textrich.dir/pipeline.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/pipeline.cc.o.d"
  "/root/repo/src/textrich/product_graph.cc" "src/textrich/CMakeFiles/kg_textrich.dir/product_graph.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/product_graph.cc.o.d"
  "/root/repo/src/textrich/related_products.cc" "src/textrich/CMakeFiles/kg_textrich.dir/related_products.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/related_products.cc.o.d"
  "/root/repo/src/textrich/taxonomy_mining.cc" "src/textrich/CMakeFiles/kg_textrich.dir/taxonomy_mining.cc.o" "gcc" "src/textrich/CMakeFiles/kg_textrich.dir/taxonomy_mining.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/kg_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/kg_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
