file(REMOVE_RECURSE
  "libkg_textrich.a"
)
