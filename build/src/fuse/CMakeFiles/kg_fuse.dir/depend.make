# Empty dependencies file for kg_fuse.
# This may be replaced when dependencies are built.
