file(REMOVE_RECURSE
  "libkg_fuse.a"
)
