
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuse/confidence_model.cc" "src/fuse/CMakeFiles/kg_fuse.dir/confidence_model.cc.o" "gcc" "src/fuse/CMakeFiles/kg_fuse.dir/confidence_model.cc.o.d"
  "/root/repo/src/fuse/kbt.cc" "src/fuse/CMakeFiles/kg_fuse.dir/kbt.cc.o" "gcc" "src/fuse/CMakeFiles/kg_fuse.dir/kbt.cc.o.d"
  "/root/repo/src/fuse/pra.cc" "src/fuse/CMakeFiles/kg_fuse.dir/pra.cc.o" "gcc" "src/fuse/CMakeFiles/kg_fuse.dir/pra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/kg_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
