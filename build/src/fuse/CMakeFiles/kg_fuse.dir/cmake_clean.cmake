file(REMOVE_RECURSE
  "CMakeFiles/kg_fuse.dir/confidence_model.cc.o"
  "CMakeFiles/kg_fuse.dir/confidence_model.cc.o.d"
  "CMakeFiles/kg_fuse.dir/kbt.cc.o"
  "CMakeFiles/kg_fuse.dir/kbt.cc.o.d"
  "CMakeFiles/kg_fuse.dir/pra.cc.o"
  "CMakeFiles/kg_fuse.dir/pra.cc.o.d"
  "libkg_fuse.a"
  "libkg_fuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_fuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
