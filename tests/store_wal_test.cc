// kg::store WAL: framed record encode/decode round-trips, and the
// truncation-tolerance contract — a log cut at *every* byte boundary
// recovers exactly the fully-written records, and Open() truncates a
// torn tail so later appends extend the valid prefix.

#include "store/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "graph/knowledge_graph.h"

namespace kg::store {
namespace {

using graph::NodeKind;
using graph::Provenance;

std::vector<Mutation> SampleMutations() {
  return {
      Mutation::Upsert("alice", "knows", "bob", NodeKind::kEntity,
                       NodeKind::kEntity, Provenance{"src_a", 0.875, 11}),
      Mutation::Retract("alice", "knows", "bob", NodeKind::kEntity,
                        NodeKind::kEntity),
      Mutation::Upsert("tab\there", "line\nbreak", "back\\slash",
                       NodeKind::kText, NodeKind::kClass,
                       Provenance{"\\t literal", 0.1234567890123456789, -3}),
      Mutation::Upsert("", "", "", NodeKind::kClass, NodeKind::kText,
                       Provenance{"", 1.0, 0}),
      Mutation::Upsert("h\xc3\xa9llo", "p", "w\xc3\xb6rld",
                       NodeKind::kEntity, NodeKind::kText,
                       Provenance{"fusion", 1e-17, 1 << 30}),
  };
}

std::string FrameAll(const std::vector<Mutation>& mutations,
                     std::vector<size_t>* frame_ends = nullptr) {
  std::string buf;
  for (const Mutation& m : mutations) {
    AppendWalFrame(&buf, EncodeMutation(m));
    if (frame_ends != nullptr) frame_ends->push_back(buf.size());
  }
  return buf;
}

/// A unique temp path per test; removed on destruction.
struct TempWal {
  std::string path;
  explicit TempWal(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("kg_store_wal_test_" + tag + ".wal"))
               .string();
    std::filesystem::remove(path);
  }
  ~TempWal() { std::filesystem::remove(path); }
};

TEST(WalTest, EncodeDecodeRoundTripsHostileMutations) {
  for (const Mutation& m : SampleMutations()) {
    const std::string payload = EncodeMutation(m);
    EXPECT_EQ(payload.find('\n'), std::string::npos);
    auto decoded = DecodeMutation(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, m);
    // Determinism: equal mutations encode byte-identically.
    EXPECT_EQ(EncodeMutation(*decoded), payload);
  }
}

TEST(WalTest, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(DecodeMutation("").ok());
  EXPECT_FALSE(DecodeMutation("U\ta\tentity").ok());  // too few fields
  EXPECT_FALSE(
      DecodeMutation("X\ts\tentity\tp\to\tentity\tsrc\t1\t0").ok());
  EXPECT_FALSE(
      DecodeMutation("U\ts\tmartian\tp\to\tentity\tsrc\t1\t0").ok());
  EXPECT_FALSE(
      DecodeMutation("U\ts\tentity\tp\to\tentity\tsrc\tnope\t0").ok());
  EXPECT_FALSE(
      DecodeMutation("U\ts\tentity\tp\to\tentity\tsrc\t1\tnope").ok());
}

TEST(WalTest, ReplayBufferRecoversAllRecordsCleanly) {
  const std::vector<Mutation> mutations = SampleMutations();
  const std::string buf = FrameAll(mutations);
  const WalReplay replay = ReplayWalBuffer(buf);
  EXPECT_TRUE(replay.clean);
  EXPECT_EQ(replay.valid_bytes, buf.size());
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.mutations.size(), mutations.size());
  for (size_t i = 0; i < mutations.size(); ++i) {
    EXPECT_EQ(replay.mutations[i], mutations[i]) << "record " << i;
  }
}

// frame_offsets is the catch-up contract: replaying the suffix from
// frame_offsets[i] yields exactly mutations[i..], bit-identically — the
// property a replica resuming a WAL subscription from a persisted byte
// offset depends on.
TEST(WalTest, ReplayFromAnyFrameOffsetResumesBitIdentically) {
  const std::vector<Mutation> mutations = SampleMutations();
  const std::string buf = FrameAll(mutations);
  const WalReplay full = ReplayWalBuffer(buf);
  ASSERT_TRUE(full.clean);
  ASSERT_EQ(full.frame_offsets.size(), mutations.size());
  EXPECT_EQ(full.frame_offsets.front(), 0u);

  for (size_t i = 0; i < full.frame_offsets.size(); ++i) {
    const uint64_t offset = full.frame_offsets[i];
    const WalReplay suffix =
        ReplayWalBuffer(std::string_view(buf).substr(offset));
    ASSERT_TRUE(suffix.clean) << "offset " << offset;
    EXPECT_EQ(suffix.valid_bytes, buf.size() - offset);
    ASSERT_EQ(suffix.mutations.size(), mutations.size() - i);
    for (size_t j = 0; j < suffix.mutations.size(); ++j) {
      EXPECT_EQ(suffix.mutations[j], mutations[i + j]);
      // The suffix's own offsets are the full log's, rebased.
      EXPECT_EQ(suffix.frame_offsets[j] + offset, full.frame_offsets[i + j]);
    }
    // Re-encoding the resumed records reproduces the suffix bytes.
    std::string reframed;
    for (const Mutation& m : suffix.mutations) {
      AppendWalFrame(&reframed, EncodeMutation(m));
    }
    EXPECT_EQ(reframed, buf.substr(offset));
  }

  // Same resume point through a file: Wal::Replay reports the offsets
  // of what it recovered, and the on-disk suffix replays identically.
  TempWal tmp("resume_offset");
  {
    auto wal = Wal::Open(tmp.path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->AppendBatch(mutations).ok());
  }
  auto replay = Wal::Replay(tmp.path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->frame_offsets, full.frame_offsets);
  std::ifstream in(tmp.path, std::ios::binary);
  const std::string file_bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  EXPECT_EQ(file_bytes, buf);
}

// The acceptance criterion: cut the log at every byte boundary; the
// replay must recover exactly the records whose frames are fully inside
// the cut, and valid_bytes must equal the end of the last such frame.
TEST(WalTest, TruncationAtEveryByteBoundaryRecoversValidPrefix) {
  const std::vector<Mutation> mutations = SampleMutations();
  std::vector<size_t> frame_ends;
  const std::string buf = FrameAll(mutations, &frame_ends);
  for (size_t cut = 0; cut <= buf.size(); ++cut) {
    const WalReplay replay =
        ReplayWalBuffer(std::string_view(buf).substr(0, cut));
    size_t expect_records = 0;
    size_t expect_valid = 0;
    while (expect_records < frame_ends.size() &&
           frame_ends[expect_records] <= cut) {
      expect_valid = frame_ends[expect_records];
      ++expect_records;
    }
    ASSERT_EQ(replay.mutations.size(), expect_records) << "cut " << cut;
    ASSERT_EQ(replay.valid_bytes, expect_valid) << "cut " << cut;
    ASSERT_EQ(replay.clean, cut == expect_valid) << "cut " << cut;
    for (size_t i = 0; i < expect_records; ++i) {
      ASSERT_EQ(replay.mutations[i], mutations[i])
          << "cut " << cut << ", record " << i;
    }
  }
}

TEST(WalTest, CorruptedChecksumStopsReplayAtThatRecord) {
  const std::vector<Mutation> mutations = SampleMutations();
  std::vector<size_t> frame_ends;
  std::string buf = FrameAll(mutations, &frame_ends);
  // Flip one payload byte of the third record (frames 0 and 1 intact).
  buf[frame_ends[1] + 8] ^= 0x40;
  const WalReplay replay = ReplayWalBuffer(buf);
  EXPECT_FALSE(replay.clean);
  ASSERT_EQ(replay.mutations.size(), 2u);
  EXPECT_EQ(replay.valid_bytes, frame_ends[1]);
  EXPECT_EQ(replay.mutations[0], mutations[0]);
  EXPECT_EQ(replay.mutations[1], mutations[1]);
}

TEST(WalTest, ZeroLengthFrameIsATornTail) {
  const std::vector<Mutation> mutations = SampleMutations();
  std::vector<size_t> frame_ends;
  std::string buf = FrameAll(mutations, &frame_ends);
  // A zero-length frame with a "valid" checksum of the empty payload:
  // the frame parses but the empty payload does not decode, so replay
  // treats it as the start of a torn tail.
  AppendWalFrame(&buf, "");
  const WalReplay replay = ReplayWalBuffer(buf);
  EXPECT_FALSE(replay.clean);
  EXPECT_EQ(replay.mutations.size(), mutations.size());
  EXPECT_EQ(replay.valid_bytes, frame_ends.back());
}

TEST(WalTest, AppendReplayRoundTripsThroughAFile) {
  TempWal tmp("roundtrip");
  const std::vector<Mutation> mutations = SampleMutations();
  {
    auto wal = Wal::Open(tmp.path);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (const Mutation& m : mutations) {
      ASSERT_TRUE(wal->Append(m).ok());
    }
    EXPECT_EQ(wal->size_bytes(), std::filesystem::file_size(tmp.path));
  }
  auto replay = Wal::Replay(tmp.path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->clean);
  ASSERT_EQ(replay->mutations.size(), mutations.size());
  for (size_t i = 0; i < mutations.size(); ++i) {
    EXPECT_EQ(replay->mutations[i], mutations[i]);
  }
}

TEST(WalTest, OpenTruncatesTornTailAndAppendsExtendValidPrefix) {
  TempWal tmp("torn");
  const std::vector<Mutation> mutations = SampleMutations();
  {
    auto wal = Wal::Open(tmp.path);
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE(wal->AppendBatch(mutations).ok());
  }
  const auto full_size = std::filesystem::file_size(tmp.path);
  // Simulate a crash mid-append: a valid header promising more bytes
  // than were written.
  {
    std::ofstream out(tmp.path, std::ios::binary | std::ios::app);
    std::string torn;
    AppendWalFrame(&torn, EncodeMutation(mutations[0]));
    out.write(torn.data(), static_cast<std::streamsize>(torn.size() / 2));
  }
  ASSERT_GT(std::filesystem::file_size(tmp.path), full_size);

  WalReplay replay;
  auto wal = Wal::Open(tmp.path, &replay);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(replay.mutations.size(), mutations.size());
  EXPECT_GT(replay.dropped_bytes, 0u);
  // The torn tail is gone from disk...
  EXPECT_EQ(std::filesystem::file_size(tmp.path), full_size);
  // ...so a post-recovery append lands after the valid prefix.
  const Mutation extra = Mutation::Upsert(
      "post", "crash", "append", graph::NodeKind::kEntity,
      graph::NodeKind::kEntity, graph::Provenance{"recovered", 1.0, 99});
  ASSERT_TRUE(wal->Append(extra).ok());
  auto reread = Wal::Replay(tmp.path);
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread->clean);
  ASSERT_EQ(reread->mutations.size(), mutations.size() + 1);
  EXPECT_EQ(reread->mutations.back(), extra);
}

// Reopen under concurrent append: while one thread is appending a
// deterministic record sequence, another repeatedly snapshots the file
// and replays the copy. Because the log is append-only and framed,
// every snapshot's valid prefix must be bit-identical to the canonical
// framing of the first k records — a reader racing a writer can see a
// torn tail, but never a rewritten or reordered prefix. Each snapshot
// is also reopened through Wal::Open to check recovery (truncate the
// torn tail, keep the valid prefix) holds mid-write, not just after a
// clean shutdown.
TEST(WalTest, ReopenUnderConcurrentAppendRecoversBitIdenticalPrefix) {
  TempWal tmp("concurrent");
  TempWal copy("concurrent_copy");
  constexpr size_t kRecords = 600;
  std::vector<Mutation> expected;
  expected.reserve(kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    expected.push_back(Mutation::Upsert(
        "subj" + std::to_string(i), "knows", "obj" + std::to_string(i % 7),
        NodeKind::kEntity, NodeKind::kEntity,
        Provenance{"writer", 0.5, static_cast<int64_t>(i)}));
  }
  const std::string canonical = FrameAll(expected);

  auto wal = Wal::Open(tmp.path);
  ASSERT_TRUE(wal.ok()) << wal.status();
  std::atomic<bool> done{false};
  std::atomic<bool> append_failed{false};
  std::thread writer([&] {
    for (const Mutation& m : expected) {
      if (!wal->Append(m).ok()) {
        append_failed.store(true);
        break;
      }
    }
    done.store(true);
  });

  size_t snapshots = 0;
  size_t max_records_seen = 0;
  while (!done.load() || snapshots == 0) {
    std::ifstream in(tmp.path, std::ios::binary);
    const std::string prefix((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    ++snapshots;
    const WalReplay replay = ReplayWalBuffer(prefix);
    ASSERT_LE(replay.mutations.size(), expected.size());
    // Bit-identical prefix: the snapshot's valid bytes are exactly the
    // canonical framing of the records it recovered.
    ASSERT_EQ(std::string_view(prefix).substr(0, replay.valid_bytes),
              std::string_view(canonical).substr(0, replay.valid_bytes));
    for (size_t i = 0; i < replay.mutations.size(); ++i) {
      ASSERT_EQ(replay.mutations[i], expected[i])
          << "snapshot " << snapshots << ", record " << i;
    }
    max_records_seen = std::max(max_records_seen, replay.mutations.size());

    // Reopen the snapshot as a real WAL: recovery must accept the valid
    // prefix and truncate any torn tail the racing reader captured.
    {
      std::ofstream out(copy.path,
                        std::ios::binary | std::ios::trunc);
      out.write(prefix.data(),
                static_cast<std::streamsize>(prefix.size()));
    }
    WalReplay reopened;
    auto copy_wal = Wal::Open(copy.path, &reopened);
    ASSERT_TRUE(copy_wal.ok()) << copy_wal.status();
    ASSERT_EQ(reopened.mutations.size(), replay.mutations.size());
    ASSERT_EQ(std::filesystem::file_size(copy.path), replay.valid_bytes);
  }
  writer.join();
  ASSERT_FALSE(append_failed.load());

  // With the writer drained, the final replay is clean and complete.
  auto final_replay = Wal::Replay(tmp.path);
  ASSERT_TRUE(final_replay.ok()) << final_replay.status();
  EXPECT_TRUE(final_replay->clean);
  ASSERT_EQ(final_replay->mutations.size(), expected.size());
  EXPECT_EQ(final_replay->valid_bytes, canonical.size());
  EXPECT_GE(max_records_seen, 1u);
}

TEST(WalTest, OpenCreatesMissingFile) {
  TempWal tmp("fresh");
  WalReplay replay;
  auto wal = Wal::Open(tmp.path, &replay);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_TRUE(replay.clean);
  EXPECT_TRUE(replay.mutations.empty());
  EXPECT_EQ(wal->size_bytes(), 0u);
  ASSERT_TRUE(std::filesystem::exists(tmp.path));
}

}  // namespace
}  // namespace kg::store
