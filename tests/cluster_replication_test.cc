// WAL shipping, end to end: ShardLog chain algebra, the wire-level
// subscribe/batch/heartbeat protocol against a real RpcServer, the
// receiver's verify-before-apply discipline (a tampered chain is
// rejected and the session torn down, never applied), persisted-offset
// resume from a replica-local WAL, and failover serving from shipped
// state.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/member.h"
#include "cluster/shard_log.h"
#include "cluster/wal_receiver.h"
#include "graph/knowledge_graph.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "store/wal.h"

namespace kg::cluster {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using serve::Query;
using store::Mutation;

const Provenance kProv{"repl_test", 1.0, 0};

std::vector<Mutation> SomeMutations(int n, int salt = 0) {
  std::vector<Mutation> mutations;
  for (int i = 0; i < n; ++i) {
    mutations.push_back(Mutation::Upsert(
        "node" + std::to_string(salt * 100 + i), "links",
        "node" + std::to_string(salt * 100 + i + 1), NodeKind::kEntity,
        NodeKind::kEntity, kProv));
  }
  return mutations;
}

std::string LogBytes(const ShardLog& log) {
  uint64_t end = 0;
  uint32_t chain = 0;
  return log.ReadFrom(0, size_t{1} << 30, &end, &chain);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool WaitUntil(int timeout_ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Blocks (bounded) until one complete frame arrives on `transport`.
Result<rpc::Frame> ReadOneFrame(rpc::ITransport* transport,
                                rpc::FrameDecoder* decoder,
                                int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string chunk;
  for (;;) {
    rpc::Frame frame;
    const auto step = decoder->Next(&frame);
    if (step == rpc::FrameDecoder::Step::kFrame) return frame;
    if (step == rpc::FrameDecoder::Step::kError) return decoder->error();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return Status::Unavailable("frame timeout");
    chunk.clear();
    auto read =
        transport->Read(&chunk, 64 * 1024, static_cast<int>(left.count()));
    if (!read.ok()) return read.status();
    decoder->Feed(chunk);
  }
}

TEST(ShardLogTest, BatchingInvariantAndChainAlgebra) {
  const std::vector<Mutation> mutations = SomeMutations(7);
  ShardLog one_by_one;
  for (const Mutation& m : mutations) {
    one_by_one.Append(std::span<const Mutation>(&m, 1));
  }
  ShardLog batched;
  batched.Append(mutations);

  // The log image is a pure function of the mutation sequence, not of
  // how commits were grouped.
  const std::string bytes = LogBytes(batched);
  EXPECT_EQ(bytes, LogBytes(one_by_one));
  EXPECT_EQ(batched.EndOffset(), bytes.size());

  // The byte image replays to exactly the appended mutations, and the
  // fold of the chain over it equals the incremental chain.
  const store::WalReplay replay = store::ReplayWalBuffer(bytes);
  ASSERT_TRUE(replay.clean);
  EXPECT_EQ(replay.mutations, mutations);
  EXPECT_EQ(ShardLog::FoldChain(0, bytes),
            batched.ChainAt(batched.EndOffset()));

  // Boundaries are exactly the frame starts plus the end; ChainAt at
  // boundary i equals the fold over the prefix; ChainStep composes.
  uint32_t chain = 0;
  for (size_t i = 0; i < replay.frame_offsets.size(); ++i) {
    const uint64_t off = replay.frame_offsets[i];
    EXPECT_TRUE(batched.IsBoundary(off));
    EXPECT_FALSE(batched.IsBoundary(off + 1));
    EXPECT_EQ(batched.ChainAt(off), chain);
    const uint64_t next = i + 1 < replay.frame_offsets.size()
                              ? replay.frame_offsets[i + 1]
                              : bytes.size();
    chain = ShardLog::ChainStep(
        chain, std::string_view(bytes).substr(off, next - off));
  }
  EXPECT_TRUE(batched.IsBoundary(bytes.size()));
  EXPECT_EQ(batched.ChainAt(bytes.size()), chain);
}

TEST(ShardLogTest, ReadFromShipsWholeFramesWithinBudget) {
  ShardLog log;
  log.Append(SomeMutations(9));
  const std::string all = LogBytes(log);

  // A 1-byte budget still ships one whole frame (progress guarantee);
  // walking the log with a tiny budget reconstructs it byte-exactly
  // with a consistent chain at every step.
  std::string walked;
  uint64_t offset = 0;
  uint32_t chain = 0;
  while (offset < log.EndOffset()) {
    uint64_t end = 0;
    uint32_t chain_after = 0;
    const std::string slice = log.ReadFrom(offset, 1, &end, &chain_after);
    ASSERT_GT(slice.size(), 0u);
    ASSERT_GT(end, offset);
    EXPECT_TRUE(log.IsBoundary(end));
    EXPECT_EQ(chain_after, ShardLog::FoldChain(chain, slice));
    walked += slice;
    offset = end;
    chain = chain_after;
  }
  EXPECT_EQ(walked, all);
}

// A hand-rolled wire subscriber against a real RpcServer: the stream
// must deliver the exact log bytes as contiguous verified batches, keep
// proving the chain on idle heartbeats, and keep shipping as the log
// grows mid-subscription.
TEST(WireProtocolTest, SubscriberReceivesContiguousVerifiedBatches) {
  ShardLog log;
  log.Append(SomeMutations(6, 1));

  auto listener = std::make_unique<rpc::InMemoryTransportServer>();
  rpc::InMemoryTransportServer* loopback = listener.get();
  rpc::RpcServerOptions sopts;
  sopts.worker_threads = 1;
  sopts.wal_source = &log;
  sopts.wal_heartbeat_interval_ms = 5;
  sopts.wal_batch_max_bytes = 1;  // Force one frame per batch.
  rpc::RpcServer server(
      [](const Query&) -> Result<serve::QueryResult> {
        return serve::QueryResult{};
      },
      std::move(listener), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto dialed = loopback->Connect();
  ASSERT_TRUE(dialed.ok());
  std::unique_ptr<rpc::ITransport> transport = std::move(*dialed);
  rpc::FrameDecoder decoder;

  rpc::HandshakeRequest hs;
  hs.max_schema_version = serve::kSnapshotSchemaVersion;
  std::string out;
  rpc::AppendFrame(&out, rpc::MessageType::kHandshakeRequest, 1,
                   rpc::EncodeHandshakeRequest(hs));
  ASSERT_TRUE(transport->Write(out).ok());
  auto hs_frame = ReadOneFrame(transport.get(), &decoder);
  ASSERT_TRUE(hs_frame.ok()) << hs_frame.status();
  ASSERT_EQ(hs_frame->type, rpc::MessageType::kHandshakeResponse);

  rpc::WalSubscribe sub;
  out.clear();
  rpc::AppendFrame(&out, rpc::MessageType::kWalSubscribe, 2,
                   rpc::EncodeWalSubscribe(sub));
  ASSERT_TRUE(transport->Write(out).ok());

  // Collect until we have the whole current log, then grow it and
  // collect the rest. Heartbeats may interleave; each must carry the
  // true chain for its log end.
  std::string shipped;
  uint32_t chain = 0;
  bool grew = false;
  size_t batches = 0;
  const uint64_t first_goal = log.EndOffset();
  for (;;) {
    auto frame = ReadOneFrame(transport.get(), &decoder);
    ASSERT_TRUE(frame.ok()) << frame.status();
    if (frame->type == rpc::MessageType::kWalHeartbeat) {
      auto hb = rpc::DecodeWalHeartbeat(frame->body);
      ASSERT_TRUE(hb.ok());
      EXPECT_EQ(hb->chain_at_end, log.ChainAt(hb->log_end));
      if (!grew && shipped.size() >= first_goal) {
        log.Append(SomeMutations(4, 2));
        grew = true;
      }
      continue;
    }
    ASSERT_EQ(frame->type, rpc::MessageType::kWalBatch);
    auto batch = rpc::DecodeWalBatch(frame->body);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->code, StatusCode::kOk) << batch->message;
    ++batches;
    // Contiguity + chain proof, exactly what a replica checks.
    ASSERT_EQ(batch->start_offset, shipped.size());
    ASSERT_EQ(batch->end_offset, shipped.size() + batch->frames.size());
    ASSERT_GE(batch->log_end, batch->end_offset);
    chain = ShardLog::FoldChain(chain, batch->frames);
    ASSERT_EQ(chain, batch->chain_after);
    shipped += batch->frames;
    if (grew && shipped.size() >= log.EndOffset()) break;
  }
  EXPECT_EQ(shipped, LogBytes(log));
  // wal_batch_max_bytes=1 means every batch carried exactly one frame.
  EXPECT_EQ(batches, 10u);
  transport->Close();
  server.Stop();
}

TEST(WireProtocolTest, NonBoundarySubscribeOffsetIsRefused) {
  ShardLog log;
  log.Append(SomeMutations(3));

  auto listener = std::make_unique<rpc::InMemoryTransportServer>();
  rpc::InMemoryTransportServer* loopback = listener.get();
  rpc::RpcServerOptions sopts;
  sopts.worker_threads = 1;
  sopts.wal_source = &log;
  rpc::RpcServer server(
      [](const Query&) -> Result<serve::QueryResult> {
        return serve::QueryResult{};
      },
      std::move(listener), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto dialed = loopback->Connect();
  ASSERT_TRUE(dialed.ok());
  std::unique_ptr<rpc::ITransport> transport = std::move(*dialed);
  rpc::FrameDecoder decoder;
  rpc::HandshakeRequest hs;
  hs.max_schema_version = serve::kSnapshotSchemaVersion;
  std::string out;
  rpc::AppendFrame(&out, rpc::MessageType::kHandshakeRequest, 1,
                   rpc::EncodeHandshakeRequest(hs));
  ASSERT_TRUE(transport->Write(out).ok());
  auto hs_frame = ReadOneFrame(transport.get(), &decoder);
  ASSERT_TRUE(hs_frame.ok());

  rpc::WalSubscribe sub;
  sub.from_offset = 3;  // Mid-frame: not a boundary.
  out.clear();
  rpc::AppendFrame(&out, rpc::MessageType::kWalSubscribe, 2,
                   rpc::EncodeWalSubscribe(sub));
  ASSERT_TRUE(transport->Write(out).ok());

  auto frame = ReadOneFrame(transport.get(), &decoder);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, rpc::MessageType::kWalBatch);
  auto batch = rpc::DecodeWalBatch(frame->body);
  ASSERT_TRUE(batch.ok());
  EXPECT_NE(batch->code, StatusCode::kOk);
  transport->Close();
  server.Stop();
}

// Drives a WalReceiver from a hand-rolled fake primary: a batch whose
// chain_after lies must be rejected WITHOUT applying, the session torn
// down, and the resubscribe must come back at the unchanged verified
// offset. A heartbeat claiming a different chain at the caught-up
// offset must likewise kill the session.
TEST(WalReceiverTest, TamperedChainIsRejectedThenHonestBatchApplies) {
  auto store = store::VersionedKgStore::Open(KnowledgeGraph(), {});
  ASSERT_TRUE(store.ok());

  rpc::InMemoryTransportServer listener;
  WalReceiverOptions ropts;
  ropts.heartbeat_timeout_ms = 2000;
  ropts.dial_retry_ms = 1;
  ropts.max_dial_attempts = 1000;
  WalReceiver receiver([&]() { return listener.Connect(); }, store->get(),
                       0, "fake.replica", ropts);
  receiver.Start();

  ShardLog log;
  log.Append(SomeMutations(4));
  uint64_t end = 0;
  uint32_t chain = 0;
  const std::string frames = log.ReadFrom(0, size_t{1} << 30, &end, &chain);

  // One fake-primary session: answer the handshake, check the
  // subscribe offset, send one prepared batch.
  const auto serve_session =
      [&](uint64_t expect_offset,
          const rpc::WalBatch& batch) -> Result<std::unique_ptr<rpc::ITransport>> {
    KG_ASSIGN_OR_RETURN(std::unique_ptr<rpc::ITransport> conn,
                        listener.Accept());
    rpc::FrameDecoder decoder;
    KG_ASSIGN_OR_RETURN(rpc::Frame hs,
                        ReadOneFrame(conn.get(), &decoder));
    if (hs.type != rpc::MessageType::kHandshakeRequest) {
      return Status::Internal("expected handshake");
    }
    rpc::HandshakeResponse resp;
    resp.schema_version = serve::kSnapshotSchemaVersion;
    std::string out;
    rpc::AppendFrame(&out, rpc::MessageType::kHandshakeResponse,
                     hs.request_id, rpc::EncodeHandshakeResponse(resp));
    KG_RETURN_IF_ERROR(conn->Write(out));
    KG_ASSIGN_OR_RETURN(rpc::Frame sub_frame,
                        ReadOneFrame(conn.get(), &decoder));
    if (sub_frame.type != rpc::MessageType::kWalSubscribe) {
      return Status::Internal("expected subscribe");
    }
    KG_ASSIGN_OR_RETURN(rpc::WalSubscribe sub,
                        rpc::DecodeWalSubscribe(sub_frame.body));
    if (sub.from_offset != expect_offset) {
      return Status::Internal("subscribed from " +
                              std::to_string(sub.from_offset));
    }
    out.clear();
    rpc::AppendFrame(&out, rpc::MessageType::kWalBatch, 0,
                     rpc::EncodeWalBatch(batch));
    KG_RETURN_IF_ERROR(conn->Write(out));
    return conn;
  };

  // Session 1: correct bytes, lying chain. Must NOT apply.
  rpc::WalBatch tampered;
  tampered.start_offset = 0;
  tampered.end_offset = end;
  tampered.chain_after = chain ^ 0xdeadbeefu;
  tampered.log_end = end;
  tampered.frames = frames;
  auto s1 = serve_session(0, tampered);
  ASSERT_TRUE(s1.ok()) << s1.status();
  ASSERT_TRUE(WaitUntil(5000, [&] { return receiver.sessions() >= 2; }));
  EXPECT_EQ((*store)->applied_watermark(), 0u)
      << "tampered batch must never reach the store";

  // Session 2: the honest batch. Applies, watermark advances, content
  // is served.
  rpc::WalBatch honest = tampered;
  honest.chain_after = chain;
  auto s2 = serve_session(0, honest);
  ASSERT_TRUE(s2.ok()) << s2.status();
  ASSERT_TRUE(
      WaitUntil(5000, [&] { return (*store)->applied_watermark() == end; }));
  auto rows = (*store)->TryExecute(Query::PointLookup("node0", "links"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (serve::QueryResult{"E:node1"}));

  // Session 2 is caught up; a heartbeat whose chain diverges at that
  // offset must tear the session down (receiver dials session 3).
  rpc::WalHeartbeat hb;
  hb.log_end = end;
  hb.chain_at_end = chain ^ 1u;
  std::string out;
  rpc::AppendFrame(&out, rpc::MessageType::kWalHeartbeat, 0,
                   rpc::EncodeWalHeartbeat(hb));
  ASSERT_TRUE((*s2)->Write(out).ok());
  ASSERT_TRUE(WaitUntil(5000, [&] { return receiver.sessions() >= 3; }));
  // Resubscribe resumes from the verified offset, not from zero.
  rpc::WalBatch empty;
  empty.start_offset = end;
  empty.end_offset = end;
  empty.chain_after = chain;
  empty.log_end = end;
  auto s3 = serve_session(end, empty);
  EXPECT_TRUE(s3.ok()) << s3.status();

  receiver.Stop();
  listener.Shutdown();
}

// Replica-local WAL as the durable resume point: a torn-down replica
// reopens its file, replays the verified prefix WITHOUT the primary,
// and resubscribes from exactly that byte offset — even when the tail
// was torn mid-frame.
TEST(ReplicaResumeTest, PersistedOffsetSurvivesRecreationAndTornTail) {
  const std::string wal_path =
      ::testing::TempDir() + "/cluster_replica_resume.wal";
  std::remove(wal_path.c_str());

  KnowledgeGraph base;
  base.AddTriple("seed", "links", "root", NodeKind::kEntity,
                 NodeKind::kEntity, kProv);
  auto primary = PrimaryMember::Create(0, base);
  ASSERT_TRUE(primary.ok());

  ReplicaOptions ropts;
  ropts.wal_path = wal_path;
  ropts.receiver.dial_retry_ms = 1;
  ropts.receiver.max_dial_attempts = 10;
  auto replica = ReplicaMember::Create(0, 0, base,
                                       (*primary)->DialFactory(), ropts);
  ASSERT_TRUE(replica.ok());

  ASSERT_TRUE((*primary)->ApplyBatch(SomeMutations(5, 1)).ok());
  ASSERT_TRUE((*primary)->ApplyBatch(SomeMutations(5, 2)).ok());
  const uint64_t log_end = (*primary)->log_end();
  ASSERT_TRUE(WaitUntil(5000, [&] {
    return (*replica)->applied_offset() == log_end;
  }));
  (*replica).reset();

  // The applied bytes on disk are the primary's log prefix, verbatim.
  EXPECT_EQ(ReadFileBytes(wal_path), LogBytes((*primary)->log()));

  // Recreate against a DEAD primary: state must come from the file
  // alone, watermark at the persisted offset, answers identical.
  (*primary)->Kill();
  auto resumed = ReplicaMember::Create(0, 0, base,
                                       (*primary)->DialFactory(), ropts);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ((*resumed)->applied_offset(), log_end);
  const Query probe = Query::PointLookup("node101", "links");
  auto expected = (*primary)->store().TryExecute(probe);
  auto actual = (*resumed)->store().TryExecute(probe);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*actual, *expected);

  // Revive the primary, write more: the resumed replica ships only the
  // suffix and converges.
  ASSERT_TRUE((*primary)->Revive().ok());
  (*resumed)->EnsureLink();  // The dead-primary dials may have exhausted.
  ASSERT_TRUE((*primary)->ApplyBatch(SomeMutations(3, 3)).ok());
  ASSERT_TRUE(WaitUntil(5000, [&] {
    return (*resumed)->applied_offset() == (*primary)->log_end();
  }));
  EXPECT_EQ(ReadFileBytes(wal_path), LogBytes((*primary)->log()));
  (*resumed).reset();

  // Tear the tail mid-frame: recovery resumes from the last whole
  // frame and re-ships the rest, converging to the same bytes.
  const std::string full = ReadFileBytes(wal_path);
  std::ofstream torn(wal_path, std::ios::binary | std::ios::trunc);
  torn.write(full.data(), static_cast<std::streamsize>(full.size() - 5));
  torn.close();
  auto healed = ReplicaMember::Create(0, 0, base,
                                      (*primary)->DialFactory(), ropts);
  ASSERT_TRUE(healed.ok());
  EXPECT_LT((*healed)->applied_offset(), full.size());
  ASSERT_TRUE(WaitUntil(5000, [&] {
    return (*healed)->applied_offset() == (*primary)->log_end();
  }));
  EXPECT_EQ(ReadFileBytes(wal_path), full);
  std::remove(wal_path.c_str());
}

// The supervisor's job: a receiver that exhausted its dial budget while
// the primary was down is restarted once the watchdog sees it, and the
// link catches up — no manual intervention.
TEST(SupervisorTest, RestartsExhaustedLinkAfterPrimaryRevival) {
  ClusterOptions opts;
  opts.num_shards = 1;
  opts.replicas_per_shard = 1;
  opts.heartbeat_interval_ms = 2;
  opts.receiver.heartbeat_timeout_ms = 100;
  opts.receiver.dial_retry_ms = 1;
  opts.receiver.max_dial_attempts = 3;
  opts.supervisor.interval_ms = 5;

  KnowledgeGraph base;
  base.AddTriple("seed", "links", "root", NodeKind::kEntity,
                 NodeKind::kEntity, kProv);
  auto cluster = Cluster::Create(base, opts);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->WaitForCatchUp(5000));

  (*cluster)->KillPrimary(0);
  // Three failed dials at 1ms apart: the receiver thread gives up.
  ASSERT_TRUE(WaitUntil(5000, [&] {
    return !(*cluster)->replica(0, 0).receiver().running();
  }));

  ASSERT_TRUE((*cluster)->RevivePrimary(0).ok());
  std::vector<Mutation> batch = SomeMutations(4);
  ASSERT_TRUE((*cluster)->Apply(batch).ok());
  // The supervisor notices the dead link and restarts it; the new
  // session resumes from the persisted offset and converges.
  ASSERT_TRUE((*cluster)->WaitForCatchUp(5000));
  EXPECT_GT((*cluster)->supervisor().restarts(), 0u);
  EXPECT_EQ((*cluster)->MaxReplicaLagBytes(), 0u);
}

// Failover serving from shipped state only: kill every primary after
// catch-up; answers must equal a single-store reference byte-for-byte.
TEST(ClusterFailoverTest, ReplicasServeExactShippedState) {
  KnowledgeGraph base;
  for (int i = 0; i < 12; ++i) {
    base.AddTriple("n" + std::to_string(i), "links",
                   "n" + std::to_string((i * 5 + 1) % 12), NodeKind::kEntity,
                   NodeKind::kEntity, kProv);
  }
  auto reference = store::VersionedKgStore::Open(base, {});
  ASSERT_TRUE(reference.ok());

  ClusterOptions opts;
  opts.num_shards = 2;
  opts.replicas_per_shard = 1;
  opts.heartbeat_interval_ms = 2;
  opts.receiver.dial_retry_ms = 1;
  auto cluster = Cluster::Create(base, opts);
  ASSERT_TRUE(cluster.ok());

  const std::vector<Mutation> batch = SomeMutations(6);
  ASSERT_TRUE((*reference)->ApplyBatch(batch).ok());
  ASSERT_TRUE((*cluster)->Apply(batch).ok());
  ASSERT_TRUE((*cluster)->WaitForCatchUp(5000));
  for (size_t s = 0; s < opts.num_shards; ++s) (*cluster)->KillPrimary(s);

  std::vector<Query> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(Query::PointLookup("n" + std::to_string(i), "links"));
    queries.push_back(Query::Neighborhood("n" + std::to_string(i)));
    queries.push_back(Query::TopKRelated("n" + std::to_string(i), 5));
  }
  for (const Query& q : queries) {
    auto expected = (*reference)->TryExecute(q);
    auto actual = (*cluster)->Execute(q);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(*actual, *expected);
  }
  EXPECT_GT((*cluster)->router().stats().failovers, 0u);
  EXPECT_EQ((*cluster)->router().stats().shed, 0u);
}

}  // namespace
}  // namespace kg::cluster
