#include "synth/website_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "extract/dom.h"

namespace kg::synth {
namespace {

EntityUniverse SmallUniverse() {
  UniverseOptions opt;
  opt.num_people = 300;
  opt.num_movies = 200;
  opt.num_songs = 100;
  Rng rng(1);
  return EntityUniverse::Generate(opt, rng);
}

TEST(WebsiteGeneratorTest, GeneratesRequestedPages) {
  const auto u = SmallUniverse();
  WebsiteOptions opt;
  opt.num_pages = 50;
  Rng rng(2);
  const auto site = GenerateWebsite(u, opt, rng);
  EXPECT_EQ(site.pages.size(), 50u);
  // Pages cover distinct entities.
  std::set<uint32_t> entities;
  for (const auto& page : site.pages) entities.insert(page.true_entity);
  EXPECT_EQ(entities.size(), 50u);
}

TEST(WebsiteGeneratorTest, AnnotationsPointAtRealNodes) {
  const auto u = SmallUniverse();
  WebsiteOptions opt;
  opt.num_pages = 40;
  Rng rng(3);
  const auto site = GenerateWebsite(u, opt, rng);
  for (const auto& page : site.pages) {
    for (const auto& [attr, node] : page.value_nodes) {
      ASSERT_LT(node, page.dom.size());
      EXPECT_EQ(page.dom.node(node).text, page.displayed_values.at(attr));
    }
  }
}

TEST(WebsiteGeneratorTest, TopicRendersInH1) {
  const auto u = SmallUniverse();
  WebsiteOptions opt;
  opt.num_pages = 20;
  Rng rng(4);
  const auto site = GenerateWebsite(u, opt, rng);
  for (const auto& page : site.pages) {
    bool found = false;
    for (const auto& node : page.dom.nodes) {
      if (node.tag == "h1" && node.text == page.topic_name) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(WebsiteGeneratorTest, TemplateMostlyConsistentWithinSite) {
  // The label cell preceding each attribute's value matches the site
  // vocabulary on most pages (template drift hits a small minority) —
  // the regularity wrapper induction exploits.
  const auto u = SmallUniverse();
  WebsiteOptions opt;
  opt.num_pages = 60;
  Rng rng(5);
  const auto site = GenerateWebsite(u, opt, rng);
  size_t consistent = 0, total = 0;
  for (const auto& page : site.pages) {
    const auto parents = extract::ParentMap(page.dom);
    for (const auto& [attr, node] : page.value_nodes) {
      const auto parent = parents[node];
      std::string label;
      for (auto sibling : page.dom.node(parent).children) {
        if (sibling == node) break;
        if (!page.dom.node(sibling).text.empty()) {
          label = page.dom.node(sibling).text;
        }
      }
      ++total;
      consistent += label == site.attr_labels.at(attr);
    }
  }
  EXPECT_GT(static_cast<double>(consistent) / total, 0.8);
}

TEST(WebsiteGeneratorTest, ChromeDepthChangesPaths) {
  const auto u = SmallUniverse();
  WebsiteOptions shallow, deep;
  shallow.num_pages = deep.num_pages = 5;
  shallow.chrome_depth = 0;
  deep.chrome_depth = 2;
  shallow.attr_missing_rate = deep.attr_missing_rate = 0.0;
  Rng r1(6), r2(6);
  const auto site_a = GenerateWebsite(u, shallow, r1);
  const auto site_b = GenerateWebsite(u, deep, r2);
  const auto& page_a = site_a.pages[0];
  const auto& page_b = site_b.pages[0];
  const std::string attr = page_a.value_nodes.begin()->first;
  ASSERT_TRUE(page_b.value_nodes.count(attr));
  EXPECT_NE(extract::NodePath(page_a.dom, page_a.value_nodes.at(attr)),
            extract::NodePath(page_b.dom, page_b.value_nodes.at(attr)));
}

TEST(WebsiteGeneratorTest, ExtraAttrsPresent) {
  const auto u = SmallUniverse();
  WebsiteOptions opt;
  opt.num_pages = 30;
  opt.num_extra_attrs = 3;
  opt.attr_missing_rate = 0.0;
  Rng rng(7);
  const auto site = GenerateWebsite(u, opt, rng);
  const auto canonical = CanonicalColumns(site.domain);
  size_t extra_values = 0;
  for (const auto& page : site.pages) {
    for (const auto& [attr, value] : page.displayed_values) {
      if (std::find(canonical.begin(), canonical.end(), attr) ==
          canonical.end()) {
        ++extra_values;
      }
    }
  }
  EXPECT_EQ(extra_values, 3 * site.pages.size());
}

TEST(WebCorpusTest, CoversAllDomainsWithVariedTemplates) {
  const auto u = SmallUniverse();
  Rng rng(8);
  const auto corpus = GenerateWebCorpus(u, 9, 20, rng);
  ASSERT_EQ(corpus.size(), 9u);
  std::set<SourceDomain> domains;
  std::set<std::string> names;
  for (const auto& site : corpus) {
    domains.insert(site.domain);
    names.insert(site.name);
    EXPECT_EQ(site.pages.size(), 20u);
  }
  EXPECT_EQ(domains.size(), 3u);
  EXPECT_EQ(names.size(), 9u);
}

}  // namespace
}  // namespace kg::synth
