#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace kg {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto table = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto table = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "x,y");
  EXPECT_EQ(table->rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, HandlesCrlfAndEmbeddedNewline) {
  auto table = ParseCsv("a,b\r\n\"line1\nline2\",z\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvTest, RejectsArityMismatch) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, RejectsEmpty) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, ColumnIndex) {
  auto table = ParseCsv("x,y,z\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("y"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"a,b", "with \"quotes\""}, {"plain", "line\nbreak"}};
  const std::string path = ::testing::TempDir() + "/kg_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, RandomTablesSurviveSerialization) {
  Rng rng(GetParam());
  CsvTable table;
  const size_t cols = 1 + rng.UniformIndex(5);
  const char alphabet[] = "ab,\"\n\r x";
  for (size_t c = 0; c < cols; ++c) {
    table.header.push_back("col" + std::to_string(c));
  }
  const size_t rows = rng.UniformIndex(20);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row(cols);
    for (auto& cell : row) {
      const size_t len = rng.UniformIndex(10);
      for (size_t i = 0; i < len; ++i) {
        cell.push_back(alphabet[rng.UniformIndex(sizeof(alphabet) - 1)]);
      }
    }
    table.rows.push_back(std::move(row));
  }
  auto reparsed = ParseCsv(WriteCsvString(table));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->header, table.header);
  EXPECT_EQ(reparsed->rows, table.rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace kg
