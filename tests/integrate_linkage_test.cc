#include "integrate/linkage.h"

#include <gtest/gtest.h>

#include "core/conversions.h"
#include "ml/metrics.h"
#include "synth/structured_source.h"

namespace kg::integrate {
namespace {

Record MovieRecord(const std::string& title, const std::string& year,
                   const std::string& genre,
                   const std::string& director) {
  Record r;
  r.attrs = {{"title", title},
             {"release_year", year},
             {"genre", genre},
             {"director", director}};
  return r;
}

LinkageSchema MovieSchema() {
  LinkageSchema schema;
  schema.name_attrs = {"title", "director"};
  schema.numeric_attrs = {"release_year"};
  schema.categorical_attrs = {"genre"};
  return schema;
}

TEST(PairFeaturesTest, ArityMatchesNames) {
  const auto schema = MovieSchema();
  const auto names = LinkageFeatureNames(schema);
  const auto a = MovieRecord("The Harbor", "1999", "drama", "Ada Novak");
  const auto b = MovieRecord("the harbor", "2000", "drama", "A. Novak");
  EXPECT_EQ(PairFeatures(a, b, schema).size(), names.size());
}

TEST(PairFeaturesTest, IdenticalRecordsMaxSimilarity) {
  const auto schema = MovieSchema();
  const auto a = MovieRecord("The Harbor", "1999", "drama", "Ada Novak");
  const auto f = PairFeatures(a, a, schema);
  // title.jw, title.jaccard, title.monge_elkan all 1; missing flags 0.
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
}

TEST(PairFeaturesTest, MissingValuesFlagged) {
  const auto schema = MovieSchema();
  Record empty;
  const auto a = MovieRecord("X", "1999", "drama", "Y");
  const auto f = PairFeatures(a, empty, schema);
  const auto names = LinkageFeatureNames(schema);
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].find(".missing") != std::string::npos) {
      EXPECT_DOUBLE_EQ(f[i], 1.0) << names[i];
    } else {
      EXPECT_DOUBLE_EQ(f[i], 0.0) << names[i];
    }
  }
}

TEST(BlockingTest, SharedTitleTokensGenerateCandidates) {
  RecordSet a, b;
  a.records = {MovieRecord("The Silent Harbor", "1999", "drama", "X")};
  b.records = {MovieRecord("Silent Harbor", "1999", "drama", "Y"),
               MovieRecord("Crimson Road", "2001", "action", "Z")};
  const auto pairs = BlockCandidates(a, b, MovieSchema());
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 0u);
}

TEST(BlockingTest, RecallOnRealisticSources) {
  synth::UniverseOptions uopt;
  uopt.num_people = 400;
  uopt.num_movies = 400;
  uopt.num_songs = 50;
  kg::Rng rng(1);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions o1, o2;
  o1.name = "s1";
  o2.name = "s2";
  o1.coverage = o2.coverage = 0.7;
  o2.schema_dialect = 1;
  const auto t1 = synth::EmitSource(universe, o1, rng);
  const auto t2 = synth::EmitSource(universe, o2, rng);
  std::vector<uint32_t> truth1, truth2;
  const auto r1 = core::ToRecordSet(t1, core::ManualMappingFor(t1), &truth1);
  const auto r2 = core::ToRecordSet(t2, core::ManualMappingFor(t2), &truth2);
  const auto schema = core::LinkageSchemaFor(synth::SourceDomain::kMovies);
  const auto pairs = BlockCandidates(r1, r2, schema);
  // Count how many true matches survive blocking.
  size_t found = 0, linkable = 0;
  std::set<std::pair<size_t, size_t>> pair_set(pairs.begin(), pairs.end());
  for (size_t i = 0; i < r1.records.size(); ++i) {
    for (size_t j = 0; j < r2.records.size(); ++j) {
      if (truth1[i] != truth2[j]) continue;
      ++linkable;
      found += pair_set.count({i, j});
    }
  }
  ASSERT_GT(linkable, 50u);
  EXPECT_GT(static_cast<double>(found) / linkable, 0.95);
  // And blocking prunes the quadratic space substantially.
  EXPECT_LT(pairs.size(), r1.records.size() * r2.records.size() / 4);
}

TEST(EntityLinkerTest, EndToEndHighQuality) {
  synth::UniverseOptions uopt;
  uopt.num_people = 300;
  uopt.num_movies = 500;
  uopt.num_songs = 50;
  kg::Rng rng(2);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions o1, o2;
  o1.name = "fb";
  o2.name = "imdb";
  o1.coverage = o2.coverage = 0.8;
  o2.schema_dialect = 1;
  o1.name_noise = o2.name_noise = 0.2;
  const auto t1 = synth::EmitSource(universe, o1, rng);
  const auto t2 = synth::EmitSource(universe, o2, rng);
  std::vector<uint32_t> truth1, truth2;
  const auto r1 = core::ToRecordSet(t1, core::ManualMappingFor(t1), &truth1);
  const auto r2 = core::ToRecordSet(t2, core::ManualMappingFor(t2), &truth2);
  const auto schema = core::LinkageSchemaFor(synth::SourceDomain::kMovies);
  auto pool = core::BuildLinkagePairs(r1, truth1, r2, truth2, schema);
  ASSERT_GT(pool.size(), 200u);

  // Train on half the pairs, evaluate linking quality end-to-end.
  ml::Dataset train, unused;
  kg::Rng split_rng(3);
  ml::TrainTestSplit(pool, 0.5, split_rng, &train, &unused);
  EntityLinker linker;
  ml::ForestOptions fopt;
  fopt.num_trees = 30;
  linker.Fit(train, fopt, rng);
  const auto matches = linker.Link(r1, r2, schema, 0.5);
  ASSERT_GT(matches.size(), 100u);
  size_t correct = 0;
  for (const auto& m : matches) {
    correct += truth1[m.index_a] == truth2[m.index_b];
  }
  const double precision = static_cast<double>(correct) / matches.size();
  EXPECT_GT(precision, 0.95);
}

TEST(EntityLinkerTest, OneToOneConstraintHolds) {
  RecordSet a, b;
  a.records = {MovieRecord("Harbor", "1999", "drama", "X"),
               MovieRecord("Harbor", "1999", "drama", "X")};
  b.records = {MovieRecord("Harbor", "1999", "drama", "X")};
  ml::Dataset train;
  const auto schema = MovieSchema();
  train.feature_names = LinkageFeatureNames(schema);
  // Trivial training set: identical = positive, different = negative.
  train.examples.push_back(
      {PairFeatures(a.records[0], a.records[0], schema), 1});
  train.examples.push_back(
      {PairFeatures(a.records[0],
                    MovieRecord("Zzz", "1802", "western", "Q"), schema),
       0});
  EntityLinker linker;
  ml::ForestOptions fopt;
  fopt.num_trees = 5;
  kg::Rng rng(4);
  linker.Fit(train, fopt, rng);
  const auto matches = linker.Link(a, b, schema, 0.5);
  EXPECT_LE(matches.size(), 1u);
}

}  // namespace
}  // namespace kg::integrate
