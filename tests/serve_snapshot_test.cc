#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"

namespace kg::serve {
namespace {

using graph::NodeKind;
using graph::Provenance;

const Provenance kProv{"test", 1.0, 0};

// A small KG with every node kind, a text-valued attribute, a removed
// triple, and an isolated node (interned but never asserted).
graph::KnowledgeGraph SampleKg() {
  graph::KnowledgeGraph kg;
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m1", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("m2", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("ada", "acted_in", "m2", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("m1", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  const graph::TripleId doomed =
      kg.AddTriple("m1", "title", "Wrong Title", NodeKind::kEntity,
                   NodeKind::kText, kProv);
  kg.RemoveTriple(doomed);
  kg.AddNode("isolated", NodeKind::kEntity);
  return kg;
}

TEST(SnapshotTest, CompileCompactsToLiveVocabulary) {
  const auto kg = SampleKg();
  const KgSnapshot snap = KgSnapshot::Compile(kg);
  EXPECT_EQ(snap.num_triples(), kg.num_triples());
  // "Wrong Title" (only in a tombstone) and "isolated" are compiled out.
  EXPECT_EQ(snap.num_nodes(), 5u);  // m1, m2, ada, "The Harbor", Movie.
  EXPECT_EQ(snap.num_predicates(), 4u);
  EXPECT_FALSE(snap.FindNode("isolated", NodeKind::kEntity).ok());
  EXPECT_FALSE(snap.FindNode("Wrong Title", NodeKind::kText).ok());
  EXPECT_TRUE(snap.FindNode("The Harbor", NodeKind::kText).ok());
}

TEST(SnapshotTest, LookupsMatchSourceGraph) {
  const auto kg = SampleKg();
  const KgSnapshot snap = KgSnapshot::Compile(kg);

  const NodeId m1 = *snap.FindNode("m1", NodeKind::kEntity);
  const NodeId ada = *snap.FindNode("ada", NodeKind::kEntity);
  const PredicateId directed = *snap.FindPredicate("directed_by");

  const auto objs = snap.Objects(m1, directed);
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(snap.NodeName(objs[0]), "ada");
  EXPECT_EQ(snap.NodeKindOf(objs[0]), NodeKind::kEntity);

  const auto subs = snap.Subjects(directed, ada);
  ASSERT_EQ(subs.size(), 2u);
  std::vector<std::string> names{std::string(snap.NodeName(subs[0])),
                                 std::string(snap.NodeName(subs[1]))};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"m1", "m2"}));

  EXPECT_TRUE(snap.HasTriple(m1, directed, ada));
  EXPECT_FALSE(snap.HasTriple(ada, directed, m1));

  // Removed triples are not served.
  const PredicateId title = *snap.FindPredicate("title");
  EXPECT_EQ(snap.Objects(m1, title).size(), 1u);

  // Degrees cover both directions.
  EXPECT_EQ(snap.OutDegree(m1), 3u);
  EXPECT_EQ(snap.InDegree(ada), 2u);
}

TEST(SnapshotTest, EdgeSpansAreSorted) {
  Rng rng(7);
  graph::KnowledgeGraph kg;
  for (int i = 0; i < 200; ++i) {
    kg.AddTriple("s" + std::to_string(rng.UniformInt(0, 20)),
                 "p" + std::to_string(rng.UniformInt(0, 5)),
                 "o" + std::to_string(rng.UniformInt(0, 40)),
                 NodeKind::kEntity, NodeKind::kEntity, kProv);
  }
  const KgSnapshot snap = KgSnapshot::Compile(kg);
  const auto sorted_pairs = [](const KgSnapshot::EdgeRange& range) {
    const std::vector<KgSnapshot::Edge> edges(range.begin(), range.end());
    return std::is_sorted(edges.begin(), edges.end(),
                          [](const auto& a, const auto& b) {
                            return a.first != b.first
                                       ? a.first < b.first
                                       : a.second < b.second;
                          });
  };
  for (NodeId n = 0; n < snap.num_nodes(); ++n) {
    EXPECT_TRUE(sorted_pairs(snap.OutEdges(n)));
    EXPECT_TRUE(sorted_pairs(snap.InEdges(n)));
  }
  for (PredicateId p = 0; p < snap.num_predicates(); ++p) {
    EXPECT_TRUE(sorted_pairs(snap.PredicateEdges(p)));
  }
}

TEST(SnapshotTest, FingerprintIgnoresInsertionOrder) {
  struct Spo {
    const char* s;
    const char* p;
    const char* o;
  };
  const std::vector<Spo> triples = {
      {"a", "knows", "b"}, {"b", "knows", "c"}, {"c", "knows", "a"},
      {"a", "likes", "b"}, {"d", "knows", "a"},
  };
  graph::KnowledgeGraph forward;
  for (const auto& t : triples) {
    forward.AddTriple(t.s, t.p, t.o, NodeKind::kEntity, NodeKind::kEntity,
                      kProv);
  }
  graph::KnowledgeGraph backward;
  for (auto it = triples.rbegin(); it != triples.rend(); ++it) {
    backward.AddTriple(it->s, it->p, it->o, NodeKind::kEntity,
                       NodeKind::kEntity, kProv);
  }
  const KgSnapshot a = KgSnapshot::Compile(forward);
  const KgSnapshot b = KgSnapshot::Compile(backward);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(SerializeSnapshot(a), SerializeSnapshot(b));
}

TEST(SnapshotTest, FingerprintIsPureFunctionOfLiveTriples) {
  graph::KnowledgeGraph clean;
  clean.AddTriple("x", "p", "y", NodeKind::kEntity, NodeKind::kEntity,
                  kProv);
  graph::KnowledgeGraph dirty;
  dirty.AddNode("junk", NodeKind::kText);
  const auto doomed = dirty.AddTriple(
      "x", "q", "z", NodeKind::kEntity, NodeKind::kEntity, kProv);
  dirty.AddTriple("x", "p", "y", NodeKind::kEntity, NodeKind::kEntity,
                  kProv);
  dirty.RemoveTriple(doomed);
  EXPECT_EQ(KgSnapshot::Compile(clean).Fingerprint(),
            KgSnapshot::Compile(dirty).Fingerprint());
}

TEST(SnapshotTest, SerializationRoundTripsBitIdentically) {
  const auto kg = SampleKg();
  const KgSnapshot snap = KgSnapshot::Compile(kg);
  const std::string data = SerializeSnapshot(snap);
  const auto loaded = DeserializeSnapshot(data);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Fingerprint(), snap.Fingerprint());
  EXPECT_EQ(SerializeSnapshot(*loaded), data);
  EXPECT_EQ(loaded->num_nodes(), snap.num_nodes());
  EXPECT_EQ(loaded->num_triples(), snap.num_triples());
}

TEST(SnapshotTest, RoundTripSurvivesHostileNames) {
  graph::KnowledgeGraph kg;
  kg.AddTriple("tab\there", "pred\twith\ttabs", "line\nbreak",
               NodeKind::kEntity, NodeKind::kText, kProv);
  kg.AddTriple("back\\slash", "p", "", NodeKind::kEntity, NodeKind::kText,
               kProv);
  kg.AddTriple("", "q", "h\xc3\xa9llo", NodeKind::kClass, NodeKind::kText,
               kProv);
  const KgSnapshot snap = KgSnapshot::Compile(kg);
  const auto loaded = DeserializeSnapshot(SerializeSnapshot(snap));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Fingerprint(), snap.Fingerprint());
  EXPECT_TRUE(loaded->FindNode("tab\there", NodeKind::kEntity).ok());
  EXPECT_TRUE(loaded->FindNode("line\nbreak", NodeKind::kText).ok());
  EXPECT_TRUE(loaded->FindNode("", NodeKind::kClass).ok());
}

TEST(SnapshotTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(DeserializeSnapshot("").ok());
  EXPECT_FALSE(DeserializeSnapshot("not a snapshot\n").ok());
  // Out-of-range triple id.
  EXPECT_FALSE(
      DeserializeSnapshot("kgsnap\t1\t1\t1\t1\nN\tentity\ta\nP\tp\n"
                          "T\t0\t0\t7\n")
          .ok());
  // Count mismatch.
  EXPECT_FALSE(
      DeserializeSnapshot("kgsnap\t1\t2\t1\t0\nN\tentity\ta\nP\tp\n")
          .ok());
  // Unsupported version.
  EXPECT_FALSE(DeserializeSnapshot("kgsnap\t9\t0\t0\t0\n").ok());
}

TEST(SnapshotTest, SaveLoadFileRoundTrip) {
  const auto kg = SampleKg();
  const KgSnapshot snap = KgSnapshot::Compile(kg);
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.kgsnap";
  ASSERT_TRUE(SaveSnapshot(snap, path).ok());
  const auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Fingerprint(), snap.Fingerprint());
  std::remove(path.c_str());
}

TEST(SnapshotTest, OutOfRangeIdsDegradeInsteadOfReading) {
  // Corrupt postings served under BinaryVerify::kHeader can hand any
  // uint32 to these accessors (regression: NodeName used to index the
  // offset table unclamped, and the edge accessors KG_CHECK-aborted).
  const KgSnapshot snap = KgSnapshot::Compile(SampleKg());
  const auto n = static_cast<NodeId>(snap.num_nodes());
  const auto p = static_cast<PredicateId>(snap.num_predicates());
  for (const uint32_t id : {n, n + 1, UINT32_MAX}) {
    EXPECT_EQ(snap.NodeName(id), "");
    EXPECT_EQ(snap.NodeKindOf(id), NodeKind::kEntity);
    EXPECT_TRUE(snap.OutEdges(id).empty());
    EXPECT_TRUE(snap.InEdges(id).empty());
  }
  for (const uint32_t id : {p, p + 1, UINT32_MAX}) {
    EXPECT_EQ(snap.PredicateName(id), "");
    EXPECT_TRUE(snap.PredicateEdges(id).empty());
  }
  // In-range behavior is unchanged.
  EXPECT_NE(snap.NodeName(0), "");
  EXPECT_FALSE(snap.OutEdges(0).empty() && snap.InEdges(0).empty());
}

TEST(SnapshotTest, EmptyGraphCompiles) {
  graph::KnowledgeGraph kg;
  const KgSnapshot snap = KgSnapshot::Compile(kg);
  EXPECT_EQ(snap.num_nodes(), 0u);
  EXPECT_EQ(snap.num_triples(), 0u);
  const auto loaded = DeserializeSnapshot(SerializeSnapshot(snap));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Fingerprint(), snap.Fingerprint());
}

}  // namespace
}  // namespace kg::serve
