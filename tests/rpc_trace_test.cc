// End-to-end wire trace propagation: a client-side TraceContext rides
// the frame extension, the server roots its "serve.<class>" span at the
// wire parent, an in-process shared tracer yields one connected tree,
// and same-seed runs render byte-identical trace JSON. Under
// KG_OBS_NOOP the wire still carries the context (frame bytes are
// independent of the obs build flavor) but no spans are recorded.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "graph/knowledge_graph.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace kg::rpc {
namespace {

using graph::NodeKind;
using graph::Provenance;

const Provenance kProv{"rpc_trace_test", 1.0, 0};

graph::KnowledgeGraph SampleKg() {
  graph::KnowledgeGraph kg;
  kg.AddTriple("m1", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m1", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  return kg;
}

/// Engine + traced server + handshook client over loopback.
struct TracedRig {
  serve::KgSnapshot snap;
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<RpcClient> client;
};

TracedRig MakeRig(obs::Tracer* tracer) {
  TracedRig rig;
  rig.snap = serve::KgSnapshot::Compile(SampleKg());
  rig.engine = std::make_unique<serve::QueryEngine>(rig.snap);
  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServerOptions options;
  options.worker_threads = 1;
  options.tracer = tracer;
  rig.server = std::make_unique<RpcServer>(EngineHandler(rig.engine.get()),
                                           std::move(listener), options);
  KG_CHECK_OK(rig.server->Start());
  auto transport = loopback->Connect();
  KG_CHECK_OK(transport.status());
  rig.client = std::make_unique<RpcClient>(std::move(*transport));
  KG_CHECK_OK(rig.client->Handshake().status());
  return rig;
}

TEST(RpcTraceTest, ServerSpanParentsAtWireContext) {
  obs::FixedTraceClock clock;
  obs::Tracer tracer(77, &clock);
  TracedRig rig = MakeRig(&tracer);

  TraceContext ctx;
  ctx.trace_id = 0x1111222233334444ULL;
  ctx.parent_span_id = 0x00abcdef01234567ULL;
  ctx.sampled = true;
  ASSERT_TRUE(
      rig.client->Execute(serve::Query::PointLookup("m1", "title"), &ctx)
          .ok());
  rig.server->Stop();

#ifdef KG_OBS_NOOP
  EXPECT_EQ(tracer.finished_spans(), 0u);
#else
  // Per request: the "serve.<class>" root plus its "execute" child.
  ASSERT_EQ(tracer.finished_spans(), 2u);
  const auto doc = obs::ParseJson(tracer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const obs::JsonValue* spans = doc->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  const obs::JsonValue& span = spans->array[0];
  EXPECT_EQ(span.Find("name")->string_value, "serve.point_lookup");
  ASSERT_NE(span.Find("children"), nullptr);
  EXPECT_EQ(span.Find("children")->array[0].Find("name")->string_value,
            "execute");
  // The wire parent is rendered even though no local span carries that
  // id — the span is a root of this server's local forest.
  ASSERT_NE(span.Find("parent_id"), nullptr);
  EXPECT_EQ(span.Find("parent_id")->string_value,
            obs::HexSpanId(ctx.parent_span_id));
  // The span id is a pure function of (seed, wire parent, structure):
  // Fnv1a64("<seed>|~<parent hex>/serve.point_lookup#0").
  const uint64_t expected_id =
      Fnv1a64("77|~" + obs::HexSpanId(ctx.parent_span_id) +
              "/serve.point_lookup#0");
  EXPECT_EQ(span.Find("id")->string_value, obs::HexSpanId(expected_id));
#endif
}

TEST(RpcTraceTest, UnsampledContextSkipsSpanUntracedRequestGetsLocalRoot) {
  obs::FixedTraceClock clock;
  obs::Tracer tracer(5, &clock);
  TracedRig rig = MakeRig(&tracer);

  TraceContext unsampled;
  unsampled.trace_id = 9;
  unsampled.parent_span_id = 10;
  unsampled.sampled = false;
  ASSERT_TRUE(rig.client
                  ->Execute(serve::Query::PointLookup("m1", "title"),
                            &unsampled)
                  .ok());
  ASSERT_TRUE(
      rig.client->Execute(serve::Query::Neighborhood("ada")).ok());
  rig.server->Stop();

#ifdef KG_OBS_NOOP
  EXPECT_EQ(tracer.finished_spans(), 0u);
#else
  // The unsampled request recorded nothing; the context-free request
  // got a server-local root (plus its "execute" child) with no parent.
  ASSERT_EQ(tracer.finished_spans(), 2u);
  const auto doc = obs::ParseJson(tracer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->Find("spans")->array.size(), 1u);
  const obs::JsonValue& span = doc->Find("spans")->array[0];
  EXPECT_EQ(span.Find("name")->string_value, "serve.neighborhood");
  EXPECT_EQ(span.Find("parent_id"), nullptr);
#endif
}

TEST(RpcTraceTest, SharedTracerNestsServerSpanUnderClientSpan) {
  obs::FixedTraceClock clock;
  obs::Tracer tracer(42, &clock);
  TracedRig rig = MakeRig(&tracer);

  obs::Span root = tracer.Root("client.request");
  TraceContext ctx;
  ctx.trace_id = root.id();
  ctx.parent_span_id = root.id();
  ctx.sampled = true;
  ASSERT_TRUE(
      rig.client->Execute(serve::Query::PointLookup("m1", "title"), &ctx)
          .ok());
  rig.server->Stop();
  root.End();

#ifdef KG_OBS_NOOP
  EXPECT_EQ(tracer.finished_spans(), 0u);
#else
  ASSERT_EQ(tracer.finished_spans(), 3u);
  const auto doc = obs::ParseJson(tracer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  // One connected tree: the server span nests under the client span
  // because the parent id resolves to a locally recorded span.
  const obs::JsonValue* spans = doc->Find("spans");
  ASSERT_EQ(spans->array.size(), 1u);
  const obs::JsonValue& client_span = spans->array[0];
  EXPECT_EQ(client_span.Find("name")->string_value, "client.request");
  const obs::JsonValue* children = client_span.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 1u);
  EXPECT_EQ(children->array[0].Find("name")->string_value,
            "serve.point_lookup");
  EXPECT_EQ(children->array[0].Find("parent_id")->string_value,
            obs::HexSpanId(root.id()));
#endif
}

TEST(RpcTraceTest, RetryingClientPropagatesContext) {
  obs::FixedTraceClock clock;
  obs::Tracer tracer(13, &clock);
  serve::KgSnapshot snap = serve::KgSnapshot::Compile(SampleKg());
  serve::QueryEngine engine(snap);
  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServerOptions options;
  options.worker_threads = 1;
  options.tracer = &tracer;
  RpcServer server(EngineHandler(&engine), std::move(listener), options);
  ASSERT_TRUE(server.Start().ok());

  RetryingClient client([loopback]() { return loopback->Connect(); },
                        RetryPolicy{}, 99);
  TraceContext ctx;
  ctx.trace_id = 0xfeedULL;
  ctx.parent_span_id = 0xbeefULL;
  ctx.sampled = true;
  ASSERT_TRUE(
      client.Execute(serve::Query::PointLookup("m1", "title"), &ctx).ok());
  server.Stop();

#ifdef KG_OBS_NOOP
  EXPECT_EQ(tracer.finished_spans(), 0u);
#else
  ASSERT_EQ(tracer.finished_spans(), 2u);
  const auto doc = obs::ParseJson(tracer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->Find("spans")->array.size(), 1u);
  EXPECT_EQ(doc->Find("spans")->array[0].Find("parent_id")->string_value,
            obs::HexSpanId(ctx.parent_span_id));
#endif
}

std::string RunSeededTracedWorkload() {
  obs::FixedTraceClock clock;
  obs::Tracer tracer(314, &clock);
  TracedRig rig = MakeRig(&tracer);
  const std::vector<serve::Query> workload = {
      serve::Query::PointLookup("m1", "title"),
      serve::Query::Neighborhood("ada"),
      serve::Query::AttributeByType("Movie", "title"),
      serve::Query::TopKRelated("m1", 3),
      serve::Query::PointLookup("m1", "title"),
  };
  uint64_t next_parent = 0x5eed0000ULL;
  for (const serve::Query& q : workload) {
    clock.Advance(0.001);
    TraceContext ctx;
    ctx.trace_id = next_parent;
    ctx.parent_span_id = next_parent;
    ctx.sampled = true;
    ++next_parent;
    KG_CHECK_OK(rig.client->Execute(q, &ctx).status());
  }
  rig.server->Stop();
  return tracer.ToJson();
}

TEST(RpcTraceTest, SameSeedRunsRenderIdenticalTraceJson) {
  const std::string first = RunSeededTracedWorkload();
  const std::string second = RunSeededTracedWorkload();
  EXPECT_EQ(first, second);
#ifndef KG_OBS_NOOP
  EXPECT_NE(first.find("serve.topk_related"), std::string::npos);
#endif
}

}  // namespace
}  // namespace kg::rpc
