// Cross-module integration: construct a KG through the entity pipeline,
// serialize it, reload it, and answer structured queries over the copy —
// the full lifecycle a downstream user exercises.

#include <gtest/gtest.h>

#include "core/entity_kg_pipeline.h"
#include "graph/query.h"
#include "graph/serialization.h"

namespace kg {
namespace {

TEST(CrossModuleTest, BuildSerializeReloadQuery) {
  Rng rng(1);
  synth::UniverseOptions uopt;
  uopt.num_people = 300;
  uopt.num_movies = 400;
  uopt.num_songs = 50;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions wiki, imdb;
  wiki.name = "wikipedia";
  wiki.coverage = 0.5;
  imdb.name = "imdb";
  imdb.coverage = 0.6;
  imdb.schema_dialect = 1;
  core::EntityKgBuilder builder(synth::SourceDomain::kMovies, {});
  builder.IngestAnchor(synth::EmitSource(universe, wiki, rng), rng);
  builder.IngestAndLink(synth::EmitSource(universe, imdb, rng), rng);
  builder.FuseValues();
  ASSERT_GT(builder.kg().num_triples(), 500u);

  // Round-trip through the serialization format.
  auto reloaded = graph::DeserializeKg(graph::SerializeKg(builder.kg()));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_triples(), builder.kg().num_triples());

  // Query the reloaded graph: every entity with a director also has a
  // title, and the join works.
  graph::QueryEngine engine(*reloaded);
  auto result = engine.Query("?m director ?d . ?m title ?t");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 100u);
  for (const auto& binding : *result) {
    EXPECT_EQ(reloaded->GetNodeKind(binding.at("m")),
              graph::NodeKind::kEntity);
    EXPECT_EQ(reloaded->GetNodeKind(binding.at("t")),
              graph::NodeKind::kText);
  }

  // A pointed lookup: pick one movie's title and retrieve its director
  // through the query engine; it must match the KG's direct answer.
  const auto& sample = result->front();
  const std::string title = reloaded->NodeName(sample.at("t"));
  auto pointed =
      engine.Query("?m title '" + title + "' . ?m director ?d");
  ASSERT_TRUE(pointed.ok());
  ASSERT_FALSE(pointed->empty());
  bool found = false;
  for (const auto& b : *pointed) {
    if (b.at("d") == sample.at("d")) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace kg
