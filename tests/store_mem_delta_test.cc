// MemDelta: last-op-wins state per triple, subject/object-major
// iteration order, prefix-probe exactness (TouchesSubject must not match
// name prefixes), fold-line trimming, and the copy-on-write property the
// store's epoch publishing relies on.

#include "store/mem_delta.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/knowledge_graph.h"
#include "store/wal.h"

namespace kg::store {
namespace {

using graph::NodeKind;
using graph::Provenance;

Mutation Up(const std::string& s, const std::string& p,
            const std::string& o, NodeKind sk = NodeKind::kEntity,
            NodeKind ok = NodeKind::kEntity) {
  return Mutation::Upsert(s, p, o, sk, ok, Provenance{"test", 1.0, 0});
}

Mutation Rt(const std::string& s, const std::string& p,
            const std::string& o, NodeKind sk = NodeKind::kEntity,
            NodeKind ok = NodeKind::kEntity) {
  return Mutation::Retract(s, p, o, sk, ok);
}

TEST(MemDeltaTest, LastOpWinsPerTriple) {
  MemDelta delta;
  EXPECT_TRUE(delta.empty());
  delta.Apply(Up("a", "p", "b"), 1);
  EXPECT_EQ(delta.Lookup(TripleName::Of(Up("a", "p", "b"))),
            MemDelta::State::kUpserted);
  delta.Apply(Rt("a", "p", "b"), 2);
  EXPECT_EQ(delta.Lookup(TripleName::Of(Up("a", "p", "b"))),
            MemDelta::State::kRetracted);
  delta.Apply(Up("a", "p", "b"), 3);
  EXPECT_EQ(delta.Lookup(TripleName::Of(Up("a", "p", "b"))),
            MemDelta::State::kUpserted);
  EXPECT_EQ(delta.size(), 1u);  // one triple, whatever its history
  EXPECT_EQ(delta.last_seq(), 3u);
}

TEST(MemDeltaTest, LookupDistinguishesKinds) {
  MemDelta delta;
  delta.Apply(Up("x", "p", "y", NodeKind::kEntity, NodeKind::kText), 1);
  EXPECT_EQ(delta.Lookup(TripleName{NodeKind::kEntity, "x", "p",
                                    NodeKind::kText, "y"}),
            MemDelta::State::kUpserted);
  EXPECT_EQ(delta.Lookup(TripleName{NodeKind::kEntity, "x", "p",
                                    NodeKind::kEntity, "y"}),
            MemDelta::State::kUntouched);
  EXPECT_EQ(delta.Lookup(TripleName{NodeKind::kText, "x", "p",
                                    NodeKind::kText, "y"}),
            MemDelta::State::kUntouched);
}

TEST(MemDeltaTest, TouchProbesAreExactNotPrefixMatches) {
  MemDelta delta;
  delta.Apply(Up("ab", "p", "zz"), 1);
  EXPECT_TRUE(delta.TouchesSubject(NodeKind::kEntity, "ab"));
  EXPECT_FALSE(delta.TouchesSubject(NodeKind::kEntity, "a"));
  EXPECT_FALSE(delta.TouchesSubject(NodeKind::kEntity, "abc"));
  EXPECT_FALSE(delta.TouchesSubject(NodeKind::kText, "ab"));
  EXPECT_TRUE(delta.TouchesObject(NodeKind::kEntity, "zz"));
  EXPECT_FALSE(delta.TouchesObject(NodeKind::kEntity, "z"));
  EXPECT_FALSE(delta.TouchesObject(NodeKind::kEntity, "ab"));
}

TEST(MemDeltaTest, ForEachBySubjectIsOrderedAndScoped) {
  MemDelta delta;
  delta.Apply(Up("s", "q", "o2"), 1);
  delta.Apply(Up("s", "p", "o9"), 2);
  delta.Apply(Rt("s", "p", "o1"), 3);
  delta.Apply(Up("other", "p", "o1"), 4);
  delta.Apply(Up("s", "p", "o5", NodeKind::kEntity, NodeKind::kText), 5);

  std::vector<std::string> seen;
  delta.ForEachBySubject(
      NodeKind::kEntity, "s",
      [&](const TripleName& t, const MemDelta::Entry& e) {
        seen.push_back(t.predicate + "/" + t.object + "/" +
                       (e.state == MemDelta::State::kUpserted ? "U" : "R"));
      });
  // (predicate, object_kind, object) order; "other"'s entry never shows.
  const std::vector<std::string> expected = {
      "p/o1/R",  // p, kEntity, o1
      "p/o9/U",  // p, kEntity, o9
      "p/o5/U",  // p, kText, o5 (kText sorts after kEntity)
      "q/o2/U",
  };
  EXPECT_EQ(seen, expected);
}

TEST(MemDeltaTest, ForEachByObjectReconstructsFullTripleNames) {
  MemDelta delta;
  delta.Apply(Up("s1", "p", "hub"), 1);
  delta.Apply(Rt("s2", "q", "hub"), 2);
  delta.Apply(Up("s3", "p", "elsewhere"), 3);

  std::vector<TripleName> seen;
  delta.ForEachByObject(NodeKind::kEntity, "hub",
                        [&](const TripleName& t, const MemDelta::Entry&) {
                          seen.push_back(t);
                        });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0],
            (TripleName{NodeKind::kEntity, "s1", "p", NodeKind::kEntity,
                        "hub"}));
  EXPECT_EQ(seen[1],
            (TripleName{NodeKind::kEntity, "s2", "q", NodeKind::kEntity,
                        "hub"}));
}

TEST(MemDeltaTest, TrimThroughDropsOnlyFoldedEntries) {
  MemDelta delta;
  delta.Apply(Up("a", "p", "b"), 1);
  delta.Apply(Rt("c", "p", "d"), 2);
  delta.Apply(Up("e", "p", "f"), 3);
  // Triple (a,p,b) mutated again *after* the fold line: its entry's seq
  // moves to 4, so it must survive a TrimThrough(3).
  delta.Apply(Rt("a", "p", "b"), 4);

  delta.TrimThrough(3);
  EXPECT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.Lookup(TripleName::Of(Up("a", "p", "b"))),
            MemDelta::State::kRetracted);
  EXPECT_EQ(delta.Lookup(TripleName::Of(Up("c", "p", "d"))),
            MemDelta::State::kUntouched);
  EXPECT_EQ(delta.Lookup(TripleName::Of(Up("e", "p", "f"))),
            MemDelta::State::kUntouched);
  // The object-major index trims in lockstep.
  bool found = false;
  delta.ForEachByObject(NodeKind::kEntity, "f",
                        [&](const TripleName&, const MemDelta::Entry&) {
                          found = true;
                        });
  EXPECT_FALSE(found);
  delta.TrimThrough(4);
  EXPECT_TRUE(delta.empty());
}

TEST(MemDeltaTest, CopyIsIndependentOfTheOriginal) {
  MemDelta original;
  original.Apply(Up("a", "p", "b"), 1);
  const MemDelta snapshot = original;  // the store's copy-on-write publish
  original.Apply(Rt("a", "p", "b"), 2);
  original.Apply(Up("new", "p", "triple"), 3);

  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.Lookup(TripleName::Of(Up("a", "p", "b"))),
            MemDelta::State::kUpserted);
  EXPECT_FALSE(snapshot.TouchesSubject(NodeKind::kEntity, "new"));
  // Both secondary-index views of the copy reflect the old state too.
  int hits = 0;
  snapshot.ForEachByObject(NodeKind::kEntity, "b",
                           [&](const TripleName&, const MemDelta::Entry& e) {
                             EXPECT_EQ(e.state, MemDelta::State::kUpserted);
                             ++hits;
                           });
  EXPECT_EQ(hits, 1);
}

TEST(MemDeltaTest, HostileNamesWithTabsAndEmptiesWork) {
  MemDelta delta;
  delta.Apply(Up("", "", "", NodeKind::kText, NodeKind::kClass), 1);
  delta.Apply(Up("tab\there", "p\tq", "line\nbreak"), 2);
  EXPECT_TRUE(delta.TouchesSubject(NodeKind::kText, ""));
  EXPECT_TRUE(delta.TouchesSubject(NodeKind::kEntity, "tab\there"));
  EXPECT_EQ(delta.Lookup(TripleName{NodeKind::kEntity, "tab\there", "p\tq",
                                    NodeKind::kEntity, "line\nbreak"}),
            MemDelta::State::kUpserted);
  EXPECT_EQ(delta.size(), 2u);
}

}  // namespace
}  // namespace kg::store
