// MVCC epoch semantics: pinned epochs are frozen, consistent views that
// survive concurrent writes and compactions; a seeded single-threaded
// schedule of applies/reads/pins/compactions is replayable bit-for-bit;
// and under real threads (run this under KG_SANITIZE=thread), every
// reader observes some exact published version — never a torn mix.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "store/wal.h"

namespace kg::store {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using serve::Query;
using serve::QueryResult;

const Provenance kProv{"mvcc_test", 1.0, 2};

KnowledgeGraph BaseKg() {
  KnowledgeGraph kg;
  for (int i = 0; i < 8; ++i) {
    const std::string person = "person" + std::to_string(i);
    kg.AddTriple(person, "knows", "person" + std::to_string((i + 1) % 8),
                 NodeKind::kEntity, NodeKind::kEntity, kProv);
    kg.AddTriple(person, "type", "Person", NodeKind::kEntity,
                 NodeKind::kClass, kProv);
  }
  return kg;
}

void ApplyToKg(KnowledgeGraph* kg, const Mutation& m) {
  if (m.op == MutationOp::kUpsert) {
    kg->AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                  m.object_kind, m.prov);
    return;
  }
  const auto s = kg->FindNode(m.subject, m.subject_kind);
  const auto p = kg->FindPredicate(m.predicate);
  const auto o = kg->FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;
  const graph::TripleId id = kg->FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg->RemoveTriple(id);
}

std::vector<Query> ProbeQueries() {
  return {
      Query::PointLookup("person0", "knows"),
      Query::Neighborhood("person1"),
      Query::AttributeByType("Person", "knows"),
      Query::TopKRelated("person0", 4),
  };
}

/// A deterministic mutation stream: mutation i is a pure function of i.
Mutation ScriptedMutation(size_t i) {
  const std::string a = "person" + std::to_string(i % 8);
  const std::string b = "person" + std::to_string((i * 3 + 1) % 8);
  switch (i % 4) {
    case 0:
      return Mutation::Upsert(a, "mentors", b, NodeKind::kEntity,
                              NodeKind::kEntity, kProv);
    case 1:
      return Mutation::Retract(a, "knows", b, NodeKind::kEntity,
                               NodeKind::kEntity);
    case 2:
      return Mutation::Upsert("extra" + std::to_string(i), "knows", a,
                              NodeKind::kEntity, NodeKind::kEntity, kProv);
    default:
      return Mutation::Retract(a, "mentors", b, NodeKind::kEntity,
                               NodeKind::kEntity);
  }
}

TEST(MvccTest, PinnedEpochIsFrozenWhileWritesProceed) {
  auto opened = VersionedKgStore::Open(BaseKg());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& store = **opened;

  const auto pinned = store.PinEpoch();
  ASSERT_EQ(pinned->version, 0u);
  std::vector<QueryResult> before;
  for (const Query& q : ProbeQueries()) {
    before.push_back(store.ExecuteAt(*pinned, q));
  }

  for (size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(store.Apply(ScriptedMutation(i)).ok());
  }
  ASSERT_EQ(store.version(), 12u);

  // The pinned view answers exactly as it did before any write.
  const auto probes = ProbeQueries();
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(store.ExecuteAt(*pinned, probes[i]), before[i])
        << "probe " << i;
  }
  EXPECT_EQ(pinned->version, 0u);
  // And the current view has moved on: at least one probe changed.
  bool any_changed = false;
  for (size_t i = 0; i < probes.size(); ++i) {
    if (store.Execute(probes[i]) != before[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(MvccTest, PinnedEpochSurvivesCompactionAndCompactionChangesNoAnswer) {
  auto opened = VersionedKgStore::Open(BaseKg());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& store = **opened;
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.Apply(ScriptedMutation(i)).ok());
  }
  const auto pinned = store.PinEpoch();
  std::vector<QueryResult> pinned_before, current_before;
  for (const Query& q : ProbeQueries()) {
    pinned_before.push_back(store.ExecuteAt(*pinned, q));
    current_before.push_back(store.Execute(q));
  }

  ASSERT_TRUE(store.Compact().ran);
  EXPECT_EQ(store.delta_size(), 0u);

  const auto probes = ProbeQueries();
  for (size_t i = 0; i < probes.size(); ++i) {
    // The old epoch still merges its (now-stale) base + delta correctly...
    EXPECT_EQ(store.ExecuteAt(*pinned, probes[i]), pinned_before[i]);
    // ...and compaction changed no current answer, only representation.
    EXPECT_EQ(store.Execute(probes[i]), current_before[i]);
  }
}

// The determinism requirement on schedules: interleaving applies, reads,
// epoch pins, and compactions under a seed, the full observable
// transcript (versions, answers, fingerprints) replays identically.
std::vector<std::string> RunSchedule(uint64_t seed) {
  std::vector<std::string> transcript;
  auto opened = VersionedKgStore::Open(BaseKg());
  EXPECT_TRUE(opened.ok());
  auto& store = **opened;
  Rng rng(seed);
  const auto probes = ProbeQueries();
  std::vector<std::shared_ptr<const StoreEpoch>> pins;
  size_t next_mutation = 0;
  for (int step = 0; step < 120; ++step) {
    const double roll = rng.UniformDouble();
    if (roll < 0.45) {
      store.Apply(ScriptedMutation(next_mutation++));
      transcript.push_back("apply v" + std::to_string(store.version()));
    } else if (roll < 0.75) {
      const Query& q = probes[rng.UniformIndex(probes.size())];
      const QueryResult rows = store.Execute(q);
      std::string line = "read " + q.CacheKey() + " ->";
      for (const std::string& r : rows) line += " [" + r + "]";
      transcript.push_back(std::move(line));
    } else if (roll < 0.85) {
      pins.push_back(store.PinEpoch());
      transcript.push_back("pin v" + std::to_string(pins.back()->version));
    } else if (roll < 0.95 && !pins.empty()) {
      const auto& epoch = pins[rng.UniformIndex(pins.size())];
      const Query& q = probes[rng.UniformIndex(probes.size())];
      const QueryResult rows = store.ExecuteAt(*epoch, q);
      transcript.push_back("time-travel v" + std::to_string(epoch->version) +
                           " rows=" + std::to_string(rows.size()));
    } else {
      const auto stats = store.Compact();
      transcript.push_back("compact folded=" + std::to_string(stats.folded) +
                           " fp=" + std::to_string(stats.base_fingerprint));
    }
  }
  transcript.push_back("final fp=" +
                       std::to_string(store.AuthoritativeFingerprint()));
  return transcript;
}

TEST(MvccTest, SeededSchedulesReplayIdentically) {
  for (uint64_t seed : {1u, 7u, 42u, 1337u}) {
    const auto first = RunSchedule(seed);
    const auto second = RunSchedule(seed);
    ASSERT_EQ(first, second) << "seed " << seed;
  }
}

// Readers race a writer. Every pinned epoch's version tells exactly which
// prefix of the mutation script it must reflect — answers are compared
// against per-version references computed up front. Writers never block
// readers, so readers make progress throughout; run under
// KG_SANITIZE=thread to certify the epoch swap.
TEST(MvccTest, ConcurrentReadersAlwaysSeeAnExactPublishedVersion) {
  constexpr size_t kMutations = 24;
  constexpr size_t kReaders = 4;

  // Reference answers for every version 0..kMutations.
  const auto probes = ProbeQueries();
  std::vector<std::vector<QueryResult>> reference(kMutations + 1);
  {
    KnowledgeGraph oracle = BaseKg();
    for (size_t v = 0; v <= kMutations; ++v) {
      if (v > 0) ApplyToKg(&oracle, ScriptedMutation(v - 1));
      const serve::KgSnapshot snap = serve::KgSnapshot::Compile(oracle);
      const serve::QueryEngine engine(snap);
      for (const Query& q : probes) {
        reference[v].push_back(engine.ExecuteUncached(q));
      }
    }
  }

  auto opened = VersionedKgStore::Open(BaseKg());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& store = **opened;

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(900 + r);
      uint64_t last_version = 0;
      while (!writer_done.load(std::memory_order_acquire) ||
             reads.load(std::memory_order_relaxed) < 200) {
        const auto epoch = store.PinEpoch();
        if (epoch->version < last_version) {
          mismatches.fetch_add(1);  // versions must be monotone per reader
        }
        last_version = epoch->version;
        const size_t qi = rng.UniformIndex(probes.size());
        const QueryResult rows = store.ExecuteAt(*epoch, probes[qi]);
        if (rows != reference[epoch->version][qi]) mismatches.fetch_add(1);
        reads.fetch_add(1, std::memory_order_relaxed);
        if (reads.load(std::memory_order_relaxed) > 20000) break;
      }
    });
  }

  for (size_t i = 0; i < kMutations; ++i) {
    ASSERT_TRUE(store.Apply(ScriptedMutation(i)).ok());
  }
  writer_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(store.version(), kMutations);
  EXPECT_GE(reads.load(), 200u * 1);
}

// Full interleaving: writer, readers, and a background compactor all
// racing. With compactions in the version stream, per-version content
// references are no longer enumerable up front, so readers check the
// frozen-view invariant instead: a pinned epoch answers identically when
// asked twice. The final state must still equal the oracle.
TEST(MvccTest, WriterReadersAndCompactorRaceSafely) {
  constexpr size_t kMutations = 30;
  auto opened = VersionedKgStore::Open(BaseKg());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& store = **opened;
  const auto probes = ProbeQueries();

  std::atomic<bool> done{false};
  std::atomic<size_t> violations{0};
  ThreadPool compactor_pool(1);

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(7100 + r);
      while (!done.load(std::memory_order_acquire)) {
        const auto epoch = store.PinEpoch();
        const Query& q = probes[rng.UniformIndex(probes.size())];
        if (store.ExecuteAt(*epoch, q) != store.ExecuteAt(*epoch, q)) {
          violations.fetch_add(1);
        }
      }
    });
  }
  std::thread compactor([&] {
    while (!done.load(std::memory_order_acquire)) {
      store.CompactInBackground(compactor_pool);
      std::this_thread::yield();
    }
  });

  KnowledgeGraph oracle = BaseKg();
  for (size_t i = 0; i < kMutations; ++i) {
    ASSERT_TRUE(store.Apply(ScriptedMutation(i)).ok());
    ApplyToKg(&oracle, ScriptedMutation(i));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  compactor.join();
  compactor_pool.WaitIdle();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(store.AuthoritativeFingerprint(),
            graph::TripleSetFingerprint(oracle));
  // After one final fold, the base holds everything and still matches a
  // from-scratch batch build.
  const auto stats = store.Compact();
  ASSERT_TRUE(stats.ran);
  EXPECT_EQ(stats.base_fingerprint,
            serve::KgSnapshot::Compile(oracle).Fingerprint());
  const auto final_epoch = store.PinEpoch();
  const serve::QueryEngine engine_ref(*final_epoch->base);
  for (const Query& q : probes) {
    EXPECT_EQ(store.Execute(q), engine_ref.ExecuteUncached(q));
  }
}

}  // namespace
}  // namespace kg::store
