#include "synth/catalog_generator.h"

#include <gtest/gtest.h>

#include <set>

namespace kg::synth {
namespace {

CatalogOptions SmallOptions() {
  CatalogOptions opt;
  opt.num_types = 12;
  opt.num_products = 300;
  return opt;
}

TEST(CatalogTest, GeneratesRequestedShape) {
  Rng rng(1);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  EXPECT_EQ(catalog.products().size(), 300u);
  EXPECT_EQ(catalog.leaf_types().size(), 12u);
  EXPECT_FALSE(catalog.attributes().empty());
}

TEST(CatalogTest, TitleSpansMatchTokens) {
  Rng rng(2);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  for (const auto& product : catalog.products()) {
    for (const auto& [attr, span] : product.title_spans) {
      ASSERT_LE(span.end, product.title_tokens.size());
      // The span tokens joined equal the true value.
      std::string joined;
      for (size_t i = span.begin; i < span.end; ++i) {
        if (!joined.empty()) joined += " ";
        joined += product.title_tokens[i];
      }
      EXPECT_EQ(joined, product.true_values.at(attr));
    }
  }
}

TEST(CatalogTest, ApplicableAttributesHaveValues) {
  Rng rng(3);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  for (const auto& product : catalog.products()) {
    const auto& attrs = catalog.AttributesForType(product.type);
    EXPECT_FALSE(attrs.empty());
    for (const auto& attr : attrs) {
      EXPECT_TRUE(product.true_values.count(attr));
    }
  }
}

TEST(CatalogTest, CatalogEntriesAreNoisySubset) {
  CatalogOptions opt = SmallOptions();
  opt.catalog_missing_rate = 0.4;
  Rng rng(4);
  const auto catalog = ProductCatalog::Generate(opt, rng);
  size_t present = 0, total = 0, wrong = 0;
  for (const auto& product : catalog.products()) {
    total += product.true_values.size();
    for (const auto& [attr, value] : product.catalog_values) {
      ++present;
      if (product.true_values.at(attr) != value) ++wrong;
    }
  }
  const double missing =
      1.0 - static_cast<double>(present) / static_cast<double>(total);
  EXPECT_NEAR(missing, 0.4, 0.08);
  EXPECT_GT(wrong, 0u);  // Catalog noise exists (§3.2).
}

TEST(CatalogTest, ImageChannelPartiallyComplementsTitle) {
  Rng rng(5);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  size_t image_only = 0;
  for (const auto& product : catalog.products()) {
    for (const auto& [attr, value] : product.image_values) {
      if (!product.title_spans.count(attr)) ++image_only;
    }
  }
  EXPECT_GT(image_only, 0u);
}

TEST(CatalogTest, SiblingTypesShareMoreVocabularyThanStrangers) {
  CatalogOptions opt = SmallOptions();
  opt.num_types = 24;
  opt.num_products = 1500;
  Rng rng(6);
  const auto catalog = ProductCatalog::Generate(opt, rng);
  // Collect observed (type, attr) -> value sets from products.
  std::map<std::pair<graph::TypeId, std::string>, std::set<std::string>>
      vocab;
  for (const auto& product : catalog.products()) {
    for (const auto& [attr, value] : product.true_values) {
      vocab[{product.type, attr}].insert(value);
    }
  }
  auto overlap = [](const std::set<std::string>& a,
                    const std::set<std::string>& b) {
    if (a.empty() || b.empty()) return 0.0;
    size_t inter = 0;
    for (const auto& v : a) inter += b.count(v);
    return static_cast<double>(inter) / std::min(a.size(), b.size());
  };
  const auto& tax = catalog.taxonomy();
  double sibling_overlap = 0, stranger_overlap = 0;
  size_t sibling_n = 0, stranger_n = 0;
  const auto& leaves = catalog.leaf_types();
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      const bool siblings =
          tax.Parents(leaves[i])[0] == tax.Parents(leaves[j])[0];
      for (const auto& attr : catalog.AttributesForType(leaves[i])) {
        auto a = vocab.find({leaves[i], attr});
        auto b = vocab.find({leaves[j], attr});
        if (a == vocab.end() || b == vocab.end()) continue;
        const double o = overlap(a->second, b->second);
        if (siblings) {
          sibling_overlap += o;
          ++sibling_n;
        } else {
          stranger_overlap += o;
          ++stranger_n;
        }
      }
    }
  }
  ASSERT_GT(sibling_n, 0u);
  ASSERT_GT(stranger_n, 0u);
  EXPECT_GT(sibling_overlap / sibling_n, stranger_overlap / stranger_n);
}

TEST(CatalogTest, SomeTypesHaveAliases) {
  Rng rng(7);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  size_t with_alias = 0;
  for (graph::TypeId t : catalog.leaf_types()) {
    with_alias += !catalog.TypeAliases(t).empty();
  }
  EXPECT_GT(with_alias, 0u);
}

TEST(CatalogTest, TaxonomyIsTwoLevels) {
  Rng rng(8);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  for (graph::TypeId leaf : catalog.leaf_types()) {
    EXPECT_EQ(catalog.taxonomy().Depth(leaf), 2);
  }
}

TEST(CatalogTest, LocalesTransformSurfacesButKeepSpans) {
  CatalogOptions opt = SmallOptions();
  opt.num_locales = 4;
  Rng rng(9);
  const auto catalog = ProductCatalog::Generate(opt, rng);
  std::set<size_t> locales_seen;
  size_t localized_products = 0, surface_matches = 0;
  for (const auto& product : catalog.products()) {
    locales_seen.insert(product.locale);
    if (product.locale == 0) continue;
    ++localized_products;
    for (const auto& [attr, span] : product.title_spans) {
      // Localized surface differs from the canonical value…
      const std::string& surface = product.title_tokens[span.begin];
      if (surface == product.true_values.at(attr)) ++surface_matches;
      // …but starts with it (suffix transform keeps alignment).
      EXPECT_EQ(surface.rfind(product.true_values.at(attr), 0), 0u);
    }
  }
  EXPECT_EQ(locales_seen.size(), 4u);
  ASSERT_GT(localized_products, 50u);
  EXPECT_EQ(surface_matches, 0u);
}

TEST(CatalogTest, SingleLocaleIsIdentity) {
  Rng rng(10);
  const auto catalog = ProductCatalog::Generate(SmallOptions(), rng);
  for (const auto& product : catalog.products()) {
    EXPECT_EQ(product.locale, 0u);
  }
}

}  // namespace
}  // namespace kg::synth
