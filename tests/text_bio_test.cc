#include "text/bio.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::text {
namespace {

TEST(BioTest, SpansToBioBasic) {
  auto tags = SpansToBio({{1, 3, "flavor"}}, 4);
  ASSERT_TRUE(tags.ok());
  EXPECT_EQ(*tags, (std::vector<std::string>{"O", "B-flavor", "I-flavor",
                                             "O"}));
}

TEST(BioTest, SpansToBioRejectsOverlap) {
  EXPECT_FALSE(SpansToBio({{0, 2, "a"}, {1, 3, "b"}}, 4).ok());
}

TEST(BioTest, SpansToBioRejectsOutOfRange) {
  EXPECT_FALSE(SpansToBio({{2, 5, "a"}}, 4).ok());
  EXPECT_FALSE(SpansToBio({{2, 2, "a"}}, 4).ok());
}

TEST(BioTest, BioToSpansHandlesAdjacentSpans) {
  const auto spans =
      BioToSpans({"B-a", "I-a", "B-a", "O", "B-b"});
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0], (Span{0, 2, "a"}));
  EXPECT_EQ(spans[1], (Span{2, 3, "a"}));
  EXPECT_EQ(spans[2], (Span{4, 5, "b"}));
}

TEST(BioTest, BioToSpansToleratesOrphanI) {
  const auto spans = BioToSpans({"O", "I-x", "I-x", "O"});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{1, 3, "x"}));
}

TEST(BioTest, LabelChangeWithoutBOpensNewSpan) {
  const auto spans = BioToSpans({"B-a", "I-b"});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].label, "a");
  EXPECT_EQ(spans[1].label, "b");
}

TEST(BioTest, MalformedTagsTreatedAsO) {
  const auto spans = BioToSpans({"B-a", "garbage", "B"});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{0, 1, "a"}));
}

class BioRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BioRoundTripTest, RandomSpansSurviveRoundTrip) {
  Rng rng(GetParam());
  const size_t n = 1 + rng.UniformIndex(30);
  // Build random non-overlapping spans.
  std::vector<Span> spans;
  size_t pos = 0;
  while (pos + 1 < n) {
    if (rng.Bernoulli(0.4)) {
      const size_t len = 1 + rng.UniformIndex(3);
      const size_t end = std::min(n, pos + len);
      spans.push_back(
          {pos, end, std::string(1, static_cast<char>('a' + rng.UniformIndex(3)))});
      pos = end + 1;  // Gap prevents B/B adjacency ambiguity... none needed,
                      // but keeps spans sparse.
    } else {
      ++pos;
    }
  }
  auto tags = SpansToBio(spans, n);
  ASSERT_TRUE(tags.ok());
  EXPECT_EQ(BioToSpans(*tags), spans);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BioRoundTripTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(SpanScorerTest, ExactMatchScoring) {
  SpanScorer scorer;
  scorer.Add({{0, 2, "a"}, {3, 4, "b"}}, {{0, 2, "a"}, {5, 6, "b"}});
  const SpanScore s = scorer.Score();
  EXPECT_EQ(s.num_gold, 2u);
  EXPECT_EQ(s.num_predicted, 2u);
  EXPECT_EQ(s.num_correct, 1u);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(SpanScorerTest, EmptyCases) {
  SpanScorer scorer;
  scorer.Add({}, {});
  const SpanScore s = scorer.Score();
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

}  // namespace
}  // namespace kg::text
