#include "integrate/schema_alignment.h"

#include <gtest/gtest.h>

#include "core/conversions.h"
#include "synth/structured_source.h"

namespace kg::integrate {
namespace {

TEST(SchemaMappingTest, ApplyRewritesKeys) {
  SchemaMapping mapping;
  mapping.source_to_canonical = {{"movie_name", "title"},
                                 {"yr", "release_year"}};
  const Record rec = mapping.Apply(
      "src", "id1", {{"movie_name", "Harbor"}, {"yr", "1999"},
                     {"junk", "x"}});
  EXPECT_EQ(rec.Get("title"), "Harbor");
  EXPECT_EQ(rec.Get("release_year"), "1999");
  EXPECT_EQ(rec.attrs.size(), 2u);
  EXPECT_EQ(rec.source, "src");
}

TEST(InferMappingTest, RecoversDialectMappingFromInstances) {
  // Generate a movie source in dialect 1 and infer its mapping onto the
  // canonical schema using value overlap.
  synth::UniverseOptions uopt;
  uopt.num_people = 300;
  uopt.num_movies = 300;
  uopt.num_songs = 50;
  kg::Rng rng(1);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions dialect1, canonical;
  dialect1.schema_dialect = 1;
  dialect1.coverage = canonical.coverage = 0.8;
  const auto source = synth::EmitSource(universe, dialect1, rng);
  const auto reference = synth::EmitSource(universe, canonical, rng);

  std::vector<std::map<std::string, std::string>> source_sample,
      ref_sample;
  for (size_t i = 0; i < std::min<size_t>(150, source.records.size());
       ++i) {
    source_sample.push_back(source.records[i].fields);
  }
  for (size_t i = 0; i < std::min<size_t>(150, reference.records.size());
       ++i) {
    ref_sample.push_back(reference.records[i].fields);
  }
  const auto inferred =
      InferMapping(source.columns, source_sample,
                   synth::CanonicalColumns(source.domain), ref_sample);
  const auto gold = core::ManualMappingFor(source);
  // Automatic alignment works well on instance-rich columns (§5 notes it
  // is not production-trusted, but it is far from useless).
  EXPECT_GE(MappingAccuracy(inferred, gold), 0.75);
}

TEST(InferMappingTest, OneToOneAssignment) {
  const std::vector<std::string> source_cols = {"a", "b"};
  const std::vector<std::string> canon_cols = {"x"};
  std::vector<std::map<std::string, std::string>> sample = {
      {{"a", "1"}, {"b", "1"}}};
  std::vector<std::map<std::string, std::string>> ref = {{{"x", "1"}}};
  const auto mapping = InferMapping(source_cols, sample, canon_cols, ref);
  // Only one canonical column: at most one source column maps.
  EXPECT_LE(mapping.source_to_canonical.size(), 1u);
}

TEST(MappingAccuracyTest, CountsExactAgreements) {
  SchemaMapping gold, inferred;
  gold.source_to_canonical = {{"a", "x"}, {"b", "y"}};
  inferred.source_to_canonical = {{"a", "x"}, {"b", "z"}};
  EXPECT_DOUBLE_EQ(MappingAccuracy(inferred, gold), 0.5);
  EXPECT_DOUBLE_EQ(MappingAccuracy(inferred, SchemaMapping{}), 0.0);
}

}  // namespace
}  // namespace kg::integrate
