// Property harness for streaming ingest — the determinism contract the
// whole subsystem rests on. For seeded random (universe, crawl plan)
// worlds crossed with chaos rates {0, 10%, 25%}:
//   1. a drained pipeline's store fingerprint is bit-identical at 1, 2,
//      and 8 workers, and equals the serial OfflineRebuild oracle;
//   2. committed mutation counts equal the oracle's (zero lost upserts
//      — nothing inside the pipeline is ever dropped);
//   3. degradation reports are identical across worker counts;
//   4. a reader querying the live store *during* ingest (the TSan
//      target) only ever sees consistent epochs, and its final answers
//      equal a QueryEngine over the from-scratch rebuild.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "ingest/crawl.h"
#include "ingest/pipeline.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "synth/entity_universe.h"

namespace kg::ingest {
namespace {

using graph::KnowledgeGraph;
using graph::TripleSetFingerprint;
using serve::Query;
using store::StoreOptions;
using store::VersionedKgStore;

constexpr int kNumWorlds = 8;
const double kChaosRates[] = {0.0, 0.10, 0.25};
const size_t kWorkerCounts[] = {1, 2, 8};

struct World {
  synth::EntityUniverse universe;
  KnowledgeGraph base;
  CrawlPlan plan;
};

World MakeWorld(uint64_t seed) {
  synth::UniverseOptions uo;
  uo.num_people = 60;
  uo.num_movies = 30;
  uo.num_songs = 20;
  Rng rng(seed);
  World w{synth::EntityUniverse::Generate(uo, rng), {}, {}};
  w.base = w.universe.ToKnowledgeGraph();
  CrawlPlanOptions po;
  po.num_catalog_sources = 3;
  po.records_per_chunk = 8;
  po.num_websites = 2;
  po.pages_per_site = 8;
  w.plan = BuildCrawlPlan(w.universe, po, rng);
  return w;
}

/// A probe set spanning all four query classes.
std::vector<Query> ProbeQueries() {
  std::vector<Query> probes;
  for (uint32_t id = 0; id < 5; ++id) {
    const std::string person = synth::EntityUniverse::PersonNodeName(id);
    probes.push_back(Query::PointLookup(person, "name"));
    probes.push_back(Query::Neighborhood(person));
  }
  probes.push_back(Query::AttributeByType("Movie", "release_year"));
  probes.push_back(Query::AttributeByType("Person", "nationality"));
  probes.push_back(
      Query::TopKRelated(synth::EntityUniverse::PersonNodeName(0), 5));
  return probes;
}

TEST(IngestPropertyTest, WorkerCountInvarianceUnderChaos) {
  for (int world_i = 0; world_i < kNumWorlds; ++world_i) {
    const uint64_t seed = 1000 + world_i;
    const World w = MakeWorld(seed);
    const SurfaceLinker linker(w.base);

    for (double rate : kChaosRates) {
      IngestOptions base_options;
      base_options.seed = seed;
      if (rate > 0.0) {
        base_options.faults = FaultPlan::Uniform(seed, rate);
      }

      // Serial oracle under the identical chaos plan.
      UnitContext ctx;
      FaultInjector injector(base_options.faults);
      if (base_options.faults.active()) ctx.faults = &injector;
      ctx.retry = base_options.retry;
      ctx.seed = base_options.seed;
      DegradationReport oracle_degradation;
      uint64_t oracle_mutations = 0;
      const KnowledgeGraph rebuilt =
          OfflineRebuild(w.plan, w.base, linker, ctx, &oracle_degradation,
                         &oracle_mutations);
      const uint64_t oracle_fp = TripleSetFingerprint(rebuilt);

      for (size_t workers : kWorkerCounts) {
        auto store = VersionedKgStore::Open(w.base, StoreOptions{});
        ASSERT_TRUE(store.ok());
        IngestOptions options = base_options;
        options.num_workers = workers;
        options.queue_capacity = 8;
        options.commit_unit_batch = 3;
        IngestPipeline pipeline(**store, linker, w.plan, options);
        const IngestReport report = pipeline.RunAll();

        SCOPED_TRACE("world " + std::to_string(seed) + " chaos " +
                     std::to_string(rate) + " workers " +
                     std::to_string(workers));
        EXPECT_EQ(report.units_processed, w.plan.num_units());
        EXPECT_EQ(report.mutations_committed, oracle_mutations)
            << "zero lost upserts";
        EXPECT_EQ((*store)->applied_mutations(), oracle_mutations);
        EXPECT_EQ((*store)->AuthoritativeFingerprint(), oracle_fp)
            << "store content must be a pure function of (plan, seed)";
        ASSERT_EQ(report.degradation.sources.size(),
                  oracle_degradation.sources.size());
        for (size_t i = 0; i < oracle_degradation.sources.size(); ++i) {
          EXPECT_EQ(report.degradation.sources[i].source,
                    oracle_degradation.sources[i].source);
          EXPECT_EQ(report.degradation.sources[i].records_dropped,
                    oracle_degradation.sources[i].records_dropped);
        }
      }
    }
  }
}

TEST(IngestPropertyTest, ConcurrentReaderSeesConsistentEpochs) {
  // Readers hammer the live store across all four query classes while
  // the pipeline ingests under chaos. Every answer must come from a
  // consistent epoch (this is the suite TSan runs), and once drained the
  // store must answer exactly like an engine over the offline rebuild.
  for (uint64_t seed : {uint64_t{42}, uint64_t{43}}) {
    const World w = MakeWorld(seed);
    const SurfaceLinker linker(w.base);
    const std::vector<Query> probes = ProbeQueries();

    StoreOptions store_options;
    store_options.cache_capacity = 256;
    auto store = VersionedKgStore::Open(w.base, store_options);
    ASSERT_TRUE(store.ok());

    IngestOptions options;
    options.num_workers = 4;
    options.queue_capacity = 4;
    options.seed = seed;
    options.faults = FaultPlan::Uniform(seed, 0.10);
    IngestPipeline pipeline(**store, linker, w.plan, options);

    std::atomic<bool> stop{false};
    std::atomic<size_t> reads{0};
    std::thread reader([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Execute (cached, current epoch) and ExecuteAt (pinned) must
        // agree within one pinned epoch.
        const Query& q = probes[i++ % probes.size()];
        auto epoch = (*store)->PinEpoch();
        const auto pinned = (*store)->ExecuteAt(*epoch, q);
        (void)pinned;
        (void)(*store)->Execute(q);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });

    const IngestReport report = pipeline.RunAll();
    stop.store(true, std::memory_order_release);
    reader.join();
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(report.units_processed, w.plan.num_units());

    // Post-drain answers match a from-scratch rebuild exactly.
    UnitContext ctx;
    FaultInjector injector(options.faults);
    ctx.faults = &injector;
    ctx.retry = options.retry;
    ctx.seed = options.seed;
    const KnowledgeGraph rebuilt =
        OfflineRebuild(w.plan, w.base, linker, ctx);
    const serve::KgSnapshot snapshot = serve::KgSnapshot::Compile(rebuilt);
    const serve::QueryEngine engine(snapshot);
    for (const Query& q : probes) {
      EXPECT_EQ((*store)->Execute(q), engine.Execute(q));
    }
  }
}

}  // namespace
}  // namespace kg::ingest
