#include "core/knowledge_cleaning.h"

#include <gtest/gtest.h>

#include <set>

#include "synth/entity_universe.h"

namespace kg::core {
namespace {

using graph::NodeKind;

class CleaningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tax = ontology_.taxonomy();
    person_ = tax.AddType("Person", tax.root());
    movie_ = tax.AddType("Movie", tax.root());
    ontology_.DeclareRelation({"directed_by", movie_,
                               graph::RangeKind::kEntity, person_, true});
    ontology_.DeclareRelation({"genre", movie_, graph::RangeKind::kText,
                               0, true});
  }

  graph::NodeId AddMovie(const std::string& name) {
    const auto node = kg_.AddNode(name, NodeKind::kEntity);
    ontology_.SetInstanceType(node, movie_);
    return node;
  }

  graph::NodeId AddPerson(const std::string& name) {
    const auto node = kg_.AddNode(name, NodeKind::kEntity);
    ontology_.SetInstanceType(node, person_);
    return node;
  }

  graph::KnowledgeGraph kg_;
  graph::Ontology ontology_;
  graph::TypeId person_ = 0, movie_ = 0;
};

TEST_F(CleaningTest, FlagsSchemaViolations) {
  AddMovie("m1");
  AddPerson("p1");
  kg_.AddTriple("m1", "directed_by", "p1", NodeKind::kEntity,
                NodeKind::kEntity, {"s", 0.9, 0});
  // Range violation: directed_by pointing at a text node.
  kg_.AddTriple("m2", "directed_by", "1999", NodeKind::kEntity,
                NodeKind::kText, {"s", 0.9, 0});
  ontology_.SetInstanceType(*kg_.FindNode("m2", NodeKind::kEntity),
                            movie_);
  Rng rng(1);
  const auto report =
      CleanKnowledgeGraph(kg_, ontology_, {}, rng, /*remove=*/true);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].reason,
            CleaningReason::kSchemaViolation);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_EQ(kg_.num_triples(), 1u);
}

TEST_F(CleaningTest, FunctionalConflictKeepsBestConfidence) {
  AddMovie("m1");
  kg_.AddTriple("m1", "genre", "drama", NodeKind::kEntity,
                NodeKind::kText, {"good-source", 0.95, 0});
  kg_.AddTriple("m1", "genre", "western", NodeKind::kEntity,
                NodeKind::kText, {"sketchy-source", 0.4, 0});
  Rng rng(2);
  const auto report =
      CleanKnowledgeGraph(kg_, ontology_, {}, rng, /*remove=*/true);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].reason,
            CleaningReason::kFunctionalConflict);
  // The surviving value is the high-confidence one.
  const auto m1 = *kg_.FindNode("m1", NodeKind::kEntity);
  const auto genre = *kg_.FindPredicate("genre");
  const auto objects = kg_.Objects(m1, genre);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(kg_.NodeName(objects[0]), "drama");
}

TEST_F(CleaningTest, UndeclaredPredicatesAreNotFlagged) {
  AddMovie("m1");
  kg_.AddTriple("m1", "mystery_attr", "anything", NodeKind::kEntity,
                NodeKind::kText, {"s", 0.5, 0});
  Rng rng(3);
  const auto report = CleanKnowledgeGraph(kg_, ontology_, {}, rng);
  EXPECT_TRUE(report.findings.empty());
}

TEST_F(CleaningTest, PraFlagsImplausibleEdges) {
  // Structured universe: PRA screening should rank corrupted directed_by
  // edges below real ones.
  // Directors must direct several movies each for path features (same
  // genre / same troupe) to carry signal.
  kg::synth::UniverseOptions uopt;
  uopt.num_people = 80;
  uopt.num_movies = 600;
  uopt.num_songs = 20;
  Rng rng(4);
  const auto universe = kg::synth::EntityUniverse::Generate(uopt, rng);
  auto kg = universe.ToKnowledgeGraph();
  // Corrupt 30 directed_by edges.
  const auto directed = *kg.FindPredicate("directed_by");
  auto triples = kg.TriplesWithPredicate(directed);
  std::set<std::string> corrupted_subjects;
  for (size_t i = 0; i < 30; ++i) {
    const auto& t = kg.triple(triples[i * 7]);
    corrupted_subjects.insert(kg.NodeName(t.subject));
    const auto wrong_person = kg.triple(triples[(i * 7 + 200) %
                                                triples.size()]).object;
    kg.RemoveTriple(triples[i * 7]);
    kg.AddTriple(t.subject, directed, wrong_person, {"vandal", 0.5, 0});
  }
  graph::Ontology empty_ontology;
  CleaningOptions options;
  options.check_schema = false;
  options.check_functional = false;
  options.pra_predicates = {"directed_by"};
  // Leave-one-out PRA scores are calibrated enough for an absolute
  // threshold here (corrupted edges average ~0.3, legitimate ~0.65).
  options.pra_threshold = 0.4;
  options.pra_alternatives = 0;
  Rng clean_rng(5);
  const auto report =
      CleanKnowledgeGraph(kg, empty_ontology, options, clean_rng);
  ASSERT_GT(report.findings.size(), 5u);
  // The flags are a screening signal, not a verdict (§5: incorporated
  // into cleaning, not trusted to assert): require strong enrichment
  // over the 30/600 = 5% corruption base rate and decent recall.
  size_t flagged_corrupted = 0;
  for (const auto& f : report.findings) {
    EXPECT_EQ(f.reason, CleaningReason::kLinkPredictionOutlier);
    flagged_corrupted += corrupted_subjects.count(
        kg.NodeName(kg.triple(f.triple).subject));
  }
  const double precision =
      static_cast<double>(flagged_corrupted) / report.findings.size();
  EXPECT_GT(precision, 0.125);         // >2.5x the base rate.
  EXPECT_GE(flagged_corrupted, 15u);   // >=50% of corruptions caught.
}

}  // namespace
}  // namespace kg::core
