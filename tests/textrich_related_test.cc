#include "textrich/related_products.h"

#include <gtest/gtest.h>

namespace kg::textrich {
namespace {

struct World {
  synth::ProductCatalog catalog;
  synth::BehaviorLog log;
};

World MakeWorld(uint64_t seed) {
  kg::Rng rng(seed);
  synth::CatalogOptions copt;
  copt.num_types = 16;
  copt.num_products = 400;
  World world{synth::ProductCatalog::Generate(copt, rng), {}};
  synth::BehaviorOptions bopt;
  bopt.num_co_views = 20000;
  bopt.num_co_purchases = 10000;
  bopt.co_view_same_category = 0.9;
  world.log = synth::GenerateBehavior(world.catalog, bopt, rng);
  return world;
}

TEST(RelatedProductsTest, MinesBothKinds) {
  const World world = MakeWorld(1);
  const auto pairs = MineRelatedProducts(world.log, {});
  const auto score = ScoreRelatedProducts(world.catalog, pairs);
  EXPECT_GT(score.substitutes, 20u);
  EXPECT_GT(score.complements, 5u);
}

TEST(RelatedProductsTest, SubstitutesStayInCategory) {
  const World world = MakeWorld(2);
  const auto pairs = MineRelatedProducts(world.log, {});
  const auto score = ScoreRelatedProducts(world.catalog, pairs);
  // Co-views are 90% same-category by construction; mined substitutes
  // should reflect that strongly.
  EXPECT_GT(score.substitute_same_category_rate, 0.8);
}

TEST(RelatedProductsTest, ComplementsSkewCrossCategory) {
  const World world = MakeWorld(3);
  const auto pairs = MineRelatedProducts(world.log, {});
  const auto score = ScoreRelatedProducts(world.catalog, pairs);
  EXPECT_GT(score.complement_cross_category_rate, 0.5);
}

TEST(RelatedProductsTest, MinSupportFilters) {
  synth::BehaviorLog tiny;
  tiny.co_views = {{1, 2}, {1, 2}};  // Support 2 < default 3.
  EXPECT_TRUE(MineRelatedProducts(tiny, {}).empty());
  RelatedProductsOptions loose;
  loose.min_support = 2;
  EXPECT_EQ(MineRelatedProducts(tiny, loose).size(), 1u);
}

TEST(RelatedProductsTest, SelfPairsIgnored) {
  synth::BehaviorLog log;
  for (int i = 0; i < 10; ++i) log.co_views.push_back({5, 5});
  EXPECT_TRUE(MineRelatedProducts(log, {}).empty());
}

}  // namespace
}  // namespace kg::textrich
