#include <gtest/gtest.h>

#include "dual/answerers.h"
#include "dual/llm_sim.h"
#include "dual/qa_eval.h"
#include "synth/entity_universe.h"
#include "synth/qa_generator.h"

namespace kg::dual {
namespace {

struct World {
  synth::EntityUniverse universe;
  std::vector<synth::FactMention> corpus;
  std::vector<synth::QaItem> questions;
};

World MakeWorld(uint64_t seed) {
  synth::UniverseOptions uopt;
  uopt.num_people = 1500;
  uopt.num_movies = 900;
  uopt.num_songs = 100;
  Rng rng(seed);
  World world{synth::EntityUniverse::Generate(uopt, rng), {}, {}};
  synth::CorpusOptions copt;
  world.corpus = GenerateFactCorpus(world.universe, copt, rng);
  synth::QaOptions qopt;
  qopt.num_questions = 1800;
  world.questions = GenerateQaWorkload(world.universe, qopt, rng);
  return world;
}

TEST(LlmSimTest, AccuracyDecreasesFromHeadToTail) {
  const World world = MakeWorld(1);
  LlmSim llm;
  llm.Train(world.corpus);
  LlmAnswerer answerer(llm);
  Rng rng(2);
  const auto eval = EvaluateAnswerer(answerer, world.questions, rng);
  const auto& head = eval.by_bucket.at(synth::PopularityBucket::kHead);
  const auto& tail = eval.by_bucket.at(synth::PopularityBucket::kTail);
  EXPECT_GT(head.accuracy, tail.accuracy + 0.1);
  // The §4 study's shape: substantial abstention and non-trivial
  // hallucination overall.
  EXPECT_GT(eval.overall.abstention_rate, 0.2);
  EXPECT_GT(eval.overall.hallucination_rate, 0.05);
}

TEST(LlmSimTest, ConfidenceTracksMentionCounts) {
  LlmSim llm;
  llm.Train({{"Popular Movie", "genre", "drama", 500, false},
             {"Obscure Movie", "genre", "western", 1, false}});
  EXPECT_GT(llm.Confidence("Popular Movie", "genre"),
            llm.Confidence("Obscure Movie", "genre"));
  EXPECT_GT(llm.Confidence("Unknown Movie", "genre"), 0.0);
}

TEST(LlmSimTest, HighCountFactsRecalledReliably) {
  LlmSim llm;
  llm.Train({{"Popular Movie", "genre", "drama", 1000, false}});
  Rng rng(3);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const auto a = llm.Query("Popular Movie", "genre", rng);
    correct += a.kind == AnswerKind::kCorrect && a.text == "drama";
  }
  EXPECT_GT(correct, 180);
}

TEST(LlmSimTest, UnknownFactsHallucinateTypeConsistently) {
  LlmSim llm;
  llm.Train({{"Some Movie", "genre", "drama", 100, false},
             {"Other Movie", "genre", "comedy", 100, false}});
  Rng rng(4);
  int hallucinated = 0, abstained = 0;
  for (int i = 0; i < 300; ++i) {
    const auto a = llm.Query("Never Seen", "genre", rng);
    if (a.kind == AnswerKind::kHallucinated) {
      ++hallucinated;
      // Type-consistent: a genre from the corpus, not gibberish.
      EXPECT_TRUE(a.text == "drama" || a.text == "comedy");
    } else {
      EXPECT_EQ(a.kind, AnswerKind::kAbstained);
      ++abstained;
    }
  }
  EXPECT_GT(hallucinated, 10);
  EXPECT_GT(abstained, 150);
}

TEST(LlmSimTest, InfusionLiftsRecall) {
  const World world = MakeWorld(5);
  LlmSim base, infused;
  base.Train(world.corpus);
  infused.Train(world.corpus);
  // Infuse gold facts for every question subject (head-knowledge
  // infusion, §4).
  std::vector<synth::FactMention> facts;
  for (const auto& q : world.questions) {
    facts.push_back({q.subject_name, q.predicate, q.gold_object, 1,
                     q.recent});
  }
  infused.Infuse(facts, 50.0);
  LlmAnswerer base_answerer(base), infused_answerer(infused);
  Rng r1(6), r2(6);
  const auto base_eval =
      EvaluateAnswerer(base_answerer, world.questions, r1);
  const auto infused_eval =
      EvaluateAnswerer(infused_answerer, world.questions, r2);
  EXPECT_GT(infused_eval.overall.accuracy,
            base_eval.overall.accuracy + 0.2);
}

TEST(LlmSimTest, RagContextOverridesParametricMemory) {
  LlmSim llm;
  llm.Train({{"The Movie", "genre", "wrong-memory", 1000, false}});
  Rng rng(7);
  const auto answer = llm.QueryWithContext(
      "The Movie", "genre", {{"The Movie", "genre", "drama", 1, false}},
      rng);
  EXPECT_EQ(answer.text, "drama");
}

TEST(KgAnswererTest, AnswersFromTriplesAndResolvesEntities) {
  const World world = MakeWorld(8);
  const auto kg = world.universe.ToKnowledgeGraph();
  KgAnswerer answerer(kg);
  Rng rng(9);
  const auto eval = EvaluateAnswerer(answerer, world.questions, rng);
  // The ground-truth KG answers nearly everything correctly; residual
  // errors come from shared names (ambiguous resolution).
  EXPECT_GT(eval.overall.accuracy, 0.9);
  EXPECT_LT(eval.overall.abstention_rate, 0.05);
}

TEST(DualAnswererTest, DominatesBothPureStrategies) {
  const World world = MakeWorld(10);
  // A realistic constructed KG: drop 30% of movies (coverage gaps).
  graph::KnowledgeGraph partial;
  const auto full = world.universe.ToKnowledgeGraph();
  for (graph::TripleId t : full.AllTriples()) {
    const auto& triple = full.triple(t);
    // Hash-drop 30% of subjects.
    if (std::hash<graph::NodeId>()(triple.subject) % 10 < 3) continue;
    partial.AddTriple(full.NodeName(triple.subject),
                      full.PredicateName(triple.predicate),
                      full.NodeName(triple.object),
                      full.GetNodeKind(triple.subject),
                      full.GetNodeKind(triple.object), {"copy", 1.0, 0});
  }
  LlmSim llm;
  llm.Train(world.corpus);
  KgAnswerer kg_answerer(partial);
  LlmAnswerer llm_answerer(llm);
  DualAnswerer dual_answerer(partial, llm);
  Rng r1(11), r2(11), r3(11);
  const auto kg_eval =
      EvaluateAnswerer(kg_answerer, world.questions, r1);
  const auto llm_eval =
      EvaluateAnswerer(llm_answerer, world.questions, r2);
  const auto dual_eval =
      EvaluateAnswerer(dual_answerer, world.questions, r3);
  EXPECT_GT(dual_eval.overall.accuracy, kg_eval.overall.accuracy);
  EXPECT_GT(dual_eval.overall.accuracy, llm_eval.overall.accuracy);
  // The dual router hallucinated less than the pure LLM.
  EXPECT_LT(dual_eval.overall.hallucination_rate,
            llm_eval.overall.hallucination_rate);
}

TEST(DualAnswererTest, RecentFactsNeedTheKg) {
  const World world = MakeWorld(12);
  const auto kg = world.universe.ToKnowledgeGraph();
  LlmSim llm;
  llm.Train(world.corpus);  // corpus excludes recent facts.
  LlmAnswerer llm_answerer(llm);
  DualAnswerer dual_answerer(kg, llm);
  Rng r1(13), r2(13);
  const auto llm_eval =
      EvaluateAnswerer(llm_answerer, world.questions, r1);
  const auto dual_eval =
      EvaluateAnswerer(dual_answerer, world.questions, r2);
  if (llm_eval.recent.n > 5) {
    // The LLM simulator never saw post-cutoff facts.
    EXPECT_LT(llm_eval.recent.accuracy, 0.2);
    EXPECT_GT(dual_eval.recent.accuracy, 0.8);
  }
}

}  // namespace
}  // namespace kg::dual
