// VersionedKgStore unit suite: overlay reads vs a from-scratch rebuild,
// upsert/retract/resurrect semantics, WAL crash recovery (bit-identical
// state), compaction folding + fingerprint equality with a batch build,
// targeted cache invalidation, and thread-count-invariant BatchExecute.

#include "store/versioned_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/thread_pool.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/wal.h"

namespace kg::store {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using serve::Query;
using serve::QueryResult;

const Provenance kProv{"store_test", 1.0, 1};

KnowledgeGraph BaseKg() {
  KnowledgeGraph kg;
  kg.AddTriple("alice", "knows", "bob", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("alice", "knows", "carol", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("bob", "knows", "carol", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("alice", "type", "Person", NodeKind::kEntity,
               NodeKind::kClass, kProv);
  kg.AddTriple("bob", "type", "Person", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("carol", "type", "Person", NodeKind::kEntity,
               NodeKind::kClass, kProv);
  kg.AddTriple("alice", "name", "Alice A.", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("bob", "name", "Bob B.", NodeKind::kEntity, NodeKind::kText,
               kProv);
  return kg;
}

/// Applies `m` to a raw KG exactly as the store's writer does — the
/// rebuild oracle all overlay answers are checked against.
void ApplyToKg(KnowledgeGraph* kg, const Mutation& m) {
  if (m.op == MutationOp::kUpsert) {
    kg->AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                  m.object_kind, m.prov);
    return;
  }
  const auto s = kg->FindNode(m.subject, m.subject_kind);
  const auto p = kg->FindPredicate(m.predicate);
  const auto o = kg->FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;
  const graph::TripleId id = kg->FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg->RemoveTriple(id);
}

std::vector<Query> ProbeQueries() {
  return {
      Query::PointLookup("alice", "knows"),
      Query::PointLookup("alice", "name"),
      Query::PointLookup("dana", "knows"),
      Query::Neighborhood("alice"),
      Query::Neighborhood("carol"),
      Query::Neighborhood("dana"),
      Query::AttributeByType("Person", "name"),
      Query::AttributeByType("Person", "knows"),
      Query::TopKRelated("alice", 5),
      Query::TopKRelated("carol", 3),
  };
}

/// Asserts every probe answer from `store` equals a fresh QueryEngine
/// over a from-scratch compile of `expected_kg`.
void ExpectMatchesRebuild(const VersionedKgStore& store,
                          const KnowledgeGraph& expected_kg,
                          const std::string& context) {
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(expected_kg);
  const serve::QueryEngine engine(snap);
  for (const Query& q : ProbeQueries()) {
    ASSERT_EQ(store.Execute(q), engine.ExecuteUncached(q))
        << context << ", query " << q.CacheKey();
  }
}

std::unique_ptr<VersionedKgStore> MustOpen(KnowledgeGraph base,
                                           StoreOptions options = {}) {
  auto store = VersionedKgStore::Open(std::move(base), std::move(options));
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(*store);
}

struct TempWalPath {
  std::string path;
  explicit TempWalPath(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("kg_store_vs_test_" + tag + ".wal"))
               .string();
    std::filesystem::remove(path);
  }
  ~TempWalPath() { std::filesystem::remove(path); }
};

TEST(VersionedStoreTest, FreshStoreServesTheBaseSnapshot) {
  auto store = MustOpen(BaseKg());
  EXPECT_EQ(store->version(), 0u);
  EXPECT_EQ(store->delta_size(), 0u);
  EXPECT_EQ(store->applied_mutations(), 0u);
  ExpectMatchesRebuild(*store, BaseKg(), "fresh");
}

TEST(VersionedStoreTest, UpsertsAndRetractsMatchRebuildAtEveryStep) {
  auto store = MustOpen(BaseKg());
  KnowledgeGraph oracle = BaseKg();
  const std::vector<Mutation> script = {
      // New edge from an existing node to a brand-new node.
      Mutation::Upsert("alice", "knows", "dana", NodeKind::kEntity,
                       NodeKind::kEntity, kProv),
      // Entirely new subject, new predicate.
      Mutation::Upsert("dana", "manages", "bob", NodeKind::kEntity,
                       NodeKind::kEntity, kProv),
      // Retract a base triple.
      Mutation::Retract("alice", "knows", "bob", NodeKind::kEntity,
                        NodeKind::kEntity),
      // Retract an overlay triple applied above.
      Mutation::Retract("dana", "manages", "bob", NodeKind::kEntity,
                        NodeKind::kEntity),
      // Resurrect the retracted base triple.
      Mutation::Upsert("alice", "knows", "bob", NodeKind::kEntity,
                       NodeKind::kEntity, Provenance{"resurrect", 0.5, 9}),
      // Upsert of a triple the base already has (provenance append).
      Mutation::Upsert("bob", "knows", "carol", NodeKind::kEntity,
                       NodeKind::kEntity, Provenance{"second_source", 0.9, 7}),
      // Retract something that never existed: a no-op.
      Mutation::Retract("ghost", "haunts", "nobody", NodeKind::kEntity,
                        NodeKind::kEntity),
      // New class member, then give it the attribute queried by probes.
      Mutation::Upsert("dana", "type", "Person", NodeKind::kEntity,
                       NodeKind::kClass, kProv),
      Mutation::Upsert("dana", "name", "Dana D.", NodeKind::kEntity,
                       NodeKind::kText, kProv),
  };
  uint64_t version = store->version();
  for (size_t i = 0; i < script.size(); ++i) {
    ASSERT_TRUE(store->Apply(script[i]).ok());
    ApplyToKg(&oracle, script[i]);
    EXPECT_EQ(store->version(), ++version);
    ExpectMatchesRebuild(*store, oracle, "after mutation " +
                                             std::to_string(i));
    EXPECT_EQ(store->AuthoritativeFingerprint(),
              graph::TripleSetFingerprint(oracle));
  }
  EXPECT_EQ(store->applied_mutations(), script.size());
}

TEST(VersionedStoreTest, ApplyBatchIsOneVersionBump) {
  auto store = MustOpen(BaseKg());
  KnowledgeGraph oracle = BaseKg();
  std::vector<Mutation> batch = {
      Mutation::Upsert("eve", "knows", "alice", NodeKind::kEntity,
                       NodeKind::kEntity, kProv),
      Mutation::Retract("bob", "knows", "carol", NodeKind::kEntity,
                        NodeKind::kEntity),
  };
  ASSERT_TRUE(store->ApplyBatch(batch).ok());
  for (const Mutation& m : batch) ApplyToKg(&oracle, m);
  EXPECT_EQ(store->version(), 1u);
  EXPECT_EQ(store->applied_mutations(), 2u);
  ExpectMatchesRebuild(*store, oracle, "after batch");
  ASSERT_TRUE(store->ApplyBatch({}).ok());  // empty batch: no-op, no bump
  EXPECT_EQ(store->version(), 1u);
}

TEST(VersionedStoreTest, WalRecoveryIsBitIdentical) {
  TempWalPath wal("recovery");
  StoreOptions options;
  options.wal_path = wal.path;
  KnowledgeGraph oracle = BaseKg();
  uint64_t fingerprint = 0;
  {
    auto store = MustOpen(BaseKg(), options);
    const std::vector<Mutation> script = {
        Mutation::Upsert("alice", "knows", "dana", NodeKind::kEntity,
                         NodeKind::kEntity, kProv),
        Mutation::Retract("alice", "knows", "bob", NodeKind::kEntity,
                          NodeKind::kEntity),
        Mutation::Upsert("tab\there", "p", "line\nbreak", NodeKind::kText,
                         NodeKind::kText, Provenance{"\\src", 0.25, -5}),
    };
    for (const Mutation& m : script) {
      ASSERT_TRUE(store->Apply(m).ok());
      ApplyToKg(&oracle, m);
    }
    fingerprint = store->AuthoritativeFingerprint();
    // Store destroyed here: simulates a clean shutdown with no
    // compaction — every mutation lives only in the WAL.
  }
  auto reopened = MustOpen(BaseKg(), options);
  EXPECT_EQ(reopened->applied_mutations(), 3u);
  EXPECT_EQ(reopened->AuthoritativeFingerprint(), fingerprint);
  // Replayed state is already folded into the epoch base (delta empty).
  EXPECT_EQ(reopened->delta_size(), 0u);
  ExpectMatchesRebuild(*reopened, oracle, "reopened");
}

TEST(VersionedStoreTest, WalRecoverySurvivesTornTail) {
  TempWalPath wal("torn");
  StoreOptions options;
  options.wal_path = wal.path;
  KnowledgeGraph oracle = BaseKg();
  {
    auto store = MustOpen(BaseKg(), options);
    const Mutation m = Mutation::Upsert("alice", "knows", "dana",
                                        NodeKind::kEntity,
                                        NodeKind::kEntity, kProv);
    ASSERT_TRUE(store->Apply(m).ok());
    ApplyToKg(&oracle, m);
  }
  {  // Crash mid-append: garbage after the last complete record.
    std::ofstream out(wal.path, std::ios::binary | std::ios::app);
    out.write("\x13\x00\x00\x00torn", 8);
  }
  auto reopened = MustOpen(BaseKg(), options);
  EXPECT_EQ(reopened->applied_mutations(), 1u);
  ExpectMatchesRebuild(*reopened, oracle, "post-torn-tail");
  // And the store keeps accepting writes afterwards.
  const Mutation more = Mutation::Upsert("dana", "knows", "bob",
                                         NodeKind::kEntity,
                                         NodeKind::kEntity, kProv);
  ASSERT_TRUE(reopened->Apply(more).ok());
  ApplyToKg(&oracle, more);
  ExpectMatchesRebuild(*reopened, oracle, "post-recovery append");
}

TEST(VersionedStoreTest, CompactionFoldsOverlayAndMatchesBatchBuild) {
  auto store = MustOpen(BaseKg());
  KnowledgeGraph oracle = BaseKg();
  const std::vector<Mutation> script = {
      Mutation::Upsert("alice", "knows", "dana", NodeKind::kEntity,
                       NodeKind::kEntity, kProv),
      Mutation::Retract("bob", "knows", "carol", NodeKind::kEntity,
                        NodeKind::kEntity),
      Mutation::Upsert("dana", "type", "Person", NodeKind::kEntity,
                       NodeKind::kClass, kProv),
  };
  for (const Mutation& m : script) {
    ASSERT_TRUE(store->Apply(m).ok());
    ApplyToKg(&oracle, m);
  }
  EXPECT_EQ(store->delta_size(), 3u);
  const uint64_t version_before = store->version();

  const auto stats = store->Compact();
  ASSERT_TRUE(stats.ran);
  EXPECT_EQ(stats.folded, 3u);
  EXPECT_EQ(stats.version, version_before + 1);
  EXPECT_EQ(store->version(), version_before + 1);
  EXPECT_EQ(store->delta_size(), 0u);
  // The compacted base is bit-identical to compiling a from-scratch
  // batch build of the same knowledge.
  EXPECT_EQ(stats.base_fingerprint,
            serve::KgSnapshot::Compile(oracle).Fingerprint());
  ExpectMatchesRebuild(*store, oracle, "post-compaction");

  // Idempotent on an empty overlay.
  const auto again = store->Compact();
  ASSERT_TRUE(again.ran);
  EXPECT_EQ(again.folded, 0u);
  EXPECT_EQ(again.base_fingerprint, stats.base_fingerprint);
}

TEST(VersionedStoreTest, WritesDuringAndAfterCompactionStayCorrect) {
  auto store = MustOpen(BaseKg());
  KnowledgeGraph oracle = BaseKg();
  auto apply = [&](const Mutation& m) {
    ASSERT_TRUE(store->Apply(m).ok());
    ApplyToKg(&oracle, m);
  };
  apply(Mutation::Upsert("alice", "knows", "dana", NodeKind::kEntity,
                         NodeKind::kEntity, kProv));
  ASSERT_TRUE(store->Compact().ran);
  // Mutations after the fold: retract a compacted triple, retract a base
  // triple, add a new one.
  apply(Mutation::Retract("alice", "knows", "dana", NodeKind::kEntity,
                          NodeKind::kEntity));
  apply(Mutation::Retract("alice", "knows", "bob", NodeKind::kEntity,
                          NodeKind::kEntity));
  apply(Mutation::Upsert("eve", "knows", "alice", NodeKind::kEntity,
                         NodeKind::kEntity, kProv));
  ExpectMatchesRebuild(*store, oracle, "writes after compaction");
  const auto stats = store->Compact();
  ASSERT_TRUE(stats.ran);
  EXPECT_EQ(stats.base_fingerprint,
            serve::KgSnapshot::Compile(oracle).Fingerprint());
  ExpectMatchesRebuild(*store, oracle, "second compaction");
}

TEST(VersionedStoreTest, BackgroundCompactionOnThreadPool) {
  auto store = MustOpen(BaseKg());
  KnowledgeGraph oracle = BaseKg();
  const Mutation m = Mutation::Upsert("alice", "knows", "dana",
                                      NodeKind::kEntity, NodeKind::kEntity,
                                      kProv);
  ASSERT_TRUE(store->Apply(m).ok());
  ApplyToKg(&oracle, m);
  ThreadPool pool(2);
  ASSERT_TRUE(store->CompactInBackground(pool));
  pool.WaitIdle();
  EXPECT_FALSE(store->compaction_in_flight());
  EXPECT_EQ(store->delta_size(), 0u);
  ExpectMatchesRebuild(*store, oracle, "background compaction");
}

TEST(VersionedStoreTest, CacheHitsAreInvalidatedByAffectingWrites) {
  StoreOptions options;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  auto store = MustOpen(BaseKg(), options);
  ASSERT_NE(store->cache(), nullptr);

  const Query affected = Query::PointLookup("alice", "knows");
  const Query bystander = Query::Neighborhood("carol");
  const QueryResult first = store->Execute(affected);
  const QueryResult second = store->Execute(affected);
  EXPECT_EQ(first, second);
  (void)store->Execute(bystander);
  auto counters = store->cache()->counters();
  EXPECT_GE(counters.hits, 1u);

  // A write touching (alice, knows, dana) must invalidate the point
  // lookup and both neighborhoods — and nothing else.
  ASSERT_TRUE(store->Apply(Mutation::Upsert("alice", "knows", "dana",
                                            NodeKind::kEntity,
                                            NodeKind::kEntity, kProv))
                  .ok());
  QueryResult updated = store->Execute(affected);
  ASSERT_EQ(updated.size(), first.size() + 1);
  // The fresh answer includes the new object and is served consistently
  // (second read hits the refilled entry).
  EXPECT_EQ(store->Execute(affected), updated);

  counters = store->cache()->counters();
  EXPECT_GE(counters.invalidations, 1u);

  // Cached answers always equal uncached recomputation.
  KnowledgeGraph oracle = BaseKg();
  ApplyToKg(&oracle,
            Mutation::Upsert("alice", "knows", "dana", NodeKind::kEntity,
                             NodeKind::kEntity, kProv));
  ExpectMatchesRebuild(*store, oracle, "cached store");
}

TEST(VersionedStoreTest, BatchExecuteIsThreadCountInvariant) {
  auto store = MustOpen(BaseKg());
  ASSERT_TRUE(store
                  ->Apply(Mutation::Upsert("alice", "knows", "dana",
                                           NodeKind::kEntity,
                                           NodeKind::kEntity, kProv))
                  .ok());
  const std::vector<Query> workload = ProbeQueries();
  const auto serial = store->BatchExecute(workload, ExecPolicy::Serial());
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(store->BatchExecute(workload, ExecPolicy::WithThreads(threads)),
              serial)
        << threads << " threads";
  }
  // And each slot equals the single-query path.
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(serial[i], store->Execute(workload[i])) << "slot " << i;
  }
}

}  // namespace
}  // namespace kg::store
