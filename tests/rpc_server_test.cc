// End-to-end tests for the RPC server: handshake accept/refuse paths,
// protocol discipline (query-before-handshake, malformed bodies,
// framing errors), admission control shedding with kUnavailable, the
// live-store handler, metrics exposition, and a real TCP round trip.

#include "rpc/server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/knowledge_graph.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "store/wal.h"

namespace kg::rpc {
namespace {

using graph::NodeKind;
using graph::Provenance;

const Provenance kProv{"rpc_test", 1.0, 0};

graph::KnowledgeGraph SampleKg() {
  graph::KnowledgeGraph kg;
  kg.AddTriple("m1", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("m2", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m2", "title", "Night Train", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m1", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("m2", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  return kg;
}

std::vector<serve::Query> SampleQueries() {
  return {
      serve::Query::PointLookup("m1", "title"),
      serve::Query::Neighborhood("ada"),
      serve::Query::AttributeByType("Movie", "title"),
      serve::Query::TopKRelated("m1", 3),
      serve::Query::PointLookup("ghost", "title"),  // Empty, not error.
  };
}

/// Reads one frame off a raw transport (test-side mini client).
Result<Frame> ReadOneFrame(ITransport* transport, FrameDecoder* decoder) {
  std::string chunk;
  for (;;) {
    Frame frame;
    const FrameDecoder::Step step = decoder->Next(&frame);
    if (step == FrameDecoder::Step::kFrame) return frame;
    if (step == FrameDecoder::Step::kError) return decoder->error();
    chunk.clear();
    auto read = transport->Read(&chunk, 4096, 5000);
    if (!read.ok()) return read.status();
    if (*read == 0) return Status::DeadlineExceeded("no frame in 5s");
    decoder->Feed(chunk);
  }
}

TEST(RpcServerTest, HandshakeAndQueriesOverLoopback) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok()) << transport.status();
  RpcClient client(std::move(*transport));
  const auto schema = client.Handshake();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(*schema, serve::kSnapshotSchemaVersion);

  for (const serve::Query& q : SampleQueries()) {
    const auto remote = client.Execute(q);
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_EQ(*remote, engine.Execute(q)) << q.CacheKey();
  }
  EXPECT_TRUE(client.healthy());

  server.Stop();
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  EXPECT_EQ(server.stats().requests_accepted, SampleQueries().size());
  EXPECT_EQ(server.stats().requests_shed, 0u);
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

TEST(RpcServerTest, HandshakeRefusesStaleClientWithUnavailable) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServerOptions options;
  options.schema_version = serve::kSnapshotSchemaVersion + 1;
  RpcServer server(EngineHandler(&engine), std::move(listener), options);
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  RpcClient client(std::move(*transport));
  const auto schema = client.Handshake();
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetriable(schema.status().code()));
  EXPECT_FALSE(client.healthy());
  server.Stop();
}

TEST(RpcServerTest, QueryBeforeHandshakeIsRefusedAndDropped) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  std::string frame;
  AppendFrame(&frame, MessageType::kQueryRequest, 1,
              EncodeQuery(serve::Query::PointLookup("m1", "title")));
  ASSERT_TRUE((*transport)->Write(frame).ok());
  FrameDecoder decoder;
  const auto resp_frame = ReadOneFrame(transport->get(), &decoder);
  ASSERT_TRUE(resp_frame.ok()) << resp_frame.status();
  const auto resp = DecodeQueryResponse(resp_frame->body);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->code, StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST(RpcServerTest, MalformedBodyGetsInvalidArgumentAndConnectionSurvives) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  ITransport* t = transport->get();
  FrameDecoder decoder;

  std::string hs;
  AppendFrame(&hs, MessageType::kHandshakeRequest, 1,
              EncodeHandshakeRequest(
                  HandshakeRequest{serve::kSnapshotSchemaVersion}));
  ASSERT_TRUE(t->Write(hs).ok());
  ASSERT_TRUE(ReadOneFrame(t, &decoder).ok());

  // A frame whose checksum is fine but whose body is not a query.
  std::string bad;
  AppendFrame(&bad, MessageType::kQueryRequest, 2, "not a query");
  ASSERT_TRUE(t->Write(bad).ok());
  const auto bad_resp_frame = ReadOneFrame(t, &decoder);
  ASSERT_TRUE(bad_resp_frame.ok()) << bad_resp_frame.status();
  const auto bad_resp = DecodeQueryResponse(bad_resp_frame->body);
  ASSERT_TRUE(bad_resp.ok());
  EXPECT_EQ(bad_resp->code, StatusCode::kInvalidArgument);

  // The connection is still serviceable afterwards.
  std::string good;
  AppendFrame(&good, MessageType::kQueryRequest, 3,
              EncodeQuery(serve::Query::PointLookup("m1", "title")));
  ASSERT_TRUE(t->Write(good).ok());
  const auto good_resp_frame = ReadOneFrame(t, &decoder);
  ASSERT_TRUE(good_resp_frame.ok()) << good_resp_frame.status();
  const auto good_resp = DecodeQueryResponse(good_resp_frame->body);
  ASSERT_TRUE(good_resp.ok());
  EXPECT_EQ(good_resp->code, StatusCode::kOk);
  EXPECT_EQ(good_resp->rows, (serve::QueryResult{"T:The Harbor"}));
  server.Stop();
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

TEST(RpcServerTest, FramingErrorDropsConnection) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  ITransport* t = transport->get();

  std::string frame;
  AppendFrame(&frame, MessageType::kHandshakeRequest, 1,
              EncodeHandshakeRequest(
                  HandshakeRequest{serve::kSnapshotSchemaVersion}));
  frame[5] ^= 0x40;  // Corrupt the checksum.
  ASSERT_TRUE(t->Write(frame).ok());

  // The server must close the stream; a blocking read eventually
  // returns kUnavailable with nothing delivered.
  std::string chunk;
  auto read = t->Read(&chunk, 4096, 5000);
  while (read.ok() && *read > 0) {
    chunk.clear();
    read = t->Read(&chunk, 4096, 5000);
  }
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  server.Stop();
  EXPECT_EQ(server.stats().frame_errors, 1u);
  EXPECT_EQ(server.stats().requests_accepted, 0u);
}

TEST(RpcServerTest, OverloadShedsWithUnavailable) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  // One worker, blocked on a latch; per-connection queue of 1. The
  // first request occupies the queue slot, every further one is shed
  // inline with kUnavailable — the retriable signal.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  auto blocking_handler =
      [&engine, released](const serve::Query& q) -> Result<serve::QueryResult> {
    released.wait();
    return engine.TryExecute(q);
  };

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServerOptions options;
  options.worker_threads = 1;
  options.max_queue_per_connection = 1;
  RpcServer server(blocking_handler, std::move(listener), options);
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  ITransport* t = transport->get();
  FrameDecoder decoder;

  std::string hs;
  AppendFrame(&hs, MessageType::kHandshakeRequest, 1,
              EncodeHandshakeRequest(
                  HandshakeRequest{serve::kSnapshotSchemaVersion}));
  ASSERT_TRUE(t->Write(hs).ok());
  ASSERT_TRUE(ReadOneFrame(t, &decoder).ok());

  const std::string qbody =
      EncodeQuery(serve::Query::PointLookup("m1", "title"));
  constexpr uint32_t kFirstId = 2;
  constexpr int kExtra = 5;
  std::string burst;
  for (uint32_t id = kFirstId; id < kFirstId + 1 + kExtra; ++id) {
    AppendFrame(&burst, MessageType::kQueryRequest, id, qbody);
  }
  ASSERT_TRUE(t->Write(burst).ok());

  // The shed responses come back first (written inline by the event
  // loop while the accepted request is parked on the latch).
  int shed = 0;
  for (int i = 0; i < kExtra; ++i) {
    const auto frame = ReadOneFrame(t, &decoder);
    ASSERT_TRUE(frame.ok()) << frame.status();
    const auto resp = DecodeQueryResponse(frame->body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kUnavailable);
    EXPECT_TRUE(IsRetriable(resp->code));
    ++shed;
  }
  release.set_value();
  const auto accepted_frame = ReadOneFrame(t, &decoder);
  ASSERT_TRUE(accepted_frame.ok()) << accepted_frame.status();
  EXPECT_EQ(accepted_frame->request_id, kFirstId);
  const auto accepted = DecodeQueryResponse(accepted_frame->body);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->code, StatusCode::kOk);
  EXPECT_EQ(accepted->rows, (serve::QueryResult{"T:The Harbor"}));

  server.Stop();
  EXPECT_EQ(shed, kExtra);
  EXPECT_EQ(server.stats().requests_shed, static_cast<uint64_t>(kExtra));
  EXPECT_EQ(server.stats().requests_accepted, 1u);
}

TEST(RpcServerTest, StoreHandlerServesLiveMutations) {
  auto store = store::VersionedKgStore::Open(SampleKg());
  ASSERT_TRUE(store.ok()) << store.status();

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(StoreHandler(store->get()), std::move(listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  RpcClient client(std::move(*transport));
  ASSERT_TRUE(client.Handshake().ok());

  const serve::Query q = serve::Query::PointLookup("m1", "title");
  auto before = client.Execute(q);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(*before, (serve::QueryResult{"T:The Harbor"}));

  // Mutate the store under the running server; the next remote answer
  // must reflect the new epoch.
  ASSERT_TRUE((*store)
                  ->Apply(store::Mutation::Upsert(
                      "m1", "title", "Second Title", NodeKind::kEntity,
                      NodeKind::kText, kProv))
                  .ok());
  auto after = client.Execute(q);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after,
            (serve::QueryResult{"T:Second Title", "T:The Harbor"}));
  server.Stop();
}

TEST(RpcServerTest, MetricsLandInRegistry) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  obs::MetricsRegistry registry;
  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServerOptions options;
  options.registry = &registry;
  RpcServer server(EngineHandler(&engine), std::move(listener), options);
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  RpcClient client(std::move(*transport));
  ASSERT_TRUE(client.Handshake().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Execute(serve::Query::PointLookup("m1", "title")).ok());
  }
  ASSERT_TRUE(client.Execute(serve::Query::TopKRelated("m1", 2)).ok());
  server.Stop();

  EXPECT_EQ(registry.GetCounter("rpc.connections.accepted").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("rpc.requests.accepted").Value(), 4u);
  EXPECT_EQ(registry.GetCounter("rpc.requests.shed").Value(), 0u);
  EXPECT_EQ(registry.GetCounter("rpc.frame_errors").Value(), 0u);
  EXPECT_EQ(registry.GetGauge("rpc.inflight").Value(), 0);
  EXPECT_EQ(registry
                .GetHistogram("rpc.latency_us.point_lookup",
                              obs::LatencyBucketsUs())
                .Count(),
            3u);
  EXPECT_EQ(registry
                .GetHistogram("rpc.latency_us.topk_related",
                              obs::LatencyBucketsUs())
                .Count(),
            1u);
}

TEST(RpcServerTest, TcpEndToEnd) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = TcpTransportServer::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = (*listener)->port();
  ASSERT_NE(port, 0);
  RpcServer server(EngineHandler(&engine), std::move(*listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(transport.ok()) << transport.status();
  RpcClient client(std::move(*transport));
  const auto schema = client.Handshake();
  ASSERT_TRUE(schema.ok()) << schema.status();
  for (const serve::Query& q : SampleQueries()) {
    const auto remote = client.Execute(q);
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_EQ(*remote, engine.Execute(q)) << q.CacheKey();
  }
  server.Stop();
}

TEST(RpcServerTest, StopUnblocksIdleConnectionsAndIsIdempotent) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  ASSERT_TRUE(server.Start().ok());
  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok());
  server.Stop();
  server.Stop();  // Idempotent.

  // The orphaned client sees a dead stream, not a hang.
  std::string chunk;
  const auto read = (*transport)->Read(&chunk, 64, 1000);
  EXPECT_TRUE(!read.ok() || *read == 0);
}

// Regression: a read timeout that lands MID-FRAME (a partial header
// sitting in the decoder) must break the stream, not leave it "usable".
// Resynchronizing after a fragment would splice the next response's
// bytes onto it and manufacture garbage; the client must return
// kUnavailable, mark itself unhealthy, and refuse further traffic.
TEST(RpcClientTest, TimeoutMidFrameBreaksTheStream) {
  InMemoryTransportServer loopback;
  auto client_end = loopback.Connect();
  ASSERT_TRUE(client_end.ok());
  auto server_end = loopback.Accept();
  ASSERT_TRUE(server_end.ok());

  RpcClientOptions options;
  options.read_timeout_ms = 100;
  RpcClient client(std::move(*client_end), options);

  // Hand-driven server: answer the handshake honestly, then answer the
  // query with only the first 5 bytes of a valid response frame and go
  // silent with the connection still open.
  auto server = std::async(std::launch::async, [&]() -> Status {
    FrameDecoder decoder;
    KG_ASSIGN_OR_RETURN(Frame hs,
                        ReadOneFrame(server_end->get(), &decoder));
    if (hs.type != MessageType::kHandshakeRequest) {
      return Status::Internal("expected handshake");
    }
    HandshakeResponse resp;
    resp.schema_version = serve::kSnapshotSchemaVersion;
    std::string out;
    AppendFrame(&out, MessageType::kHandshakeResponse, hs.request_id,
                EncodeHandshakeResponse(resp));
    KG_RETURN_IF_ERROR((*server_end)->Write(out));
    KG_ASSIGN_OR_RETURN(Frame query,
                        ReadOneFrame(server_end->get(), &decoder));
    QueryResponse qr;
    qr.rows = {"E:answer"};
    out.clear();
    AppendFrame(&out, MessageType::kQueryResponse, query.request_id,
                EncodeQueryResponse(qr));
    return (*server_end)->Write(std::string_view(out).substr(0, 5));
  });

  ASSERT_TRUE(client.Handshake().ok());
  const auto result =
      client.Execute(serve::Query::PointLookup("m1", "title"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("mid-frame"), std::string::npos)
      << result.status();
  EXPECT_FALSE(client.healthy());

  // A broken client refuses immediately instead of reusing the stream.
  const auto after =
      client.Execute(serve::Query::PointLookup("m1", "title"));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(server.get().ok());
  (*server_end)->Close();
}

}  // namespace
}  // namespace kg::rpc
