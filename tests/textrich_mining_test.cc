#include "textrich/taxonomy_mining.h"

#include <gtest/gtest.h>

namespace kg::textrich {
namespace {

struct World {
  synth::ProductCatalog catalog;
  synth::BehaviorLog log;
};

World MakeWorld(uint64_t seed) {
  kg::Rng rng(seed);
  synth::CatalogOptions copt;
  copt.num_types = 16;
  copt.num_products = 600;
  World world{synth::ProductCatalog::Generate(copt, rng), {}};
  synth::BehaviorOptions bopt;
  bopt.num_searches = 30000;
  world.log = synth::GenerateBehavior(world.catalog, bopt, rng);
  return world;
}

TEST(TaxonomyMiningTest, MinesHypernymsWithGoodPrecision) {
  const World world = MakeWorld(1);
  const auto mined = MineTaxonomy(world.catalog, world.log, {});
  const auto score = ScoreMinedTaxonomy(world.catalog, mined);
  EXPECT_GT(score.hypernyms_mined, 10u);
  // The "tea -> green tea" signal is strong in the generator, so mined
  // edges should be mostly right and cover much of the taxonomy.
  EXPECT_GT(score.hypernym_precision, 0.8);
  EXPECT_GT(score.hypernym_recall, 0.5);
}

TEST(TaxonomyMiningTest, FindsAliasSynonyms) {
  const World world = MakeWorld(2);
  TaxonomyMiningOptions opt;
  opt.min_query_support = 10;
  const auto mined = MineTaxonomy(world.catalog, world.log, opt);
  const auto score = ScoreMinedTaxonomy(world.catalog, mined);
  if (score.synonyms_mined > 0) {
    EXPECT_GT(score.synonym_precision, 0.7);
  }
  // At least some alias should surface given 30k searches.
  EXPECT_GT(score.synonyms_mined, 0u);
}

TEST(TaxonomyMiningTest, NoiseOnlyLogYieldsNothing) {
  kg::Rng rng(3);
  synth::CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 200;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 5000;
  bopt.purchase_noise = 1.0;  // purchases unrelated to queries.
  const auto log = synth::GenerateBehavior(catalog, bopt, rng);
  const auto mined = MineTaxonomy(catalog, log, {});
  // With pure noise every query looks broad and floods edges toward all
  // types, so precision collapses (sanity: the miner is reading the
  // purchase signal, not leaking generator structure).
  const auto score = ScoreMinedTaxonomy(catalog, mined);
  EXPECT_LT(score.hypernym_precision, 0.7);
  EXPECT_GT(score.hypernyms_mined, 0u);
}

}  // namespace
}  // namespace kg::textrich
