// Golden serial ≡ parallel tests: both end-to-end KG-construction
// pipelines must produce bit-identical graphs for any ExecPolicy thread
// count, given the same seed. This is the invariant that makes the
// sharded execution layer shippable in a seeded-RNG codebase.

#include <gtest/gtest.h>

#include <vector>

#include "core/entity_kg_pipeline.h"
#include "core/textrich_kg_pipeline.h"

namespace kg::core {
namespace {

struct EntityRunResult {
  size_t entities = 0;
  size_t triples = 0;
  uint64_t fingerprint = 0;
  std::vector<SourceIngestReport> reports;
};

EntityRunResult RunEntityPipeline(size_t num_threads) {
  synth::UniverseOptions uopt;
  uopt.num_people = 150;
  uopt.num_movies = 250;
  uopt.num_songs = 40;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  synth::SourceOptions wiki, imdb, webdb;
  wiki.name = "wikipedia";
  wiki.coverage = 0.6;
  imdb.name = "imdb";
  imdb.coverage = 0.6;
  imdb.schema_dialect = 1;
  webdb.name = "webdb";
  webdb.coverage = 0.4;
  webdb.schema_dialect = 2;

  EntityKgBuilder::Options opt;
  opt.forest.num_trees = 20;
  opt.exec = ExecPolicy::WithThreads(num_threads);
  EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  builder.IngestAnchor(synth::EmitSource(universe, wiki, rng), rng);
  builder.IngestAndLink(synth::EmitSource(universe, imdb, rng), rng);
  builder.IngestAndLink(synth::EmitSource(universe, webdb, rng), rng);
  builder.FuseValues();

  EntityRunResult result;
  result.entities = builder.reports().back().kg_entities_after;
  result.triples = builder.kg().num_triples();
  result.fingerprint = graph::TripleSetFingerprint(builder.kg());
  result.reports = builder.reports();
  return result;
}

TEST(ParallelDeterminismTest, EntityPipelineIdenticalAt1_2_8Threads) {
  const EntityRunResult serial = RunEntityPipeline(1);
  ASSERT_GT(serial.entities, 0u);
  ASSERT_GT(serial.triples, 0u);
  for (size_t threads : {2u, 8u}) {
    const EntityRunResult parallel = RunEntityPipeline(threads);
    EXPECT_EQ(parallel.entities, serial.entities) << threads << " threads";
    EXPECT_EQ(parallel.triples, serial.triples) << threads << " threads";
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " threads";
    // Per-source reports (linkage decisions included) must match too —
    // the whole construction trace is deterministic, not just the
    // final graph.
    ASSERT_EQ(parallel.reports.size(), serial.reports.size());
    for (size_t r = 0; r < serial.reports.size(); ++r) {
      EXPECT_EQ(parallel.reports[r].linked, serial.reports[r].linked);
      EXPECT_EQ(parallel.reports[r].new_entities,
                serial.reports[r].new_entities);
      EXPECT_DOUBLE_EQ(parallel.reports[r].linkage_precision,
                       serial.reports[r].linkage_precision);
      EXPECT_DOUBLE_EQ(parallel.reports[r].linkage_recall,
                       serial.reports[r].linkage_recall);
    }
  }
}

struct TextRichRunResult {
  TextRichBuildReport report;
  uint64_t fingerprint = 0;
};

TextRichRunResult RunTextRichPipeline(size_t num_threads) {
  Rng rng(7);
  synth::CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 220;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 3000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  TextRichBuildOptions opt;
  opt.exec = ExecPolicy::WithThreads(num_threads);
  const auto build = BuildTextRichKg(catalog, behavior, opt, rng);
  return TextRichRunResult{build.report,
                           graph::TripleSetFingerprint(build.kg)};
}

TEST(ParallelDeterminismTest, TextRichPipelineIdenticalAt1_2_8Threads) {
  const TextRichRunResult serial = RunTextRichPipeline(1);
  ASSERT_GT(serial.report.kg_triples, 0u);
  for (size_t threads : {2u, 8u}) {
    const TextRichRunResult parallel = RunTextRichPipeline(threads);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " threads";
    EXPECT_EQ(parallel.report.extracted_assertions,
              serial.report.extracted_assertions);
    EXPECT_EQ(parallel.report.after_cleaning,
              serial.report.after_cleaning);
    EXPECT_EQ(parallel.report.kg_triples, serial.report.kg_triples);
    EXPECT_DOUBLE_EQ(parallel.report.accuracy_after_cleaning,
                     serial.report.accuracy_after_cleaning);
  }
}

TEST(ParallelDeterminismTest, FingerprintIsOrderInsensitiveButValueSensitive) {
  graph::KnowledgeGraph ab, ba, other;
  ab.AddTriple("a", "p", "x", graph::NodeKind::kEntity,
               graph::NodeKind::kText, {});
  ab.AddTriple("b", "p", "y", graph::NodeKind::kEntity,
               graph::NodeKind::kText, {});
  ba.AddTriple("b", "p", "y", graph::NodeKind::kEntity,
               graph::NodeKind::kText, {});
  ba.AddTriple("a", "p", "x", graph::NodeKind::kEntity,
               graph::NodeKind::kText, {});
  other.AddTriple("a", "p", "x", graph::NodeKind::kEntity,
                  graph::NodeKind::kText, {});
  other.AddTriple("b", "p", "z", graph::NodeKind::kEntity,
                  graph::NodeKind::kText, {});
  EXPECT_EQ(graph::TripleSetFingerprint(ab),
            graph::TripleSetFingerprint(ba));
  EXPECT_NE(graph::TripleSetFingerprint(ab),
            graph::TripleSetFingerprint(other));
}

}  // namespace
}  // namespace kg::core
