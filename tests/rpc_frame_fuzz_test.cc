// Hostile-bytes battery for the RPC decoder: truncation at every byte
// offset, a bit flip at every position, seeded random garbage, and
// random mutations of valid frames. The decoder and every body decoder
// must return clean errors (or clean shorter results) on all of it —
// never crash, never hang, never read out of bounds. ASan/UBSan runs of
// this binary are the real teeth.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rpc/frame.h"

namespace kg::rpc {
namespace {

std::string SampleStream() {
  std::string stream;
  HandshakeRequest hs;
  hs.max_schema_version = 1;
  AppendFrame(&stream, MessageType::kHandshakeRequest, 1,
              EncodeHandshakeRequest(hs));
  HandshakeResponse hsr;
  hsr.schema_version = 1;
  hsr.message = "ok";
  AppendFrame(&stream, MessageType::kHandshakeResponse, 1,
              EncodeHandshakeResponse(hsr));
  AppendFrame(&stream, MessageType::kQueryRequest, 2,
              EncodeQuery(serve::Query::AttributeByType("Person", "name")));
  QueryResponse qr;
  qr.rows = {"E:alice\tE:x", "E:bob\tE:y"};
  AppendFrame(&stream, MessageType::kQueryResponse, 2,
              EncodeQueryResponse(qr));
  return stream;
}

size_t DrainFrames(FrameDecoder* decoder) {
  Frame out;
  size_t n = 0;
  while (decoder->Next(&out) == FrameDecoder::Step::kFrame) ++n;
  return n;
}

// Truncating the stream at any offset must yield only the frames that
// fit entirely before the cut — never an error (a partial tail frame is
// "need more", not corruption), never a crash.
TEST(RpcFrameFuzzTest, SurvivesTruncationAtEveryOffset) {
  const std::string stream = SampleStream();
  // Frame boundaries, to predict how many complete frames survive a cut.
  std::vector<size_t> ends;
  {
    FrameDecoder decoder;
    decoder.Feed(stream);
    Frame out;
    size_t consumed = 0;
    while (decoder.Next(&out) == FrameDecoder::Step::kFrame) {
      consumed += kFrameHeaderBytes + kMessageHeaderBytes + out.body.size();
      ends.push_back(consumed);
    }
    ASSERT_EQ(ends.size(), 4u);
    ASSERT_EQ(consumed, stream.size());
  }
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(stream).substr(0, cut));
    size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= cut) ++expected;
    EXPECT_EQ(DrainFrames(&decoder), expected) << "cut at " << cut;
    EXPECT_TRUE(decoder.error().ok()) << "cut at " << cut;
  }
}

// Flipping any single bit anywhere in the stream must never produce a
// frame that differs from the original stream's frames: either the
// decoder errors (checksum/header checks) or — when the flip lands in a
// length field making a frame appear shorter/longer — it stalls or
// errors, but it never silently delivers altered bytes as a valid frame.
TEST(RpcFrameFuzzTest, BitFlipsNeverYieldAlteredFrames) {
  const std::string stream = SampleStream();
  std::vector<Frame> originals;
  {
    FrameDecoder decoder;
    decoder.Feed(stream);
    Frame out;
    while (decoder.Next(&out) == FrameDecoder::Step::kFrame) {
      originals.push_back(out);
    }
  }
  auto matches_original = [&](const Frame& f) {
    for (const Frame& o : originals) {
      if (o.type == f.type && o.request_id == f.request_id &&
          o.body == f.body) {
        return true;
      }
    }
    return false;
  };
  size_t flips_caught = 0;
  for (size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = stream;
      mutated[byte] ^= static_cast<char>(1 << bit);
      FrameDecoder decoder;
      decoder.Feed(mutated);
      Frame out;
      FrameDecoder::Step step;
      bool saw_error = false;
      while ((step = decoder.Next(&out)) == FrameDecoder::Step::kFrame) {
        ASSERT_TRUE(matches_original(out))
            << "byte " << byte << " bit " << bit
            << " delivered an altered frame";
      }
      saw_error = (step == FrameDecoder::Step::kError);
      if (saw_error) ++flips_caught;
    }
  }
  // The overwhelming majority of flips must be *detected* (checksum,
  // version, type, flags, length guards); the rest may only manifest as
  // a stalled partial frame. Zero may be silently accepted — that is
  // asserted above; this asserts the detection machinery actually runs.
  EXPECT_GT(flips_caught, stream.size() * 8 / 2);
}

std::string TracedSampleStream() {
  std::string stream;
  TraceContext trace;
  trace.trace_id = 0xfeedfacefeedfaceULL;
  trace.parent_span_id = 0x1020304050607080ULL;
  trace.sampled = true;
  AppendFrame(&stream, MessageType::kQueryRequest, 11, &trace,
              EncodeQuery(serve::Query::PointLookup("alice", "knows")));
  trace.sampled = false;
  AppendFrame(&stream, MessageType::kQueryRequest, 12, &trace,
              EncodeQuery(serve::Query::Neighborhood("bob")));
  AppendFrame(&stream, MessageType::kIntrospectRequest, 13,
              EncodeIntrospectRequest(
                  IntrospectRequest{IntrospectWhat::kMetricsJson}));
  IntrospectResponse ir;
  ir.payload = "{\"schema_version\":1}";
  AppendFrame(&stream, MessageType::kIntrospectResponse, 13,
              EncodeIntrospectResponse(ir));
  return stream;
}

// A stream carrying trace extensions and introspection frames, cut at
// every byte offset: only whole frames before the cut are delivered,
// and a partial trace extension is "need more", never an error.
TEST(RpcFrameFuzzTest, TracedStreamSurvivesTruncationAtEveryOffset) {
  const std::string stream = TracedSampleStream();
  std::vector<size_t> ends;
  {
    FrameDecoder decoder;
    decoder.Feed(stream);
    Frame out;
    size_t consumed = 0;
    while (decoder.Next(&out) == FrameDecoder::Step::kFrame) {
      consumed += kFrameHeaderBytes + kMessageHeaderBytes + out.body.size();
      if (out.has_trace) consumed += 1 + kTraceContextBytes;
      ends.push_back(consumed);
    }
    ASSERT_EQ(ends.size(), 4u);
    ASSERT_EQ(consumed, stream.size());
  }
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(stream).substr(0, cut));
    size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= cut) ++expected;
    EXPECT_EQ(DrainFrames(&decoder), expected) << "cut at " << cut;
    EXPECT_TRUE(decoder.error().ok()) << "cut at " << cut;
  }
}

// Bit flips over a traced stream: a flip may never deliver a frame whose
// (type, request id, trace, body) differs from an original frame.
TEST(RpcFrameFuzzTest, TracedStreamBitFlipsNeverYieldAlteredFrames) {
  const std::string stream = TracedSampleStream();
  std::vector<Frame> originals;
  {
    FrameDecoder decoder;
    decoder.Feed(stream);
    Frame out;
    while (decoder.Next(&out) == FrameDecoder::Step::kFrame) {
      originals.push_back(out);
    }
  }
  auto matches_original = [&](const Frame& f) {
    for (const Frame& o : originals) {
      if (o.type == f.type && o.request_id == f.request_id &&
          o.has_trace == f.has_trace &&
          o.trace.trace_id == f.trace.trace_id &&
          o.trace.parent_span_id == f.trace.parent_span_id &&
          o.trace.sampled == f.trace.sampled && o.body == f.body) {
        return true;
      }
    }
    return false;
  };
  size_t flips_caught = 0;
  for (size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = stream;
      mutated[byte] ^= static_cast<char>(1 << bit);
      FrameDecoder decoder;
      decoder.Feed(mutated);
      Frame out;
      FrameDecoder::Step step;
      while ((step = decoder.Next(&out)) == FrameDecoder::Step::kFrame) {
        ASSERT_TRUE(matches_original(out))
            << "byte " << byte << " bit " << bit
            << " delivered an altered frame";
      }
      if (step == FrameDecoder::Step::kError) ++flips_caught;
    }
  }
  EXPECT_GT(flips_caught, stream.size() * 8 / 2);
}

// Every possible 16-bit flags value, checksum fixed up so only the flag
// validation can fire: zero decodes, the trace bit alone takes the
// extension path (and errors here, because the query body is not a
// valid extension), and any reserved bit is rejected by name.
TEST(RpcFrameFuzzTest, ExhaustiveFlagValuesNeverCrash) {
  std::string base;
  AppendFrame(&base, MessageType::kQueryRequest, 21,
              EncodeQuery(serve::Query::PointLookup("node", "pred")));
  for (uint32_t flags = 0; flags <= 0xffff; ++flags) {
    std::string frame = base;
    frame[kFrameHeaderBytes + 2] = static_cast<char>(flags & 0xff);
    frame[kFrameHeaderBytes + 3] = static_cast<char>((flags >> 8) & 0xff);
    const std::string_view payload(frame.data() + kFrameHeaderBytes,
                                   frame.size() - kFrameHeaderBytes);
    const uint32_t checksum = Checksum32(payload);
    for (int i = 0; i < 4; ++i) {
      frame[4 + i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
    }
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    const FrameDecoder::Step step = decoder.Next(&out);
    if (flags == 0) {
      EXPECT_EQ(step, FrameDecoder::Step::kFrame);
      EXPECT_FALSE(out.has_trace);
    } else if (flags == kFlagTraceContext) {
      // The body's first byte (point-lookup kind, 0x00) is read as the
      // extension length and rejected.
      EXPECT_EQ(step, FrameDecoder::Step::kError);
    } else {
      EXPECT_EQ(step, FrameDecoder::Step::kError) << "flags " << flags;
      EXPECT_NE(decoder.error().message().find("reserved flags"),
                std::string::npos)
          << "flags " << flags;
    }
  }
}

// Truncating a trace extension at every interior offset (length prefix
// and checksum fixed up each time) must always produce a clean error —
// the extension has a fixed width, so no strict prefix parses.
TEST(RpcFrameFuzzTest, TraceExtensionTruncationAlwaysRejected) {
  TraceContext trace;
  trace.trace_id = 0xaabbccddeeff0011ULL;
  trace.parent_span_id = 0x2233445566778899ULL;
  trace.sampled = true;
  std::string traced;
  AppendFrame(&traced, MessageType::kHandshakeRequest, 2, &trace,
              std::string_view());
  const size_t full_payload = traced.size() - kFrameHeaderBytes;
  ASSERT_EQ(full_payload, kMessageHeaderBytes + 1 + kTraceContextBytes);
  for (size_t payload = kMessageHeaderBytes; payload < full_payload;
       ++payload) {
    std::string frame = traced.substr(0, kFrameHeaderBytes + payload);
    for (int i = 0; i < 4; ++i) {
      frame[i] = static_cast<char>((payload >> (8 * i)) & 0xff);
    }
    const std::string_view view(frame.data() + kFrameHeaderBytes, payload);
    const uint32_t checksum = Checksum32(view);
    for (int i = 0; i < 4; ++i) {
      frame[4 + i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
    }
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError)
        << "payload bytes " << payload;
  }
}

// Corrupting the checksum field specifically must always error: the
// payload is intact, so only the checksum comparison can catch it.
TEST(RpcFrameFuzzTest, EveryChecksumBitFlipIsCaught) {
  std::string frame;
  AppendFrame(&frame, MessageType::kQueryRequest, 9,
              EncodeQuery(serve::Query::TopKRelated("center", 5)));
  for (size_t byte = 4; byte < 8; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[byte] ^= static_cast<char>(1 << bit);
      FrameDecoder decoder;
      decoder.Feed(mutated);
      Frame out;
      EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError)
          << "checksum byte " << byte << " bit " << bit;
    }
  }
}

// Pure random garbage: the decoder must terminate (error or need-more)
// without crashing, for many seeds and sizes.
TEST(RpcFrameFuzzTest, SurvivesRandomGarbage) {
  Rng rng(20260807);
  for (int round = 0; round < 200; ++round) {
    const size_t size = rng.UniformIndex(512);
    std::string garbage(size, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    FrameDecoder decoder;
    decoder.Feed(garbage);
    DrainFrames(&decoder);  // Must return; no assertion on outcome.
  }
}

// Random garbage fed to every body decoder: clean Result, never a crash.
TEST(RpcFrameFuzzTest, BodyDecodersSurviveRandomGarbage) {
  Rng rng(424242);
  for (int round = 0; round < 500; ++round) {
    const size_t size = rng.UniformIndex(128);
    std::string garbage(size, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    (void)DecodeHandshakeRequest(garbage);
    (void)DecodeHandshakeResponse(garbage);
    (void)DecodeQuery(garbage);
    (void)DecodeQueryResponse(garbage);
    (void)DecodeIntrospectRequest(garbage);
    (void)DecodeIntrospectResponse(garbage);
  }
}

// Truncating each message *body* at every offset: the decoder must
// return a clean error for every strict prefix (all four bodies end
// with a fixed-width or length-prefixed field, so no proper prefix is
// also a valid encoding).
TEST(RpcFrameFuzzTest, BodyDecodersRejectEveryTruncation) {
  const std::string bodies[] = {
      EncodeHandshakeRequest(HandshakeRequest{1}),
      EncodeHandshakeResponse(
          HandshakeResponse{StatusCode::kOk, "hello", 1}),
      EncodeQuery(serve::Query::PointLookup("node", "pred")),
      EncodeQueryResponse(QueryResponse{StatusCode::kOk, "", {"row1", "r2"}}),
  };
  for (size_t which = 0; which < 4; ++which) {
    const std::string& body = bodies[which];
    for (size_t cut = 0; cut < body.size(); ++cut) {
      const std::string_view prefix =
          std::string_view(body).substr(0, cut);
      bool ok = false;
      switch (which) {
        case 0: ok = DecodeHandshakeRequest(prefix).ok(); break;
        case 1: ok = DecodeHandshakeResponse(prefix).ok(); break;
        case 2: ok = DecodeQuery(prefix).ok(); break;
        case 3: ok = DecodeQueryResponse(prefix).ok(); break;
      }
      EXPECT_FALSE(ok) << "body " << which << " cut at " << cut;
    }
  }
}

// Random mutations (splice, duplicate, delete ranges) of a valid
// stream: decoder must always terminate and never deliver a frame that
// was not in the original.
TEST(RpcFrameFuzzTest, SurvivesRandomMutations) {
  const std::string stream = SampleStream();
  Rng rng(777);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = stream;
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    const size_t at = rng.UniformIndex(mutated.size());
    const size_t span = 1 + rng.UniformIndex(16);
    switch (op) {
      case 0:  // Overwrite a span with random bytes.
        for (size_t i = at; i < std::min(mutated.size(), at + span); ++i) {
          mutated[i] = static_cast<char>(rng.UniformInt(0, 255));
        }
        break;
      case 1:  // Delete a span.
        mutated.erase(at, span);
        break;
      case 2:  // Duplicate a span in place.
        mutated.insert(at, mutated.substr(at, span));
        break;
    }
    FrameDecoder decoder;
    decoder.Feed(mutated);
    Frame out;
    int frames = 0;
    while (decoder.Next(&out) == FrameDecoder::Step::kFrame) {
      if (++frames > 64) FAIL() << "decoder runaway on round " << round;
    }
  }
}

}  // namespace
}  // namespace kg::rpc
