#include "fuse/pra.h"

#include <gtest/gtest.h>

#include "synth/entity_universe.h"

namespace kg::fuse {
namespace {

TEST(PraTest, PredictsDirectedByFromContextPaths) {
  // Universe KG where directors repeatedly direct; PRA should learn that
  // paths through shared actors/genres make (movie, person) plausible.
  synth::UniverseOptions opt;
  opt.num_people = 150;
  opt.num_movies = 200;
  opt.num_songs = 20;
  kg::Rng rng(1);
  const auto universe = synth::EntityUniverse::Generate(opt, rng);
  auto kg = universe.ToKnowledgeGraph();
  const auto directed = *kg.FindPredicate("directed_by");

  PraModel model;
  PraModel::Options popt;
  popt.max_path_length = 3;
  model.Fit(kg, directed, popt, rng);
  EXPECT_FALSE(model.feature_paths().empty());

  // Score true triples vs corrupted ones.
  const auto positives = kg.TriplesWithPredicate(directed);
  size_t wins = 0, n = 0;
  for (size_t i = 0; i < std::min<size_t>(positives.size(), 60); ++i) {
    const auto& t = kg.triple(positives[i]);
    const auto& wrong_movie =
        kg.triple(positives[(i + 37) % positives.size()]);
    if (wrong_movie.object == t.object) continue;
    ++n;
    wins += model.Score(kg, t.subject, t.object) >
            model.Score(kg, t.subject, wrong_movie.object);
  }
  ASSERT_GT(n, 30u);
  EXPECT_GT(static_cast<double>(wins) / n, 0.6);
}

TEST(PraTest, FeaturePathsExcludeTargetEdge) {
  synth::UniverseOptions opt;
  opt.num_people = 80;
  opt.num_movies = 100;
  opt.num_songs = 10;
  kg::Rng rng(2);
  const auto universe = synth::EntityUniverse::Generate(opt, rng);
  auto kg = universe.ToKnowledgeGraph();
  const auto directed = *kg.FindPredicate("directed_by");
  PraModel model;
  model.Fit(kg, directed, {}, rng);
  for (const auto& path : model.feature_paths()) {
    const bool is_direct_edge =
        path.size() == 1 && path[0].predicate == directed &&
        !path[0].inverse;
    EXPECT_FALSE(is_direct_edge);
  }
}

}  // namespace
}  // namespace kg::fuse
