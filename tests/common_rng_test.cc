#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace kg {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliFrequencyApproximatesP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, SampleIndicesDistinctAndSorted) {
  Rng rng(17);
  const auto sample = rng.SampleIndices(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 30u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
    EXPECT_LT(sample[i], 100u);
  }
}

TEST(RngTest, SampleIndicesFullRange) {
  Rng rng(19);
  const auto sample = rng.SampleIndices(10, 10);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Different children disagree somewhere in a short window.
  bool differ = false;
  for (int i = 0; i < 16 && !differ; ++i) {
    differ = child1.UniformInt(0, 1 << 30) != child2.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(differ);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, PmfSumsToOneAndIsDecreasing) {
  const double s = GetParam();
  ZipfDistribution zipf(200, s);
  double total = 0.0;
  for (size_t r = 0; r < zipf.size(); ++r) {
    total += zipf.Pmf(r);
    if (r > 0) EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1) + 1e-12);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfTest, SampleMatchesHeadMass) {
  const double s = GetParam();
  ZipfDistribution zipf(50, s);
  Rng rng(31);
  const int n = 20000;
  int head = 0;
  for (int i = 0; i < n; ++i) head += zipf.Sample(rng) == 0;
  EXPECT_NEAR(static_cast<double>(head) / n, zipf.Pmf(0), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace kg
