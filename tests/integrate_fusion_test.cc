#include "integrate/fusion.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::integrate {
namespace {

TEST(MajorityVoteTest, PicksMostAssertedValue) {
  ClaimSet claims;
  claims["item"] = {{"s1", "a"}, {"s2", "a"}, {"s3", "b"}};
  const auto fused = MajorityVote(claims);
  EXPECT_EQ(fused.at("item").value, "a");
  EXPECT_NEAR(fused.at("item").confidence, 2.0 / 3.0, 1e-9);
}

TEST(MajorityVoteTest, TieBreaksDeterministically) {
  ClaimSet claims;
  claims["item"] = {{"s1", "b"}, {"s2", "a"}};
  EXPECT_EQ(MajorityVote(claims).at("item").value, "a");
}

TEST(AccuFusionTest, ConvergesAndEstimatesAccuracies) {
  // One excellent source and two mediocre ones making INDEPENDENT
  // errors (ACCU's model; colluding copiers need the copy detection of
  // Dong et al., out of scope here). Voting treats all three equally and
  // loses three-way disagreements; ACCU learns to trust the good source.
  Rng rng(1);
  ClaimSet claims;
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 300; ++i) {
    const std::string item = "item" + std::to_string(i);
    const std::string correct = "v" + std::to_string(i);
    truth[item] = correct;
    claims[item].push_back(
        {"good", rng.Bernoulli(0.9) ? correct
                                    : "u-wrong-g" + std::to_string(i)});
    claims[item].push_back(
        {"bad1", rng.Bernoulli(0.5) ? correct
                                    : "u-wrong-1" + std::to_string(i)});
    claims[item].push_back(
        {"bad2", rng.Bernoulli(0.5) ? correct
                                    : "u-wrong-2" + std::to_string(i)});
  }
  const auto vote = MajorityVote(claims);
  const auto accu = AccuFusion::Run(claims, {});
  size_t vote_correct = 0, accu_correct = 0;
  for (const auto& [item, correct] : truth) {
    vote_correct += vote.at(item).value == correct;
    accu_correct += accu.fused.at(item).value == correct;
  }
  EXPECT_GT(accu_correct, vote_correct);
  EXPECT_GT(static_cast<double>(accu_correct) / truth.size(), 0.85);
  EXPECT_GT(accu.source_accuracy.at("good"),
            accu.source_accuracy.at("bad1"));
  EXPECT_GT(accu.iterations, 1u);
}

TEST(AccuFusionTest, SingleSourceTrusted) {
  ClaimSet claims;
  claims["i1"] = {{"only", "x"}};
  const auto result = AccuFusion::Run(claims, {});
  EXPECT_EQ(result.fused.at("i1").value, "x");
}

TEST(AccuFusionTest, EmptyClaimsYieldEmptyResult) {
  const auto result = AccuFusion::Run({}, {});
  EXPECT_TRUE(result.fused.empty());
  EXPECT_TRUE(result.source_accuracy.empty());
}

}  // namespace
}  // namespace kg::integrate
