// Chaos twin of core_parallel_determinism_test: with the same
// (seed, FaultPlan) both construction pipelines must degrade
// *identically* at any thread count — same quarantines, same retries,
// same bit-identical KG — and a zero-fault plan must be bit-identical
// to the fault-free pipelines. This is what makes fault injection a
// replayable part of the experiment seed instead of flaky noise.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/events.h"
#include "core/entity_kg_pipeline.h"
#include "core/textrich_kg_pipeline.h"

namespace kg::core {
namespace {

constexpr uint64_t kChaosSeed = 1234;

struct EntityChaosResult {
  uint64_t fingerprint = 0;
  size_t triples = 0;
  size_t ingested = 0;  ///< Sources that survived.
  DegradationReport degradation;
};

std::vector<synth::SourceTable> MakeEntitySources(Rng& rng) {
  synth::UniverseOptions uopt;
  uopt.num_people = 100;
  uopt.num_movies = 180;
  uopt.num_songs = 30;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  std::vector<synth::SourceTable> tables;
  for (int s = 0; s < 5; ++s) {
    synth::SourceOptions sopt;
    sopt.name = "src" + std::to_string(s);
    sopt.coverage = 0.5;
    sopt.schema_dialect = s % 3;
    tables.push_back(synth::EmitSource(universe, sopt, rng));
  }
  return tables;
}

EntityChaosResult RunEntityChaos(size_t num_threads,
                                 const FaultPlan* plan) {
  Rng rng(kChaosSeed);
  const auto tables = MakeEntitySources(rng);

  EntityKgBuilder::Options opt;
  opt.forest.num_trees = 15;
  opt.exec = ExecPolicy::WithThreads(num_threads);
  opt.faults = plan;
  EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);

  EntityChaosResult result;
  for (size_t s = 0; s < tables.size(); ++s) {
    const Status status =
        s == 0 ? builder.TryIngestAnchor(tables[s], rng)
               : builder.TryIngestAndLink(tables[s], rng);
    if (status.ok()) ++result.ingested;
  }
  builder.FuseValues();
  result.fingerprint = graph::TripleSetFingerprint(builder.kg());
  result.triples = builder.kg().num_triples();
  result.degradation = builder.degradation();
  return result;
}

void ExpectSameDegradation(const DegradationReport& a,
                           const DegradationReport& b,
                           const std::string& context) {
  ASSERT_EQ(a.sources.size(), b.sources.size()) << context;
  for (size_t i = 0; i < a.sources.size(); ++i) {
    const SourceDegradation& x = a.sources[i];
    const SourceDegradation& y = b.sources[i];
    EXPECT_EQ(x.source, y.source) << context;
    EXPECT_EQ(x.attempts, y.attempts) << context << " " << x.source;
    EXPECT_EQ(x.retries, y.retries) << context << " " << x.source;
    EXPECT_EQ(x.quarantined, y.quarantined) << context << " " << x.source;
    EXPECT_EQ(x.final_status, y.final_status) << context << " " << x.source;
    EXPECT_EQ(x.claims_dropped, y.claims_dropped)
        << context << " " << x.source;
    EXPECT_EQ(x.claims_corrupted, y.claims_corrupted)
        << context << " " << x.source;
    EXPECT_DOUBLE_EQ(x.virtual_ms, y.virtual_ms)
        << context << " " << x.source;
  }
}

TEST(ChaosDeterminismTest, EntityPipelineIdenticalAt1_2_8Threads) {
  const FaultPlan plan = FaultPlan::Uniform(kChaosSeed, 0.25);
  const EntityChaosResult serial = RunEntityChaos(1, &plan);
  ASSERT_GT(serial.triples, 0u);
  ASSERT_GT(serial.ingested, 0u);
  for (size_t threads : {2u, 8u}) {
    const EntityChaosResult parallel = RunEntityChaos(threads, &plan);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " threads";
    EXPECT_EQ(parallel.triples, serial.triples) << threads << " threads";
    EXPECT_EQ(parallel.ingested, serial.ingested) << threads << " threads";
    ExpectSameDegradation(parallel.degradation, serial.degradation,
                          std::to_string(threads) + " threads");
  }
}

TEST(ChaosDeterminismTest, EntityZeroFaultPlanBitIdenticalToNoPlan) {
  const FaultPlan zero;  // All rates zero: layer runs, injects nothing.
  const EntityChaosResult bare = RunEntityChaos(2, nullptr);
  const EntityChaosResult zeroed = RunEntityChaos(2, &zero);
  EXPECT_EQ(zeroed.fingerprint, bare.fingerprint);
  EXPECT_EQ(zeroed.triples, bare.triples);
  EXPECT_EQ(zeroed.ingested, bare.ingested);
  // The bare run skips accounting entirely; the zero plan records one
  // healthy single-attempt row per source.
  EXPECT_TRUE(bare.degradation.sources.empty());
  ASSERT_EQ(zeroed.degradation.sources.size(), 5u);
  for (const SourceDegradation& row : zeroed.degradation.sources) {
    EXPECT_FALSE(row.quarantined);
    EXPECT_EQ(row.attempts, 1u);
    EXPECT_EQ(row.retries, 0u);
    EXPECT_EQ(row.claims_corrupted, 0u);
  }
}

TEST(ChaosDeterminismTest,
     EntityTransientFaultsCompleteAndQuarantineOnlyTerminalSources) {
  FaultPlan plan;
  plan.seed = kChaosSeed;
  plan.transient_rate = 0.2;
  plan.slow_rate = 0.1;
  plan.terminal_rate = 0.25;
  const EntityChaosResult result = RunEntityChaos(2, &plan);
  // The pipeline must complete on the survivors...
  EXPECT_GT(result.triples, 0u);
  EXPECT_GT(result.ingested, 0u);
  ASSERT_EQ(result.degradation.sources.size(), 5u);
  // ...and quarantine exactly the terminally-dead sources: 20%
  // transients never exhaust the retry budget for this seed.
  const FaultInjector injector(plan);
  for (const SourceDegradation& row : result.degradation.sources) {
    EXPECT_EQ(row.quarantined, injector.IsTerminal(row.source))
        << row.source;
    if (!row.quarantined && row.retries > 0) {
      EXPECT_TRUE(row.final_status.ok());
    }
  }
  EXPECT_EQ(result.ingested + result.degradation.quarantined(), 5u);
}

TEST(ChaosDeterminismTest, EntityChaosEventCountersMatchDegradation) {
  // The global retry/breaker event counters must agree exactly with the
  // degradation report: every row's attempts land in retry_attempts,
  // every quarantined source is exactly one giveup, every survivor
  // exactly one success. Events are process-global, so assert deltas.
  const FaultPlan plan = FaultPlan::Uniform(kChaosSeed, 0.25);
  const events::ProcessEvents& ev = events::Process();
  const uint64_t attempts0 = ev.retry_attempts.load();
  const uint64_t successes0 = ev.retry_successes.load();
  const uint64_t giveups0 = ev.retry_giveups.load();
  const EntityChaosResult result = RunEntityChaos(2, &plan);
  uint64_t report_attempts = 0;
  for (const SourceDegradation& row : result.degradation.sources) {
    report_attempts += row.attempts;
  }
  EXPECT_EQ(ev.retry_attempts.load() - attempts0, report_attempts);
  EXPECT_EQ(ev.retry_successes.load() - successes0,
            static_cast<uint64_t>(result.ingested));
  EXPECT_EQ(ev.retry_giveups.load() - giveups0,
            static_cast<uint64_t>(result.degradation.quarantined()));
}

struct TextRichChaosResult {
  uint64_t fingerprint = 0;
  TextRichBuildReport report;
  DegradationReport degradation;
};

TextRichChaosResult RunTextRichChaos(size_t num_threads,
                                     const FaultPlan* plan) {
  Rng rng(7);
  synth::CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 200;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 2500;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  TextRichBuildOptions opt;
  opt.exec = ExecPolicy::WithThreads(num_threads);
  opt.faults = plan;
  opt.retry.max_attempts = 5;
  auto build = TryBuildTextRichKg(catalog, behavior, opt, rng);
  EXPECT_TRUE(build.ok()) << build.status();
  TextRichChaosResult result;
  result.fingerprint = graph::TripleSetFingerprint(build->kg);
  result.report = build->report;
  result.degradation = std::move(build->degradation);
  return result;
}

TEST(ChaosDeterminismTest, TextRichPipelineIdenticalAt1_2_8Threads) {
  const FaultPlan plan = FaultPlan::Uniform(kChaosSeed, 0.25);
  const TextRichChaosResult serial = RunTextRichChaos(1, &plan);
  ASSERT_GT(serial.report.kg_triples, 0u);
  for (size_t threads : {2u, 8u}) {
    const TextRichChaosResult parallel = RunTextRichChaos(threads, &plan);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " threads";
    EXPECT_EQ(parallel.report.extracted_assertions,
              serial.report.extracted_assertions);
    EXPECT_EQ(parallel.report.pages_quarantined,
              serial.report.pages_quarantined);
    EXPECT_EQ(parallel.report.kg_triples, serial.report.kg_triples);
    ExpectSameDegradation(parallel.degradation, serial.degradation,
                          std::to_string(threads) + " threads");
  }
}

TEST(ChaosDeterminismTest, TextRichZeroFaultPlanBitIdenticalToNoPlan) {
  const FaultPlan zero;
  const TextRichChaosResult bare = RunTextRichChaos(2, nullptr);
  const TextRichChaosResult zeroed = RunTextRichChaos(2, &zero);
  EXPECT_EQ(zeroed.fingerprint, bare.fingerprint);
  EXPECT_EQ(zeroed.report.extracted_assertions,
            bare.report.extracted_assertions);
  EXPECT_TRUE(bare.degradation.sources.empty());
  EXPECT_EQ(zeroed.degradation.sources.size(), 200u);
  EXPECT_EQ(zeroed.degradation.quarantined(), 0u);
}

TEST(ChaosDeterminismTest,
     TextRichTransientFaultsCompleteAndQuarantineOnlyTerminalPages) {
  FaultPlan plan;
  plan.seed = kChaosSeed;
  plan.transient_rate = 0.2;
  plan.terminal_rate = 0.05;
  const TextRichChaosResult result = RunTextRichChaos(2, &plan);
  EXPECT_GT(result.report.kg_triples, 0u);
  const FaultInjector injector(plan);
  size_t terminal_pages = 0;
  for (const SourceDegradation& row : result.degradation.sources) {
    EXPECT_EQ(row.quarantined, injector.IsTerminal(row.source))
        << row.source;
    if (injector.IsTerminal(row.source)) ++terminal_pages;
  }
  EXPECT_EQ(result.report.pages_quarantined, terminal_pages);
  EXPECT_GT(terminal_pages, 0u);
  EXPECT_LT(terminal_pages, result.degradation.sources.size() / 4);
  // Degradation is proportional: surviving pages still produce
  // assertions at the healthy per-page rate (no cliff).
  const TextRichChaosResult healthy = RunTextRichChaos(2, nullptr);
  const double surviving =
      1.0 - static_cast<double>(terminal_pages) /
                static_cast<double>(result.degradation.sources.size());
  const double yield_ratio =
      static_cast<double>(result.report.extracted_assertions) /
      static_cast<double>(healthy.report.extracted_assertions);
  EXPECT_GT(yield_ratio, surviving - 0.1);
  EXPECT_LE(yield_ratio, 1.0);
}

}  // namespace
}  // namespace kg::core
