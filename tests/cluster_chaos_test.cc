// Chaos drill for WAL shipping: with seeded drops, garbles, latency,
// and connection refusals injected on every inter-shard link, replicas
// must still converge to the primary's exact state (the receiver's
// verify-before-apply plus resubscribe-from-verified-offset makes every
// fault recoverable), and the served outcome must be a pure function of
// the seed — two identical-seed runs end in byte-identical answers.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fault.h"
#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "store/versioned_store.h"
#include "store/wal.h"

namespace kg::cluster {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using serve::Query;
using serve::QueryResult;
using store::Mutation;

const Provenance kProv{"chaos_test", 1.0, 0};

constexpr int kNodes = 20;

std::string Node(int i) { return "n" + std::to_string(i % kNodes); }

KnowledgeGraph BaseKg() {
  KnowledgeGraph kg;
  for (int i = 0; i < kNodes; ++i) {
    kg.AddTriple(Node(i), "links", Node(i * 3 + 1), NodeKind::kEntity,
                 NodeKind::kEntity, kProv);
    kg.AddTriple(Node(i), "type", "Thing", NodeKind::kEntity,
                 NodeKind::kClass, kProv);
  }
  return kg;
}

std::vector<Mutation> SeededBatch(Rng& rng, int size) {
  std::vector<Mutation> batch;
  for (int i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.25)) {
      batch.push_back(Mutation::Retract(
          Node(static_cast<int>(rng.UniformInt(0, kNodes - 1))), "links",
          Node(static_cast<int>(rng.UniformInt(0, kNodes - 1))),
          NodeKind::kEntity, NodeKind::kEntity));
    } else {
      batch.push_back(Mutation::Upsert(
          Node(static_cast<int>(rng.UniformInt(0, kNodes - 1))), "links",
          Node(static_cast<int>(rng.UniformInt(0, kNodes - 1))),
          NodeKind::kEntity, NodeKind::kEntity,
          Provenance{"chaos_feed", rng.UniformDouble(),
                     rng.UniformInt(0, 100)}));
    }
  }
  return batch;
}

std::vector<Query> Workload() {
  std::vector<Query> queries;
  for (int i = 0; i < kNodes; ++i) {
    queries.push_back(Query::PointLookup(Node(i), "links"));
    queries.push_back(Query::Neighborhood(Node(i)));
    queries.push_back(Query::TopKRelated(Node(i), 4));
  }
  queries.push_back(Query::AttributeByType("Thing", "links"));
  return queries;
}

/// One full chaos run: mutate through the router while the injector
/// mangles every shipping link, quiesce, kill every primary, and serve
/// the workload from replicas alone. Returns the served answers;
/// asserts they match the single-store reference byte-for-byte
/// (divergence 0, the bench_cluster gate, proven here at test scale).
std::vector<QueryResult> RunChaos(uint64_t seed, double fault_rate,
                                  int catchup_timeout_ms) {
  // No terminal_rate: a terminally-dead dial channel would be chaos the
  // protocol is *supposed* to lose to (that story is the supervisor's,
  // with a revived endpoint). Transient faults drive dial refusals,
  // dropped frames, and garbled reads — all recoverable.
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_rate = fault_rate;
  plan.slow_rate = fault_rate;
  const FaultInjector injector(plan);

  const KnowledgeGraph base = BaseKg();
  auto reference = store::VersionedKgStore::Open(base, {});
  EXPECT_TRUE(reference.ok());

  ClusterOptions opts;
  opts.num_shards = 2;
  opts.replicas_per_shard = 1;
  opts.injector = &injector;
  opts.heartbeat_interval_ms = 2;
  opts.receiver.heartbeat_timeout_ms = 100;
  opts.receiver.dial_retry_ms = 1;
  opts.receiver.max_dial_attempts = 200;
  opts.supervisor.interval_ms = 5;
  auto cluster = Cluster::Create(base, opts);
  EXPECT_TRUE(cluster.ok());

  Rng rng(seed);
  for (int phase = 0; phase < 4; ++phase) {
    const std::vector<Mutation> batch = SeededBatch(rng, 10);
    EXPECT_TRUE((*reference)->ApplyBatch(batch).ok());
    EXPECT_TRUE((*cluster)->Apply(batch).ok());
  }

  // Convergence through chaos: every lost/garbled/refused exchange must
  // be healed by a resubscribe from the verified offset.
  EXPECT_TRUE((*cluster)->WaitForCatchUp(catchup_timeout_ms));
  for (size_t s = 0; s < opts.num_shards; ++s) (*cluster)->KillPrimary(s);

  std::vector<QueryResult> answers;
  for (const Query& q : Workload()) {
    auto expected = (*reference)->TryExecute(q);
    auto actual = (*cluster)->Execute(q);
    EXPECT_TRUE(expected.ok());
    EXPECT_TRUE(actual.ok()) << actual.status();
    if (expected.ok() && actual.ok()) {
      EXPECT_EQ(*actual, *expected) << "divergence under chaos, seed "
                                    << seed;
      answers.push_back(*actual);
    }
  }
  EXPECT_EQ((*cluster)->router().stats().shed, 0u);
  return answers;
}

TEST(ClusterChaosTest, ShippingConvergesUnderModerateChaos) {
  for (const uint64_t seed : {101u, 202u, 303u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RunChaos(seed, 0.05, 30000);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(ClusterChaosTest, OutcomeIsAPureFunctionOfTheSeed) {
  const std::vector<QueryResult> first = RunChaos(404, 0.1, 30000);
  const std::vector<QueryResult> second = RunChaos(404, 0.1, 30000);
  EXPECT_EQ(first, second);
}

TEST(ClusterChaosTest, SurvivesHeavyFaultRates) {
  RunChaos(505, 0.25, 60000);
}

}  // namespace
}  // namespace kg::cluster
