// Property battery for the scale-world generator + binary snapshot
// pipeline. The load-bearing equivalences:
//   - streaming build == batch Compile (same fingerprint, same answers);
//   - binary round-trip (memory and mmap file) preserves the fingerprint
//     and serves byte-identical answers to the TSV round-trip, across
//     all four query classes, cache on/off, 1/2/8 threads.

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_policy.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_binary.h"
#include "synth/scale_world.h"

namespace kg::serve {
namespace {

synth::ScaleWorldSpec SmallSpec(uint64_t seed, uint64_t entities) {
  synth::ScaleWorldSpec spec;
  spec.seed = seed;
  spec.num_entities = entities;
  spec.num_categories = 7;
  spec.num_brands = 11;
  spec.related_per_entity = 3;
  return spec;
}

std::vector<Query> Workload(const synth::ScaleWorldSpec& spec, size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(synth::ScaleSampleQuery(spec, i));
  }
  return queries;
}

TEST(ScaleWorldTest, StreamingBuildMatchesBatchCompile) {
  for (const uint64_t seed : {1ULL, 42ULL, 977ULL}) {
    const synth::ScaleWorldSpec spec = SmallSpec(seed, 300);
    const KgSnapshot streamed = synth::BuildScaleSnapshot(spec);
    const KgSnapshot compiled =
        KgSnapshot::Compile(synth::BuildScaleKnowledgeGraph(spec));
    EXPECT_EQ(streamed.Fingerprint(), compiled.Fingerprint()) << seed;
    EXPECT_EQ(streamed.num_nodes(), compiled.num_nodes());
    EXPECT_EQ(streamed.num_triples(), compiled.num_triples());
    EXPECT_EQ(RecomputeFingerprint(streamed), streamed.Fingerprint());
    // Same bytes end to end: the serialized forms must be identical too.
    EXPECT_EQ(SerializeSnapshotBinary(streamed),
              SerializeSnapshotBinary(compiled));
  }
}

TEST(ScaleWorldTest, SpecAccountingMatchesBuiltWorld) {
  const synth::ScaleWorldSpec spec = SmallSpec(5, 250);
  const KgSnapshot snap = synth::BuildScaleSnapshot(spec);
  EXPECT_EQ(snap.num_nodes(), spec.TotalNodes());
  EXPECT_EQ(snap.num_triples(), spec.TotalTriples());
}

TEST(ScaleWorldTest, TripleStreamReplaysIdentically) {
  const synth::ScaleWorldSpec spec = SmallSpec(9, 120);
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> first, second;
  synth::ForEachScaleTriple(spec, [&](uint32_t s, uint32_t p, uint32_t o) {
    first.emplace_back(s, p, o);
  });
  synth::ForEachScaleTriple(spec, [&](uint32_t s, uint32_t p, uint32_t o) {
    second.emplace_back(s, p, o);
  });
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
}

TEST(ScalePropertyTest, BinaryAnswersMatchTsvAnswersEverywhere) {
  const synth::ScaleWorldSpec spec = SmallSpec(42, 400);
  const KgSnapshot built = synth::BuildScaleSnapshot(spec);

  // Representation A: binary round-trip through a file, mmap-loaded.
  const std::string path = ::testing::TempDir() + "/scale_prop.snap";
  ASSERT_TRUE(SaveSnapshotBinary(built, path).ok());
  auto binary = LoadSnapshotBinary(path);
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(binary->Fingerprint(), built.Fingerprint());

  // Representation B: TSV text round-trip (re-parsed, re-built).
  auto tsv = DeserializeSnapshot(SerializeSnapshot(built));
  ASSERT_TRUE(tsv.ok()) << tsv.status().ToString();
  EXPECT_EQ(tsv->Fingerprint(), built.Fingerprint());

  // A workload hitting all four query classes (ScaleSampleQuery cycles
  // point lookups, neighborhoods, attribute-by-type, top-k).
  const std::vector<Query> workload = Workload(spec, 400);
  bool saw_kind[kNumQueryKinds] = {};
  for (const Query& q : workload) saw_kind[static_cast<size_t>(q.kind)] = true;
  for (size_t k = 0; k < kNumQueryKinds; ++k) {
    EXPECT_TRUE(saw_kind[k]) << "workload misses query class " << k;
  }

  for (const size_t cache_capacity : {size_t{0}, size_t{64}}) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ServeOptions options;
      options.cache_capacity = cache_capacity;
      options.exec = ExecPolicy::WithThreads(threads);
      const QueryEngine binary_engine(*binary, options);
      const QueryEngine tsv_engine(*tsv, options);
      const auto binary_answers = binary_engine.BatchExecute(workload);
      const auto tsv_answers = tsv_engine.BatchExecute(workload);
      ASSERT_EQ(binary_answers.size(), workload.size());
      EXPECT_EQ(binary_answers, tsv_answers)
          << "cache=" << cache_capacity << " threads=" << threads;
      // The cached/parallel path must also match the uncached serial
      // reference on the same snapshot.
      for (size_t i = 0; i < workload.size(); i += 37) {
        EXPECT_EQ(binary_answers[i], binary_engine.ExecuteUncached(workload[i]))
            << "cache=" << cache_capacity << " threads=" << threads
            << " query=" << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ScalePropertyTest, MmapLoadedFingerprintMatchesRecompute) {
  const synth::ScaleWorldSpec spec = SmallSpec(7, 256);
  const KgSnapshot built = synth::BuildScaleSnapshot(spec);
  const std::string path = ::testing::TempDir() + "/scale_fp.snap";
  ASSERT_TRUE(SaveSnapshotBinary(built, path).ok());
  for (const BinaryVerify verify :
       {BinaryVerify::kHeader, BinaryVerify::kChecksum}) {
    auto loaded = LoadSnapshotBinary(path, verify);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    // Stored fingerprint survives the file, and recomputing it from the
    // mmap'd postings reproduces it — the content really round-tripped.
    EXPECT_EQ(loaded->Fingerprint(), built.Fingerprint());
    EXPECT_EQ(RecomputeFingerprint(*loaded), built.Fingerprint());
  }
  std::remove(path.c_str());
}

TEST(ScalePropertyTest, WorldsWithDegenerateShapesRoundTrip) {
  // Corner worlds: single entity, no related edges, one category/brand.
  std::vector<synth::ScaleWorldSpec> specs;
  specs.push_back(SmallSpec(3, 1));
  specs.push_back(SmallSpec(4, 50));
  specs.back().related_per_entity = 0;
  specs.push_back(SmallSpec(6, 17));
  specs.back().num_categories = 1;
  specs.back().num_brands = 1;
  for (const synth::ScaleWorldSpec& spec : specs) {
    const KgSnapshot built = synth::BuildScaleSnapshot(spec);
    auto back = DeserializeSnapshotBinary(SerializeSnapshotBinary(built));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->Fingerprint(), built.Fingerprint());
    auto tsv = DeserializeSnapshot(SerializeSnapshot(built));
    ASSERT_TRUE(tsv.ok()) << tsv.status().ToString();
    EXPECT_EQ(tsv->Fingerprint(), built.Fingerprint());
  }
}

}  // namespace
}  // namespace kg::serve
