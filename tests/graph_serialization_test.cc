#include "graph/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "synth/entity_universe.h"

namespace kg::graph {
namespace {

KnowledgeGraph SampleKg() {
  KnowledgeGraph kg;
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, {"wiki", 0.9, 5});
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, {"imdb", 0.8, 7});
  kg.AddTriple("m1", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, {"wiki", 1.0, 5});
  kg.AddTriple("Movie", "subtype_of", "Thing", NodeKind::kClass,
               NodeKind::kClass, {"ontology", 1.0, 0});
  return kg;
}

std::set<std::string> TripleStrings(const KnowledgeGraph& kg) {
  std::set<std::string> out;
  for (TripleId t : kg.AllTriples()) out.insert(kg.TripleToString(t));
  return out;
}

TEST(SerializationTest, RoundTripPreservesTriples) {
  const auto kg = SampleKg();
  auto loaded = DeserializeKg(SerializeKg(kg));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_triples(), kg.num_triples());
  EXPECT_EQ(TripleStrings(*loaded), TripleStrings(kg));
}

TEST(SerializationTest, RoundTripPreservesKindsAndProvenance) {
  const auto kg = SampleKg();
  auto loaded = DeserializeKg(SerializeKg(kg));
  ASSERT_TRUE(loaded.ok());
  const NodeId m1 = *loaded->FindNode("m1", NodeKind::kEntity);
  EXPECT_TRUE(loaded->FindNode("Movie", NodeKind::kClass).ok());
  EXPECT_TRUE(loaded->FindNode("The Harbor", NodeKind::kText).ok());
  const auto title = *loaded->FindPredicate("title");
  const auto objects = loaded->Objects(m1, title);
  ASSERT_EQ(objects.size(), 1u);
  const TripleId t = loaded->FindTriple(m1, title, objects[0]);
  ASSERT_EQ(loaded->provenance(t).size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->MaxConfidence(t), 0.9);
}

TEST(SerializationTest, EscapesSpecialCharacters) {
  KnowledgeGraph kg;
  kg.AddTriple("with\ttab", "p", "with\nnewline", NodeKind::kEntity,
               NodeKind::kText, {"s\\o", 1.0, 0});
  auto loaded = DeserializeKg(SerializeKg(kg));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->FindNode("with\ttab", NodeKind::kEntity).ok());
  EXPECT_TRUE(loaded->FindNode("with\nnewline", NodeKind::kText).ok());
}

TEST(SerializationTest, RemovedTriplesNotEmitted) {
  auto kg = SampleKg();
  kg.RemoveTriple(kg.AllTriples().front());
  auto loaded = DeserializeKg(SerializeKg(kg));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), kg.num_triples());
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeKg("too\tfew\tfields\n").ok());
  EXPECT_FALSE(
      DeserializeKg("s\tbadkind\tp\to\ttext\tsrc\t1.0\t0\n").ok());
  EXPECT_FALSE(
      DeserializeKg("s\tentity\tp\to\ttext\tsrc\tnotanum\t0\n").ok());
}

TEST(SerializationTest, FileRoundTrip) {
  const auto kg = SampleKg();
  const std::string path = ::testing::TempDir() + "/kg_serial_test.tsv";
  ASSERT_TRUE(SaveKg(kg, path).ok());
  auto loaded = LoadKg(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(TripleStrings(*loaded), TripleStrings(kg));
  std::remove(path.c_str());
}

class SerializationPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationPropertyTest, UniverseKgRoundTrips) {
  synth::UniverseOptions opt;
  opt.num_people = 60;
  opt.num_movies = 40;
  opt.num_songs = 20;
  Rng rng(GetParam());
  const auto kg =
      synth::EntityUniverse::Generate(opt, rng).ToKnowledgeGraph();
  auto loaded = DeserializeKg(SerializeKg(kg));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), kg.num_triples());
  EXPECT_EQ(TripleStrings(*loaded), TripleStrings(kg));
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(SerializeKg(*loaded).size(), SerializeKg(kg).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationPropertyTest,
                         ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace kg::graph
