// kg::cluster routing semantics on crafted graphs: subject-hash
// partitioning, deterministic scatter-gather merges, the two-phase
// top-k decomposition (not per-shard decomposable), the bounded
// staleness gate (stale replicas are skipped, not served), failover
// order, and breaker probing after a revive.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "store/versioned_store.h"
#include "store/wal.h"

namespace kg::cluster {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using serve::Query;
using serve::QueryResult;
using store::Mutation;

const Provenance kProv{"router_test", 1.0, 0};

// A small graph with the corners the router must reproduce exactly:
// shared neighbors with count ties, a self-loop, text-valued
// attributes, class-typed nodes, and names with tabs/newlines/NULs
// (only *predicates* reserve tabs in the row grammar).
KnowledgeGraph CraftedKg() {
  KnowledgeGraph kg;
  const std::vector<std::string> people = {"ann", "bob", "cat", "dan",
                                           "eve"};
  for (const std::string& p : people) {
    kg.AddTriple(p, "type", "Person", NodeKind::kEntity, NodeKind::kClass,
                 kProv);
  }
  kg.AddTriple("ann", "knows", "bob", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("ann", "knows", "cat", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("bob", "knows", "dan", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("cat", "knows", "dan", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("bob", "knows", "eve", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("cat", "knows", "eve", NodeKind::kEntity, NodeKind::kEntity,
               kProv);
  kg.AddTriple("dan", "knows", "dan", NodeKind::kEntity, NodeKind::kEntity,
               kProv);  // Self-loop.
  kg.AddTriple("ann", "name", "Ann A.", NodeKind::kEntity, NodeKind::kText,
               kProv);
  kg.AddTriple("bob", "name", "Bob B.", NodeKind::kEntity, NodeKind::kText,
               kProv);
  kg.AddTriple(std::string("nul\0name", 8), "knows", "tab\there",
               NodeKind::kEntity, NodeKind::kEntity, kProv);
  kg.AddTriple("tab\there", "knows", "line\nbreak", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  return kg;
}

std::vector<Query> CraftedQueries() {
  std::vector<Query> queries;
  for (const std::string& node : {"ann", "bob", "cat", "dan", "eve",
                                  "tab\there", "missing"}) {
    queries.push_back(Query::PointLookup(node, "knows"));
    queries.push_back(Query::Neighborhood(node));
    queries.push_back(Query::TopKRelated(node, 10));
    queries.push_back(Query::TopKRelated(node, 1));
    queries.push_back(Query::TopKRelated(node, 0));
  }
  queries.push_back(Query::AttributeByType("Person", "name"));
  queries.push_back(Query::AttributeByType("Person", "knows"));
  queries.push_back(Query::AttributeByType("NoSuchType", "name"));
  return queries;
}

TEST(ShardOfTest, DeterministicInRangeAndKindTagged) {
  for (size_t shards : {1, 2, 4, 7}) {
    const size_t a = ShardOf("ann", NodeKind::kEntity, shards);
    EXPECT_LT(a, shards);
    EXPECT_EQ(a, ShardOf("ann", NodeKind::kEntity, shards));
  }
  EXPECT_EQ(ShardOf("anything", NodeKind::kText, 1), 0u);
  // The kind participates in the key: "E:x" and "T:x" are different
  // partition keys (they may still collide mod small shard counts).
  bool differs = false;
  for (const char* name : {"a", "b", "c", "d", "e", "f", "g", "h"}) {
    if (ShardOf(name, NodeKind::kEntity, 64) !=
        ShardOf(name, NodeKind::kText, 64)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(PartitionTest, DisjointCoveringAndProvenancePreserving) {
  KnowledgeGraph kg = CraftedKg();
  // A second provenance on an existing triple must survive verbatim.
  kg.AddTriple("ann", "knows", "bob", NodeKind::kEntity, NodeKind::kEntity,
               Provenance{"second_source", 0.5, 42});
  const auto parts = PartitionBySubject(kg, 4);
  size_t total = 0;
  for (const auto& part : parts) total += part.AllTriples().size();
  EXPECT_EQ(total, kg.AllTriples().size());
  for (graph::TripleId id : kg.AllTriples()) {
    const graph::Triple& t = kg.triple(id);
    const size_t shard =
        ShardOf(kg.NodeName(t.subject), kg.GetNodeKind(t.subject), 4);
    const auto s = parts[shard].FindNode(kg.NodeName(t.subject),
                                         kg.GetNodeKind(t.subject));
    ASSERT_TRUE(s.ok());
    const auto p = parts[shard].FindPredicate(kg.PredicateName(t.predicate));
    ASSERT_TRUE(p.ok());
    const auto o = parts[shard].FindNode(kg.NodeName(t.object),
                                         kg.GetNodeKind(t.object));
    ASSERT_TRUE(o.ok());
    const graph::TripleId local = parts[shard].FindTriple(*s, *p, *o);
    ASSERT_NE(local, graph::kInvalidTriple);
    EXPECT_EQ(parts[shard].provenance(local).size(),
              kg.provenance(id).size());
  }
}

TEST(MergeShardResultsTest, SortedMergeIsDeterministic) {
  using serve::MergeShardResults;
  EXPECT_TRUE(MergeShardResults({}).empty());
  EXPECT_EQ(MergeShardResults({{"a", "c"}, {}, {"b", "d"}}),
            (QueryResult{"a", "b", "c", "d"}));
  // Equal rows interleave stably (first-range-first == shard-index
  // order); the merged bytes are identical either way.
  EXPECT_EQ(MergeShardResults({{"a", "m"}, {"m", "z"}}),
            (QueryResult{"a", "m", "m", "z"}));
  EXPECT_EQ(MergeShardResults({{"x"}, {"x"}, {"x"}}),
            (QueryResult{"x", "x", "x"}));
}

TEST(RouterTest, CraftedAnswersMatchSingleStoreAtEveryShardCount) {
  const KnowledgeGraph kg = CraftedKg();
  auto reference = store::VersionedKgStore::Open(kg, {});
  ASSERT_TRUE(reference.ok());
  for (size_t shards : {1, 2, 4}) {
    ClusterOptions opts;
    opts.num_shards = shards;
    auto cluster = Cluster::Create(kg, opts);
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    for (const Query& q : CraftedQueries()) {
      auto expected = (*reference)->TryExecute(q);
      auto actual = (*cluster)->Execute(q);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(*actual, *expected)
          << "shards=" << shards << " key=" << q.CacheKey();
    }
    EXPECT_EQ((*cluster)->router().stats().shed, 0u);
  }
}

TEST(RouterTest, MutationsRouteBySubjectAndStayIdentical) {
  const KnowledgeGraph kg = CraftedKg();
  auto reference = store::VersionedKgStore::Open(kg, {});
  ASSERT_TRUE(reference.ok());
  ClusterOptions opts;
  opts.num_shards = 4;
  auto cluster = Cluster::Create(kg, opts);
  ASSERT_TRUE(cluster.ok());

  std::vector<Mutation> batch;
  batch.push_back(Mutation::Upsert("eve", "knows", "ann", NodeKind::kEntity,
                                   NodeKind::kEntity, kProv));
  batch.push_back(Mutation::Retract("bob", "knows", "dan",
                                    NodeKind::kEntity, NodeKind::kEntity));
  batch.push_back(Mutation::Upsert("fay", "type", "Person",
                                   NodeKind::kEntity, NodeKind::kClass,
                                   kProv));
  batch.push_back(Mutation::Upsert("fay", "knows", "eve", NodeKind::kEntity,
                                   NodeKind::kEntity, kProv));
  ASSERT_TRUE((*reference)->ApplyBatch(batch).ok());
  ASSERT_TRUE((*cluster)->Apply(batch).ok());

  for (const Query& q : CraftedQueries()) {
    auto expected = (*reference)->TryExecute(q);
    auto actual = (*cluster)->Execute(q);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(*actual, *expected);
  }
}

TEST(RouterTest, StaleReplicaIsSkippedThenShedWhenNoOneCanServe) {
  ClusterOptions opts;
  opts.num_shards = 1;
  opts.replicas_per_shard = 1;
  opts.heartbeat_interval_ms = 2;
  opts.receiver.dial_retry_ms = 1;
  opts.receiver.max_dial_attempts = 5;
  auto cluster = Cluster::Create(CraftedKg(), opts);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->WaitForCatchUp(5000));

  // The replica misses a committed write, then the primary dies: a
  // live-but-stale replica must NOT serve under staleness 0 — the
  // query is shed with kUnavailable instead of a silently stale
  // answer.
  (*cluster)->KillReplica(0, 0);
  std::vector<Mutation> batch = {Mutation::Upsert(
      "ann", "knows", "eve", NodeKind::kEntity, NodeKind::kEntity, kProv)};
  ASSERT_TRUE((*cluster)->Apply(batch).ok());
  (*cluster)->KillPrimary(0);
  (*cluster)->ReviveReplica(0, 0);  // Alive, but cannot catch up.

  const Query q = Query::PointLookup("ann", "knows");
  auto shed = (*cluster)->Execute(q);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_GT((*cluster)->router().stats().shed, 0u);
  EXPECT_GT((*cluster)->router().stats().stale_rejects, 0u);

  // Primary back: the write ships, the replica catches up, and the
  // whole group serves again.
  ASSERT_TRUE((*cluster)->RevivePrimary(0).ok());
  ASSERT_TRUE((*cluster)->WaitForCatchUp(5000));
  auto served = (*cluster)->Execute(q);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(*served, (QueryResult{"E:bob", "E:cat", "E:eve"}));
}

TEST(RouterTest, BreakerOpensOnDeadPrimaryAndProbesItBack) {
  ClusterOptions opts;
  opts.num_shards = 1;
  opts.replicas_per_shard = 1;
  opts.heartbeat_interval_ms = 2;
  opts.breaker_failure_threshold = 2;
  opts.breaker_probe_interval = 3;
  auto cluster = Cluster::Create(CraftedKg(), opts);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->WaitForCatchUp(5000));
  (*cluster)->KillPrimary(0);

  const Query q = Query::PointLookup("ann", "knows");
  // Every query fails over to the caught-up replica; after the breaker
  // threshold the primary is not even dialed anymore.
  for (int i = 0; i < 8; ++i) {
    auto r = (*cluster)->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  const auto mid = (*cluster)->router().stats();
  EXPECT_GE(mid.failovers, 8u);

  // After a revive, open-breaker probes rediscover the primary within
  // breaker_probe_interval selections and traffic returns to it.
  ASSERT_TRUE((*cluster)->RevivePrimary(0).ok());
  for (int i = 0; i < 8; ++i) {
    auto r = (*cluster)->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  const auto settled = (*cluster)->router().stats();
  EXPECT_GT(settled.probes, 0u);
  EXPECT_LT(settled.failovers, mid.failovers + 8);
  // Traffic has returned to the primary: one more query, zero new
  // failovers.
  auto r = (*cluster)->Execute(q);
  ASSERT_TRUE(r.ok()) << r.status();
  const auto after = (*cluster)->router().stats();
  EXPECT_EQ(after.failovers, settled.failovers);
  EXPECT_EQ(after.shed, 0u);
}

}  // namespace
}  // namespace kg::cluster
