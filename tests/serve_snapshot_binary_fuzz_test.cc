// Format-fuzz battery for the binary snapshot container. Three promises
// under attack:
//   1. kChecksum verification rejects EVERY corruption — truncation at
//      any byte offset, any single-bit flip anywhere in the file
//      (header, fingerprint, section table, payload, padding).
//   2. No input — garbage, truncated, or structurally-valid-but-
//      content-mutated — ever crashes the loader or a snapshot built
//      from it. kHeader mode deliberately skips the payload checksum,
//      so mutated payloads that pass structural checks get served; the
//      accessors' bounds clamping (run under KG_SANITIZE=undefined in
//      CI) is what makes that safe.
//   3. The TSV path's header counts are bounds-checked before any
//      allocation (regression for the trusted-counts hardening).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_binary.h"
#include "synth/scale_world.h"

namespace kg::serve {
namespace {

/// A small world with hostile vocabulary: names with tabs, newlines,
/// backslashes, embedded NULs, empties-after-escape — everything the
/// arena must carry byte-for-byte.
KgSnapshot HostileSnapshot() {
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"fuzz", 1.0, 0};
  using graph::NodeKind;
  const std::vector<std::string> names = {
      "plain",
      "tab\there",
      "newline\nthere",
      "backslash\\always",
      std::string("nul\0inside", 10),
      "\t\n\\",
  };
  for (size_t i = 0; i < names.size(); ++i) {
    kg.AddTriple(names[i], "rel\ttab", names[(i + 1) % names.size()],
                 NodeKind::kEntity, NodeKind::kEntity, prov);
    kg.AddTriple(names[i], "type", "c\nlass", NodeKind::kEntity,
                 NodeKind::kClass, prov);
  }
  return KgSnapshot::Compile(kg);
}

KgSnapshot ScaleSnapshot() {
  synth::ScaleWorldSpec spec;
  spec.seed = 77;
  spec.num_entities = 200;
  spec.num_categories = 8;
  return synth::BuildScaleSnapshot(spec);
}

/// Drives every read surface of a loaded snapshot. The return value
/// defeats dead-code elimination; correctness of the answers is NOT
/// asserted here (the input may be mutated garbage) — only that no read
/// escapes its bounds.
size_t ExerciseSnapshot(const KgSnapshot& snap) {
  size_t sink = 0;
  const size_t nodes = snap.num_nodes();
  const size_t preds = snap.num_predicates();
  // Render every decoded edge id exactly the way the query paths do
  // (RenderNode, merged-read retraction checks): corrupt postings can
  // put ANY uint32 into an Edge, and NodeName/NodeKindOf/PredicateName
  // must clamp it rather than index the offset tables with it.
  const auto render = [&snap, &sink](uint32_t pred_id, uint32_t node_id) {
    sink += snap.PredicateName(pred_id).size();
    sink += snap.NodeName(node_id).size();
    sink += static_cast<size_t>(snap.NodeKindOf(node_id));
  };
  for (size_t n = 0; n < nodes; ++n) {
    const NodeId id = static_cast<NodeId>(n);
    sink += snap.NodeName(id).size();
    sink += static_cast<size_t>(snap.NodeKindOf(id));
    for (const KgSnapshot::Edge& e : snap.OutEdges(id)) {
      render(e.first, e.second);  // Edge{predicate, object}
      // Expand through the decoded id the way TopKRelated's BFS does.
      sink += snap.OutEdges(e.second).size();
      sink += snap.InEdges(e.second).size();
    }
    for (const KgSnapshot::Edge& e : snap.InEdges(id)) {
      render(e.first, e.second);  // Edge{predicate, subject}
    }
    sink += snap.FindNode(snap.NodeName(id), snap.NodeKindOf(id)).ok();
  }
  for (size_t p = 0; p < preds; ++p) {
    const PredicateId id = static_cast<PredicateId>(p);
    sink += snap.PredicateName(id).size();
    for (const KgSnapshot::Edge& e : snap.PredicateEdges(id)) {
      // Edge{object, subject}: both halves are node ids.
      sink += snap.NodeName(e.first).size();
      sink += snap.NodeName(e.second).size();
      sink += static_cast<size_t>(snap.NodeKindOf(e.first));
    }
  }
  // Out-of-range ids must degrade (empty name / default kind / empty
  // range), never read or abort.
  for (const uint32_t hostile :
       {static_cast<uint32_t>(nodes), static_cast<uint32_t>(nodes + 1),
        static_cast<uint32_t>(preds), UINT32_MAX}) {
    sink += snap.NodeName(hostile).size();
    sink += static_cast<size_t>(snap.NodeKindOf(hostile));
    sink += snap.PredicateName(hostile).size();
    sink += snap.OutEdges(hostile).size();
    sink += snap.InEdges(hostile).size();
    sink += snap.PredicateEdges(hostile).size();
  }
  if (nodes > 0 && preds > 0) {
    sink += snap.Objects(0, 0).size();
    sink += snap.Subjects(0, static_cast<NodeId>(nodes - 1)).size();
    sink += snap.CountObjects(static_cast<NodeId>(nodes - 1), 0);
    sink += snap.HasTriple(0, 0, 0);
  }
  const QueryEngine engine(snap);
  sink += engine.Execute(Query::Neighborhood("plain")).size();
  sink += engine.Execute(Query::PointLookup("e000000001", "has_brand")).size();
  // TopKRelated BFS-expands decoded edge targets through OutEdges/
  // InEdges and renders the winners; runs on whatever ids survive.
  sink += engine.Execute(Query::TopKRelated("e000000001", 5)).size();
  sink += engine.Execute(Query::TopKRelated("plain", 3)).size();
  return sink;
}

TEST(SnapshotBinaryFuzzTest, RoundTripsCleanly) {
  for (const KgSnapshot& snap : {HostileSnapshot(), ScaleSnapshot()}) {
    const std::string bytes = SerializeSnapshotBinary(snap);
    auto back = DeserializeSnapshotBinary(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->Fingerprint(), snap.Fingerprint());
    EXPECT_EQ(back->num_nodes(), snap.num_nodes());
    EXPECT_EQ(back->num_triples(), snap.num_triples());
    EXPECT_EQ(RecomputeFingerprint(*back), back->Fingerprint());
    EXPECT_EQ(SerializeSnapshotBinary(*back), bytes);  // deterministic
  }
}

TEST(SnapshotBinaryFuzzTest, RejectsTruncationAtEveryByteOffset) {
  const std::string bytes = SerializeSnapshotBinary(HostileSnapshot());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = DeserializeSnapshotBinary(bytes.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "accepted truncation to " << cut << " of "
                              << bytes.size() << " bytes";
  }
}

TEST(SnapshotBinaryFuzzTest, RejectsEveryBitFlipUnderChecksumVerify) {
  const std::string bytes = SerializeSnapshotBinary(HostileSnapshot());
  ASSERT_LT(bytes.size(), 16384u) << "keep the exhaustive flip loop cheap";
  std::string mutated = bytes;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      auto result =
          DeserializeSnapshotBinary(mutated, BinaryVerify::kChecksum);
      EXPECT_FALSE(result.ok())
          << "accepted bit flip at byte " << byte << " bit " << bit;
      mutated[byte] = bytes[byte];
    }
  }
}

TEST(SnapshotBinaryFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(31);
  size_t accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string soup;
    const size_t len = rng.UniformIndex(1200);
    soup.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    for (const BinaryVerify verify :
         {BinaryVerify::kHeader, BinaryVerify::kChecksum}) {
      auto result = DeserializeSnapshotBinary(soup, verify);
      if (result.ok()) {
        ++accepted;
        ExerciseSnapshot(*result);
      }
    }
  }
  // Blind garbage essentially never carries the magic + checksums.
  EXPECT_EQ(accepted, 0u);
}

TEST(SnapshotBinaryFuzzTest, MutatedPayloadsServeWithoutCrashingUnderHeaderVerify) {
  const std::string bytes = SerializeSnapshotBinary(ScaleSnapshot());
  Rng rng(37);
  size_t served = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutated = bytes;
    // A burst of byte mutations in the payload (arena offsets, posting
    // bytes, index slots...). The header stays intact, so kHeader-mode
    // structural checks pass and the corrupt content is actually read.
    const int flips = static_cast<int>(rng.UniformInt(1, 24));
    for (int f = 0; f < flips; ++f) {
      const size_t at =
          kBinarySnapshotHeaderSize +
          rng.UniformIndex(mutated.size() - kBinarySnapshotHeaderSize);
      mutated[at] = static_cast<char>(rng.UniformInt(0, 255));
    }
    ASSERT_FALSE(
        DeserializeSnapshotBinary(mutated, BinaryVerify::kChecksum).ok() &&
        mutated != bytes)
        << "checksum mode must reject payload mutations";
    auto result = DeserializeSnapshotBinary(mutated, BinaryVerify::kHeader);
    if (result.ok()) {
      ++served;
      ExerciseSnapshot(*result);
    }
  }
  // kHeader mode skips the payload checksum by design, so nearly every
  // mutated payload loads — the point is that serving it is memory-safe.
  EXPECT_GT(served, 300u);
}

TEST(SnapshotBinaryFuzzTest, MutatedHeadersNeverCrash) {
  const std::string bytes = SerializeSnapshotBinary(HostileSnapshot());
  Rng rng(41);
  for (int round = 0; round < 4000; ++round) {
    std::string mutated = bytes;
    const int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.UniformIndex(kBinarySnapshotHeaderSize)] =
          static_cast<char>(rng.UniformInt(0, 255));
    }
    for (const BinaryVerify verify :
         {BinaryVerify::kHeader, BinaryVerify::kChecksum}) {
      auto result = DeserializeSnapshotBinary(mutated, verify);
      if (result.ok()) ExerciseSnapshot(*result);
    }
  }
}

TEST(SnapshotBinaryFuzzTest, RejectsOverlappingSectionsEvenWithValidChecksums) {
  // A crafted header can pass every per-section bounds/size/alignment
  // check while aliasing two sections onto the same bytes. That is
  // memory-safe but structurally unsound; the loader must reject it.
  std::string bytes = SerializeSnapshotBinary(HostileSnapshot());
  const auto read_u64 = [&bytes](size_t at) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[at + i]))
           << (8 * i);
    }
    return v;
  };
  const auto write_u64 = [&bytes](size_t at, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  };
  // Point the predicate arena at the node arena's bytes. Both are
  // free-form byte sections (no size-from-counts or alignment demands),
  // and the node arena is the larger, so every per-section check passes.
  const size_t table = 48;
  const uint64_t node_arena_off = read_u64(table + 16 * kSectionNodeArena);
  write_u64(table + 16 * kSectionPredArena, node_arena_off);
  // Re-stamp the header checksum; the payload bytes are untouched, so
  // the payload checksum stays valid and overlap is the only defect.
  const uint32_t fixed = Checksum32(
      std::string_view(bytes).substr(0, kBinarySnapshotHeaderSize - 4));
  for (int i = 0; i < 4; ++i) {
    bytes[kBinarySnapshotHeaderSize - 4 + i] =
        static_cast<char>((fixed >> (8 * i)) & 0xff);
  }
  for (const BinaryVerify verify :
       {BinaryVerify::kHeader, BinaryVerify::kChecksum}) {
    const auto result = DeserializeSnapshotBinary(bytes, verify);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotBinaryFuzzTest, NewerContainerVersionIsUnavailable) {
  std::string bytes = SerializeSnapshotBinary(HostileSnapshot());
  bytes[8] = 2;  // container version (little-endian u32 at offset 8)
  // Re-stamp the header checksum so version is the only difference.
  const uint32_t fixed = Checksum32(
      std::string_view(bytes).substr(0, kBinarySnapshotHeaderSize - 4));
  for (int i = 0; i < 4; ++i) {
    bytes[kBinarySnapshotHeaderSize - 4 + i] =
        static_cast<char>((fixed >> (8 * i)) & 0xff);
  }
  const auto result = DeserializeSnapshotBinary(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(SnapshotBinaryFuzzTest, FileRoundTripPreservesFingerprint) {
  const KgSnapshot snap = ScaleSnapshot();
  const std::string path = ::testing::TempDir() + "/fuzz_roundtrip.snap";
  ASSERT_TRUE(SaveSnapshotBinary(snap, path).ok());
  for (const BinaryVerify verify :
       {BinaryVerify::kHeader, BinaryVerify::kChecksum}) {
    auto loaded = LoadSnapshotBinary(path, verify);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->Fingerprint(), snap.Fingerprint());
    EXPECT_EQ(RecomputeFingerprint(*loaded), snap.Fingerprint());
  }
  EXPECT_FALSE(LoadSnapshotBinary(path + ".missing").ok());
  std::remove(path.c_str());
}

// --- TSV hardening regression -------------------------------------------

TEST(SnapshotTsvHardeningTest, RejectsHeaderCountsBeyondInputSize) {
  // The historical bug shape: a tiny input whose header claims huge
  // section counts, driving allocations before any record is parsed.
  const std::vector<std::string> hostile = {
      "kgsnap\t1\t4000000000\t1\t1\n",
      "kgsnap\t1\t1\t4000000000\t1\n",
      "kgsnap\t1\t1\t1\t4000000000\nN\tentity\ta\nP\tp\n",
      "kgsnap\t1\t999999999\t999999999\t999999999\n",
  };
  for (const std::string& data : hostile) {
    const auto result = DeserializeSnapshot(data);
    ASSERT_FALSE(result.ok()) << data;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotTsvHardeningTest, RejectsCountMismatchesBothDirections) {
  const KgSnapshot snap = HostileSnapshot();
  const std::string tsv = SerializeSnapshot(snap);
  // Claiming one more of anything than the records present must fail.
  const auto lines = std::string_view(tsv);
  const size_t header_end = lines.find('\n');
  ASSERT_NE(header_end, std::string_view::npos);
  // More records than the header claims (drop a count by editing the
  // header is brittle; instead append a duplicate record).
  const std::string extra_triple = tsv + "T\t0\t0\t0\n";
  EXPECT_FALSE(DeserializeSnapshot(extra_triple).ok());
}

TEST(SnapshotTsvHardeningTest, TsvStillRoundTripsHostileNames) {
  const KgSnapshot snap = HostileSnapshot();
  const auto back = DeserializeSnapshot(SerializeSnapshot(snap));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Fingerprint(), snap.Fingerprint());
}

}  // namespace
}  // namespace kg::serve
