// Property harness for the sharded serving cluster: for 100 seeded
// random (KG, mutation stream, workload) worlds, every answer through
// the scatter-gather router must be byte-identical to a single
// VersionedKgStore that applied the same mutations — at 1/2/4 shards
// times 0/1/2 replicas, with seeded replica kills and revives
// mid-workload, and (where replicas exist) with every primary killed
// after catch-up so the answers provably come from shipped state.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "serve/query_engine.h"
#include "store/versioned_store.h"
#include "store/wal.h"
#include "synth/entity_universe.h"

namespace kg::cluster {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using graph::TripleId;
using serve::Query;
using serve::QueryResult;
using store::Mutation;
using store::MutationOp;

constexpr int kNumWorlds = 100;
constexpr int kPhases = 3;
constexpr int kMutationsPerPhase = 8;
constexpr int kQueriesPerPhase = 6;

struct World {
  KnowledgeGraph kg;
  std::vector<std::string> names;
  std::vector<std::string> predicates;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  synth::UniverseOptions options;
  options.num_people = static_cast<size_t>(rng.UniformInt(8, 18));
  options.num_movies = static_cast<size_t>(rng.UniformInt(6, 14));
  options.num_songs = static_cast<size_t>(rng.UniformInt(3, 8));
  const auto universe = synth::EntityUniverse::Generate(options, rng);

  World world;
  world.kg = universe.ToKnowledgeGraph();
  const Provenance prov{"cluster_prop", 1.0, 0};
  for (const auto& p : universe.people()) {
    const std::string name = synth::EntityUniverse::PersonNodeName(p.id);
    world.kg.AddTriple(name, "type", "Person", NodeKind::kEntity,
                       NodeKind::kClass, prov);
    world.names.push_back(name);
  }
  for (const auto& m : universe.movies()) {
    const std::string name = synth::EntityUniverse::MovieNodeName(m.id);
    world.kg.AddTriple(name, "type", "Movie", NodeKind::kEntity,
                       NodeKind::kClass, prov);
    world.names.push_back(name);
  }
  for (const auto& s : universe.songs()) {
    world.names.push_back(synth::EntityUniverse::SongNodeName(s.id));
  }
  // Hostile names: the row grammar only reserves tabs in *predicates*,
  // so node names with tabs/newlines/NULs must shard and merge intact.
  const std::vector<std::string> hostile = {
      std::string("nul\0inside", 10), "tab\there", "line\nbreak",
      "h\xc3\xa9llo w\xc3\xb6rld", ""};
  for (size_t i = 0; i < hostile.size(); ++i) {
    world.kg.AddTriple(hostile[i], "hostile_edge",
                       hostile[(i + 1) % hostile.size()], NodeKind::kEntity,
                       NodeKind::kEntity, prov);
    world.names.push_back(hostile[i]);
  }
  world.predicates = {"knows",       "type",         "name",    "genre",
                      "directed_by", "acted_in",     "mentors",
                      "performed_by", "hostile_edge", "no_such_predicate"};
  return world;
}

NodeKind RandomKind(Rng& rng) {
  if (rng.Bernoulli(0.7)) return NodeKind::kEntity;
  return rng.Bernoulli(0.5) ? NodeKind::kText : NodeKind::kClass;
}

Mutation RandomMutation(const World& world, const KnowledgeGraph& oracle,
                        Rng& rng) {
  const double roll = rng.UniformDouble();
  if (roll < 0.4) {
    const std::vector<TripleId> live = oracle.AllTriples();
    if (!live.empty() && rng.Bernoulli(0.8)) {
      const graph::Triple& t =
          oracle.triple(live[rng.UniformIndex(live.size())]);
      return Mutation::Retract(
          oracle.NodeName(t.subject), oracle.PredicateName(t.predicate),
          oracle.NodeName(t.object), oracle.GetNodeKind(t.subject),
          oracle.GetNodeKind(t.object));
    }
    return Mutation::Retract(
        world.names[rng.UniformIndex(world.names.size())],
        world.predicates[rng.UniformIndex(world.predicates.size())],
        world.names[rng.UniformIndex(world.names.size())], RandomKind(rng),
        RandomKind(rng));
  }
  Provenance prov;
  prov.source = rng.Bernoulli(0.5) ? "feed_a" : "feed_b";
  prov.confidence = rng.UniformDouble();
  prov.timestamp = rng.UniformInt(0, 1000);
  return Mutation::Upsert(
      world.names[rng.UniformIndex(world.names.size())],
      world.predicates[rng.UniformIndex(world.predicates.size())],
      world.names[rng.UniformIndex(world.names.size())], RandomKind(rng),
      RandomKind(rng), std::move(prov));
}

void ApplyToKg(KnowledgeGraph* kg, const Mutation& m) {
  if (m.op == MutationOp::kUpsert) {
    kg->AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                  m.object_kind, m.prov);
    return;
  }
  const auto s = kg->FindNode(m.subject, m.subject_kind);
  const auto p = kg->FindPredicate(m.predicate);
  const auto o = kg->FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;
  const TripleId id = kg->FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg->RemoveTriple(id);
}

Query RandomQuery(const World& world, Rng& rng) {
  static const std::vector<std::string> kTypes = {"Person", "Movie",
                                                  "NoSuchType"};
  const std::string& node =
      world.names[rng.UniformIndex(world.names.size())];
  const std::string& pred =
      world.predicates[rng.UniformIndex(world.predicates.size())];
  const double roll = rng.UniformDouble();
  if (roll < 0.4) return Query::PointLookup(node, pred);
  if (roll < 0.65) return Query::Neighborhood(node);
  if (roll < 0.85) {
    return Query::AttributeByType(kTypes[rng.UniformIndex(kTypes.size())],
                                  pred);
  }
  return Query::TopKRelated(node, static_cast<size_t>(rng.UniformInt(0, 8)));
}

ClusterOptions FastClusterOptions(size_t shards, size_t replicas) {
  ClusterOptions opts;
  opts.num_shards = shards;
  opts.replicas_per_shard = replicas;
  opts.heartbeat_interval_ms = 2;
  opts.receiver.heartbeat_timeout_ms = 250;
  opts.receiver.dial_retry_ms = 1;
  opts.receiver.max_dial_attempts = 50;
  opts.supervisor.interval_ms = 10;
  return opts;
}

void RunWorld(uint64_t seed, size_t shards, size_t replicas) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " shards=" + std::to_string(shards) +
               " replicas=" + std::to_string(replicas));
  World world = MakeWorld(seed);
  Rng rng(seed * 7919 + shards * 131 + replicas * 17);

  auto reference = store::VersionedKgStore::Open(world.kg, {});
  ASSERT_TRUE(reference.ok()) << reference.status();
  KnowledgeGraph oracle = world.kg;

  auto cluster = Cluster::Create(world.kg, FastClusterOptions(shards,
                                                              replicas));
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  std::vector<Query> all_queries;
  for (int phase = 0; phase < kPhases; ++phase) {
    // Seeded replica kill/revive mid-workload: queries must stay
    // byte-identical through it (the primary can always prove
    // freshness; a dead replica is skipped, not an error).
    size_t killed_shard = 0, killed_replica = 0;
    bool killed = false;
    if (replicas > 0 && rng.Bernoulli(0.6)) {
      killed_shard = rng.UniformIndex(shards);
      killed_replica = rng.UniformIndex(replicas);
      (*cluster)->KillReplica(killed_shard, killed_replica);
      killed = true;
    }

    std::vector<Mutation> batch;
    for (int i = 0; i < kMutationsPerPhase; ++i) {
      batch.push_back(RandomMutation(world, oracle, rng));
    }
    for (const Mutation& m : batch) ApplyToKg(&oracle, m);
    ASSERT_TRUE((*reference)->ApplyBatch(batch).ok());
    ASSERT_TRUE((*cluster)->Apply(batch).ok());

    for (int i = 0; i < kQueriesPerPhase; ++i) {
      const Query q = RandomQuery(world, rng);
      all_queries.push_back(q);
      auto expected = (*reference)->TryExecute(q);
      auto actual = (*cluster)->Execute(q);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(*actual, *expected) << "phase " << phase << " query " << i;
    }

    if (killed) (*cluster)->ReviveReplica(killed_shard, killed_replica);
  }

  if (replicas > 0) {
    // Quiesce, then kill every primary: the same workload must now be
    // answered — byte-identically — from replicas alone, proving the
    // shipped-and-verified WAL prefix reconstructed the exact state.
    ASSERT_TRUE((*cluster)->WaitForCatchUp(10000));
    for (size_t s = 0; s < shards; ++s) (*cluster)->KillPrimary(s);
    const uint64_t shed_before = (*cluster)->router().stats().shed;
    for (const Query& q : all_queries) {
      auto expected = (*reference)->TryExecute(q);
      auto actual = (*cluster)->Execute(q);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(*actual, *expected);
    }
    EXPECT_EQ((*cluster)->router().stats().shed, shed_before)
        << "replica-only serving should never shed after catch-up";
    EXPECT_GT((*cluster)->router().stats().failovers, 0u);
  }
}

TEST(ClusterPropertyTest, ShardedMatchesSingleStoreAcrossMatrix) {
  for (int w = 0; w < kNumWorlds; ++w) {
    for (const size_t shards : {1, 2, 4}) {
      for (const size_t replicas : {0, 1, 2}) {
        RunWorld(7000 + w, shards, replicas);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// ---- Wire trace propagation through the router --------------------------

/// True when `span` or any descendant is a "store.execute" span — the
/// store-side leaf a routed query's trace must reach.
bool ReachesStoreExecute(const obs::JsonValue& span) {
  const obs::JsonValue* name = span.Find("name");
  if (name != nullptr && name->string_value == "store.execute") return true;
  const obs::JsonValue* children = span.Find("children");
  if (children == nullptr) return false;
  for (const obs::JsonValue& child : children->array) {
    if (ReachesStoreExecute(child)) return true;
  }
  return false;
}

/// Every top-level span must be a "route.<class>" root whose tree
/// reaches a "store.execute" leaf; returns the number of such trees.
size_t CountConnectedRouteTrees(const std::string& trace_json) {
  const auto doc = obs::ParseJson(trace_json);
  if (!doc.ok()) return 0;
  const obs::JsonValue* spans = doc->Find("spans");
  if (spans == nullptr || !spans->is_array()) return 0;
  size_t trees = 0;
  for (const obs::JsonValue& root : spans->array) {
    const obs::JsonValue* name = root.Find("name");
    if (name == nullptr || name->string_value.rfind("route.", 0) != 0) {
      return 0;  // A disconnected non-route root breaks the property.
    }
    if (!ReachesStoreExecute(root)) return 0;
    ++trees;
  }
  return trees;
}

constexpr size_t kTracedQueries = 12;

/// Seeded traced run: fixed clock, fixed workload, `worker_threads`
/// per-member server threads. Returns the tracer's JSON forest.
std::string RunTracedWorld(size_t worker_threads,
                           const FaultInjector* injector) {
  World world = MakeWorld(7321);
  obs::FixedTraceClock clock;
  obs::Tracer tracer(42, &clock);
  ClusterOptions opts = FastClusterOptions(2, 1);
  opts.tracer = &tracer;
  opts.server_worker_threads = worker_threads;
  opts.injector = injector;
  if (injector != nullptr) opts.receiver.max_dial_attempts = 200;
  auto cluster = Cluster::Create(world.kg, opts);
  KG_CHECK_OK(cluster.status());
  KG_CHECK((*cluster)->WaitForCatchUp(30000));
  Rng rng(4242);
  for (size_t i = 0; i < kTracedQueries; ++i) {
    KG_CHECK_OK((*cluster)->Execute(RandomQuery(world, rng)).status());
  }
  (*cluster).reset();  // Joins every member before exporting spans.
  return tracer.ToJson();
}

TEST(ClusterPropertyTest, TracedForestIsByteIdenticalAcrossThreadCounts) {
  const std::string one = RunTracedWorld(1, nullptr);
  const std::string two = RunTracedWorld(2, nullptr);
  const std::string eight = RunTracedWorld(8, nullptr);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // And across a second same-seed run at the same thread count.
  EXPECT_EQ(two, RunTracedWorld(2, nullptr));
#ifndef KG_OBS_NOOP
  // One connected route->shard->member->store.execute tree per query.
  EXPECT_EQ(CountConnectedRouteTrees(one), kTracedQueries);
#endif
}

TEST(ClusterPropertyTest, TracedForestStaysConnectedUnderChaos) {
  FaultPlan plan;
  plan.seed = 1337;
  plan.transient_rate = 0.05;
  const FaultInjector injector(plan);
  const std::string forest = RunTracedWorld(2, &injector);
#ifndef KG_OBS_NOOP
  // Chaos may retry a query (extra spans inside a tree) but every
  // answered query still renders one connected route tree.
  EXPECT_EQ(CountConnectedRouteTrees(forest), kTracedQueries);
#endif
}

}  // namespace
}  // namespace kg::cluster
