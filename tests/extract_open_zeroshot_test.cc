#include <gtest/gtest.h>

#include "core/extraction_scoring.h"
#include "extract/open_extraction.h"
#include "extract/zeroshot_extraction.h"
#include "synth/website_generator.h"

namespace kg::extract {
namespace {

synth::EntityUniverse SmallUniverse() {
  synth::UniverseOptions opt;
  opt.num_people = 400;
  opt.num_movies = 300;
  opt.num_songs = 150;
  kg::Rng rng(1);
  return synth::EntityUniverse::Generate(opt, rng);
}

TEST(OpenExtractTest, NormalizeOpenAttribute) {
  EXPECT_EQ(NormalizeOpenAttribute("Directed by:"), "directed by");
  EXPECT_EQ(NormalizeOpenAttribute("  Box-Office "), "box office");
}

TEST(OpenExtractTest, FindsLabelValueRows) {
  DomPage page;
  const auto root = page.AddNode(kInvalidDomNode, "table");
  const auto tr = page.AddNode(root, "tr");
  page.AddNode(tr, "td", "", "Genre:");
  page.AddNode(tr, "td", "", "drama");
  const auto found = OpenExtract(page, {});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attribute, "genre");
  EXPECT_EQ(found[0].value, "drama");
}

TEST(OpenExtractTest, SkipsProseRows) {
  DomPage page;
  const auto root = page.AddNode(kInvalidDomNode, "div");
  const auto row = page.AddNode(root, "p");
  page.AddNode(row, "span", "",
               "this is a long prose sentence that is not a label");
  page.AddNode(row, "span", "", "value");
  EXPECT_TRUE(OpenExtract(page, {}).empty());
}

TEST(OpenExtractTest, HigherYieldLowerAccuracyThanClosed) {
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 150;
  opt.filler_row_rate = 0.6;
  opt.num_extra_attrs = 3;
  kg::Rng rng(2);
  const auto site = GenerateWebsite(universe, opt, rng);

  core::ExtractionQuality quality;
  for (const auto& page : site.pages) {
    core::ScoreOpenExtractions(site, page, OpenExtract(page.dom, {}),
                               &quality);
  }
  quality.Finish();
  // OpenIE extracts a lot (including ontology-unknown attributes)…
  EXPECT_GT(quality.extracted, 400u);
  EXPECT_GT(quality.correct_open, 100u);
  // …at clearly sub-production accuracy (Figure 3's gap), but well above
  // chance.
  EXPECT_LT(quality.accuracy, 0.9);
  EXPECT_GT(quality.accuracy, 0.5);
}

TEST(ZeroshotTest, PageFeaturesShapeAndAdjacency) {
  DomPage page;
  const auto root = page.AddNode(kInvalidDomNode, "html");
  const auto body = page.AddNode(root, "body");
  page.AddNode(body, "h1", "", "Topic");
  const auto features = ZeroshotExtractor::PageFeatures(page);
  ASSERT_EQ(features.size(), 3u);
  EXPECT_EQ(features[0].size(), features[2].size());
  const auto adj = ZeroshotExtractor::PageAdjacency(page);
  // Tree edges both directions.
  EXPECT_NE(std::find(adj[0].begin(), adj[0].end(), 1u), adj[0].end());
  EXPECT_NE(std::find(adj[1].begin(), adj[1].end(), 0u), adj[1].end());
}

TEST(ZeroshotTest, TransfersAcrossDomains) {
  const auto universe = SmallUniverse();
  kg::Rng rng(3);
  // Train on movie + people sites, test on a music site (unseen domain).
  std::vector<synth::Website> train_sites;
  for (int i = 0; i < 4; ++i) {
    synth::WebsiteOptions opt;
    opt.domain = i % 2 == 0 ? synth::SourceDomain::kMovies
                            : synth::SourceDomain::kPeople;
    opt.site_name = "train" + std::to_string(i);
    opt.num_pages = 60;
    opt.label_dialect = i % 3;
    opt.chrome_depth = i % 3;
    train_sites.push_back(GenerateWebsite(universe, opt, rng));
  }
  synth::WebsiteOptions test_opt;
  test_opt.domain = synth::SourceDomain::kMusic;
  test_opt.site_name = "testsite";
  test_opt.num_pages = 80;
  test_opt.label_dialect = 2;
  test_opt.chrome_depth = 2;
  const auto test_site = GenerateWebsite(universe, test_opt, rng);

  std::vector<ZeroshotExtractor::TrainingPage> training;
  for (const auto& site : train_sites) {
    for (const auto& page : site.pages) {
      ZeroshotExtractor::TrainingPage tp;
      tp.page = &page.dom;
      for (const auto& [attr, node] : page.value_nodes) {
        tp.value_nodes.push_back(node);
      }
      training.push_back(tp);
    }
  }
  ZeroshotExtractor extractor;
  ZeroshotExtractor::Options opt;
  extractor.Fit(training, opt, rng);

  core::ExtractionQuality quality;
  for (const auto& page : test_site.pages) {
    core::ScoreOpenExtractions(test_site, page,
                               extractor.Extract(page.dom), &quality);
  }
  quality.Finish();
  // Zero-shot beats chance decisively on an unseen domain — the
  // ZeroshotCeres claim — but stays below in-domain Ceres accuracy.
  EXPECT_GT(quality.extracted, 100u);
  EXPECT_GT(quality.accuracy, 0.6);
}

}  // namespace
}  // namespace kg::extract
