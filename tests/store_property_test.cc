// Property harness for the versioned store — the determinism contract of
// the whole subsystem. For 100 seeded random (base KG, mutation stream,
// workload) worlds:
//   1. every store answer through the overlay == a QueryEngine over a
//      from-scratch rebuild that applied the same mutations (checked at
//      multiple checkpoints, cache on);
//   2. compaction's output snapshot fingerprint == the fingerprint of a
//      batch build of the same knowledge, and answers are unchanged by
//      the fold (including folds in the middle of the stream);
//   3. BatchExecute is bit-identical at 1/2/8 threads;
//   4. the authoritative graph fingerprints identically to the oracle
//      after every batch.
// Worlds come from kg::synth universes plus hostile names, duplicate
// upserts, retractions of base and overlay triples, and resurrections.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "store/wal.h"
#include "synth/entity_universe.h"

namespace kg::store {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Provenance;
using graph::TripleId;
using serve::Query;
using serve::QueryResult;

constexpr int kNumWorlds = 100;
constexpr int kMutationsPerWorld = 40;
constexpr int kQueriesPerWorld = 30;

const std::vector<std::string>& HostileNames() {
  static const std::vector<std::string> kNames = {
      "", "tab\there", "line\nbreak", "back\\slash", "\\t literal",
      "h\xc3\xa9llo w\xc3\xb6rld", "quote'\"q", "person:0",
  };
  return kNames;
}

struct World {
  KnowledgeGraph kg;
  std::vector<std::string> names;       // node-name pool for mutations
  std::vector<std::string> predicates;  // predicate pool
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  synth::UniverseOptions options;
  options.num_people = static_cast<size_t>(rng.UniformInt(10, 25));
  options.num_movies = static_cast<size_t>(rng.UniformInt(8, 18));
  options.num_songs = static_cast<size_t>(rng.UniformInt(4, 10));
  const auto universe = synth::EntityUniverse::Generate(options, rng);

  World world;
  world.kg = universe.ToKnowledgeGraph();
  const Provenance prov{"store_prop", 1.0, 0};
  for (const auto& p : universe.people()) {
    const std::string name = synth::EntityUniverse::PersonNodeName(p.id);
    world.kg.AddTriple(name, "type", "Person", NodeKind::kEntity,
                       NodeKind::kClass, prov);
    world.names.push_back(name);
  }
  for (const auto& m : universe.movies()) {
    const std::string name = synth::EntityUniverse::MovieNodeName(m.id);
    world.kg.AddTriple(name, "type", "Movie", NodeKind::kEntity,
                       NodeKind::kClass, prov);
    world.names.push_back(name);
  }
  for (const auto& s : universe.songs()) {
    world.names.push_back(synth::EntityUniverse::SongNodeName(s.id));
  }
  const auto& hostile = HostileNames();
  world.names.insert(world.names.end(), hostile.begin(), hostile.end());
  world.predicates = {"knows",       "type",       "name",    "genre",
                      "directed_by", "acted_in",   "mentors", "hostile_p",
                      "performed_by", "no_such_predicate"};
  return world;
}

NodeKind RandomKind(Rng& rng) {
  // Mostly entities; sometimes text/class so kind-collisions and
  // cross-kind shadowing get exercised.
  if (rng.Bernoulli(0.7)) return NodeKind::kEntity;
  return rng.Bernoulli(0.5) ? NodeKind::kText : NodeKind::kClass;
}

/// One random mutation. Retracts are aimed at live triples half the
/// time (via the oracle's current state) so shadowing of real base
/// triples — not just misses — dominates.
Mutation RandomMutation(const World& world, const KnowledgeGraph& oracle,
                        Rng& rng) {
  const double roll = rng.UniformDouble();
  if (roll < 0.45) {
    // Retract: prefer an existing live triple.
    const std::vector<TripleId> live = oracle.AllTriples();
    if (!live.empty() && rng.Bernoulli(0.8)) {
      const graph::Triple& t = oracle.triple(live[rng.UniformIndex(live.size())]);
      return Mutation::Retract(
          oracle.NodeName(t.subject), oracle.PredicateName(t.predicate),
          oracle.NodeName(t.object), oracle.GetNodeKind(t.subject),
          oracle.GetNodeKind(t.object));
    }
    return Mutation::Retract(
        world.names[rng.UniformIndex(world.names.size())],
        world.predicates[rng.UniformIndex(world.predicates.size())],
        world.names[rng.UniformIndex(world.names.size())], RandomKind(rng),
        RandomKind(rng));
  }
  // Upsert: sometimes duplicate an existing triple (provenance append /
  // resurrection), sometimes brand-new knowledge.
  Provenance prov;
  prov.source = rng.Bernoulli(0.5) ? "feed_a" : "feed_b";
  prov.confidence = rng.UniformDouble();
  prov.timestamp = rng.UniformInt(0, 1000);
  const std::vector<TripleId> live = oracle.AllTriples();
  if (!live.empty() && rng.Bernoulli(0.25)) {
    const graph::Triple& t = oracle.triple(live[rng.UniformIndex(live.size())]);
    return Mutation::Upsert(
        oracle.NodeName(t.subject), oracle.PredicateName(t.predicate),
        oracle.NodeName(t.object), oracle.GetNodeKind(t.subject),
        oracle.GetNodeKind(t.object), std::move(prov));
  }
  return Mutation::Upsert(
      world.names[rng.UniformIndex(world.names.size())],
      world.predicates[rng.UniformIndex(world.predicates.size())],
      world.names[rng.UniformIndex(world.names.size())], RandomKind(rng),
      RandomKind(rng), std::move(prov));
}

void ApplyToKg(KnowledgeGraph* kg, const Mutation& m) {
  if (m.op == MutationOp::kUpsert) {
    kg->AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                  m.object_kind, m.prov);
    return;
  }
  const auto s = kg->FindNode(m.subject, m.subject_kind);
  const auto p = kg->FindPredicate(m.predicate);
  const auto o = kg->FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;
  const TripleId id = kg->FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg->RemoveTriple(id);
}

std::vector<Query> MakeWorkload(const World& world, Rng& rng) {
  std::vector<Query> queries;
  const std::vector<std::string> types = {"Person", "Movie", "NoSuchType"};
  for (int i = 0; i < kQueriesPerWorld; ++i) {
    const std::string& node =
        world.names[rng.UniformIndex(world.names.size())];
    const std::string& pred =
        world.predicates[rng.UniformIndex(world.predicates.size())];
    const NodeKind kind =
        rng.Bernoulli(0.85) ? NodeKind::kEntity : RandomKind(rng);
    const double roll = rng.UniformDouble();
    if (roll < 0.35) {
      queries.push_back(Query::PointLookup(node, pred, kind));
    } else if (roll < 0.65) {
      queries.push_back(Query::Neighborhood(node, kind));
    } else if (roll < 0.85) {
      queries.push_back(
          Query::AttributeByType(types[rng.UniformIndex(types.size())],
                                 pred));
    } else {
      queries.push_back(Query::TopKRelated(
          node, static_cast<size_t>(rng.UniformInt(0, 8)), kind));
    }
  }
  return queries;
}

/// Checks every workload answer (through the store's cache) against a
/// QueryEngine over a from-scratch compile of the oracle.
void ExpectStoreMatchesRebuild(const VersionedKgStore& store,
                               const KnowledgeGraph& oracle,
                               const std::vector<Query>& workload,
                               uint64_t seed, const char* where) {
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(oracle);
  const serve::QueryEngine engine(snap);
  for (const Query& q : workload) {
    ASSERT_EQ(store.Execute(q), engine.ExecuteUncached(q))
        << where << ", world seed " << seed << ", query " << q.CacheKey();
  }
}

TEST(StorePropertyTest, OverlayReadsEqualRebuildAcrossWorlds) {
  int checked = 0;
  for (int world_idx = 0; world_idx < kNumWorlds; ++world_idx) {
    const uint64_t seed = 5000 + static_cast<uint64_t>(world_idx);
    World world = MakeWorld(seed);
    Rng rng(seed * 131 + 17);
    const std::vector<Query> workload = MakeWorkload(world, rng);

    StoreOptions options;
    options.cache_capacity = 32;  // small: forces evictions + refills
    options.cache_shards = 4;
    auto opened = VersionedKgStore::Open(world.kg, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto& store = **opened;
    KnowledgeGraph oracle = world.kg;

    // Apply the stream in random-size batches with two checkpoints and
    // (for some worlds) a fold in the middle of the stream.
    const int mid_compact_at =
        rng.Bernoulli(0.5) ? static_cast<int>(rng.UniformInt(
                                 5, kMutationsPerWorld - 5))
                           : -1;
    int applied = 0;
    while (applied < kMutationsPerWorld) {
      const int batch_size = static_cast<int>(rng.UniformInt(1, 5));
      std::vector<Mutation> batch;
      for (int b = 0; b < batch_size && applied < kMutationsPerWorld;
           ++b, ++applied) {
        batch.push_back(RandomMutation(world, oracle, rng));
        ApplyToKg(&oracle, batch.back());
      }
      ASSERT_TRUE(store.ApplyBatch(batch).ok());
      ASSERT_EQ(store.AuthoritativeFingerprint(),
                graph::TripleSetFingerprint(oracle))
          << "world seed " << seed << " after " << applied << " mutations";
      if (mid_compact_at >= 0 && applied >= mid_compact_at &&
          store.delta_size() > 0) {
        const auto stats = store.Compact();
        ASSERT_TRUE(stats.ran);
        ASSERT_EQ(stats.base_fingerprint,
                  serve::KgSnapshot::Compile(oracle).Fingerprint())
            << "mid-stream fold, world seed " << seed;
      }
      if (applied == kMutationsPerWorld / 2 ||
          applied >= kMutationsPerWorld) {
        ExpectStoreMatchesRebuild(store, oracle, workload, seed,
                                  "checkpoint");
        checked += static_cast<int>(workload.size());
      }
    }

    // Thread-count invariance over the final overlay state.
    const auto serial = store.BatchExecute(workload, ExecPolicy::Serial());
    for (size_t threads : {2u, 8u}) {
      ASSERT_EQ(store.BatchExecute(workload,
                                   ExecPolicy::WithThreads(threads)),
                serial)
          << "world seed " << seed << ", threads " << threads;
    }

    // Final fold: compaction output == batch build, answers unchanged.
    const auto stats = store.Compact();
    ASSERT_TRUE(stats.ran);
    ASSERT_EQ(stats.base_fingerprint,
              serve::KgSnapshot::Compile(oracle).Fingerprint())
        << "world seed " << seed;
    ASSERT_EQ(store.delta_size(), 0u);
    ExpectStoreMatchesRebuild(store, oracle, workload, seed,
                              "post-compaction");
    ASSERT_EQ(store.BatchExecute(workload, ExecPolicy::Serial()), serial)
        << "compaction changed an answer, world seed " << seed;
  }
  // The suite only counts if it exercised the budgeted volume.
  EXPECT_GE(checked, kNumWorlds * kQueriesPerWorld);
}

}  // namespace
}  // namespace kg::store
