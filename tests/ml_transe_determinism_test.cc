// TransE reproducibility contract. Fit is serial by design (each SGD
// step reads what the previous one wrote and draws corruptions from the
// shared rng in triple order — see the Fit doc comment), so the
// determinism bar here is seed-reproducibility: same (triples, options,
// seed) => bit-identical embeddings, on the main thread or any worker
// thread; a different seed or triple order trains a different model.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "ml/transe.h"

namespace kg::ml {
namespace {

std::vector<IdTriple> ToyTriples(size_t num_entities, size_t num_relations,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<IdTriple> triples;
  for (int i = 0; i < 400; ++i) {
    triples.push_back(
        {static_cast<uint32_t>(rng.UniformInt(0, num_entities - 1)),
         static_cast<uint32_t>(rng.UniformInt(0, num_relations - 1)),
         static_cast<uint32_t>(rng.UniformInt(0, num_entities - 1))});
  }
  return triples;
}

TransEOptions FastOptions() {
  TransEOptions options;
  options.dim = 12;
  options.epochs = 25;
  return options;
}

TransE FitModel(const std::vector<IdTriple>& triples, uint64_t seed) {
  TransE model;
  Rng rng(seed);
  model.Fit(triples, 50, 4, FastOptions(), rng);
  return model;
}

bool BitIdentical(const TransE& a, const TransE& b) {
  if (a.num_entities() != b.num_entities() ||
      a.num_relations() != b.num_relations() || a.dim() != b.dim()) {
    return false;
  }
  for (uint32_t e = 0; e < a.num_entities(); ++e) {
    if (a.entity_embedding(e) != b.entity_embedding(e)) return false;
  }
  for (uint32_t r = 0; r < a.num_relations(); ++r) {
    if (a.relation_embedding(r) != b.relation_embedding(r)) return false;
  }
  return true;
}

TEST(MlTranseDeterminismTest, SameSeedBitIdentical) {
  const auto triples = ToyTriples(50, 4, 1);
  EXPECT_TRUE(BitIdentical(FitModel(triples, 7), FitModel(triples, 7)));
}

TEST(MlTranseDeterminismTest, WorkerThreadMatchesMainThread) {
  // The serial-only contract means "which thread ran Fit" must not
  // matter — only the seed may.
  const auto triples = ToyTriples(50, 4, 2);
  const TransE main_fit = FitModel(triples, 9);
  TransE worker_fit;
  std::thread worker([&] { worker_fit = FitModel(triples, 9); });
  worker.join();
  EXPECT_TRUE(BitIdentical(main_fit, worker_fit));
}

TEST(MlTranseDeterminismTest, DifferentSeedDiffers) {
  const auto triples = ToyTriples(50, 4, 3);
  EXPECT_FALSE(BitIdentical(FitModel(triples, 1), FitModel(triples, 2)));
}

TEST(MlTranseDeterminismTest, TripleOrderMatters) {
  // Documents WHY Fit is serial-only: SGD order changes the result, so
  // sharding the triple loop across workers would too.
  auto triples = ToyTriples(50, 4, 4);
  const TransE forward = FitModel(triples, 5);
  std::vector<IdTriple> reversed(triples.rbegin(), triples.rend());
  const TransE backward = FitModel(reversed, 5);
  EXPECT_FALSE(BitIdentical(forward, backward));
}

}  // namespace
}  // namespace kg::ml
