#include "extract/pattern_bootstrap.h"

#include <gtest/gtest.h>

#include <set>

#include "synth/text_corpus.h"

namespace kg::extract {
namespace {

struct World {
  synth::EntityUniverse universe;
  std::vector<synth::Sentence> sentences;
  std::vector<std::string> texts;
};

World MakeWorld(uint64_t seed, double corruption = 0.03) {
  synth::UniverseOptions uopt;
  uopt.num_people = 400;
  uopt.num_movies = 500;
  uopt.num_songs = 50;
  kg::Rng rng(seed);
  World world{synth::EntityUniverse::Generate(uopt, rng), {}, {}};
  synth::TextCorpusOptions topt;
  topt.num_sentences = 8000;
  topt.corruption_rate = corruption;
  world.sentences = GenerateTextCorpus(world.universe, topt, rng);
  for (const auto& s : world.sentences) world.texts.push_back(s.text);
  return world;
}

// Seeds: directed_by pairs of the top-k movies.
std::map<std::string, std::string> DirectedBySeeds(
    const synth::EntityUniverse& universe, size_t k) {
  std::map<std::string, std::string> seeds;
  for (size_t i = 0; i < k; ++i) {
    const auto& m = universe.movies()[i];
    seeds[m.title] = universe.people()[m.director].name;
  }
  return seeds;
}

double PrecisionVsUniverse(const synth::EntityUniverse& universe,
                           const std::vector<ExtractedPair>& pairs) {
  std::map<std::string, std::set<std::string>> truth;
  for (const auto& m : universe.movies()) {
    truth[m.title].insert(universe.people()[m.director].name);
  }
  size_t scored = 0, correct = 0;
  for (const auto& p : pairs) {
    auto it = truth.find(p.subject);
    if (it == truth.end()) continue;  // Not a movie subject.
    ++scored;
    correct += it->second.count(p.object) > 0;
  }
  return scored == 0 ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(scored);
}

TEST(PatternBootstrapTest, LearnsTemplatesFromSeeds) {
  const World world = MakeWorld(1);
  const auto seeds = DirectedBySeeds(world.universe, 40);
  PatternBootstrapper bootstrapper;
  BootstrapOptions opt;
  opt.iterations = 1;
  const auto result = bootstrapper.Run(world.texts, seeds, opt);
  ASSERT_FALSE(result.patterns.empty());
  // The strongest directed_by templates should be among the survivors.
  std::set<std::string> infixes;
  for (const auto& p : result.patterns) infixes.insert(p.infix);
  EXPECT_TRUE(infixes.count(" was directed by ") ||
              infixes.count(" is a film by "));
  // Filler-bait templates must not survive seed scoring.
  EXPECT_FALSE(infixes.count(" premiered at a festival attended by "));
  EXPECT_FALSE(infixes.count(" was famously turned down by "));
}

TEST(PatternBootstrapTest, ExtractsBeyondSeedsWithHighPrecision) {
  const World world = MakeWorld(2);
  const auto seeds = DirectedBySeeds(world.universe, 40);
  PatternBootstrapper bootstrapper;
  BootstrapOptions opt;
  opt.iterations = 2;
  const auto result = bootstrapper.Run(world.texts, seeds, opt);
  size_t novel = 0;
  for (const auto& p : result.pairs) novel += !seeds.count(p.subject);
  EXPECT_GT(novel, 100u);
  EXPECT_GT(PrecisionVsUniverse(world.universe, result.pairs), 0.85);
}

TEST(PatternBootstrapTest, MoreIterationsMoreVolume) {
  const World world = MakeWorld(3);
  const auto seeds = DirectedBySeeds(world.universe, 30);
  PatternBootstrapper bootstrapper;
  BootstrapOptions one, three;
  one.iterations = 1;
  three.iterations = 3;
  const auto r1 = bootstrapper.Run(world.texts, seeds, one);
  const auto r3 = bootstrapper.Run(world.texts, seeds, three);
  EXPECT_GE(r3.pairs.size(), r1.pairs.size());
  EXPECT_GE(r3.rounds.size(), r1.rounds.size());
}

TEST(PatternBootstrapTest, NoSeedsInCorpusMeansNothingLearned) {
  const World world = MakeWorld(4);
  std::map<std::string, std::string> bogus = {
      {"Nonexistent Movie Alpha", "Nobody Person"},
      {"Nonexistent Movie Beta", "Nobody Else"},
      {"Nonexistent Movie Gamma", "Still Nobody"}};
  PatternBootstrapper bootstrapper;
  const auto result = bootstrapper.Run(world.texts, bogus, {});
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_TRUE(result.pairs.empty());
}

TEST(TextCorpusTest, AnnotationsMatchRenderedText) {
  const World world = MakeWorld(5);
  size_t facts = 0;
  for (const auto& s : world.sentences) {
    if (s.predicate.empty()) continue;
    ++facts;
    EXPECT_NE(s.text.find(s.subject), std::string::npos);
    EXPECT_NE(s.text.find(s.object), std::string::npos);
  }
  EXPECT_GT(facts, world.sentences.size() / 2);
}

}  // namespace
}  // namespace kg::extract
