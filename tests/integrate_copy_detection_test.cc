#include "integrate/copy_detection.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::integrate {
namespace {

// World: three independent sources (.9/.8/.7), one bad independent
// source (.45), and a copier that duplicates the bad source — including
// its errors — 95% of the time. Copy detection is well-posed when
// independent sources are the majority (with equal-size opposing blocs
// the direction of copying is information-theoretically unidentifiable).
ClaimSet ColludingWorld(Rng& rng, std::map<std::string, std::string>* truth) {
  ClaimSet claims;
  for (int i = 0; i < 300; ++i) {
    const std::string item = "i" + std::to_string(i);
    const std::string correct = "v" + std::to_string(i);
    (*truth)[item] = correct;
    claims[item].push_back(
        {"good", rng.Bernoulli(0.9) ? correct
                                    : "g-wrong" + std::to_string(i)});
    claims[item].push_back(
        {"good2", rng.Bernoulli(0.8) ? correct
                                     : "h-wrong" + std::to_string(i)});
    claims[item].push_back(
        {"good3", rng.Bernoulli(0.7) ? correct
                                     : "k-wrong" + std::to_string(i)});
    const std::string bad_value =
        rng.Bernoulli(0.45) ? correct : "a-wrong" + std::to_string(i);
    claims[item].push_back({"bad", bad_value});
    claims[item].push_back(
        {"copycat", rng.Bernoulli(0.95)
                        ? bad_value
                        : "c-wrong" + std::to_string(i)});
  }
  return claims;
}

TEST(CopyDetectionTest, FindsOnlyTheCopierPair) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    Rng rng(seed);
    std::map<std::string, std::string> truth;
    const auto claims = ColludingWorld(rng, &truth);
    const auto evidence = DetectCopying(claims, {});
    // Exactly the colluding pair, never a false positive on the
    // independent sources.
    ASSERT_EQ(evidence.size(), 1u) << "seed " << seed;
    const auto& top = evidence.front();
    EXPECT_TRUE((top.copier == "copycat" && top.original == "bad") ||
                (top.copier == "bad" && top.original == "copycat"));
    EXPECT_GT(top.score, 0.3);
  }
}

TEST(CopyDetectionTest, IndependentSourcesNotFlagged) {
  Rng rng(2);
  ClaimSet claims;
  for (int i = 0; i < 300; ++i) {
    const std::string item = "i" + std::to_string(i);
    const std::string correct = "v" + std::to_string(i);
    claims[item].push_back(
        {"a", rng.Bernoulli(0.7) ? correct : "a-w" + std::to_string(i)});
    claims[item].push_back(
        {"b", rng.Bernoulli(0.7) ? correct : "b-w" + std::to_string(i)});
    claims[item].push_back(
        {"c", rng.Bernoulli(0.7) ? correct : "c-w" + std::to_string(i)});
  }
  EXPECT_TRUE(DetectCopying(claims, {}).empty());
}

TEST(CopyDetectionTest, CopyAwareFusionAtLeastMatchesAccuAndBeatsVote) {
  size_t plain_total = 0, aware_total = 0, vote_total = 0, n = 0;
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    Rng rng(seed);
    std::map<std::string, std::string> truth;
    const auto claims = ColludingWorld(rng, &truth);
    const auto vote = MajorityVote(claims);
    const auto plain = AccuFusion::Run(claims, {});
    const auto aware = CopyAwareFusion(claims, {}, {});
    for (const auto& [item, correct] : truth) {
      ++n;
      vote_total += vote.at(item).value == correct;
      plain_total += plain.fused.at(item).value == correct;
      aware_total += aware.fused.at(item).value == correct;
    }
  }
  // Removing the duplicated evidence never hurts and beats naive voting
  // decisively (the bloc distorts vote counts).
  EXPECT_GE(aware_total, plain_total);
  EXPECT_GT(aware_total, vote_total + 100);
  EXPECT_GT(static_cast<double>(aware_total) / n, 0.9);
}

TEST(CopyDetectionTest, SmallOverlapIgnored) {
  ClaimSet claims;
  for (int i = 0; i < 5; ++i) {  // Below min_overlap.
    const std::string item = "i" + std::to_string(i);
    claims[item].push_back({"a", "same" + std::to_string(i)});
    claims[item].push_back({"b", "same" + std::to_string(i)});
    claims[item].push_back({"c", "other" + std::to_string(i)});
  }
  EXPECT_TRUE(DetectCopying(claims, {}).empty());
}

}  // namespace
}  // namespace kg::integrate
