#include "fuse/kbt.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::fuse {
namespace {

// Simulated extraction corpus: sources with known accuracies, extractors
// with known accuracies, independent two-stage noise.
struct Sim {
  std::vector<ExtractedClaim> claims;
  std::map<std::string, std::string> truth;
  std::map<std::string, double> true_source_acc;
  std::map<std::string, double> true_extractor_acc;
};

Sim Simulate(kg::Rng& rng) {
  Sim sim;
  sim.true_source_acc = {{"s-good", 0.95}, {"s-mid", 0.75},
                         {"s-bad", 0.55}};
  sim.true_extractor_acc = {{"e-good", 0.95}, {"e-bad", 0.7}};
  for (int i = 0; i < 400; ++i) {
    const std::string item = "item" + std::to_string(i);
    const std::string correct = "v" + std::to_string(i);
    sim.truth[item] = correct;
    for (const auto& [source, s_acc] : sim.true_source_acc) {
      // What the source actually asserts.
      const std::string asserted =
          rng.Bernoulli(s_acc) ? correct
                               : "w-" + source + "-" + std::to_string(i);
      for (const auto& [extractor, e_acc] : sim.true_extractor_acc) {
        const std::string observed =
            rng.Bernoulli(e_acc)
                ? asserted
                : "x-" + extractor + "-" + std::to_string(i);
        sim.claims.push_back({item, source, extractor, observed});
      }
    }
  }
  return sim;
}

TEST(KbtTest, RecoversTruthAtHighRate) {
  kg::Rng rng(1);
  const Sim sim = Simulate(rng);
  const KbtResult result = RunKbt(sim.claims, {});
  size_t correct = 0;
  for (const auto& [item, truth] : sim.truth) {
    correct += result.truth.at(item) == truth;
  }
  EXPECT_GT(static_cast<double>(correct) / sim.truth.size(), 0.9);
}

TEST(KbtTest, SeparatesSourceFromExtractorError) {
  kg::Rng rng(2);
  const Sim sim = Simulate(rng);
  const KbtResult result = RunKbt(sim.claims, {});
  // Ordering of estimated source accuracies matches the truth.
  EXPECT_GT(result.source_accuracy.at("s-good"),
            result.source_accuracy.at("s-mid"));
  EXPECT_GT(result.source_accuracy.at("s-mid"),
            result.source_accuracy.at("s-bad"));
  // Extractor ordering too.
  EXPECT_GT(result.extractor_accuracy.at("e-good"),
            result.extractor_accuracy.at("e-bad"));
  // The bad source's accuracy estimate is NOT dragged down to the
  // product source*extractor — the two-layer model attributes extraction
  // noise to extractors.
  EXPECT_GT(result.source_accuracy.at("s-good"), 0.85);
}

TEST(KbtTest, AccuracyEstimatesCloseToTruth) {
  kg::Rng rng(3);
  const Sim sim = Simulate(rng);
  const KbtResult result = RunKbt(sim.claims, {});
  for (const auto& [source, acc] : sim.true_source_acc) {
    EXPECT_NEAR(result.source_accuracy.at(source), acc, 0.15) << source;
  }
}

TEST(KbtTest, EmptyClaims) {
  const KbtResult result = RunKbt({}, {});
  EXPECT_TRUE(result.truth.empty());
}

TEST(KbtTest, SingleClaimTrusted) {
  const KbtResult result =
      RunKbt({{"i", "s", "e", "value"}}, {});
  EXPECT_EQ(result.truth.at("i"), "value");
}

}  // namespace
}  // namespace kg::fuse
