#include <gtest/gtest.h>

#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/timer.h"

namespace kg {
namespace {

TEST(LoggingTest, LevelsFilter) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must compile and not emit (no crash = pass).
  KG_LOG(kInfo) << "suppressed";
  KG_LOG(kError) << "emitted to stderr";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ KG_CHECK(1 == 2) << "boom"; }, "Check failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(KG_CHECK_OK(Status::NotFound("nope")), "not_found");
}

TEST(LoggingTest, CheckPassesSilently) {
  KG_CHECK(true) << "never rendered";
  KG_CHECK_OK(Status::OK());
}

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a vectors: must never change across platforms/builds.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ULL);
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashTest, HashCombineMixesOrderSensitively) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 0), 0u);
}

TEST(HashTest, PairHashUsableInContainers) {
  std::unordered_map<std::pair<int, int>, int, PairHash> map;
  map[{1, 2}] = 3;
  map[{2, 1}] = 4;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ((map[{1, 2}]), 3);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

}  // namespace
}  // namespace kg
