#include "extract/distant_supervision.h"

#include <gtest/gtest.h>

#include "core/extraction_scoring.h"
#include "graph/knowledge_graph.h"
#include "synth/structured_source.h"
#include "synth/website_generator.h"

namespace kg::extract {
namespace {

synth::EntityUniverse SmallUniverse() {
  synth::UniverseOptions opt;
  opt.num_people = 400;
  opt.num_movies = 300;
  opt.num_songs = 100;
  kg::Rng rng(1);
  return synth::EntityUniverse::Generate(opt, rng);
}

// Seed knowledge = clean canonical values for a head-biased half of the
// movie universe (the existing KG Ceres compares against).
SeedKnowledge MovieSeed(const synth::EntityUniverse& u, size_t count) {
  SeedKnowledge seed;
  for (size_t i = 0; i < std::min(count, u.movies().size()); ++i) {
    const auto& m = u.movies()[i];
    seed.AddEntity(m.title,
                   {{"release_year", std::to_string(m.release_year)},
                    {"genre", m.genre},
                    {"director", u.people()[m.director].name}});
  }
  return seed;
}

TEST(SeedKnowledgeTest, FromKnowledgeGraphBuildsEntities) {
  graph::KnowledgeGraph kg;
  kg.AddTriple("m1", "title", "The Silent Harbor", graph::NodeKind::kEntity,
               graph::NodeKind::kText, {"s", 1.0, 0});
  kg.AddTriple("m1", "genre", "drama", graph::NodeKind::kEntity,
               graph::NodeKind::kText, {"s", 1.0, 0});
  const auto seed = SeedKnowledge::FromKnowledgeGraph(kg, "title");
  EXPECT_EQ(seed.size(), 1u);
  const auto* attrs = seed.Find("the silent harbor");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->at("genre"), "drama");
  EXPECT_EQ(seed.KnownAttributes(),
            (std::vector<std::string>{"genre"}));
}

TEST(SeedKnowledgeTest, FindNormalizesSurface) {
  SeedKnowledge seed;
  seed.AddEntity("The Movie!", {{"genre", "drama"}});
  EXPECT_NE(seed.Find("the movie"), nullptr);
  EXPECT_EQ(seed.Find("another"), nullptr);
}

TEST(CeresTest, ProductionQualityExtraction) {
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 200;
  opt.popularity_bias = 0.6;
  kg::Rng rng(2);
  const auto site = GenerateWebsite(universe, opt, rng);
  const auto seed = MovieSeed(universe, 150);

  std::vector<const DomPage*> pages;
  for (const auto& page : site.pages) pages.push_back(&page.dom);
  DistantlySupervisedExtractor extractor;
  const size_t matches = extractor.Fit(pages, seed, {});
  EXPECT_GT(matches, 50u);

  core::ExtractionQuality quality;
  for (const auto& page : site.pages) {
    core::ScoreClosedExtractions(page, extractor.Extract(page.dom),
                                 &quality);
  }
  quality.Finish();
  // Figure 3: Ceres achieves over 90% extraction accuracy.
  EXPECT_GT(quality.accuracy, 0.9);
  EXPECT_GT(quality.extracted, 300u);
}

TEST(CeresTest, ExtractsBeyondSeedCoverage) {
  // The knowledge gain: extractions from pages whose entity the seed
  // does not know.
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 150;
  kg::Rng rng(3);
  const auto site = GenerateWebsite(universe, opt, rng);
  const auto seed = MovieSeed(universe, 100);
  std::vector<const DomPage*> pages;
  for (const auto& page : site.pages) pages.push_back(&page.dom);
  DistantlySupervisedExtractor extractor;
  ASSERT_GT(extractor.Fit(pages, seed, {}), 0u);
  size_t unseen_extractions = 0;
  for (const auto& page : site.pages) {
    if (seed.Find(page.topic_name) != nullptr) continue;
    unseen_extractions += extractor.Extract(page.dom).size();
  }
  EXPECT_GT(unseen_extractions, 20u);
}

TEST(CeresTest, NoSeedOverlapMeansNoModel) {
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 20;
  kg::Rng rng(4);
  const auto site = GenerateWebsite(universe, opt, rng);
  SeedKnowledge empty_seed;
  std::vector<const DomPage*> pages;
  for (const auto& page : site.pages) pages.push_back(&page.dom);
  DistantlySupervisedExtractor extractor;
  EXPECT_EQ(extractor.Fit(pages, empty_seed, {}), 0u);
  EXPECT_TRUE(extractor.Extract(site.pages[0].dom).empty());
}

TEST(CeresTest, TopicOfFindsHeader) {
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 5;
  kg::Rng rng(5);
  const auto site = GenerateWebsite(universe, opt, rng);
  for (const auto& page : site.pages) {
    EXPECT_EQ(DistantlySupervisedExtractor::TopicOf(page.dom),
              page.topic_name);
  }
}

}  // namespace
}  // namespace kg::extract
