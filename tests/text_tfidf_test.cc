#include "text/tfidf.h"

#include <gtest/gtest.h>

namespace kg::text {
namespace {

TEST(SparseVectorTest, NormAndDot) {
  SparseVector a{{{0, 3.0}, {2, 4.0}}};
  SparseVector b{{{2, 1.0}, {3, 5.0}}};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), 4.0);
}

TEST(CosineTest, Bounds) {
  SparseVector a{{{0, 1.0}}};
  SparseVector b{{{0, 2.0}}};
  SparseVector c{{{1, 1.0}}};
  SparseVector empty;
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, empty), 0.0);
}

TEST(TfidfTest, RareTermsWeighMore) {
  TfidfVectorizer vec;
  vec.Fit({{"the", "cat"}, {"the", "dog"}, {"the", "fox"}});
  EXPECT_EQ(vec.vocabulary_size(), 4u);
  const auto cat_vec = vec.Transform({"the", "cat"});
  ASSERT_EQ(cat_vec.entries.size(), 2u);
  const int64_t the_id = vec.TermId("the");
  const int64_t cat_id = vec.TermId("cat");
  double the_w = 0, cat_w = 0;
  for (const auto& [id, w] : cat_vec.entries) {
    if (id == static_cast<uint32_t>(the_id)) the_w = w;
    if (id == static_cast<uint32_t>(cat_id)) cat_w = w;
  }
  EXPECT_GT(cat_w, the_w);
}

TEST(TfidfTest, UnknownTermsDropped) {
  TfidfVectorizer vec;
  vec.Fit({{"a", "b"}});
  EXPECT_TRUE(vec.Transform({"zzz"}).entries.empty());
  EXPECT_EQ(vec.TermId("zzz"), -1);
}

TEST(TfidfTest, SimilarDocsScoreHigher) {
  TfidfVectorizer vec;
  vec.Fit({{"green", "tea", "leaf"},
           {"black", "tea", "leaf"},
           {"espresso", "coffee", "bean"}});
  const auto g = vec.Transform({"green", "tea"});
  const auto b = vec.Transform({"black", "tea"});
  const auto c = vec.Transform({"espresso", "coffee"});
  EXPECT_GT(CosineSimilarity(g, b), CosineSimilarity(g, c));
}

TEST(TfidfTest, TermFrequencyScales) {
  TfidfVectorizer vec;
  vec.Fit({{"x", "y"}});
  const auto once = vec.Transform({"x"});
  const auto twice = vec.Transform({"x", "x"});
  EXPECT_DOUBLE_EQ(twice.entries[0].second,
                   2.0 * once.entries[0].second);
}

}  // namespace
}  // namespace kg::text
