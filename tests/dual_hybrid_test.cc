// HybridAnswerer + KgEmbeddingSpace contract tests: the symbolic route
// answers exactly like KgAnswerer, the ANN route only fires when the
// symbolic path has no edge to follow, unknown subjects abstain, the
// hybrid never scores below symbolic-only on a shared workload, and the
// embedding space is a pure function of (graph, options).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dual/answerers.h"
#include "dual/kg_embedding.h"
#include "dual/qa_eval.h"
#include "graph/knowledge_graph.h"
#include "synth/entity_universe.h"
#include "synth/qa_generator.h"

namespace kg::dual {
namespace {

using graph::KnowledgeGraph;

synth::EntityUniverse SmallUniverse(uint64_t seed) {
  synth::UniverseOptions uo;
  uo.num_people = 50;
  uo.num_movies = 30;
  uo.num_songs = 20;
  Rng rng(seed);
  return synth::EntityUniverse::Generate(uo, rng);
}

KgEmbeddingOptions FastOptions(uint64_t seed) {
  KgEmbeddingOptions options;
  options.transe.dim = 16;
  options.transe.epochs = 40;
  options.seed = seed;
  return options;
}

std::vector<synth::QaItem> Workload(const synth::EntityUniverse& universe,
                                    uint64_t seed, size_t n) {
  synth::QaOptions qo;
  qo.num_questions = n;
  Rng rng(seed);
  return synth::GenerateQaWorkload(universe, qo, rng);
}

TEST(DualHybridTest, SymbolicRouteMatchesKgAnswerer) {
  const auto universe = SmallUniverse(1);
  const KnowledgeGraph kg = universe.ToKnowledgeGraph();
  const KgEmbeddingSpace space(kg, FastOptions(1));
  const auto items = Workload(universe, 2, 60);

  KgAnswerer symbolic(kg);
  HybridAnswerer hybrid(kg, space);
  Rng rng(3);
  size_t symbolic_answered = 0;
  for (const synth::QaItem& item : items) {
    const auto want = symbolic.Answer(item, rng);
    if (!want.has_value()) continue;
    ++symbolic_answered;
    const auto got = hybrid.Answer(item, rng);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, *want) << item.subject_name << "/" << item.predicate;
    EXPECT_EQ(hybrid.last_route(), HybridAnswerer::Route::kSymbolic);
  }
  ASSERT_GT(symbolic_answered, 0u);
  EXPECT_EQ(hybrid.symbolic_hits(), symbolic_answered);
}

TEST(DualHybridTest, AnnRouteFiresWhenSymbolicHasNoEdge) {
  // A person exists (resolvable subject) but has no directed_by edge,
  // while the predicate itself is in the space — symbolic abstains, the
  // ANN route answers from the learned geometry.
  const auto universe = SmallUniverse(4);
  const KnowledgeGraph kg = universe.ToKnowledgeGraph();
  const KgEmbeddingSpace space(kg, FastOptions(4));

  synth::QaItem item;
  item.subject_name = universe.people()[0].name;
  item.predicate = "directed_by";
  item.gold_object = "";

  Rng rng(5);
  KgAnswerer symbolic(kg);
  ASSERT_EQ(symbolic.Answer(item, rng), std::nullopt)
      << "precondition: the symbolic path must have no edge here";

  HybridAnswerer hybrid(kg, space);
  const auto got = hybrid.Answer(item, rng);
  ASSERT_TRUE(got.has_value()) << "ANN fallback should produce a guess";
  EXPECT_EQ(hybrid.last_route(), HybridAnswerer::Route::kAnn);
  EXPECT_EQ(hybrid.ann_hits(), 1u);
}

TEST(DualHybridTest, UnknownSubjectAbstains) {
  const auto universe = SmallUniverse(6);
  const KnowledgeGraph kg = universe.ToKnowledgeGraph();
  const KgEmbeddingSpace space(kg, FastOptions(6));

  synth::QaItem item;
  item.subject_name = "entity that exists nowhere";
  item.predicate = "birth_year";

  Rng rng(7);
  HybridAnswerer hybrid(kg, space);
  EXPECT_EQ(hybrid.Answer(item, rng), std::nullopt);
  EXPECT_EQ(hybrid.last_route(), HybridAnswerer::Route::kNone);
  EXPECT_EQ(hybrid.abstains(), 1u);
}

TEST(DualHybridTest, HybridNeverScoresBelowSymbolicOnly) {
  // Prune a slice of attribute edges from the served graph while the
  // space keeps the full geometry (the bench's "index lags the stream"
  // shape): hybrid accuracy must be >= symbolic-only accuracy, because
  // the symbolic route is tried first and the ANN route only adds
  // answers where symbolic abstained.
  const auto universe = SmallUniverse(8);
  const KnowledgeGraph full = universe.ToKnowledgeGraph();
  const KgEmbeddingSpace space(full, FastOptions(8));

  KnowledgeGraph pruned = universe.ToKnowledgeGraph();
  const auto pred = pruned.FindPredicate("release_year");
  ASSERT_TRUE(pred.ok());
  size_t removed = 0;
  for (uint32_t id = 0; id < universe.movies().size(); id += 3) {
    const auto node = pruned.FindNode(
        synth::EntityUniverse::MovieNodeName(id), graph::NodeKind::kEntity);
    if (!node.ok()) continue;
    for (graph::TripleId t : pruned.TriplesWithSubject(*node)) {
      if (pruned.triple(t).predicate == *pred) {
        pruned.RemoveTriple(t);
        ++removed;
        break;
      }
    }
  }
  ASSERT_GT(removed, 0u);

  const auto items = Workload(universe, 9, 200);
  KgAnswerer symbolic(pruned);
  HybridAnswerer hybrid(pruned, space);
  Rng rng_a(10), rng_b(10);
  const QaEvaluation kg_only = EvaluateAnswerer(symbolic, items, rng_a);
  const QaEvaluation mixed = EvaluateAnswerer(hybrid, items, rng_b);

  EXPECT_GE(mixed.overall.accuracy, kg_only.overall.accuracy);
  EXPECT_LE(mixed.overall.abstention_rate, kg_only.overall.abstention_rate);
  EXPECT_GT(hybrid.ann_hits(), 0u)
      << "the pruned edges should have routed through the ANN fallback";
}

TEST(DualHybridTest, EmbeddingSpaceIsDeterministic) {
  const auto universe = SmallUniverse(11);
  const KnowledgeGraph kg = universe.ToKnowledgeGraph();
  const KgEmbeddingSpace a(kg, FastOptions(11));
  const KgEmbeddingSpace b(kg, FastOptions(11));

  ASSERT_EQ(a.num_embedded_nodes(), b.num_embedded_nodes());
  ASSERT_GT(a.num_embedded_nodes(), 0u);
  EXPECT_EQ(a.index().Serialize(), b.index().Serialize())
      << "equal (graph, options) must build byte-identical indexes";

  const auto items = Workload(universe, 12, 40);
  for (const synth::QaItem& item : items) {
    EXPECT_EQ(a.PredictObject(item.subject_name, item.predicate),
              b.PredictObject(item.subject_name, item.predicate));
  }

  // A different seed trains a different geometry.
  const KgEmbeddingSpace c(kg, FastOptions(12));
  EXPECT_NE(a.index().Serialize(), c.index().Serialize());
}

TEST(DualHybridTest, PredictObjectRepaysTheExactIndexQuery) {
  // EmbeddingQuery exposes the raw query point; searching it by hand
  // must reproduce PredictObject's pick (skipping the subject itself).
  const auto universe = SmallUniverse(13);
  const KnowledgeGraph kg = universe.ToKnowledgeGraph();
  const KgEmbeddingSpace space(kg, FastOptions(13));

  const std::string subject = universe.people()[1].name;
  const auto query = space.EmbeddingQuery(subject, "birth_year");
  ASSERT_TRUE(query.has_value());
  const auto predicted = space.PredictObject(subject, "birth_year");
  ASSERT_TRUE(predicted.has_value());

  for (const ann::Neighbor& hit : space.index().Search(*query, 9)) {
    const std::string& display = space.DisplayOf(hit.id);
    if (display == *predicted) return;  // Found the pick in the beam.
  }
  FAIL() << "PredictObject's answer must come from the ANN beam";
}

}  // namespace
}  // namespace kg::dual
