#include <gtest/gtest.h>

#include "synth/behavior_generator.h"
#include "synth/qa_generator.h"

namespace kg::synth {
namespace {

TEST(BehaviorTest, EventsReferenceRealProducts) {
  Rng rng(1);
  CatalogOptions copt;
  copt.num_types = 10;
  copt.num_products = 200;
  const auto catalog = ProductCatalog::Generate(copt, rng);
  BehaviorOptions bopt;
  bopt.num_searches = 2000;
  bopt.num_co_views = 500;
  const auto log = GenerateBehavior(catalog, bopt, rng);
  EXPECT_EQ(log.searches.size(), 2000u);
  for (const auto& e : log.searches) {
    EXPECT_LT(e.purchased_product, catalog.products().size());
    EXPECT_FALSE(e.query.empty());
  }
  for (const auto& p : log.co_views) {
    EXPECT_LT(p.a, catalog.products().size());
    EXPECT_LT(p.b, catalog.products().size());
  }
}

TEST(BehaviorTest, LeafQueriesConcentrateOnTheirType) {
  Rng rng(2);
  CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 400;
  const auto catalog = ProductCatalog::Generate(copt, rng);
  BehaviorOptions bopt;
  bopt.num_searches = 5000;
  bopt.hypernym_query_rate = 0.0;
  bopt.alias_query_rate = 0.0;
  bopt.purchase_noise = 0.0;
  const auto log = GenerateBehavior(catalog, bopt, rng);
  // Every purchase's type name equals the query.
  for (const auto& e : log.searches) {
    const auto& product = catalog.products()[e.purchased_product];
    EXPECT_EQ(e.query, catalog.taxonomy().Name(product.type));
  }
}

TEST(BehaviorTest, HypernymQueriesUseParentName) {
  Rng rng(3);
  CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 300;
  const auto catalog = ProductCatalog::Generate(copt, rng);
  BehaviorOptions bopt;
  bopt.num_searches = 3000;
  bopt.hypernym_query_rate = 1.0;
  bopt.alias_query_rate = 0.0;
  bopt.purchase_noise = 0.0;
  const auto log = GenerateBehavior(catalog, bopt, rng);
  size_t parent_queries = 0;
  for (const auto& e : log.searches) {
    const auto& product = catalog.products()[e.purchased_product];
    const auto parents = catalog.taxonomy().Parents(product.type);
    if (e.query == catalog.taxonomy().Name(parents[0])) {
      ++parent_queries;
    }
  }
  EXPECT_EQ(parent_queries, log.searches.size());
}

UniverseOptions QaUniverseOptions() {
  UniverseOptions opt;
  opt.num_people = 600;
  opt.num_movies = 300;
  opt.num_songs = 50;
  return opt;
}

TEST(QaGeneratorTest, BucketsBalanced) {
  Rng rng(4);
  const auto u = EntityUniverse::Generate(QaUniverseOptions(), rng);
  QaOptions qopt;
  qopt.num_questions = 900;
  const auto items = GenerateQaWorkload(u, qopt, rng);
  size_t counts[3] = {0, 0, 0};
  for (const auto& item : items) {
    ++counts[static_cast<size_t>(item.bucket)];
  }
  EXPECT_EQ(counts[0], 300u);
  EXPECT_EQ(counts[1], 300u);
  EXPECT_EQ(counts[2], 300u);
}

TEST(QaGeneratorTest, GoldAnswersMatchUniverse) {
  Rng rng(5);
  const auto u = EntityUniverse::Generate(QaUniverseOptions(), rng);
  QaOptions qopt;
  qopt.num_questions = 300;
  const auto items = GenerateQaWorkload(u, qopt, rng);
  for (const auto& item : items) {
    if (item.predicate == "directed_by") {
      const auto& movie = u.movies()[item.entity_id];
      EXPECT_EQ(item.gold_object, u.people()[movie.director].name);
      EXPECT_EQ(item.subject_name, movie.title);
    } else if (item.predicate == "birth_year") {
      EXPECT_EQ(item.gold_object,
                std::to_string(u.people()[item.entity_id].birth_year));
    }
  }
}

TEST(FactCorpusTest, MentionCountsFollowPopularity) {
  Rng rng(6);
  const auto u = EntityUniverse::Generate(QaUniverseOptions(), rng);
  CorpusOptions copt;
  copt.head_mentions = 100.0;
  copt.mention_noise = 0.0;
  const auto corpus = GenerateFactCorpus(u, copt, rng);
  ASSERT_FALSE(corpus.empty());
  // Facts about the most popular movie appear far more often than about a
  // tail movie.
  size_t head_count = 0, tail_count = 0;
  const std::string head_title = u.movies()[0].title;
  const std::string tail_title = u.movies().back().title;
  for (const auto& m : corpus) {
    if (m.subject == head_title) head_count += m.count;
    if (m.subject == tail_title) tail_count += m.count;
  }
  EXPECT_GT(head_count, 50u);
  EXPECT_LT(tail_count, 10u);
}

TEST(FactCorpusTest, RecentFactsExcludedByDefault) {
  Rng rng(7);
  auto opt = QaUniverseOptions();
  opt.num_movies = 400;
  const auto u = EntityUniverse::Generate(opt, rng);
  CorpusOptions copt;
  const auto corpus = GenerateFactCorpus(u, copt, rng);
  for (const auto& m : corpus) {
    EXPECT_FALSE(m.recent);
  }
}

TEST(FactCorpusTest, NoiseMentionsCarryWrongObjects) {
  Rng rng(8);
  const auto u = EntityUniverse::Generate(QaUniverseOptions(), rng);
  CorpusOptions copt;
  copt.mention_noise = 0.5;
  copt.head_mentions = 200.0;
  const auto corpus = GenerateFactCorpus(u, copt, rng);
  // The head movie's directed_by should have two variants now.
  const std::string head_title = u.movies()[0].title;
  std::set<std::string> objects;
  for (const auto& m : corpus) {
    if (m.subject == head_title && m.predicate == "directed_by") {
      objects.insert(m.object);
    }
  }
  EXPECT_GE(objects.size(), 2u);
}

}  // namespace
}  // namespace kg::synth
