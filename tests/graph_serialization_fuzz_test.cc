// Fuzz-style round-trip suite for graph::serialization: randomized triple
// sets full of hostile bytes (tabs, newlines, backslash runs, unicode-ish
// sequences, empty and duplicate values) must survive write -> read ->
// write byte-identically, and the field escaping must invert exactly on
// arbitrary strings.

#include "graph/serialization.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"

namespace kg::graph {
namespace {

// Alphabet skewed toward the characters the TSV format must escape, plus
// multi-byte UTF-8 fragments and controls.
std::string RandomToken(Rng& rng) {
  static const std::vector<std::string> kAtoms = {
      "\t", "\n", "\\", "\\\\", "\\t", "\\n", "\r", " ", "'", "\"",
      "\x7f", "\xc3\xa9", "\xe2\x98\x83", "a", "B", "z", "0", ":", "|",
      "person", "title",
  };
  const size_t len = rng.UniformIndex(7);  // 0..6 atoms; empty is legal.
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAtoms[rng.UniformIndex(kAtoms.size())];
  }
  return out;
}

NodeKind RandomKind(Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return NodeKind::kEntity;
    case 1:
      return NodeKind::kText;
    default:
      return NodeKind::kClass;
  }
}

KnowledgeGraph RandomKg(uint64_t seed) {
  Rng rng(seed);
  KnowledgeGraph kg;
  const int num_triples = static_cast<int>(rng.UniformInt(5, 40));
  // A small shared pool so duplicate (s, p, o) assertions (which must
  // merge provenance, not duplicate triples) actually occur.
  std::vector<std::string> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(RandomToken(rng));
  auto name = [&]() -> std::string {
    return rng.Bernoulli(0.5) ? pool[rng.UniformIndex(pool.size())]
                              : RandomToken(rng);
  };
  for (int i = 0; i < num_triples; ++i) {
    Provenance prov;
    prov.source = name();
    prov.confidence = rng.Bernoulli(0.2) ? 1.0 : rng.UniformDouble();
    prov.timestamp = rng.UniformInt(-1000, 1000);
    kg.AddTriple(name(), name(), name(), RandomKind(rng), RandomKind(rng),
                 std::move(prov));
  }
  return kg;
}

TEST(SerializationFuzzTest, EscapeRoundTripsArbitraryStrings) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::string s = RandomToken(rng);
    const std::string escaped = EscapeTsvField(s);
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << "input: " << s;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << "input: " << s;
    EXPECT_EQ(UnescapeTsvField(escaped), s);
  }
}

TEST(SerializationFuzzTest, EscapeDistinguishesLiteralBackslashSequences) {
  // "\t" the two-character literal vs a real tab must stay distinct
  // through a round trip — the classic escaping bug.
  for (const std::string s : {"\\t", "\t", "\\\t", "\\n", "\n", "a\\",
                              "\\", "\\\\t"}) {
    EXPECT_EQ(UnescapeTsvField(EscapeTsvField(s)), s);
  }
  EXPECT_NE(EscapeTsvField("\\t"), EscapeTsvField("\t"));
  EXPECT_NE(EscapeTsvField("\\n"), EscapeTsvField("\n"));
}

TEST(SerializationFuzzTest, WriteReadWriteIsByteIdentical) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const KnowledgeGraph kg = RandomKg(seed);
    const std::string first = SerializeKg(kg);
    auto loaded = DeserializeKg(first);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                             << loaded.status();
    EXPECT_EQ(loaded->num_triples(), kg.num_triples()) << "seed " << seed;
    const std::string second = SerializeKg(*loaded);
    ASSERT_EQ(first, second) << "seed " << seed;
    EXPECT_EQ(TripleSetFingerprint(*loaded), TripleSetFingerprint(kg))
        << "seed " << seed;
  }
}

TEST(SerializationFuzzTest, EmptyNamesAndValuesSurvive) {
  KnowledgeGraph kg;
  kg.AddTriple("", "", "", NodeKind::kEntity, NodeKind::kText,
               {"", 0.5, 0});
  kg.AddTriple("", "p", "", NodeKind::kClass, NodeKind::kClass,
               {"src", 1.0, -7});
  const std::string first = SerializeKg(kg);
  auto loaded = DeserializeKg(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_triples(), 2u);
  EXPECT_EQ(SerializeKg(*loaded), first);
  EXPECT_TRUE(loaded->FindNode("", NodeKind::kEntity).ok());
  EXPECT_TRUE(loaded->FindPredicate("").ok());
}

TEST(SerializationFuzzTest, DuplicateAssertionsMergeProvenanceStably) {
  KnowledgeGraph kg;
  kg.AddTriple("s", "p", "o", NodeKind::kEntity, NodeKind::kText,
               {"a", 0.25, 1});
  kg.AddTriple("x", "p", "y", NodeKind::kEntity, NodeKind::kText,
               {"b", 0.5, 2});
  // Same triple again, later and from another source: provenance appends.
  kg.AddTriple("s", "p", "o", NodeKind::kEntity, NodeKind::kText,
               {"c", 0.75, 3});
  const std::string first = SerializeKg(kg);
  auto loaded = DeserializeKg(first);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), 2u);
  const NodeId s = *loaded->FindNode("s", NodeKind::kEntity);
  const PredicateId p = *loaded->FindPredicate("p");
  const NodeId o = *loaded->FindNode("o", NodeKind::kText);
  EXPECT_EQ(loaded->provenance(loaded->FindTriple(s, p, o)).size(), 2u);
  EXPECT_EQ(SerializeKg(*loaded), first);
}

}  // namespace
}  // namespace kg::graph
