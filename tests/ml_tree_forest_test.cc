#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace kg::ml {
namespace {

// Axis-separable binary problem with one informative feature + noise dims.
Dataset MakeSeparable(size_t n, Rng& rng, double flip = 0.0) {
  Dataset d;
  d.feature_names = {"signal", "noise1", "noise2"};
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    const double base = label == 1 ? 0.7 : 0.3;
    Example ex;
    ex.features = {base + rng.Gaussian(0, 0.08), rng.UniformDouble(),
                   rng.UniformDouble()};
    ex.label = rng.Bernoulli(flip) ? 1 - label : label;
    d.examples.push_back(std::move(ex));
  }
  return d;
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  Rng rng(1);
  const Dataset train = MakeSeparable(400, rng);
  const Dataset test = MakeSeparable(200, rng);
  DecisionTree tree;
  TreeOptions opt;
  tree.Fit(train, opt, rng);
  Confusion c;
  for (const auto& ex : test.examples) {
    c.Add(ex.label, tree.Predict(ex.features));
  }
  EXPECT_GT(c.Accuracy(), 0.95);
}

TEST(DecisionTreeTest, PureLeafWhenSingleClass) {
  Dataset d;
  d.feature_names = {"x"};
  d.examples = {Example{{1.0}, 1}, Example{{2.0}, 1}};
  DecisionTree tree;
  Rng rng(2);
  tree.Fit(d, {}, rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict({5.0}), 1);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(3);
  const Dataset train = MakeSeparable(200, rng);
  DecisionTree stump;
  TreeOptions opt;
  opt.max_depth = 1;
  stump.Fit(train, opt, rng);
  EXPECT_LE(stump.num_nodes(), 3u);
}

TEST(DecisionTreeTest, ProbaSumsToOne) {
  Rng rng(4);
  const Dataset train = MakeSeparable(100, rng, 0.2);
  DecisionTree tree;
  tree.Fit(train, {}, rng);
  const auto proba = tree.PredictProba({0.5, 0.5, 0.5});
  double total = 0;
  for (double p : proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTreeTest, FeatureImportanceFindsSignal) {
  Rng rng(5);
  const Dataset train = MakeSeparable(500, rng, 0.05);
  DecisionTree tree;
  tree.Fit(train, {}, rng);
  const auto& imp = tree.feature_importance();
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
}

TEST(DecisionTreeTest, MulticlassWorks) {
  Dataset d;
  d.feature_names = {"x"};
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const int label = static_cast<int>(rng.UniformInt(0, 2));
    d.examples.push_back(
        Example{{label + rng.Gaussian(0, 0.1)}, label});
  }
  DecisionTree tree;
  tree.Fit(d, {}, rng);
  EXPECT_EQ(tree.num_classes(), 3);
  EXPECT_EQ(tree.Predict({0.0}), 0);
  EXPECT_EQ(tree.Predict({1.0}), 1);
  EXPECT_EQ(tree.Predict({2.0}), 2);
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  Rng rng(7);
  const Dataset train = MakeSeparable(500, rng, 0.15);
  const Dataset test = MakeSeparable(400, rng, 0.0);
  DecisionTree tree;
  tree.Fit(train, {}, rng);
  RandomForest forest;
  ForestOptions fopt;
  fopt.num_trees = 40;
  forest.Fit(train, fopt, rng);
  Confusion ct, cf;
  for (const auto& ex : test.examples) {
    ct.Add(ex.label, tree.Predict(ex.features));
    cf.Add(ex.label, forest.Predict(ex.features));
  }
  EXPECT_GE(cf.Accuracy() + 0.02, ct.Accuracy());
  EXPECT_GT(cf.Accuracy(), 0.9);
}

TEST(RandomForestTest, ProbaMonotoneInSignal) {
  Rng rng(8);
  const Dataset train = MakeSeparable(400, rng);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 30;
  forest.Fit(train, opt, rng);
  EXPECT_LT(forest.PredictPositiveProba({0.1, 0.5, 0.5}),
            forest.PredictPositiveProba({0.9, 0.5, 0.5}));
}

TEST(RandomForestTest, ParallelTrainingMatchesQuality) {
  Rng rng(9);
  const Dataset train = MakeSeparable(300, rng);
  const Dataset test = MakeSeparable(200, rng);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 16;
  opt.num_threads = 4;
  forest.Fit(train, opt, rng);
  Confusion c;
  for (const auto& ex : test.examples) {
    c.Add(ex.label, forest.Predict(ex.features));
  }
  EXPECT_GT(c.Accuracy(), 0.9);
}

TEST(RandomForestTest, FeatureImportanceNormalized) {
  Rng rng(10);
  const Dataset train = MakeSeparable(300, rng);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 10;
  forest.Fit(train, opt, rng);
  const auto imp = forest.FeatureImportance();
  double total = 0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.5);
}

}  // namespace
}  // namespace kg::ml
