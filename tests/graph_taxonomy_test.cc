#include "graph/taxonomy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace kg::graph {
namespace {

Taxonomy MakeProductTaxonomy() {
  // Product -> {Beverage -> {Tea -> {Green Tea, Black Tea}, Coffee},
  //             Apparel -> {Swimwear}}
  Taxonomy tax("Product");
  const TypeId beverage = tax.AddType("Beverage", tax.root());
  const TypeId tea = tax.AddType("Tea", beverage);
  tax.AddType("Green Tea", tea);
  tax.AddType("Black Tea", tea);
  tax.AddType("Coffee", beverage);
  const TypeId apparel = tax.AddType("Apparel", tax.root());
  tax.AddType("Swimwear", apparel);
  return tax;
}

TEST(TaxonomyTest, RootExists) {
  Taxonomy tax("Thing");
  EXPECT_EQ(tax.size(), 1u);
  EXPECT_EQ(tax.Name(tax.root()), "Thing");
  EXPECT_EQ(tax.Depth(tax.root()), 0);
}

TEST(TaxonomyTest, AddTypeIsIdempotentByName) {
  Taxonomy tax("Thing");
  const TypeId a = tax.AddType("A", tax.root());
  const TypeId a2 = tax.AddType("A", tax.root());
  EXPECT_EQ(a, a2);
  EXPECT_EQ(tax.size(), 2u);
}

TEST(TaxonomyTest, AncestryQueries) {
  Taxonomy tax = MakeProductTaxonomy();
  const TypeId green = *tax.Find("Green Tea");
  const TypeId tea = *tax.Find("Tea");
  const TypeId beverage = *tax.Find("Beverage");
  const TypeId swim = *tax.Find("Swimwear");
  EXPECT_TRUE(tax.IsAncestor(green, tea));
  EXPECT_TRUE(tax.IsAncestor(green, beverage));
  EXPECT_TRUE(tax.IsAncestor(green, tax.root()));
  EXPECT_TRUE(tax.IsAncestor(green, green));
  EXPECT_FALSE(tax.IsAncestor(tea, green));
  EXPECT_FALSE(tax.IsAncestor(green, swim));
}

TEST(TaxonomyTest, DepthAndLca) {
  Taxonomy tax = MakeProductTaxonomy();
  const TypeId green = *tax.Find("Green Tea");
  const TypeId black = *tax.Find("Black Tea");
  const TypeId coffee = *tax.Find("Coffee");
  const TypeId swim = *tax.Find("Swimwear");
  EXPECT_EQ(tax.Depth(green), 3);
  EXPECT_EQ(tax.Depth(coffee), 2);
  EXPECT_EQ(tax.Lca(green, black), *tax.Find("Tea"));
  EXPECT_EQ(tax.Lca(green, coffee), *tax.Find("Beverage"));
  EXPECT_EQ(tax.Lca(green, swim), tax.root());
  EXPECT_EQ(tax.Lca(green, green), green);
}

TEST(TaxonomyTest, WuPalmerOrdersByRelatedness) {
  Taxonomy tax = MakeProductTaxonomy();
  const TypeId green = *tax.Find("Green Tea");
  const TypeId black = *tax.Find("Black Tea");
  const TypeId coffee = *tax.Find("Coffee");
  const TypeId swim = *tax.Find("Swimwear");
  const double sibling = tax.WuPalmerSimilarity(green, black);
  const double cousin = tax.WuPalmerSimilarity(green, coffee);
  const double distant = tax.WuPalmerSimilarity(green, swim);
  EXPECT_GT(sibling, cousin);
  EXPECT_GT(cousin, distant);
  EXPECT_DOUBLE_EQ(tax.WuPalmerSimilarity(green, green), 1.0);
}

TEST(TaxonomyTest, MultiParentDagAllowed) {
  Taxonomy tax("Product");
  const TypeId fashion = tax.AddType("Fashion", tax.root());
  const TypeId swimwear = tax.AddType("Swimwear", tax.root());
  ASSERT_TRUE(tax.AddParent(swimwear, fashion).ok());
  EXPECT_TRUE(tax.IsAncestor(swimwear, fashion));
  EXPECT_EQ(tax.Parents(swimwear).size(), 2u);
}

TEST(TaxonomyTest, CycleRejected) {
  Taxonomy tax("T");
  const TypeId a = tax.AddType("a", tax.root());
  const TypeId b = tax.AddType("b", a);
  EXPECT_FALSE(tax.AddParent(a, b).ok());
  EXPECT_FALSE(tax.AddParent(a, a).ok());
}

TEST(TaxonomyTest, LeavesAndDescendants) {
  Taxonomy tax = MakeProductTaxonomy();
  const auto leaves = tax.Leaves();
  EXPECT_EQ(leaves.size(), 4u);  // Green, Black, Coffee, Swimwear.
  const auto bev_desc = tax.Descendants(*tax.Find("Beverage"));
  EXPECT_EQ(bev_desc.size(), 5u);  // Beverage, Tea, Green, Black, Coffee.
  const auto anc = tax.Ancestors(*tax.Find("Green Tea"));
  EXPECT_EQ(anc.size(), 4u);
}

TEST(TaxonomyTest, FindMissingReturnsNotFound) {
  Taxonomy tax("T");
  EXPECT_FALSE(tax.Find("nope").ok());
}

}  // namespace
}  // namespace kg::graph
