// Recall property harness for the HNSW index: over seeded random vector
// sets, approximate search must recover >= 95% of the exact top-10
// (HnswIndex::BruteForce is the oracle), recall must not collapse when
// the beam narrows to the default, and construction must stay
// byte-deterministic at property scale.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ann/hnsw.h"
#include "common/rng.h"

namespace kg::ann {
namespace {

constexpr size_t kDim = 16;
constexpr size_t kNumVectors = 1500;
constexpr size_t kNumQueries = 100;
constexpr size_t kK = 10;

std::vector<float> RandomVectors(size_t n, size_t dim, Rng& rng) {
  std::vector<float> out(n * dim);
  for (float& v : out) {
    v = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  return out;
}

/// Fraction of the exact top-k ids the approximate search recovered,
/// averaged over queries.
double RecallAtK(const HnswIndex& index, const std::vector<float>& queries,
                 size_t k, size_t ef) {
  const size_t n = queries.size() / index.dim();
  double sum = 0.0;
  for (size_t q = 0; q < n; ++q) {
    std::span<const float> query(queries.data() + q * index.dim(),
                                 index.dim());
    const auto exact = index.BruteForce(query, k);
    const auto approx = index.Search(query, k, ef);
    size_t hit = 0;
    for (const Neighbor& e : exact) {
      for (const Neighbor& a : approx) {
        if (a.id == e.id) {
          ++hit;
          break;
        }
      }
    }
    sum += static_cast<double>(hit) /
           static_cast<double>(exact.empty() ? 1 : exact.size());
  }
  return sum / static_cast<double>(n);
}

TEST(AnnRecallPropertyTest, RecallAt10AcrossSeeds) {
  HnswOptions options;
  options.dim = kDim;
  options.M = 16;
  options.ef_construction = 128;
  options.ef_search = 64;

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    options.seed = seed;
    const auto vectors = RandomVectors(kNumVectors, kDim, rng);
    const auto queries = RandomVectors(kNumQueries, kDim, rng);
    HnswIndex index = HnswIndex::Build(vectors, options);

    const double recall = RecallAtK(index, queries, kK, options.ef_search);
    EXPECT_GE(recall, 0.95)
        << "seed " << seed << ": recall@10 " << recall;

    // A wide-open beam must do at least as well as the default; at
    // ef == n it is exhaustive and recall is exactly 1.
    const double exhaustive = RecallAtK(index, queries, kK, kNumVectors);
    EXPECT_DOUBLE_EQ(exhaustive, 1.0) << "seed " << seed;
  }
}

TEST(AnnRecallPropertyTest, MemberQueriesFindThemselves) {
  // Querying with a stored vector must return that vector first (dist 0,
  // smallest id among duplicates).
  Rng rng(42);
  HnswOptions options;
  options.dim = kDim;
  options.seed = 42;
  const auto vectors = RandomVectors(kNumVectors, kDim, rng);
  HnswIndex index = HnswIndex::Build(vectors, options);

  for (uint32_t id = 0; id < kNumVectors; id += 97) {
    const auto hits = index.Search(index.vector(id), 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, id) << "member query " << id;
    EXPECT_FLOAT_EQ(hits[0].dist, 0.0f);
  }
}

TEST(AnnRecallPropertyTest, DeterministicAtScale) {
  Rng rng(7);
  HnswOptions options;
  options.dim = kDim;
  options.seed = 7;
  const auto vectors = RandomVectors(kNumVectors, kDim, rng);
  const std::string a = HnswIndex::Build(vectors, options).Serialize();
  const std::string b = HnswIndex::Build(vectors, options).Serialize();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace kg::ann
