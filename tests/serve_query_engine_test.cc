#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/exec_policy.h"
#include "common/stage_timer.h"
#include "graph/knowledge_graph.h"
#include "serve/snapshot.h"

namespace kg::serve {
namespace {

using graph::NodeKind;
using graph::Provenance;

const Provenance kProv{"test", 1.0, 0};

// A movie-shaped micro-world: two typed movies, one typed person, one
// untyped movie, text attributes, and a shared director for top-k.
graph::KnowledgeGraph SampleKg() {
  graph::KnowledgeGraph kg;
  kg.AddTriple("m1", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("m2", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("ada", "type", "Person", NodeKind::kEntity,
               NodeKind::kClass, kProv);
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m2", "title", "Night Train", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m3", "title", "Untyped", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m1", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("m2", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("bo", "acted_in", "m1", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  kg.AddTriple("bo", "acted_in", "m2", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  return kg;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : kg_(SampleKg()), snap_(KgSnapshot::Compile(kg_)) {}

  graph::KnowledgeGraph kg_;
  KgSnapshot snap_;
};

TEST_F(QueryEngineTest, PointLookupReturnsSortedObjects) {
  const QueryEngine engine(snap_);
  EXPECT_EQ(engine.Execute(Query::PointLookup("m1", "title")),
            (QueryResult{"T:The Harbor"}));
  EXPECT_EQ(engine.Execute(Query::PointLookup("m1", "directed_by")),
            (QueryResult{"E:ada"}));
  // Unknown node, predicate, or wrong kind: empty, not an error.
  EXPECT_TRUE(engine.Execute(Query::PointLookup("nope", "title")).empty());
  EXPECT_TRUE(engine.Execute(Query::PointLookup("m1", "nope")).empty());
  EXPECT_TRUE(engine
                  .Execute(Query::PointLookup("m1", "title",
                                              NodeKind::kText))
                  .empty());
}

TEST_F(QueryEngineTest, NeighborhoodCoversBothDirections) {
  const QueryEngine engine(snap_);
  const QueryResult rows = engine.Execute(Query::Neighborhood("m1"));
  const QueryResult expected{
      "in\tacted_in\tE:bo",
      "out\tdirected_by\tE:ada",
      "out\ttitle\tT:The Harbor",
      "out\ttype\tC:Movie",
  };
  EXPECT_EQ(rows, expected);
}

TEST_F(QueryEngineTest, AttributeByTypeFiltersByClass) {
  const QueryEngine engine(snap_);
  const QueryResult rows =
      engine.Execute(Query::AttributeByType("Movie", "title"));
  // m3 has a title but no type assertion, so it is filtered out.
  const QueryResult expected{
      "E:m1\tT:The Harbor",
      "E:m2\tT:Night Train",
  };
  EXPECT_EQ(rows, expected);
  EXPECT_TRUE(
      engine.Execute(Query::AttributeByType("Nope", "title")).empty());
}

TEST_F(QueryEngineTest, TopKRelatedRanksBySharedNeighbors) {
  const QueryEngine engine(snap_);
  // m1's neighbors: Movie, "The Harbor", ada, bo. m2 shares ada, bo and
  // Movie (3 paths); no other entity shares more than one.
  const QueryResult rows = engine.Execute(Query::TopKRelated("m1", 2));
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0], "E:m2\t3");
  EXPECT_LE(rows.size(), 2u);
  // k truncates.
  EXPECT_EQ(engine.Execute(Query::TopKRelated("m1", 1)).size(), 1u);
  EXPECT_TRUE(engine.Execute(Query::TopKRelated("m1", 0)).empty());
  EXPECT_TRUE(engine.Execute(Query::TopKRelated("ghost", 5)).empty());
}

TEST_F(QueryEngineTest, CacheIsTransparentAndCounts) {
  ServeOptions options;
  options.cache_capacity = 64;
  const QueryEngine cached(snap_, options);
  const QueryEngine uncached(snap_);
  const std::vector<Query> queries = {
      Query::PointLookup("m1", "title"),
      Query::Neighborhood("m1"),
      Query::AttributeByType("Movie", "title"),
      Query::TopKRelated("m1", 4),
  };
  for (const Query& q : queries) {
    const QueryResult cold = cached.Execute(q);
    const QueryResult warm = cached.Execute(q);
    EXPECT_EQ(cold, uncached.Execute(q));
    EXPECT_EQ(warm, cold);
  }
  ASSERT_NE(cached.cache(), nullptr);
  const auto counters = cached.cache()->counters();
  EXPECT_EQ(counters.misses, queries.size());
  EXPECT_EQ(counters.hits, queries.size());
  EXPECT_EQ(uncached.cache(), nullptr);
}

TEST_F(QueryEngineTest, CacheKeyIsInjectiveAcrossFieldBoundaries) {
  // Same concatenated bytes, different field split.
  const Query a = Query::PointLookup("ab", "c");
  const Query b = Query::PointLookup("a", "bc");
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  // Same fields, different kind.
  EXPECT_NE(Query::Neighborhood("m1").CacheKey(),
            Query::TopKRelated("m1", 10).CacheKey());
  EXPECT_NE(Query::PointLookup("m1", "title").CacheKey(),
            Query::PointLookup("m1", "title", NodeKind::kText).CacheKey());
}

TEST_F(QueryEngineTest, BatchExecuteIsBitIdenticalAcrossThreadCounts) {
  std::vector<Query> batch;
  for (int rep = 0; rep < 10; ++rep) {
    batch.push_back(Query::PointLookup("m1", "title"));
    batch.push_back(Query::PointLookup("m2", "directed_by"));
    batch.push_back(Query::Neighborhood("ada"));
    batch.push_back(Query::AttributeByType("Movie", "title"));
    batch.push_back(Query::TopKRelated("bo", 5));
    batch.push_back(Query::PointLookup("ghost", "title"));
  }
  const QueryEngine serial(snap_);
  std::vector<QueryResult> reference;
  for (const Query& q : batch) reference.push_back(serial.Execute(q));

  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t cache_capacity : {0u, 16u}) {
      ServeOptions options;
      options.exec = ExecPolicy::WithThreads(threads);
      options.cache_capacity = cache_capacity;
      const QueryEngine engine(snap_, options);
      EXPECT_EQ(engine.BatchExecute(batch), reference)
          << "threads=" << threads << " cache=" << cache_capacity;
    }
  }
}

TEST_F(QueryEngineTest, TryExecuteRefusesNewerSchemaSnapshot) {
  // Regression: a snapshot stamped with a newer schema generation than
  // this build must be refused with kUnavailable — the retriable
  // "another replica may serve you" signal — never a crash and never a
  // plausible-but-wrong empty success.
  KgSnapshot newer = KgSnapshot::Compile(kg_);
  newer.OverrideSchemaVersion(kSnapshotSchemaVersion + 1);
  const QueryEngine engine(newer);
  const auto result = engine.TryExecute(Query::PointLookup("m1", "title"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetriable(result.status().code()));

  // Same generation (and older stamps, if they ever exist) serve
  // normally, identically to Execute.
  const QueryEngine current(snap_);
  const auto ok = current.TryExecute(Query::PointLookup("m1", "title"));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(*ok, current.Execute(Query::PointLookup("m1", "title")));
}

TEST_F(QueryEngineTest, MetricsRecordPerQueryClass) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  StageTimer metrics;
  ServeOptions options;
  options.metrics = &metrics;
  const QueryEngine engine(snap_, options);
  engine.Execute(Query::PointLookup("m1", "title"));
  engine.Execute(Query::PointLookup("m2", "title"));
  engine.Execute(Query::TopKRelated("m1", 3));
  const auto rows = metrics.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].stage, "point_lookup");
  EXPECT_EQ(rows[0].calls, 2u);
  EXPECT_EQ(rows[1].stage, "topk_related");
  EXPECT_EQ(rows[1].calls, 1u);
}

}  // namespace
}  // namespace kg::serve
