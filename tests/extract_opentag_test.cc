#include "extract/opentag.h"

#include <gtest/gtest.h>

#include "synth/catalog_generator.h"
#include "text/bio.h"
#include "textrich/example_builder.h"

namespace kg::extract {
namespace {

synth::ProductCatalog SmallCatalog(uint64_t seed = 1,
                                   size_t products = 600) {
  synth::CatalogOptions opt;
  opt.num_types = 16;
  opt.num_products = products;
  kg::Rng rng(seed);
  return synth::ProductCatalog::Generate(opt, rng);
}

text::SpanScore Evaluate(const TitleExtractor& extractor,
                         const std::vector<AttributeExample>& test) {
  text::SpanScorer scorer;
  for (const auto& ex : test) {
    scorer.Add(ex.gold_spans, extractor.Extract(ex));
  }
  return scorer.Score();
}

TEST(TitleExtractorTest, LearnsGoldSpans) {
  const auto catalog = SmallCatalog();
  std::vector<size_t> train_idx, test_idx;
  textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                         &test_idx);
  textrich::ExampleBuildOptions build;
  const std::string attr = catalog.attributes()[0];
  const auto train = textrich::BuildAttributeExamples(catalog, train_idx,
                                                      attr, build);
  const auto test = textrich::BuildAttributeExamples(catalog, test_idx,
                                                     attr, build);
  ASSERT_FALSE(train.empty());
  TitleExtractor extractor;
  TitleExtractorOptions opt;
  kg::Rng rng(2);
  extractor.Fit(train, opt, rng);
  const auto score = Evaluate(extractor, test);
  // The paper: NER-based extraction lands between 85% and 95%.
  EXPECT_GT(score.f1, 0.8);
}

TEST(TitleExtractorTest, ExtractValuesJoinsTokens) {
  const auto catalog = SmallCatalog();
  std::vector<size_t> all_idx(catalog.products().size());
  for (size_t i = 0; i < all_idx.size(); ++i) all_idx[i] = i;
  textrich::ExampleBuildOptions build;
  const std::string attr = catalog.attributes()[0];
  const auto examples =
      textrich::BuildAttributeExamples(catalog, all_idx, attr, build);
  TitleExtractor extractor;
  kg::Rng rng(3);
  extractor.Fit(examples, {}, rng);
  // Values extracted from train examples should mostly equal the gold
  // values.
  size_t checked = 0, exact = 0;
  for (const auto& ex : examples) {
    if (ex.gold_spans.empty()) continue;
    const auto values = extractor.ExtractValues(ex);
    if (values.empty()) continue;
    ++checked;
    const auto& gold = ex.gold_spans[0];
    std::string joined;
    for (size_t i = gold.begin; i < gold.end; ++i) {
      if (!joined.empty()) joined += " ";
      joined += ex.tokens[i];
    }
    exact += values[0] == joined;
  }
  ASSERT_GT(checked, 50u);
  EXPECT_GT(static_cast<double>(exact) / checked, 0.9);
}

TEST(TitleExtractorTest, TypeAwarenessResolvesAmbiguousVocabulary) {
  // TXtract's mechanism (§3.3): with heavy cross-attribute word
  // ambiguity, a type-aware model beats a type-blind one.
  synth::CatalogOptions copt;
  copt.num_types = 24;
  copt.num_products = 1200;
  copt.ambiguous_word_rate = 0.6;
  copt.sibling_vocab_share = 0.8;
  kg::Rng gen_rng(4);
  const auto catalog = synth::ProductCatalog::Generate(copt, gen_rng);
  std::vector<size_t> train_idx, test_idx;
  textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                         &test_idx);
  textrich::ExampleBuildOptions build;
  const auto train =
      textrich::BuildAttributeExamples(catalog, train_idx, "", build);
  const auto test =
      textrich::BuildAttributeExamples(catalog, test_idx, "", build);

  TitleExtractorOptions blind, aware;
  blind.attribute_conditioned = true;
  aware.attribute_conditioned = true;
  aware.type_aware = true;
  TitleExtractor blind_model, aware_model;
  kg::Rng r1(5), r2(5);
  blind_model.Fit(train, blind, r1);
  aware_model.Fit(train, aware, r2);
  const double blind_f1 = Evaluate(blind_model, test).f1;
  const double aware_f1 = Evaluate(aware_model, test).f1;
  EXPECT_GT(aware_f1, blind_f1);
}

TEST(TypeClassifierTest, PredictsTypeFromTitleTokens) {
  const auto catalog = SmallCatalog(7, 800);
  std::vector<std::vector<std::string>> docs;
  std::vector<std::string> types;
  for (const auto& product : catalog.products()) {
    docs.push_back(product.title_tokens);
    types.push_back(catalog.taxonomy().Name(product.type));
  }
  // Train on the first 600, evaluate on the rest.
  TypeClassifier classifier;
  classifier.Fit({docs.begin(), docs.begin() + 600},
                 {types.begin(), types.begin() + 600});
  size_t correct = 0;
  for (size_t i = 600; i < docs.size(); ++i) {
    correct += classifier.Predict(docs[i]) == types[i];
  }
  // Titles literally contain the type tokens, so this should be easy.
  EXPECT_GT(static_cast<double>(correct) / (docs.size() - 600), 0.9);
}

}  // namespace
}  // namespace kg::extract
