#include "serve/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace kg::serve {
namespace {

using Value = ShardedLruCache::Value;

Value Val(const std::string& s) { return Value{s}; }

TEST(LruCacheTest, CapacityOneKeepsOnlyTheLatestEntry) {
  ShardedLruCache cache(/*capacity=*/1, /*num_shards=*/8);
  // num_shards clamps to capacity, so "1 entry total" really holds.
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.Put("a", Val("A"));
  cache.Put("b", Val("B"));
  EXPECT_EQ(cache.size(), 1u);
  Value out;
  EXPECT_FALSE(cache.Get("a", &out));
  ASSERT_TRUE(cache.Get("b", &out));
  EXPECT_EQ(out, Val("B"));
  const auto c = cache.counters();
  EXPECT_EQ(c.inserts, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
}

TEST(LruCacheTest, ZeroCapacityNeverStores) {
  ShardedLruCache cache(/*capacity=*/0);
  cache.Put("a", Val("A"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a", nullptr));
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().inserts, 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  ShardedLruCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put("a", Val("A"));
  cache.Put("b", Val("B"));
  cache.Put("c", Val("C"));
  // Touch "a": "b" becomes the LRU entry.
  EXPECT_TRUE(cache.Get("a", nullptr));
  cache.Put("d", Val("D"));
  EXPECT_FALSE(cache.Get("b", nullptr));
  EXPECT_TRUE(cache.Get("a", nullptr));
  EXPECT_TRUE(cache.Get("c", nullptr));
  EXPECT_TRUE(cache.Get("d", nullptr));
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(LruCacheTest, PutRefreshesRecencyAndValueWithoutInsert) {
  ShardedLruCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put("a", Val("A"));
  cache.Put("b", Val("B"));
  cache.Put("a", Val("A2"));  // Refresh: "b" is now LRU.
  cache.Put("c", Val("C"));
  Value out;
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, Val("A2"));
  EXPECT_FALSE(cache.Get("b", nullptr));
  EXPECT_EQ(cache.counters().inserts, 3u);  // a, b, c — not the refresh.
}

TEST(LruCacheTest, ShardMappingIsStable) {
  ShardedLruCache a(/*capacity=*/64, /*num_shards=*/8);
  ShardedLruCache b(/*capacity=*/64, /*num_shards=*/8);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    // The shard is a pure function of the key bytes — identical across
    // instances, runs, and platforms.
    EXPECT_EQ(a.ShardOf(key), b.ShardOf(key));
  }
}

TEST(LruCacheTest, ShardedContentsServeExactValues) {
  for (size_t shards : {1u, 4u, 8u}) {
    ShardedLruCache cache(/*capacity=*/1024, shards);
    for (int i = 0; i < 500; ++i) {
      cache.Put("k" + std::to_string(i), Val("v" + std::to_string(i)));
    }
    EXPECT_EQ(cache.size(), 500u);
    for (int i = 0; i < 500; ++i) {
      Value out;
      ASSERT_TRUE(cache.Get("k" + std::to_string(i), &out))
          << "shards=" << shards << " i=" << i;
      EXPECT_EQ(out, Val("v" + std::to_string(i)));
    }
  }
}

TEST(LruCacheTest, CapacitySplitsExactlyAcrossShards) {
  // 10 across 4 shards: 3+3+2+2 — total capacity is exact, not rounded.
  ShardedLruCache cache(/*capacity=*/10, /*num_shards=*/4);
  for (int i = 0; i < 200; ++i) {
    cache.Put("k" + std::to_string(i), Val("v"));
  }
  EXPECT_LE(cache.size(), 10u);
  const auto c = cache.counters();
  EXPECT_EQ(c.inserts - c.evictions, cache.size());
}

TEST(LruCacheTest, CountersExactUnderConcurrentReaders) {
  const size_t kKeys = 64;
  const size_t kThreads = 8;
  const size_t kReadsPerThread = 2000;
  ShardedLruCache cache(/*capacity=*/256, /*num_shards=*/8);
  for (size_t i = 0; i < kKeys; ++i) {
    cache.Put("k" + std::to_string(i), Val("v" + std::to_string(i)));
  }
  cache.ResetCounters();

  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    for (size_t i = 0; i < kReadsPerThread; ++i) {
      const size_t j = (t * kReadsPerThread + i) % (2 * kKeys);
      Value out;
      const bool hit = cache.Get("k" + std::to_string(j), &out);
      // Keys [0, kKeys) are resident and never evicted (capacity >
      // inserts); the rest always miss.
      EXPECT_EQ(hit, j < kKeys);
      if (hit) EXPECT_EQ(out, Val("v" + std::to_string(j)));
    }
  });

  const auto c = cache.counters();
  const uint64_t total = kThreads * kReadsPerThread;
  EXPECT_EQ(c.hits + c.misses, total);
  EXPECT_EQ(c.hits, total / 2);
  EXPECT_EQ(c.misses, total / 2);
  EXPECT_EQ(c.evictions, 0u);
}

TEST(LruCacheTest, EraseDropsExactlyTheNamedKey) {
  ShardedLruCache cache(/*capacity=*/16, /*num_shards=*/4);
  cache.Put("keep", Val("K"));
  cache.Put("drop", Val("D"));
  EXPECT_TRUE(cache.Erase("drop"));
  EXPECT_FALSE(cache.Erase("drop"));    // Already gone.
  EXPECT_FALSE(cache.Erase("absent"));  // Never present.
  EXPECT_FALSE(cache.Get("drop", nullptr));
  Value out;
  ASSERT_TRUE(cache.Get("keep", &out));
  EXPECT_EQ(out, Val("K"));
  const auto c = cache.counters();
  EXPECT_EQ(c.invalidations, 1u);  // Only the successful erase counts.
  EXPECT_EQ(c.evictions, 0u);      // Invalidation is not eviction.
}

TEST(LruCacheTest, InvalidateShardDropsOnlyThatShard) {
  ShardedLruCache cache(/*capacity=*/256, /*num_shards=*/4);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));
  for (const auto& k : keys) cache.Put(k, Val(k));
  const size_t target = cache.ShardOf(keys[0]);
  size_t expected = 0;
  for (const auto& k : keys) expected += cache.ShardOf(k) == target ? 1 : 0;

  EXPECT_EQ(cache.InvalidateShard(target), expected);
  EXPECT_EQ(cache.size(), keys.size() - expected);
  for (const auto& k : keys) {
    EXPECT_EQ(cache.Get(k, nullptr), cache.ShardOf(k) != target) << k;
  }
  EXPECT_EQ(cache.counters().invalidations, expected);
  EXPECT_EQ(cache.InvalidateShard(target), 0u);  // Idempotent when empty.
}

TEST(LruCacheTest, CountersExactUnderConcurrentInvalidateAndGet) {
  // Readers hammer a fixed key set while one thread erases keys and
  // another flushes whole shards. The exact hit/miss split is
  // schedule-dependent, but the invariants are not: every Get counts
  // exactly one hit or miss, every dropped entry counts exactly one
  // invalidation, and a hit must return the exact value put.
  const size_t kKeys = 64;
  const size_t kReaders = 6;
  const size_t kReadsPerThread = 4000;
  ShardedLruCache cache(/*capacity=*/256, /*num_shards=*/8);
  for (size_t i = 0; i < kKeys; ++i) {
    cache.Put("k" + std::to_string(i), Val("v" + std::to_string(i)));
  }
  cache.ResetCounters();

  ThreadPool pool(kReaders + 2);
  pool.ParallelFor(kReaders + 2, [&](size_t t) {
    if (t == 0) {
      for (size_t i = 0; i < kKeys; ++i) {
        cache.Erase("k" + std::to_string(i % kKeys));
      }
      return;
    }
    if (t == 1) {
      for (size_t s = 0; s < cache.num_shards(); ++s) {
        cache.InvalidateShard(s);
      }
      return;
    }
    for (size_t i = 0; i < kReadsPerThread; ++i) {
      const size_t j = (t * kReadsPerThread + i) % kKeys;
      Value out;
      if (cache.Get("k" + std::to_string(j), &out)) {
        EXPECT_EQ(out, Val("v" + std::to_string(j)));
      }
    }
  });

  const auto c = cache.counters();
  EXPECT_EQ(c.hits + c.misses, kReaders * kReadsPerThread);
  // Nothing is ever re-put and both droppers cover every key, so each
  // of the kKeys entries is dropped exactly once — by Erase or by a
  // shard flush, never both, never neither.
  EXPECT_EQ(c.invalidations, kKeys);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(cache.size(), 0u);  // Every key was eventually dropped.
}

TEST(LruCacheTest, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache cache(/*capacity=*/8, /*num_shards=*/2);
  cache.Put("a", Val("A"));
  EXPECT_TRUE(cache.Get("a", nullptr));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a", nullptr));
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  cache.ResetCounters();
  EXPECT_EQ(cache.counters().hits, 0u);
}

}  // namespace
}  // namespace kg::serve
