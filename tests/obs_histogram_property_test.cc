// Property tests for the fixed-bucket histogram: against seeded random
// workloads the bucket-resolution quantile estimate must land within
// one bucket of the brute-force order statistic, and merging shards
// written from 1/2/8 real threads must expose byte-identical JSON —
// the fixed-point sum is what makes that possible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"

namespace kg::obs {
namespace {

// Bucket index under "le" semantics: first bound >= value, else the
// +inf overflow bucket (== bounds.size()).
size_t BucketIndexOf(const std::vector<double>& bounds, double value) {
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) return i;
  }
  return bounds.size();
}

// Nearest-rank order statistic: the q-quantile of the observed sample.
double BruteForceQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double target = q * static_cast<double>(values.size());
  size_t rank = static_cast<size_t>(std::ceil(target));
  if (rank == 0) rank = 1;
  rank = std::min(rank, values.size());
  return values[rank - 1];
}

std::vector<double> MakeWorkload(uint64_t seed, size_t n, int shape) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:  // uniform latencies across the bucket range
        values.push_back(rng.UniformDouble(0.05, 500.0));
        break;
      case 1:  // log-uniform: mass spread evenly over bucket indexes
        values.push_back(0.1 * std::pow(10.0, rng.UniformDouble(0.0, 4.0)));
        break;
      default:  // heavy tail with mass beyond the last finite bound
        values.push_back(rng.Bernoulli(0.02)
                             ? rng.UniformDouble(2e5, 1e6)
                             : rng.UniformDouble(0.5, 50.0));
        break;
    }
  }
  return values;
}

TEST(HistogramPropertyTest, QuantilesWithinOneBucketOfBruteForce) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  const std::vector<double>& bounds = LatencyBucketsUs();
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    for (int shape : {0, 1, 2}) {
      const std::vector<double> values = MakeWorkload(seed, 20000, shape);
      Histogram h(bounds);
      for (double v : values) h.Observe(v);
      ASSERT_EQ(h.Count(), values.size());
      for (double q : {0.5, 0.9, 0.99}) {
        const double truth = BruteForceQuantile(values, q);
        const double est = h.Quantile(q);
        const size_t truth_bucket = BucketIndexOf(bounds, truth);
        size_t est_bucket = BucketIndexOf(bounds, est);
        if (truth_bucket == bounds.size()) {
          // True quantile overflowed: the estimate clamps to the last
          // finite bound by contract.
          EXPECT_DOUBLE_EQ(est, bounds.back())
              << "seed " << seed << " shape " << shape << " q " << q;
          continue;
        }
        const size_t lo = std::min(truth_bucket, est_bucket);
        const size_t hi = std::max(truth_bucket, est_bucket);
        EXPECT_LE(hi - lo, 1u)
            << "seed " << seed << " shape " << shape << " q " << q
            << ": truth " << truth << " (bucket " << truth_bucket
            << ") vs estimate " << est << " (bucket " << est_bucket << ")";
      }
    }
  }
}

TEST(HistogramPropertyTest, SumIsExactInFixedPoint) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  // Integer tick accumulation: the merged sum equals the sum of
  // per-value ticks exactly, with no float-association error.
  const std::vector<double> values = MakeWorkload(99, 5000, 1);
  Histogram h(LatencyBucketsUs());
  int64_t expected_ticks = 0;
  for (double v : values) {
    h.Observe(v);
    expected_ticks += Histogram::ToTicks(v);
  }
  EXPECT_EQ(h.SumTicks(), expected_ticks);
}

// Observes `values` from `threads` real threads (contiguous partition)
// into a fresh registry and returns its exposition.
std::string ExposeFromThreads(const std::vector<double>& values,
                              size_t threads) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat_us", LatencyBucketsUs());
  Counter& c = registry.GetCounter("observed");
  std::vector<std::thread> workers;
  const size_t per = (values.size() + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = std::min(t * per, values.size());
    const size_t end = std::min(begin + per, values.size());
    workers.emplace_back([&, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        h.Observe(values[i]);
        c.Inc();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return registry.ToJson();
}

TEST(HistogramPropertyTest, MergedExpositionIdenticalAt1_2_8Threads) {
  for (uint64_t seed : {3u, 42u}) {
    const std::vector<double> values = MakeWorkload(seed, 30000, 2);
    const std::string json_1 = ExposeFromThreads(values, 1);
    const std::string json_2 = ExposeFromThreads(values, 2);
    const std::string json_8 = ExposeFromThreads(values, 8);
    EXPECT_EQ(json_1, json_2) << "seed " << seed;
    EXPECT_EQ(json_2, json_8) << "seed " << seed;
  }
}

}  // namespace
}  // namespace kg::obs
