// BoundedQueue contract tests: capacity/backpressure (TryPush on a full
// queue refuses without blocking), blocking Push/Pop handoff, the
// close-then-drain shutdown sequence, and an MPMC stress exchange that
// loses nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "ingest/bounded_queue.h"

namespace kg::ingest {
namespace {

TEST(IngestQueueTest, TryPushShedsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "full queue must shed, not block";
  EXPECT_EQ(q.size(), 2u);

  ASSERT_TRUE(q.Pop().has_value());
  EXPECT_TRUE(q.TryPush(3));
}

TEST(IngestQueueTest, PopReturnsFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(IngestQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(10));
  ASSERT_TRUE(q.TryPush(11));
  q.Close();
  EXPECT_TRUE(q.closed());
  // Pushes after close refuse; buffered items still drain in order.
  EXPECT_FALSE(q.TryPush(12));
  EXPECT_FALSE(q.Push(12));
  EXPECT_EQ(q.Pop(), std::optional<int>(10));
  EXPECT_EQ(q.Pop(), std::optional<int>(11));
  EXPECT_EQ(q.Pop(), std::nullopt) << "drained closed queue must end";
}

TEST(IngestQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    got.store(true);
  });
  // The consumer parks until something arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(q.Push(7));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(IngestQueueTest, PushBlocksUntilRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(2));  // Blocks: queue is full.
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
}

TEST(IngestQueueTest, MpmcExchangeLosesNothing) {
  // 4 producers x 4 consumers through a tiny queue: every pushed value
  // is popped exactly once (sum check), no deadlock on close.
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  BoundedQueue<int> q(3);
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        popped_sum.fetch_add(*v);
        popped_count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace kg::ingest
