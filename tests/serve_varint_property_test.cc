// Property battery for the canonical varint and delta-list codecs the
// snapshot posting format is built on. The central property is strict
// canonicality: every decodable byte string has exactly one value AND
// exactly one encoding, so encode(decode(bytes)) == bytes holds for any
// byte soup the decoder accepts — the invariant that makes the binary
// snapshot format fuzzable (a mutation either changes the decoded
// answer or is rejected; it can never alias).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/snapshot.h"
#include "serve/varint.h"

namespace kg::serve {
namespace {

std::string Encode(uint64_t v) {
  std::string out;
  AppendVarint(&out, v);
  return out;
}

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(VarintTest, RoundTripsAdversarialValues) {
  const std::vector<uint64_t> values = {
      0,
      1,
      127,
      128,
      129,
      16383,
      16384,
      (1ULL << 32) - 1,
      1ULL << 32,
      (1ULL << 63) - 1,
      1ULL << 63,
      std::numeric_limits<uint64_t>::max() - 1,
      std::numeric_limits<uint64_t>::max(),
  };
  for (const uint64_t v : values) {
    const std::string bytes = Encode(v);
    ASSERT_LE(bytes.size(), kMaxVarintBytes);
    uint64_t out = 0;
    ASSERT_EQ(DecodeVarint(Bytes(bytes), Bytes(bytes) + bytes.size(), &out),
              bytes.size())
        << v;
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, RandomValuesRoundTripAndAreMinimal) {
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    // Stress every byte-length class, not just the 8-byte-heavy uniform
    // distribution: pick a bit width first.
    const int bits = static_cast<int>(rng.UniformInt(0, 63));
    const uint64_t v =
        static_cast<uint64_t>(rng.UniformInt(0, (1LL << 62) - 1)) &
        ((bits == 0 ? 0 : ~0ULL >> (64 - bits)));
    const std::string bytes = Encode(v);
    uint64_t out = 0;
    ASSERT_EQ(DecodeVarint(Bytes(bytes), Bytes(bytes) + bytes.size(), &out),
              bytes.size());
    ASSERT_EQ(out, v);
  }
}

TEST(VarintTest, RejectsTruncation) {
  for (const uint64_t v :
       {uint64_t{0}, uint64_t{300}, uint64_t{1} << 40,
        std::numeric_limits<uint64_t>::max()}) {
    const std::string bytes = Encode(v);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      uint64_t out = 0;
      EXPECT_EQ(DecodeVarint(Bytes(bytes), Bytes(bytes) + cut, &out), 0u)
          << "value " << v << " truncated to " << cut << " bytes";
    }
  }
}

TEST(VarintTest, RejectsOverlongEncodings) {
  // 0 encoded in two bytes (continuation + zero group) and every other
  // trailing-zero-group form must be rejected: canonical means minimal.
  const std::vector<std::string> overlong = {
      std::string("\x80\x00", 2),
      std::string("\xff\x00", 2),
      std::string("\x80\x80\x00", 3),
  };
  for (const std::string& bytes : overlong) {
    uint64_t out = 0;
    EXPECT_EQ(DecodeVarint(Bytes(bytes), Bytes(bytes) + bytes.size(), &out),
              0u);
  }
}

TEST(VarintTest, RejectsOverflowPastUint64) {
  // 10 continuation groups with a 10th group > 1 would need bit 64+.
  std::string bytes(9, '\x80');
  bytes.push_back('\x02');
  uint64_t out = 0;
  EXPECT_EQ(DecodeVarint(Bytes(bytes), Bytes(bytes) + bytes.size(), &out),
            0u);
  // ...while exactly bit 63 in the 10th group is the max value, valid.
  bytes.back() = '\x01';
  std::string max_enc = Encode(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(max_enc.back(), '\x01');
}

TEST(VarintTest, EncodeOfDecodeIsIdentityOnRandomByteSoup) {
  Rng rng(23);
  size_t decoded = 0;
  for (int i = 0; i < 50000; ++i) {
    std::string soup;
    const int len = static_cast<int>(rng.UniformInt(1, 12));
    for (int b = 0; b < len; ++b) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    uint64_t value = 0;
    const size_t n =
        DecodeVarint(Bytes(soup), Bytes(soup) + soup.size(), &value);
    if (n == 0) continue;
    ++decoded;
    // Whatever decoded must re-encode to exactly the consumed bytes.
    EXPECT_EQ(Encode(value), soup.substr(0, n));
  }
  EXPECT_GT(decoded, 1000u);  // the property must actually get exercised
}

std::vector<uint64_t> RandomAscendingList(Rng& rng, size_t max_len) {
  std::vector<uint64_t> ids;
  const size_t len = rng.UniformIndex(max_len + 1);
  uint64_t cur = 0;
  for (size_t i = 0; i < len; ++i) {
    // Mix tiny and huge deltas, plus equal-id runs (delta 0).
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    const uint64_t delta =
        kind == 0 ? 0
        : kind < 7
            ? static_cast<uint64_t>(rng.UniformInt(1, 100))
            : static_cast<uint64_t>(rng.UniformInt(1, 1LL << 40));
    cur += delta;
    ids.push_back(cur);
  }
  return ids;
}

TEST(DeltaListTest, RoundTripsSeededPostingLists) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    const std::vector<uint64_t> ids = RandomAscendingList(rng, 200);
    std::string bytes;
    EncodeDeltaList(ids, &bytes);
    std::vector<uint64_t> back;
    ASSERT_TRUE(DecodeDeltaList(bytes, &back)) << "round " << round;
    EXPECT_EQ(back, ids);
    // Strictness: any truncation must be rejected, not partially decoded.
    if (!bytes.empty()) {
      std::vector<uint64_t> partial;
      EXPECT_FALSE(
          DecodeDeltaList(std::string_view(bytes).substr(0, bytes.size() - 1),
                          &partial));
      EXPECT_TRUE(partial.empty());
    }
    // ...and trailing garbage likewise.
    std::vector<uint64_t> extra;
    EXPECT_FALSE(DecodeDeltaList(bytes + '\x00', &extra));
  }
}

TEST(DeltaListTest, RoundTripsAdversarialLists) {
  const std::vector<std::vector<uint64_t>> lists = {
      {},
      {0},
      {0, 0, 0},
      {std::numeric_limits<uint64_t>::max()},
      {0, std::numeric_limits<uint64_t>::max()},
      {1, 1, 2, 2, 2, 3},
  };
  for (const auto& ids : lists) {
    std::string bytes;
    EncodeDeltaList(ids, &bytes);
    std::vector<uint64_t> back;
    ASSERT_TRUE(DecodeDeltaList(bytes, &back));
    EXPECT_EQ(back, ids);
  }
}

TEST(DeltaListTest, RejectsHostileCountHeader) {
  // A count far beyond what the payload could hold must be rejected
  // before any allocation is sized from it.
  std::string bytes;
  AppendVarint(&bytes, 1ULL << 60);
  bytes.push_back('\x01');
  std::vector<uint64_t> out;
  EXPECT_FALSE(DecodeDeltaList(bytes, &out));
}

TEST(DeltaListTest, RejectsDeltaOverflow) {
  // Two elements whose deltas sum past UINT64_MAX.
  std::string bytes;
  AppendVarint(&bytes, 2);  // count
  AppendVarint(&bytes, std::numeric_limits<uint64_t>::max());
  AppendVarint(&bytes, 2);  // would wrap
  std::vector<uint64_t> out;
  EXPECT_FALSE(DecodeDeltaList(bytes, &out));
  EXPECT_TRUE(out.empty());
}

TEST(EdgeRowTest, RoundTripsSeededRows) {
  Rng rng(13);
  for (int round = 0; round < 100; ++round) {
    std::vector<KgSnapshot::Edge> edges;
    const size_t len = rng.UniformIndex(64);
    uint32_t first = 0, second = 0;
    for (size_t i = 0; i < len; ++i) {
      const uint32_t d1 = static_cast<uint32_t>(rng.UniformInt(0, 3));
      first += d1;
      second = d1 == 0 ? second + static_cast<uint32_t>(rng.UniformInt(0, 50))
                       : static_cast<uint32_t>(rng.UniformInt(0, 1 << 20));
      edges.push_back({first, second});
    }
    std::string bytes;
    AppendEdgeRow(&bytes, edges);
    if (edges.empty()) {
      EXPECT_TRUE(bytes.empty());
    }
    std::vector<KgSnapshot::Edge> back;
    ASSERT_TRUE(DecodeEdgeRow(bytes, &back)) << "round " << round;
    EXPECT_EQ(back, edges);

    // The lazy EdgeRange decoder must agree with the strict one.
    const uint8_t* p = Bytes(bytes);
    const KgSnapshot::EdgeRange range(p, p + bytes.size());
    const std::vector<KgSnapshot::Edge> lazy(range.begin(), range.end());
    EXPECT_EQ(lazy, edges);
    EXPECT_EQ(range.size(), edges.size());
  }
}

TEST(EdgeRowTest, EdgeRangeNeverCrashesOnByteSoup) {
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    std::string soup;
    const int len = static_cast<int>(rng.UniformInt(0, 40));
    for (int b = 0; b < len; ++b) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    const uint8_t* p = Bytes(soup);
    const KgSnapshot::EdgeRange range(p, p + soup.size());
    size_t n = 0;
    for (const KgSnapshot::Edge& e : range) {
      (void)e;
      if (++n > soup.size()) break;  // decoded edges are bounded by bytes
    }
    EXPECT_LE(n, range.size());
  }
}

}  // namespace
}  // namespace kg::serve
