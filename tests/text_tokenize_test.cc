#include "text/tokenize.h"

#include <gtest/gtest.h>

namespace kg::text {
namespace {

TEST(TokenizeTest, SplitsOnPunctuationAndLowercases) {
  const auto tokens = Tokenize("Hello, World! 42");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
}

TEST(TokenizeTest, KeepsHyphensByDefault) {
  const auto tokens = Tokenize("sci-fi movie");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "sci-fi");
}

TEST(TokenizeTest, SplitHyphensOption) {
  TokenizeOptions opt;
  opt.split_hyphens = true;
  const auto tokens = Tokenize("sci-fi", opt);
  ASSERT_EQ(tokens.size(), 2u);
}

TEST(TokenizeTest, DropNumbersOption) {
  TokenizeOptions opt;
  opt.keep_numbers = false;
  const auto tokens = Tokenize("model 3000 car", opt);
  ASSERT_EQ(tokens.size(), 2u);
}

TEST(TokenizeTest, NoLowercaseOption) {
  TokenizeOptions opt;
  opt.lowercase = false;
  EXPECT_EQ(Tokenize("MixedCase", opt)[0], "MixedCase");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ---").empty());
}

TEST(CharNgramsTest, PadsWithSentinels) {
  const auto grams = CharNgrams("ab", 2);
  // ^ab$ -> ^a, ab, b$.
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "^a");
  EXPECT_EQ(grams[2], "b$");
}

TEST(CharNgramsTest, TooShortYieldsEmpty) {
  EXPECT_TRUE(CharNgrams("", 4).empty());
  EXPECT_TRUE(CharNgrams("x", 0).empty());
}

TEST(TokenNgramsTest, JoinsWithUnderscore) {
  const auto grams = TokenNgrams({"a", "b", "c"}, 2);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "a_b");
  EXPECT_EQ(grams[1], "b_c");
}

TEST(NormalizeForMatchTest, CollapsesNoise) {
  EXPECT_EQ(NormalizeForMatch("  The-Movie:  2023! "), "the movie 2023");
  EXPECT_EQ(NormalizeForMatch("Xin Luna Dong"),
            NormalizeForMatch("xin   luna DONG"));
  EXPECT_EQ(NormalizeForMatch(""), "");
}

}  // namespace
}  // namespace kg::text
