#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/events.h"
#include "common/fault.h"
#include "common/hash.h"

namespace kg {
namespace {

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 50.0;
  policy.jitter_fraction = 0.0;
  return policy;
}

TEST(BackoffTest, CappedExponentialWithoutJitter) {
  const RetryPolicy policy = NoJitterPolicy();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffMs(policy, 0, rng), 10.0);
  EXPECT_DOUBLE_EQ(BackoffMs(policy, 1, rng), 20.0);
  EXPECT_DOUBLE_EQ(BackoffMs(policy, 2, rng), 40.0);
  EXPECT_DOUBLE_EQ(BackoffMs(policy, 3, rng), 50.0);  // Capped.
  EXPECT_DOUBLE_EQ(BackoffMs(policy, 9, rng), 50.0);
}

TEST(BackoffTest, JitterBoundedAndDeterministicPerStream) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.25;
  std::vector<double> first;
  for (int run = 0; run < 2; ++run) {
    Rng rng = Rng(42).Split(7);  // Same stream both runs.
    for (size_t attempt = 0; attempt < 6; ++attempt) {
      const double ms = BackoffMs(policy, attempt, rng);
      const double nominal = std::min(50.0, 10.0 * std::pow(2.0, attempt));
      EXPECT_GE(ms, nominal * 0.75);
      EXPECT_LT(ms, nominal * 1.25);
      if (run == 0) {
        first.push_back(ms);
      } else {
        EXPECT_DOUBLE_EQ(ms, first[attempt]);
      }
    }
  }
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(3);
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // Resets the streak.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.open());
  breaker.RecordSuccess();  // No half-open healing.
  EXPECT_FALSE(breaker.Allow());
}

TEST(RetryTest, SucceedsFirstTry) {
  const RetryOutcome out = RetryWithBackoff(
      NoJitterPolicy(), Rng(1), nullptr,
      [](size_t) { return AttemptResult{Status::OK(), 2.0}; });
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_DOUBLE_EQ(out.virtual_ms, 2.0);
}

TEST(RetryTest, RetriesTransientsThenSucceeds) {
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      NoJitterPolicy(), Rng(1), nullptr, [&calls](size_t attempt) {
        EXPECT_EQ(attempt, calls);
        ++calls;
        if (attempt < 2) {
          return AttemptResult{Status::Unavailable("flaky"), 5.0};
        }
        return AttemptResult{Status::OK(), 1.0};
      });
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.retries, 2u);
  // 5 + backoff(10) + 5 + backoff(20) + 1.
  EXPECT_DOUBLE_EQ(out.virtual_ms, 41.0);
}

TEST(RetryTest, TerminalStatusNotRetried) {
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      NoJitterPolicy(), Rng(1), nullptr, [&calls](size_t) {
        ++calls;
        return AttemptResult{Status::Internal("broken"), 1.0};
      });
  EXPECT_EQ(out.status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(out.attempts, 1u);
}

TEST(RetryTest, AttemptsExhaustedReturnsLastTransient) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 3;
  const RetryOutcome out = RetryWithBackoff(
      policy, Rng(1), nullptr, [](size_t attempt) {
        return AttemptResult{
            Status::Unavailable("attempt " + std::to_string(attempt)),
            1.0};
      });
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(out.status.message(), "attempt 2");
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.retries, 2u);
}

TEST(RetryTest, DeadlineBudgetStopsBeforeBackoff) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 10;
  policy.deadline_budget_ms = 30.0;
  const RetryOutcome out = RetryWithBackoff(
      policy, Rng(1), nullptr, [](size_t) {
        return AttemptResult{Status::Unavailable("flaky"), 9.0};
      });
  // 9 + 10 + 9 = 28; next backoff (20ms) would blow the 30ms budget.
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_DOUBLE_EQ(out.virtual_ms, 28.0);
}

TEST(RetryTest, BreakerCutsRetriesShortAndStaysOpen) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 10;
  CircuitBreaker breaker(2);
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      policy, Rng(1), &breaker, [&calls](size_t) {
        ++calls;
        return AttemptResult{Status::Unavailable("flaky"), 1.0};
      });
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 2u);  // Threshold 2 < max_attempts 10.
  EXPECT_TRUE(breaker.open());
  // An open breaker short-circuits the next fetch: zero attempts.
  const RetryOutcome blocked = RetryWithBackoff(
      policy, Rng(1), &breaker,
      [](size_t) { return AttemptResult{Status::OK(), 1.0}; });
  EXPECT_EQ(blocked.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(blocked.attempts, 0u);
}

TEST(RetryTest, DrivenByFaultInjectorIsDeterministic) {
  FaultPlan plan;
  plan.seed = 3;
  plan.transient_rate = 0.4;
  const FaultInjector injector(plan);
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.2;
  auto run = [&](const std::string& source) {
    return RetryWithBackoff(
        policy, Rng(42).Split(Fnv1a64(source)), nullptr,
        [&](size_t attempt) {
          const FaultInjector::Attempt probe =
              injector.Probe(source, attempt);
          return AttemptResult{probe.status, probe.latency_ms};
        });
  };
  for (int s = 0; s < 30; ++s) {
    const std::string source = "src" + std::to_string(s);
    const RetryOutcome a = run(source);
    const RetryOutcome b = run(source);
    EXPECT_EQ(a.status.code(), b.status.code());
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_DOUBLE_EQ(a.virtual_ms, b.virtual_ms);
  }
}

// The retry layer's event counters are process-global and monotonic, so
// the contract is on deltas: each scenario below bumps exactly the
// counters its decisions imply, no more and no fewer.
struct RetryEventSnapshot {
  uint64_t attempts, backoffs, successes, giveups, trips, rejections;
  static RetryEventSnapshot Take() {
    const events::ProcessEvents& ev = events::Process();
    return {ev.retry_attempts.load(),   ev.retry_backoffs.load(),
            ev.retry_successes.load(),  ev.retry_giveups.load(),
            ev.breaker_trips.load(),    ev.breaker_rejections.load()};
  }
};

TEST(RetryEventsTest, TransientsThenSuccessCountsExactly) {
  const RetryEventSnapshot before = RetryEventSnapshot::Take();
  RetryWithBackoff(NoJitterPolicy(), Rng(1), nullptr, [](size_t attempt) {
    if (attempt < 2) {
      return AttemptResult{Status::Unavailable("flaky"), 1.0};
    }
    return AttemptResult{Status::OK(), 1.0};
  });
  const RetryEventSnapshot after = RetryEventSnapshot::Take();
  EXPECT_EQ(after.attempts - before.attempts, 3u);
  EXPECT_EQ(after.backoffs - before.backoffs, 2u);
  EXPECT_EQ(after.successes - before.successes, 1u);
  EXPECT_EQ(after.giveups - before.giveups, 0u);
  EXPECT_EQ(after.trips - before.trips, 0u);
  EXPECT_EQ(after.rejections - before.rejections, 0u);
}

TEST(RetryEventsTest, ExhaustionIsExactlyOneGiveup) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 3;
  const RetryEventSnapshot before = RetryEventSnapshot::Take();
  RetryWithBackoff(policy, Rng(1), nullptr, [](size_t) {
    return AttemptResult{Status::Unavailable("flaky"), 1.0};
  });
  const RetryEventSnapshot after = RetryEventSnapshot::Take();
  EXPECT_EQ(after.attempts - before.attempts, 3u);
  // The last attempt returns without a backoff draw.
  EXPECT_EQ(after.backoffs - before.backoffs, 2u);
  EXPECT_EQ(after.successes - before.successes, 0u);
  EXPECT_EQ(after.giveups - before.giveups, 1u);
}

TEST(RetryEventsTest, NonRetriableGivesUpWithoutBackoff) {
  const RetryEventSnapshot before = RetryEventSnapshot::Take();
  RetryWithBackoff(NoJitterPolicy(), Rng(1), nullptr, [](size_t) {
    return AttemptResult{Status::Internal("broken"), 1.0};
  });
  const RetryEventSnapshot after = RetryEventSnapshot::Take();
  EXPECT_EQ(after.attempts - before.attempts, 1u);
  EXPECT_EQ(after.backoffs - before.backoffs, 0u);
  EXPECT_EQ(after.giveups - before.giveups, 1u);
}

TEST(RetryEventsTest, BreakerTripAndRejectionCountExactly) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 10;
  CircuitBreaker breaker(2);
  const RetryEventSnapshot before = RetryEventSnapshot::Take();
  // Two failures: the second trips the breaker and the loop gives up.
  RetryWithBackoff(policy, Rng(1), &breaker, [](size_t) {
    return AttemptResult{Status::Unavailable("flaky"), 1.0};
  });
  RetryEventSnapshot after = RetryEventSnapshot::Take();
  EXPECT_EQ(after.attempts - before.attempts, 2u);
  EXPECT_EQ(after.backoffs - before.backoffs, 1u);
  EXPECT_EQ(after.trips - before.trips, 1u);
  EXPECT_EQ(after.giveups - before.giveups, 1u);
  EXPECT_EQ(after.rejections - before.rejections, 0u);
  // An open breaker rejects the next fetch outright: no attempt, one
  // rejection that also counts as a giveup.
  RetryWithBackoff(policy, Rng(1), &breaker, [](size_t) {
    return AttemptResult{Status::OK(), 1.0};
  });
  after = RetryEventSnapshot::Take();
  EXPECT_EQ(after.attempts - before.attempts, 2u);
  EXPECT_EQ(after.rejections - before.rejections, 1u);
  EXPECT_EQ(after.giveups - before.giveups, 2u);
  EXPECT_EQ(after.trips - before.trips, 1u);
}

}  // namespace
}  // namespace kg
