// Metrics registry semantics: sharded counters sum exactly, histogram
// buckets follow Prometheus "le" semantics with fixed-point sums, and
// exposition (JSON + Prometheus text) is a pure function of metric
// contents — the foundation the determinism suite builds on.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/events.h"
#include "obs/json.h"

namespace kg::obs {
namespace {

TEST(CounterTest, IncrementsAndResets) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr size_t kIncs = 10000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (size_t i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kIncs);
}

TEST(GaugeTest, SetAddReset) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, LeInclusiveBucketsWithOverflow) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h.Observe(v);
  // "le" semantics: a value equal to a bound lands in that bound's
  // bucket; 5.0 exceeds every bound and lands in +inf.
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(h.Count(), 6u);
  // 0.5+1+1.5+2+4+5 = 14, exact in fixed-point ticks.
  EXPECT_EQ(h.SumTicks(), static_cast<int64_t>(14.0 * kFixedPointScale));
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Observe(100.0);                        // overflow only
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 4.0);  // clamps to last bound
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  for (int i = 0; i < 100; ++i) h.Observe(0.5);
  // All mass in the first bucket: quantiles stay within (0, 1].
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p99, 0.0);
  EXPECT_LE(p99, 1.0);
}

TEST(HistogramTest, ExponentialBucketsAndRepoLatencyLayout) {
  EXPECT_EQ(ExponentialBuckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const std::vector<double>& latency = LatencyBucketsUs();
  ASSERT_EQ(latency.size(), 64u);
  EXPECT_DOUBLE_EQ(latency.front(), 0.1);
  for (size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& c1 = registry.GetCounter("a.b");
  Counter& c2 = registry.GetCounter("a.b");
  EXPECT_EQ(&c1, &c2);
  Gauge& g1 = registry.GetGauge("a.b");  // separate namespace from counters
  EXPECT_EQ(&g1, &registry.GetGauge("a.b"));
  Histogram& h1 = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &registry.GetHistogram("h", {1.0, 2.0}));
}

TEST(MetricsRegistryTest, JsonExpositionShape) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  MetricsRegistry registry;
  registry.GetCounter("reqs").Inc(3);
  registry.GetGauge("epoch").Set(-2);
  Histogram& h = registry.GetHistogram("lat", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);

  const auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& v = *parsed;
  EXPECT_DOUBLE_EQ(v.Find("schema_version")->number, 1.0);
  EXPECT_DOUBLE_EQ(v.Find("counters")->Find("reqs")->number, 3.0);
  EXPECT_DOUBLE_EQ(v.Find("gauges")->Find("epoch")->number, -2.0);
  const JsonValue* lat = v.Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  ASSERT_EQ(lat->Find("le")->array.size(), 2u);
  ASSERT_EQ(lat->Find("counts")->array.size(), 3u);  // bounds + overflow
  EXPECT_DOUBLE_EQ(lat->Find("counts")->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("counts")->array[1].number, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(lat->Find("sum")->number, 2.0);
  EXPECT_NE(lat->Find("p50"), nullptr);
  EXPECT_NE(lat->Find("p99"), nullptr);
}

TEST(MetricsRegistryTest, EqualContentsSerializeIdentically) {
  // Registration order differs; exposition is name-ordered, so the two
  // registries must render byte-identical JSON and Prometheus text.
  MetricsRegistry a, b;
  a.GetCounter("x").Inc(5);
  a.GetGauge("y").Set(7);
  a.GetHistogram("z", {1.0}).Observe(0.5);
  b.GetHistogram("z", {1.0}).Observe(0.5);
  b.GetGauge("y").Set(7);
  b.GetCounter("x").Inc(5);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToPrometheus(), b.ToPrometheus());
}

TEST(MetricsRegistryTest, PrometheusSanitizesNamesAndEmitsFamilies) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  MetricsRegistry registry;
  registry.GetCounter("serve.queries.point-lookup").Inc(2);
  registry.GetGauge("store.epoch.version").Set(4);
  registry.GetHistogram("serve.latency_us", {1.0, 2.0}).Observe(1.5);
  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("# TYPE kg_serve_queries_point_lookup counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kg_serve_queries_point_lookup 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kg_store_epoch_version gauge"),
            std::string::npos);
  EXPECT_NE(text.find("kg_serve_latency_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("kg_serve_latency_us_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Histogram& h = registry.GetHistogram("h", {1.0});
  c.Inc(9);
  h.Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  // Handles survive and the names still expose.
  c.Inc();
  EXPECT_EQ(registry.GetCounter("c").Value(), 1u);
  EXPECT_NE(registry.ToJson().find("\"c\":1"), std::string::npos);
}

TEST(CaptureProcessEventsTest, MirrorsGlobalCountersAsGaugeDeltas) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  // The process counters are global and monotonic; the bridge copies
  // their instantaneous values, so two captures around a known bump
  // must differ by exactly that bump.
  MetricsRegistry registry;
  CaptureProcessEvents(registry);
  const int64_t before = registry.GetGauge("events.retry.attempts").Value();
  EXPECT_GE(before, 0);
  events::Process().retry_attempts.fetch_add(5, std::memory_order_relaxed);
  CaptureProcessEvents(registry);
  EXPECT_EQ(registry.GetGauge("events.retry.attempts").Value(), before + 5);
  // The full family is present.
  for (const char* name :
       {"events.pool.loops", "events.pool.chunks", "events.retry.backoffs",
        "events.retry.successes", "events.retry.giveups",
        "events.breaker.trips", "events.breaker.rejections",
        "events.fault.transient", "events.fault.slow",
        "events.fault.terminal", "events.fault.truncated_payloads",
        "events.fault.corrupted_claims"}) {
    EXPECT_GE(registry.GetGauge(name).Value(), 0) << name;
  }
}

TEST(MetricsRegistryTest, DefaultRegistryIsAProcessSingleton) {
  MetricsRegistry& a = MetricsRegistry::Default();
  MetricsRegistry& b = MetricsRegistry::Default();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace kg::obs
