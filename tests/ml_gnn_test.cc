#include "ml/graph_propagation.h"

#include <gtest/gtest.h>

namespace kg::ml {
namespace {

TEST(PropagateFeaturesTest, ConcatenatesNeighborMeans) {
  // Path graph 0-1-2 with scalar features.
  std::vector<FeatureVector> feats = {{1.0}, {2.0}, {3.0}};
  Adjacency adj = {{1}, {0, 2}, {1}};
  const auto out = PropagateFeatures(feats, adj, 1);
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(out[0].size(), 2u);
  EXPECT_DOUBLE_EQ(out[0][0], 1.0);
  EXPECT_DOUBLE_EQ(out[0][1], 2.0);     // mean of {2}.
  EXPECT_DOUBLE_EQ(out[1][1], 2.0);     // mean of {1, 3}.
}

TEST(PropagateFeaturesTest, IsolatedNodeGetsZeros) {
  std::vector<FeatureVector> feats = {{5.0}};
  Adjacency adj = {{}};
  const auto out = PropagateFeatures(feats, adj, 2);
  ASSERT_EQ(out[0].size(), 4u);
  EXPECT_DOUBLE_EQ(out[0][0], 5.0);
  EXPECT_DOUBLE_EQ(out[0][1], 0.0);
}

TEST(PropagateFeaturesTest, ZeroLayersIsIdentity) {
  std::vector<FeatureVector> feats = {{1.0, 2.0}};
  Adjacency adj = {{}};
  EXPECT_EQ(PropagateFeatures(feats, adj, 0), feats);
}

// Node classification where the label depends on the NEIGHBOR's feature,
// not the node's own: propagation is necessary.
TEST(GnnNodeClassifierTest, LearnsNeighborDependentLabels) {
  Rng rng(1);
  std::vector<std::vector<FeatureVector>> graphs;
  std::vector<Adjacency> adjacencies;
  std::vector<std::vector<int>> labels;
  for (int g = 0; g < 30; ++g) {
    // Star: center + 4 leaves. Leaves are positive iff center's feature
    // is high. Leaf features are pure noise.
    std::vector<FeatureVector> feats;
    Adjacency adj;
    std::vector<int> lab;
    const bool hot = rng.Bernoulli(0.5);
    feats.push_back({hot ? 1.0 : 0.0, rng.UniformDouble()});
    adj.push_back({});
    lab.push_back(-1);  // center unlabeled.
    for (int leaf = 1; leaf <= 4; ++leaf) {
      feats.push_back({0.5, rng.UniformDouble()});
      adj.push_back({0});
      adj[0].push_back(static_cast<uint32_t>(leaf));
      lab.push_back(hot ? 1 : 0);
    }
    graphs.push_back(std::move(feats));
    adjacencies.push_back(std::move(adj));
    labels.push_back(std::move(lab));
  }
  GnnNodeClassifier classifier;
  GnnNodeClassifier::Options opt;
  opt.layers = 1;
  classifier.Fit(graphs, adjacencies, labels, opt, rng);

  // Fresh test graphs.
  size_t correct = 0, total = 0;
  for (int g = 0; g < 20; ++g) {
    const bool hot = g % 2 == 0;
    std::vector<FeatureVector> feats = {
        {hot ? 1.0 : 0.0, rng.UniformDouble()}};
    Adjacency adj = {{}};
    for (int leaf = 1; leaf <= 4; ++leaf) {
      feats.push_back({0.5, rng.UniformDouble()});
      adj.push_back({0});
      adj[0].push_back(static_cast<uint32_t>(leaf));
    }
    const auto proba = classifier.Predict(feats, adj);
    for (int leaf = 1; leaf <= 4; ++leaf) {
      ++total;
      correct += (proba[leaf] >= 0.5) == hot;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

}  // namespace
}  // namespace kg::ml
