#include "extract/wrapper_induction.h"

#include <gtest/gtest.h>

#include "core/extraction_scoring.h"
#include "synth/website_generator.h"

namespace kg::extract {
namespace {

synth::EntityUniverse SmallUniverse() {
  synth::UniverseOptions opt;
  opt.num_people = 300;
  opt.num_movies = 250;
  opt.num_songs = 80;
  kg::Rng rng(1);
  return synth::EntityUniverse::Generate(opt, rng);
}

// Annotate the first k pages with the generator's hidden value nodes
// (simulating a human annotator).
std::pair<std::vector<const DomPage*>, std::vector<PageAnnotation>>
Annotate(const synth::Website& site, size_t k) {
  std::vector<const DomPage*> pages;
  std::vector<PageAnnotation> annotations;
  for (size_t i = 0; i < std::min(k, site.pages.size()); ++i) {
    pages.push_back(&site.pages[i].dom);
    PageAnnotation ann;
    for (const auto& [attr, node] : site.pages[i].value_nodes) {
      ann[attr] = node;
    }
    annotations.push_back(std::move(ann));
  }
  return {pages, annotations};
}

TEST(WrapperTest, HighAccuracyFromFewAnnotations) {
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 120;
  opt.attr_missing_rate = 0.1;
  kg::Rng rng(2);
  const auto site = GenerateWebsite(universe, opt, rng);
  const auto [pages, annotations] = Annotate(site, 5);
  const Wrapper wrapper = Wrapper::Induce(pages, annotations);

  core::ExtractionQuality quality;
  for (size_t i = 5; i < site.pages.size(); ++i) {
    core::ScoreClosedExtractions(site.pages[i],
                                 wrapper.Extract(site.pages[i].dom),
                                 &quality);
  }
  quality.Finish();
  // The paper: wrapper induction normally obtains over 95% accuracy.
  EXPECT_GT(quality.accuracy, 0.95);
  EXPECT_GT(quality.extracted, 200u);
}

TEST(WrapperTest, AttributesListedAfterInduction) {
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 10;
  kg::Rng rng(3);
  const auto site = GenerateWebsite(universe, opt, rng);
  const auto [pages, annotations] = Annotate(site, 3);
  const Wrapper wrapper = Wrapper::Induce(pages, annotations);
  EXPECT_FALSE(wrapper.Attributes().empty());
}

TEST(WrapperTest, SurvivesRowShiftsViaLabelAnchoring) {
  // High attr_missing_rate shifts row ordinals; label anchoring keeps
  // extraction correct where a fixed path would misfire.
  const auto universe = SmallUniverse();
  synth::WebsiteOptions opt;
  opt.num_pages = 100;
  opt.attr_missing_rate = 0.35;
  kg::Rng rng(4);
  const auto site = GenerateWebsite(universe, opt, rng);
  const auto [pages, annotations] = Annotate(site, 5);
  const Wrapper wrapper = Wrapper::Induce(pages, annotations);
  core::ExtractionQuality quality;
  for (size_t i = 5; i < site.pages.size(); ++i) {
    core::ScoreClosedExtractions(site.pages[i],
                                 wrapper.Extract(site.pages[i].dom),
                                 &quality);
  }
  quality.Finish();
  EXPECT_GT(quality.accuracy, 0.9);
}

TEST(FindValueByLabelTest, ReturnsFollowingSiblingText) {
  DomPage page;
  const auto root = page.AddNode(kInvalidDomNode, "tr");
  page.AddNode(root, "td", "", "Director:");
  const auto value = page.AddNode(root, "td", "", "Ada Novak");
  EXPECT_EQ(FindValueByLabel(page, "Director:"), value);
  EXPECT_EQ(FindValueByLabel(page, "Missing:"), kInvalidDomNode);
  EXPECT_EQ(FindValueByLabel(page, ""), kInvalidDomNode);
}

}  // namespace
}  // namespace kg::extract
