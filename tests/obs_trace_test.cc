// Structured tracing semantics: deterministic span ids from
// (seed, qualified path), per-(parent,name) sequence numbering, inert
// null-tracer spans, and a JSON export that is a pure function of the
// trace structure under an injected clock.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace kg::obs {
namespace {

// One scripted build: root -> {load, work, work}, with attrs, under a
// deterministic clock timeline.
std::string ScriptedTrace(uint64_t seed, uint64_t* root_id = nullptr) {
  FixedTraceClock clock;
  Tracer tracer(seed, &clock);
  Span root = tracer.Root("build");
  if (root_id != nullptr) *root_id = root.id();
  root.SetAttr("source", "unit");
  clock.Advance(0.25);
  {
    Span load = root.Child("load");
    load.SetAttr("rows", uint64_t{12});
    clock.Advance(0.5);
  }
  for (int i = 0; i < 2; ++i) {
    Span work = root.Child("work");
    clock.Advance(0.125);
  }
  root.End();
  return tracer.ToJson();
}

TEST(TracerTest, SameSeedAndStructureExportIdentically) {
  uint64_t id_a = 0, id_b = 0;
  const std::string a = ScriptedTrace(42, &id_a);
  const std::string b = ScriptedTrace(42, &id_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(id_a, id_b);
}

TEST(TracerTest, SeedChangesEverySpanId) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  uint64_t id_a = 0, id_b = 0;
  const std::string a = ScriptedTrace(42, &id_a);
  const std::string b = ScriptedTrace(43, &id_b);
  EXPECT_NE(id_a, id_b);
  EXPECT_NE(a, b);
}

TEST(TracerTest, PathsChainNameAndSequence) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Tracer tracer(1);
  Span root = tracer.Root("build");
  EXPECT_EQ(root.path(), "/build#0");
  Span c0 = root.Child("stage");
  Span c1 = root.Child("stage");
  EXPECT_EQ(c0.path(), "/build#0/stage#0");
  EXPECT_EQ(c1.path(), "/build#0/stage#1");
  c0.End();
  c1.End();
  // A second root of the same name gets the next sequence number.
  root.End();
  Span again = tracer.Root("build");
  EXPECT_EQ(again.path(), "/build#1");
}

TEST(TracerTest, JsonNestsChildrenSortedByNameAndSeq) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  FixedTraceClock clock(2.0);
  Tracer tracer(7, &clock);
  {
    Span root = tracer.Root("build");
    // Finish children out of name order: export must sort by (name, seq).
    Span z = root.Child("zeta");
    Span a = root.Child("alpha");
    z.End();
    a.End();
  }
  const auto parsed = ParseJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& v = *parsed;
  EXPECT_DOUBLE_EQ(v.Find("schema_version")->number, 1.0);
  EXPECT_DOUBLE_EQ(v.Find("seed")->number, 7.0);
  EXPECT_DOUBLE_EQ(v.Find("span_count")->number, 3.0);
  ASSERT_EQ(v.Find("spans")->array.size(), 1u);
  const JsonValue& root = v.Find("spans")->array[0];
  EXPECT_EQ(root.Find("name")->string_value, "build");
  EXPECT_DOUBLE_EQ(root.Find("start_s")->number, 2.0);
  const JsonValue* children = root.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 2u);
  EXPECT_EQ(children->array[0].Find("name")->string_value, "alpha");
  EXPECT_EQ(children->array[1].Find("name")->string_value, "zeta");
}

TEST(TracerTest, AttrsExportInInsertionOrderAsStrings) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  FixedTraceClock clock;
  Tracer tracer(1, &clock);
  {
    Span root = tracer.Root("r");
    root.SetAttr("text", "hello");
    root.SetAttr("count", int64_t{-4});
    root.SetAttr("total", uint64_t{9});
    root.SetAttr("ratio", 0.5, 2);
  }
  const auto parsed = ParseJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* attrs = parsed->Find("spans")->array[0].Find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->Find("text")->string_value, "hello");
  EXPECT_EQ(attrs->Find("count")->string_value, "-4");
  EXPECT_EQ(attrs->Find("total")->string_value, "9");
  EXPECT_EQ(attrs->Find("ratio")->string_value, "0.50");
}

TEST(TracerTest, NullTracerAndDefaultSpansAreInert) {
  Span inert = Tracer::Start(nullptr, "anything");
  EXPECT_FALSE(inert.active());
  inert.SetAttr("k", "v");
  Span child = inert.Child("sub");
  EXPECT_FALSE(child.active());
  inert.End();  // safe, no-op
  Span defaulted;
  defaulted.End();
  EXPECT_EQ(defaulted.id(), 0u);
}

TEST(TracerTest, StartWithTracerRecordsARoot) {
  Tracer tracer(1);
  {
    Span span = Tracer::Start(&tracer, "job");
#ifndef KG_OBS_NOOP
    EXPECT_TRUE(span.active());
#endif
  }
#ifndef KG_OBS_NOOP
  EXPECT_EQ(tracer.finished_spans(), 1u);
#endif
}

TEST(TracerTest, MoveTransfersOwnershipWithoutDoubleRecord) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Tracer tracer(1);
  {
    Span a = tracer.Root("r");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
    a.End();  // inert moved-from span: no record
  }
  EXPECT_EQ(tracer.finished_spans(), 1u);
  // Move-assignment ends the destination span first.
  Span c = tracer.Root("r");
  c = tracer.Root("r");
  c.End();
  c.End();  // idempotent
  EXPECT_EQ(tracer.finished_spans(), 3u);
}

TEST(TracerTest, UnfinishedSpansAreNotExported) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  Tracer tracer(1);
  Span root = tracer.Root("pending");
  const auto parsed = ParseJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("span_count")->number, 0.0);
  root.End();
  EXPECT_EQ(tracer.finished_spans(), 1u);
}

TEST(TracerTest, ClearResetsSequencesForExactReplay) {
  FixedTraceClock clock;
  Tracer tracer(5, &clock);
  auto run = [&] {
    Span root = tracer.Root("build");
    root.Child("stage").End();
    root.Child("stage").End();
  };
  run();
  const std::string first = tracer.ToJson();
  tracer.Clear();
  clock.Set(0.0);
  run();
  EXPECT_EQ(tracer.ToJson(), first);
}

TEST(TracerTest, ConcurrentUniquelyNamedChildrenExportDeterministically) {
  // The deterministic-id contract under concurrency: same-parent spans
  // created from worker threads must carry caller-unique names (the
  // "chunk@<begin>" convention); then the export is independent of
  // completion order and thread count.
  auto traced = [](size_t threads) {
    FixedTraceClock clock;
    Tracer tracer(9, &clock);
    Span root = tracer.Root("parallel");
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&root, t, threads] {
        for (size_t chunk = t; chunk < 16; chunk += threads) {
          Span span = root.Child("chunk@" + std::to_string(chunk));
          span.SetAttr("items", uint64_t{4});
        }
      });
    }
    for (std::thread& w : workers) w.join();
    root.End();
    return tracer.ToJson();
  };
  const std::string serial = traced(1);
  EXPECT_EQ(traced(2), serial);
  EXPECT_EQ(traced(8), serial);
}

}  // namespace
}  // namespace kg::obs
