#include "common/status.h"

#include <gtest/gtest.h>

namespace kg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("y").message(), "y");
  EXPECT_EQ(Status::Internal("z").ToString(), "internal: z");
  EXPECT_FALSE(Status::IoError("f").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded);
       ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusCodeTest, RetryCodesNamedAndConstructible) {
  EXPECT_EQ(Status::Unavailable("s down").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("s down").ToString(),
            "unavailable: s down");
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "deadline_exceeded: late");
}

TEST(StatusCodeTest, FromIntRoundTripsEveryCode) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded);
       ++c) {
    const auto decoded = StatusCodeFromInt(c);
    ASSERT_TRUE(decoded.has_value()) << c;
    EXPECT_EQ(static_cast<int>(*decoded), c);
  }
}

TEST(StatusCodeTest, FromIntRejectsOutOfRange) {
  EXPECT_FALSE(StatusCodeFromInt(-1).has_value());
  EXPECT_FALSE(
      StatusCodeFromInt(static_cast<int>(StatusCode::kDeadlineExceeded) + 1)
          .has_value());
  EXPECT_FALSE(StatusCodeFromInt(255).has_value());  // Wire byte garbage.
}

TEST(StatusCodeTest, OnlyUnavailableIsRetriable) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded);
       ++c) {
    const auto code = static_cast<StatusCode>(c);
    EXPECT_EQ(IsRetriable(code), code == StatusCode::kUnavailable)
        << StatusCodeToString(code);
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> Doubled(int x) {
  KG_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Status UseDoubled(int x, int* out) {
  KG_ASSIGN_OR_RETURN(*out, Doubled(x));
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseDoubled(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseDoubled(-1, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kg
