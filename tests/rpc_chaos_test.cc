// Chaos battery for the RPC stack: FaultInjector-driven dropped,
// garbled, and slow frames between a real server and a RetryingClient.
// The invariants: the client either converges to the byte-exact local
// answer or degrades to a clean retriable/terminal status — never a
// wrong answer, never a crash, never a hang — and a run's outcomes are
// a pure function of the chaos seed.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/retry.h"
#include "graph/knowledge_graph.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace kg::rpc {
namespace {

using graph::NodeKind;

graph::KnowledgeGraph SampleKg() {
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"chaos", 1.0, 0};
  for (int i = 0; i < 8; ++i) {
    const std::string movie = "m" + std::to_string(i);
    kg.AddTriple(movie, "type", "Movie", NodeKind::kEntity,
                 NodeKind::kClass, prov);
    kg.AddTriple(movie, "title", "Title " + std::to_string(i),
                 NodeKind::kEntity, NodeKind::kText, prov);
    kg.AddTriple(movie, "directed_by", "d" + std::to_string(i % 3),
                 NodeKind::kEntity, NodeKind::kEntity, prov);
    kg.AddTriple("a" + std::to_string(i % 5), "acted_in", movie,
                 NodeKind::kEntity, NodeKind::kEntity, prov);
  }
  return kg;
}

std::vector<serve::Query> SampleWorkload() {
  std::vector<serve::Query> queries;
  for (int i = 0; i < 8; ++i) {
    const std::string movie = "m" + std::to_string(i);
    queries.push_back(serve::Query::PointLookup(movie, "title"));
    queries.push_back(serve::Query::Neighborhood(movie));
    queries.push_back(serve::Query::TopKRelated(movie, 4));
  }
  queries.push_back(serve::Query::AttributeByType("Movie", "title"));
  queries.push_back(serve::Query::AttributeByType("Movie", "directed_by"));
  return queries;
}

/// Outcome signature of one query under chaos: the exact rows on
/// success, the status code otherwise. Two runs with the same seed must
/// produce identical signatures.
std::string Signature(const Result<serve::QueryResult>& result) {
  if (!result.ok()) {
    return std::string("err:") + StatusCodeToString(result.status().code());
  }
  std::string sig = "ok:";
  for (const std::string& row : *result) {
    sig += row;
    sig += '\x1f';
  }
  return sig;
}

struct ChaosRun {
  std::vector<std::string> signatures;
  RetryingClient::Stats stats;
  size_t successes = 0;
};

/// One full chaos run: fresh server, fresh RetryingClient whose every
/// connection is wrapped in a ChaosTransport ("conn-<n>" channels), the
/// whole workload executed once.
ChaosRun RunChaos(const serve::QueryEngine& engine, const FaultPlan& plan,
                  const RetryPolicy& policy) {
  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  KG_CHECK_OK(server.Start());

  const FaultInjector injector(plan);
  auto conn_counter = std::make_shared<size_t>(0);
  TransportFactory factory =
      [loopback, &injector,
       conn_counter]() -> Result<std::unique_ptr<ITransport>> {
    auto inner = loopback->Connect();
    if (!inner.ok()) return inner.status();
    const std::string channel = "conn-" + std::to_string((*conn_counter)++);
    return std::unique_ptr<ITransport>(std::make_unique<ChaosTransport>(
        std::move(*inner), &injector, channel));
  };

  RpcClientOptions client_options;
  client_options.read_timeout_ms = 50;  // Lost frames cost 50ms, not 2s.
  RetryingClient client(std::move(factory), policy, plan.seed,
                        client_options);

  ChaosRun run;
  for (const serve::Query& q : SampleWorkload()) {
    const auto result = client.Execute(q);
    run.signatures.push_back(Signature(result));
    if (result.ok()) ++run.successes;
  }
  run.stats = client.stats();
  server.Stop();
  return run;
}

RetryPolicy LenientPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1.0;
  policy.deadline_budget_ms = 0;        // Virtual-time budget off.
  policy.breaker_failure_threshold = 1000;  // Breaker effectively off.
  return policy;
}

TEST(RpcChaosTest, CleanPlanConvergesExactly) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  FaultPlan plan;  // Inactive: chaos rig with no chaos.
  plan.seed = 1;
  const ChaosRun run = RunChaos(engine, plan, LenientPolicy());
  const auto workload = SampleWorkload();
  ASSERT_EQ(run.successes, workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(run.signatures[i],
              Signature(Result<serve::QueryResult>(
                  engine.Execute(workload[i]))));
  }
  EXPECT_EQ(run.stats.reconnects, 1u);
  EXPECT_EQ(run.stats.attempts, workload.size());
}

TEST(RpcChaosTest, NeverReturnsWrongAnswersUnderChaos) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);
  const auto workload = SampleWorkload();

  size_t total_successes = 0;
  size_t total_retries = 0;
  for (const uint64_t seed : {11u, 22u, 33u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.transient_rate = 0.15;  // Dropped frames.
    plan.corrupt_rate = 0.10;    // Garbled frames (checksum-caught).
    plan.slow_rate = 0.10;       // Virtual latency only.
    const ChaosRun run = RunChaos(engine, plan, LenientPolicy());
    for (size_t i = 0; i < workload.size(); ++i) {
      const std::string expected =
          Signature(Result<serve::QueryResult>(engine.Execute(workload[i])));
      // Converged answers must be byte-exact; degraded ones must carry
      // the retriable wire code, not a fabricated success.
      if (run.signatures[i].rfind("ok:", 0) == 0) {
        EXPECT_EQ(run.signatures[i], expected)
            << "seed " << seed << " query " << i;
      } else {
        EXPECT_EQ(run.signatures[i], "err:unavailable")
            << "seed " << seed << " query " << i;
      }
    }
    total_successes += run.successes;
    total_retries += run.stats.attempts - workload.size();
  }
  // The chaos must actually bite (retries happened) and the stack must
  // actually absorb it (most queries converge).
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_successes, workload.size() * 3 / 2);
}

TEST(RpcChaosTest, OutcomesAreDeterministicPerSeed) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  FaultPlan plan;
  plan.seed = 20260807;
  plan.transient_rate = 0.2;
  plan.corrupt_rate = 0.15;
  plan.slow_rate = 0.1;

  const ChaosRun a = RunChaos(engine, plan, LenientPolicy());
  const ChaosRun b = RunChaos(engine, plan, LenientPolicy());
  EXPECT_EQ(a.signatures, b.signatures);
  EXPECT_EQ(a.stats.attempts, b.stats.attempts);
  EXPECT_EQ(a.stats.reconnects, b.stats.reconnects);
  EXPECT_EQ(a.stats.virtual_ms, b.stats.virtual_ms);

  // A different seed draws a different fault pattern (with these rates,
  // identical outcomes would mean the seed is being ignored).
  FaultPlan other = plan;
  other.seed = 999;
  const ChaosRun c = RunChaos(engine, other, LenientPolicy());
  EXPECT_NE(a.signatures, c.signatures);
}

TEST(RpcChaosTest, TerminalWireDegradesToCleanUnavailable) {
  const graph::KnowledgeGraph kg = SampleKg();
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const serve::QueryEngine engine(snap);

  FaultPlan plan;
  plan.seed = 7;
  plan.terminal_rate = 1.0;  // Every connection's wire is dead.
  RetryPolicy policy = LenientPolicy();
  policy.max_attempts = 3;
  policy.breaker_failure_threshold = 5;
  const ChaosRun run = RunChaos(engine, plan, policy);
  EXPECT_EQ(run.successes, 0u);
  for (const std::string& sig : run.signatures) {
    EXPECT_EQ(sig, "err:unavailable");
  }
  // Once the breaker opens, later queries fail fast without new dials.
  EXPECT_LE(run.stats.reconnects, 6u);
}

// Dial-time chaos: ChaosConnectFactory refuses connections with a
// retriable kUnavailable — without ever invoking the wrapped factory —
// and the refusal pattern is a pure function of (seed, channel,
// attempt index).
TEST(RpcChaosTest, ConnectFactoryRefusalsAreInjectedAndDeterministic) {
  auto counting_inner = [](size_t* dials) {
    return [dials]() -> Result<std::unique_ptr<ITransport>> {
      ++*dials;
      return Status::Internal("inner factory reached");
    };
  };

  // Certain refusal: every dial is refused before the inner factory.
  FaultPlan always;
  always.seed = 42;
  always.transient_rate = 1.0;
  const FaultInjector refuse_all(always);
  size_t dials = 0;
  TransportFactory refused =
      ChaosConnectFactory(counting_inner(&dials), &refuse_all, "ship");
  for (int i = 0; i < 5; ++i) {
    const auto conn = refused();
    ASSERT_FALSE(conn.ok());
    EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(conn.status().message().find("connection refused"),
              std::string::npos);
  }
  EXPECT_EQ(dials, 0u);

  // Inactive plan: every dial passes through untouched.
  const FaultPlan clean;
  const FaultInjector no_faults(clean);
  size_t clean_dials = 0;
  TransportFactory passthrough = ChaosConnectFactory(
      counting_inner(&clean_dials), &no_faults, "ship");
  for (int i = 0; i < 5; ++i) (void)passthrough();
  EXPECT_EQ(clean_dials, 5u);

  // Partial refusal is per-attempt-index deterministic: two factories
  // over the same (injector, channel) refuse the same dial indices.
  FaultPlan half;
  half.seed = 7;
  half.transient_rate = 0.5;
  const FaultInjector coin(half);
  InMemoryTransportServer loopback;
  auto refusal_pattern = [&] {
    TransportFactory f = ChaosConnectFactory(
        [&loopback] { return loopback.Connect(); }, &coin, "ship");
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += f().ok() ? '.' : 'x';
    }
    return pattern;
  };
  const std::string a = refusal_pattern();
  EXPECT_EQ(a, refusal_pattern());
  EXPECT_NE(a.find('x'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

// Direct ChaosTransport determinism: the same seed drops and garbles
// the same frame indices, independent of everything else.
TEST(RpcChaosTest, ChaosTransportFaultsAreReproducible) {
  auto run_once = [](uint64_t seed) {
    InMemoryTransportServer loopback;
    auto client_end = loopback.Connect();
    KG_CHECK(client_end.ok());
    auto server_end = loopback.Accept();
    KG_CHECK(server_end.ok());

    FaultPlan plan;
    plan.seed = seed;
    plan.transient_rate = 0.3;
    plan.corrupt_rate = 0.2;
    const FaultInjector injector(plan);
    ChaosTransport chaotic(std::move(*client_end), &injector, "pipe");

    std::string delivered;
    for (uint32_t i = 0; i < 40; ++i) {
      std::string frame;
      AppendFrame(&frame, MessageType::kQueryRequest, i,
                  EncodeQuery(serve::Query::PointLookup(
                      "n" + std::to_string(i), "p")));
      (void)chaotic.Write(frame);
      std::string chunk;
      while ((*server_end)->TryRead(&chunk, 4096).value_or(0) > 0) {
      }
      delivered += chunk;
    }
    return std::tuple<size_t, size_t, std::string>(
        chaotic.frames_dropped(), chaotic.frames_garbled(), delivered);
  };
  const auto a = run_once(5);
  const auto b = run_once(5);
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<0>(a), 0u);  // Drops actually fired...
  EXPECT_GT(std::get<1>(a), 0u);  // ...and so did garbles.
  const auto c = run_once(6);
  EXPECT_NE(std::get<2>(a), std::get<2>(c));
}

}  // namespace
}  // namespace kg::rpc
