#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"

namespace kg {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmitFromMultipleProducers) {
  ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, WaitIdleUnderContention) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<bool> producing{true};
  // A producer keeps feeding work while other threads repeatedly call
  // WaitIdle; every WaitIdle return must observe a momentarily drained
  // queue, and nothing may deadlock.
  std::thread producer([&] {
    for (int i = 0; i < 300; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
      if (i % 50 == 0) std::this_thread::yield();
    }
    producing.store(false);
  });
  std::vector<std::thread> waiters;
  for (int w = 0; w < 3; ++w) {
    waiters.emplace_back([&] {
      while (producing.load()) pool.WaitIdle();
    });
  }
  producer.join();
  for (auto& t : waiters) t.join();
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 300);
}

TEST(ThreadPoolStressTest, ParallelForEdgeSizes) {
  ThreadPool pool(4);
  {
    pool.ParallelFor(0, [](size_t) { FAIL() << "n=0 must not invoke"; });
  }
  {
    std::atomic<int> hits{0};
    pool.ParallelFor(1, [&hits](size_t i) {
      EXPECT_EQ(i, 0u);
      hits.fetch_add(1);
    });
    EXPECT_EQ(hits.load(), 1);
  }
  {
    // n >> threads: every index exactly once.
    constexpr size_t kN = 20000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolStressTest, ParallelForChunkedCoversDisjointChunks) {
  ThreadPool pool(4);
  constexpr size_t kN = 10007;  // Prime: exercises the ragged last chunk.
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<size_t> chunks{0};
  pool.ParallelForChunked(kN, 64, [&](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, kN);
    ASSERT_TRUE(end - begin == 64 || end == kN);
    chunks.fetch_add(1);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
  EXPECT_EQ(chunks.load(), (kN + 63) / 64);
}

TEST(ThreadPoolStressTest, ParallelForChunkedAutoChunkingAndEdgeSizes) {
  ThreadPool pool(3);
  pool.ParallelForChunked(0, 0, [](size_t, size_t) { FAIL(); });
  std::atomic<int> calls{0};
  pool.ParallelForChunked(1, 0, [&calls](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
  // Auto chunk size is thread-count independent: at most kAutoChunks
  // blocks regardless of pool width.
  EXPECT_EQ(ThreadPool::ChunkSizeFor(1), 1u);
  EXPECT_EQ(ThreadPool::ChunkSizeFor(64), 1u);
  EXPECT_EQ(ThreadPool::ChunkSizeFor(6400), 100u);
}

TEST(ThreadPoolStressTest, TryParallelForChunkedAllOk) {
  ThreadPool pool(4);
  std::atomic<int> covered{0};
  const Status s =
      pool.TryParallelForChunked(1000, 10, [&](size_t begin, size_t end) {
        covered.fetch_add(static_cast<int>(end - begin));
        return Status::OK();
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(covered.load(), 1000);
}

TEST(ThreadPoolStressTest, TryParallelForChunkedPropagatesFirstError) {
  ThreadPool pool(4);
  const Status s =
      pool.TryParallelForChunked(1000, 10, [](size_t begin, size_t) {
        if (begin == 500) {
          return Status::InvalidArgument("bad shard " +
                                         std::to_string(begin));
        }
        return Status::OK();
      });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shard 500");
}

TEST(ThreadPoolStressTest, TryParallelForChunkedCancelsRemainingChunks) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  const Status s =
      pool.TryParallelForChunked(100000, 1, [&](size_t begin, size_t) {
        executed.fetch_add(1);
        if (begin == 0) return Status::Cancelled("stop everything");
        return Status::OK();
      });
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // Cancellation is advisory for in-flight chunks but must prevent the
  // bulk of the not-yet-started ones from running.
  EXPECT_LT(executed.load(), 100000);
}

TEST(ThreadPoolStressTest,
     TryParallelForChunkedReturnsLowestFailingChunkOfMany) {
  // With every chunk failing, the lowest *executed* failure wins. Under
  // contention the winner is scheduling-dependent (an early chunk can be
  // cancelled by an even earlier-failing later chunk), so only the shape
  // is asserted; the single-worker case below is exact.
  ThreadPool pool(4);
  const Status s =
      pool.TryParallelForChunked(64, 1, [](size_t begin, size_t) {
        return Status::Internal("chunk " + std::to_string(begin));
      });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message().rfind("chunk ", 0), 0u);

  ThreadPool serial_pool(1);
  const Status serial =
      serial_pool.TryParallelForChunked(64, 1, [](size_t begin, size_t) {
        return Status::Internal("chunk " + std::to_string(begin));
      });
  EXPECT_EQ(serial.message(), "chunk 0");
}

TEST(ThreadPoolStressTest, RetriableAndTerminalStatusesBothCancelLoop) {
  // A chunk failure cancels the loop whether the status is retriable
  // (kUnavailable) or terminal (kInternal) — retrying is the *caller's*
  // decision, made by re-running the whole loop; the pool itself must
  // treat both identically (first executed failure wins, rest cancelled).
  ThreadPool pool(4);
  for (const StatusCode code :
       {StatusCode::kUnavailable, StatusCode::kInternal}) {
    std::atomic<int> executed{0};
    const Status s =
        pool.TryParallelForChunked(50000, 1, [&](size_t begin, size_t) {
          executed.fetch_add(1);
          if (begin == 0) {
            return Status(code, "chunk 0 faulted");
          }
          return Status::OK();
        });
    EXPECT_EQ(s.code(), code);
    EXPECT_LT(executed.load(), 50000) << StatusCodeToString(code);
  }
}

TEST(ThreadPoolStressTest, CallerRetryLoopDrainsTransientChunkFaults) {
  // Retry-over-the-pool: chunks fail transiently per (chunk, pass)
  // through a deterministic fault oracle, and the caller re-runs the
  // loop while the failure is retriable. The loop must converge, cover
  // every index exactly once on the clean pass, and never deadlock or
  // leak under repeated cancellation.
  ThreadPool pool(4);
  constexpr size_t kN = 1024;
  constexpr size_t kChunk = 64;  // 16 chunks: a clean pass is likely
                                 // within a few retries at 15% faults.
  FaultPlan plan;
  plan.seed = 5;
  plan.transient_rate = 0.15;
  const FaultInjector injector(plan);
  std::vector<std::atomic<int>> hits(kN);
  Status status;
  size_t passes = 0;
  constexpr size_t kMaxPasses = 256;
  for (; passes < kMaxPasses; ++passes) {
    for (auto& h : hits) h.store(0);
    status = pool.TryParallelForChunked(
        kN, kChunk, [&](size_t begin, size_t end) {
          const auto probe = injector.Probe(
              "chunk" + std::to_string(begin), /*attempt=*/passes);
          if (!probe.status.ok()) return probe.status;
          for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          return Status::OK();
        });
    if (status.ok()) break;
    ASSERT_TRUE(IsRetriable(status.code())) << status;
  }
  ASSERT_TRUE(status.ok()) << "no clean pass in " << kMaxPasses;
  EXPECT_GT(passes, 0u);  // 30% per-chunk faults: pass 0 cannot be clean.
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolStressTest, TerminalFaultAmongTransientsWinsWhenEarliest) {
  // Mixed retriable/terminal failures: the lowest executed failing chunk
  // wins under single-worker determinism, so a terminal fault at chunk 0
  // must surface even when later chunks fail retriably.
  ThreadPool serial_pool(1);
  const Status s =
      serial_pool.TryParallelForChunked(64, 1, [](size_t begin, size_t) {
        if (begin == 0) return Status::Internal("hard fault");
        return Status::Unavailable("soft fault " + std::to_string(begin));
      });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "hard fault");
  EXPECT_FALSE(IsRetriable(s.code()));
}

TEST(ThreadPoolStressTest, TeardownWithNonEmptyQueueDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1);
      });
    }
    // Destructor runs while most of the queue is still pending; current
    // semantics drain the queue before joining, with no exceptions or
    // leaks (TSan/ASan builds of this test verify the latter).
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolStressTest, RepeatedParallelLoopsReuseThePoolSafely) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelForChunked(257, 0, [&](size_t begin, size_t end) {
      total.fetch_add(static_cast<long>(end - begin));
    });
  }
  EXPECT_EQ(total.load(), 50L * 257);
}

}  // namespace
}  // namespace kg
