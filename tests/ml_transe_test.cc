#include "ml/transe.h"

#include <gtest/gtest.h>

namespace kg::ml {
namespace {

// A block-structured KG: relation 0 maps entity i -> i + kBlock within
// blocks, a structure TransE embeds easily.
constexpr uint32_t kBlock = 20;

std::vector<IdTriple> MakeTriples() {
  std::vector<IdTriple> triples;
  for (uint32_t i = 0; i < kBlock; ++i) {
    triples.push_back({i, 0, i + kBlock});        // rel0: a -> b.
    triples.push_back({i + kBlock, 1, i});        // rel1: inverse.
  }
  return triples;
}

TEST(TransETest, TrueTriplesOutscoreCorrupted) {
  Rng rng(1);
  const auto triples = MakeTriples();
  TransE model;
  TransEOptions opt;
  opt.epochs = 200;
  opt.dim = 16;
  model.Fit(triples, 2 * kBlock, 2, opt, rng);
  size_t wins = 0;
  for (const auto& t : triples) {
    const uint32_t wrong = (t[2] + 7) % (2 * kBlock);
    if (model.Score(t[0], t[1], t[2]) > model.Score(t[0], t[1], wrong)) {
      ++wins;
    }
  }
  EXPECT_GT(static_cast<double>(wins) / triples.size(), 0.85);
}

TEST(TransETest, LinkPredictionBeatsRandom) {
  Rng rng(2);
  auto triples = MakeTriples();
  // Hold out 10 rel-0 triples whose entities keep their rel-1 edge, so
  // the model can infer the missing link from the inverse structure.
  std::vector<IdTriple> test, train;
  size_t held = 0;
  for (const auto& t : triples) {
    if (t[1] == 0 && held < 10) {
      test.push_back(t);
      ++held;
    } else {
      train.push_back(t);
    }
  }
  TransE model;
  TransEOptions opt;
  opt.epochs = 300;
  opt.dim = 16;
  model.Fit(train, 2 * kBlock, 2, opt, rng);
  const auto score = model.EvaluateTailPrediction(test, triples);
  // Random MRR over 40 entities ~ 0.11; the model must beat it clearly.
  EXPECT_GT(score.mrr, 0.3);
  EXPECT_GT(score.hits_at_10, 0.5);
}

TEST(TransETest, EmbeddingsAreUnitBounded) {
  Rng rng(3);
  TransE model;
  TransEOptions opt;
  opt.epochs = 20;
  opt.dim = 8;
  model.Fit(MakeTriples(), 2 * kBlock, 2, opt, rng);
  for (uint32_t e = 0; e < 2 * kBlock; ++e) {
    double norm = 0;
    for (double x : model.entity_embedding(e)) norm += x * x;
    EXPECT_LE(std::sqrt(norm), 1.0 + 1e-6);
  }
}

TEST(TransETest, EmptyTestScoresZero) {
  Rng rng(4);
  TransE model;
  TransEOptions opt;
  opt.epochs = 5;
  model.Fit(MakeTriples(), 2 * kBlock, 2, opt, rng);
  const auto score = model.EvaluateTailPrediction({}, {});
  EXPECT_DOUBLE_EQ(score.mrr, 0.0);
}

}  // namespace
}  // namespace kg::ml
