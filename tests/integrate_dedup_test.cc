#include "integrate/dedup.h"

#include <gtest/gtest.h>

#include <set>

#include "core/conversions.h"
#include "synth/structured_source.h"

namespace kg::integrate {
namespace {

struct World {
  RecordSet records;
  std::vector<uint32_t> truth;
  EntityLinker linker;
  LinkageSchema schema;
};

World MakeWorld(uint64_t seed) {
  kg::Rng rng(seed);
  synth::UniverseOptions uopt;
  uopt.num_people = 300;
  uopt.num_movies = 500;
  uopt.num_songs = 50;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions opt;
  opt.coverage = 0.7;
  opt.duplicate_rate = 0.35;  // Heavy within-source duplication.
  opt.name_noise = 0.2;
  const auto table = synth::EmitSource(universe, opt, rng);
  World world;
  world.schema = core::LinkageSchemaFor(synth::SourceDomain::kMovies);
  world.records =
      core::ToRecordSet(table, core::ManualMappingFor(table), &world.truth);
  // Train the linker on self-join pairs labeled by hidden truth.
  auto pool = core::BuildLinkagePairs(world.records, world.truth,
                                      world.records, world.truth,
                                      world.schema);
  ml::ForestOptions fopt;
  fopt.num_trees = 25;
  world.linker.Fit(pool, fopt, rng);
  return world;
}

TEST(DedupTest, MergesDuplicatesWithHighAgreement) {
  World world = MakeWorld(1);
  const auto result =
      DedupRecords(world.records, world.linker, world.schema, 0.6);
  EXPECT_LT(result.num_clusters, world.records.records.size());
  // Cluster agreement with hidden truth: pairs in the same cluster
  // should be true duplicates.
  size_t same_cluster = 0, same_truth = 0;
  for (size_t i = 0; i < world.truth.size(); ++i) {
    for (size_t j = i + 1; j < world.truth.size(); ++j) {
      if (result.cluster_of[i] != result.cluster_of[j]) continue;
      ++same_cluster;
      same_truth += world.truth[i] == world.truth[j];
    }
  }
  ASSERT_GT(same_cluster, 50u);
  EXPECT_GT(static_cast<double>(same_truth) / same_cluster, 0.9);
}

TEST(DedupTest, RecallOfTrueDuplicatePairs) {
  World world = MakeWorld(2);
  const auto result =
      DedupRecords(world.records, world.linker, world.schema, 0.6);
  size_t dup_pairs = 0, found = 0;
  std::map<uint32_t, std::vector<size_t>> by_truth;
  for (size_t i = 0; i < world.truth.size(); ++i) {
    by_truth[world.truth[i]].push_back(i);
  }
  for (const auto& [entity, members] : by_truth) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        ++dup_pairs;
        found += result.cluster_of[members[a]] ==
                 result.cluster_of[members[b]];
      }
    }
  }
  ASSERT_GT(dup_pairs, 50u);
  EXPECT_GT(static_cast<double>(found) / dup_pairs, 0.6);
}

TEST(DedupTest, MergeClustersVotesPerAttribute) {
  RecordSet records;
  records.source_name = "s";
  auto make = [](const char* id, const char* title, const char* year) {
    Record r;
    r.source = "s";
    r.local_id = id;
    r.attrs = {{"title", title}, {"release_year", year}};
    return r;
  };
  records.records = {make("1", "The Harbor", "1999"),
                     make("2", "The Harbor", "1998"),
                     make("3", "The Harbor", "1999"),
                     make("4", "Other Movie", "2001")};
  DedupResult dedup;
  dedup.cluster_of = {0, 0, 0, 1};
  dedup.num_clusters = 2;
  const auto merged = MergeClusters(records, dedup);
  ASSERT_EQ(merged.records.size(), 2u);
  EXPECT_EQ(merged.records[0].Get("release_year"), "1999");  // 2-1 vote.
  EXPECT_EQ(merged.records[1].Get("title"), "Other Movie");
}

TEST(DedupTest, NoDuplicatesMeansNoMerging) {
  RecordSet records;
  records.source_name = "s";
  for (int i = 0; i < 10; ++i) {
    Record r;
    r.local_id = std::to_string(i);
    r.attrs = {{"title", "unique title " + std::to_string(i) +
                             " zz" + std::to_string(i * 7)}};
    records.records.push_back(r);
  }
  // A linker that never fires: trivial forest trained on dissimilar
  // pairs only would still need data; instead use a high threshold.
  World world = MakeWorld(3);
  LinkageSchema schema;
  schema.name_attrs = {"title"};
  const auto result =
      DedupRecords(records, world.linker, schema, 0.99);
  EXPECT_EQ(result.num_clusters, records.records.size());
}

}  // namespace
}  // namespace kg::integrate
