// Sustained-upsert regression: a realistic ingest mutation stream is
// applied in batches across >= 3 full compaction cycles while a
// background reader loops all four query classes against the live
// store. At every checkpoint (including mid-stream, right after each
// compaction) the store's answers must equal a QueryEngine over a
// from-scratch rebuild of the same prefix — compaction must never
// change an answer, and long-running upsert streams must not decay the
// read path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "ingest/crawl.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "synth/entity_universe.h"

namespace kg::store {
namespace {

using graph::KnowledgeGraph;
using graph::TripleSetFingerprint;
using serve::Query;

std::vector<Query> FourClassProbes() {
  std::vector<Query> probes;
  for (uint32_t id = 0; id < 6; ++id) {
    const std::string person = synth::EntityUniverse::PersonNodeName(id);
    const std::string movie = synth::EntityUniverse::MovieNodeName(id);
    probes.push_back(Query::PointLookup(person, "name"));
    probes.push_back(Query::PointLookup(movie, "release_year"));
    probes.push_back(Query::Neighborhood(person));
    probes.push_back(Query::TopKRelated(movie, 5));
  }
  probes.push_back(Query::AttributeByType("Movie", "release_year"));
  probes.push_back(Query::AttributeByType("Person", "birth_year"));
  probes.push_back(Query::AttributeByType("Song", "song_genre"));
  return probes;
}

TEST(StoreSustainedUpsertTest, CompactionCyclesNeverChangeAnswers) {
  synth::UniverseOptions uo;
  uo.num_people = 70;
  uo.num_movies = 35;
  uo.num_songs = 25;
  Rng rng(91);
  const auto universe = synth::EntityUniverse::Generate(uo, rng);
  const KnowledgeGraph base = universe.ToKnowledgeGraph();

  // The upsert stream: crawl-unit mutations, in plan order (the same
  // stream the ingest pipeline would commit).
  ingest::CrawlPlanOptions po;
  po.num_catalog_sources = 4;
  po.records_per_chunk = 10;
  po.num_websites = 3;
  po.pages_per_site = 8;
  const ingest::CrawlPlan plan =
      ingest::BuildCrawlPlan(universe, po, rng);
  const ingest::SurfaceLinker linker(base);
  const ingest::UnitContext ctx;
  std::vector<Mutation> stream;
  for (const ingest::CrawlUnit& unit : plan.units) {
    auto result = ingest::ProcessUnit(plan, unit, linker, ctx);
    for (Mutation& m : result.mutations) stream.push_back(std::move(m));
  }
  ASSERT_GT(stream.size(), 200u);

  StoreOptions store_options;
  store_options.cache_capacity = 128;
  auto opened = VersionedKgStore::Open(base, store_options);
  ASSERT_TRUE(opened.ok());
  VersionedKgStore& store = **opened;
  const std::vector<Query> probes = FourClassProbes();

  // Background reader: loops the four query classes against whatever
  // epoch is current, across every batch and compaction below.
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::thread reader([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto epoch = store.PinEpoch();
      (void)store.ExecuteAt(*epoch, probes[i % probes.size()]);
      (void)store.Execute(probes[(i + 1) % probes.size()]);
      ++i;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Oracle check: store answers at the current prefix == engine over a
  // from-scratch rebuild of the same prefix.
  KnowledgeGraph mirror = base;
  size_t applied = 0;
  auto check_against_rebuild = [&](const std::string& where) {
    ASSERT_EQ(store.AuthoritativeFingerprint(),
              TripleSetFingerprint(mirror))
        << where;
    const serve::KgSnapshot snapshot = serve::KgSnapshot::Compile(mirror);
    const serve::QueryEngine engine(snapshot);
    for (const Query& q : probes) {
      ASSERT_EQ(store.Execute(q), engine.Execute(q)) << where;
    }
  };

  constexpr size_t kBatch = 40;
  constexpr int kCompactions = 4;  // >= 3 full cycles.
  int compactions_done = 0;
  const size_t per_cycle = stream.size() / kCompactions + 1;
  size_t next_compact_at = per_cycle;

  while (applied < stream.size()) {
    const size_t n = std::min(kBatch, stream.size() - applied);
    const std::span<const Mutation> batch(stream.data() + applied, n);
    ASSERT_TRUE(store.ApplyBatch(batch).ok());
    for (const Mutation& m : batch) {
      ingest::ApplyMutationToKg(mirror, m);
    }
    applied += n;

    if (applied >= next_compact_at || applied == stream.size()) {
      check_against_rebuild("pre-compaction @" + std::to_string(applied));
      const auto stats = store.Compact();
      ASSERT_TRUE(stats.ran);
      // The installed base must be the batch-build snapshot of the same
      // knowledge (snapshot fingerprints are canonical-form).
      EXPECT_EQ(stats.base_fingerprint,
                serve::KgSnapshot::Compile(mirror).Fingerprint());
      ++compactions_done;
      next_compact_at += per_cycle;
      check_against_rebuild("post-compaction @" + std::to_string(applied));
      EXPECT_EQ(store.delta_size(), 0u)
          << "a foreground fold with no concurrent writer folds all";
    }
  }

  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GE(compactions_done, 3) << "the regression needs >= 3 cycles";
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.applied_mutations(), stream.size());
  check_against_rebuild("final");
}

}  // namespace
}  // namespace kg::store
