#include "textrich/pipeline.h"

#include <gtest/gtest.h>

namespace kg::textrich {
namespace {

synth::ProductCatalog TestCatalog(uint64_t seed = 1) {
  synth::CatalogOptions opt;
  opt.num_types = 16;
  opt.num_products = 700;
  kg::Rng rng(seed);
  return synth::ProductCatalog::Generate(opt, rng);
}

TEST(PipelineTest, ManualModeReachesGate) {
  const auto catalog = TestCatalog();
  PipelineOptions opt;
  opt.mode = PipelineMode::kManual;
  kg::Rng rng(2);
  const auto result = RunExtractionPipeline(
      catalog, catalog.attributes()[0], opt, rng);
  ASSERT_GE(result.stages.size(), 4u);
  // Stage progression: postprocessing does not hurt, final F1 is
  // production grade (>90%, §3.2).
  EXPECT_GT(result.final_f1, 0.9);
  EXPECT_TRUE(result.passed_gate);
}

TEST(PipelineTest, StagesImproveOverBaseModel) {
  const auto catalog = TestCatalog(3);
  PipelineOptions opt;
  opt.mode = PipelineMode::kAutomated;
  kg::Rng rng(4);
  const auto result = RunExtractionPipeline(
      catalog, catalog.attributes()[0], opt, rng);
  const double base_f1 = result.stages.front().f1;
  EXPECT_GE(result.final_f1 + 0.02, base_f1);
}

TEST(PipelineTest, AutomationCutsCostByAnOrderOfMagnitude) {
  const auto catalog = TestCatalog(5);
  PipelineOptions manual_opt, auto_opt;
  manual_opt.mode = PipelineMode::kManual;
  auto_opt.mode = PipelineMode::kAutomated;
  kg::Rng r1(6), r2(6);
  const auto manual = RunExtractionPipeline(
      catalog, catalog.attributes()[0], manual_opt, r1);
  const auto automated = RunExtractionPipeline(
      catalog, catalog.attributes()[0], auto_opt, r2);
  // Months -> weeks (§3.2): at least 5x cheaper.
  EXPECT_GT(manual.total_cost_person_days,
            5.0 * automated.total_cost_person_days);
  // And the automated pipeline still reaches a usable quality bar.
  EXPECT_GT(automated.final_f1, 0.75);
}

TEST(PipelineTest, CostsAccumulateMonotonically) {
  const auto catalog = TestCatalog(7);
  PipelineOptions opt;
  kg::Rng rng(8);
  const auto result = RunExtractionPipeline(
      catalog, catalog.attributes()[1], opt, rng);
  double prev = 0.0;
  for (const auto& stage : result.stages) {
    EXPECT_GE(stage.cost_person_days, prev);
    prev = stage.cost_person_days;
  }
}

}  // namespace
}  // namespace kg::textrich
