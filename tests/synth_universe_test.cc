#include "synth/entity_universe.h"

#include <gtest/gtest.h>

namespace kg::synth {
namespace {

UniverseOptions SmallOptions() {
  UniverseOptions opt;
  opt.num_people = 200;
  opt.num_movies = 100;
  opt.num_songs = 50;
  return opt;
}

TEST(EntityUniverseTest, GeneratesRequestedCounts) {
  Rng rng(1);
  const auto u = EntityUniverse::Generate(SmallOptions(), rng);
  EXPECT_EQ(u.people().size(), 200u);
  EXPECT_EQ(u.movies().size(), 100u);
  EXPECT_EQ(u.songs().size(), 50u);
}

TEST(EntityUniverseTest, DeterministicGivenSeed) {
  Rng r1(7), r2(7);
  const auto a = EntityUniverse::Generate(SmallOptions(), r1);
  const auto b = EntityUniverse::Generate(SmallOptions(), r2);
  for (size_t i = 0; i < a.movies().size(); ++i) {
    EXPECT_EQ(a.movies()[i].title, b.movies()[i].title);
    EXPECT_EQ(a.movies()[i].director, b.movies()[i].director);
  }
}

TEST(EntityUniverseTest, PopularityIsZipfDecreasing) {
  Rng rng(2);
  const auto u = EntityUniverse::Generate(SmallOptions(), rng);
  for (size_t i = 1; i < u.people().size(); ++i) {
    EXPECT_LE(u.people()[i].popularity, u.people()[i - 1].popularity);
  }
  EXPECT_DOUBLE_EQ(u.people()[0].popularity, 1.0);
  EXPECT_LT(u.people().back().popularity, 0.05);
}

TEST(EntityUniverseTest, ReferencesAreValid) {
  Rng rng(3);
  const auto u = EntityUniverse::Generate(SmallOptions(), rng);
  for (const auto& m : u.movies()) {
    EXPECT_LT(m.director, u.people().size());
    for (uint32_t a : m.actors) EXPECT_LT(a, u.people().size());
    EXPECT_GE(m.actors.size(), 1u);
  }
  for (const auto& s : u.songs()) {
    EXPECT_LT(s.artist, u.people().size());
  }
}

TEST(EntityUniverseTest, ToKnowledgeGraphCoversAllEntities) {
  Rng rng(4);
  const auto u = EntityUniverse::Generate(SmallOptions(), rng);
  graph::Ontology ontology;
  const auto kg = u.ToKnowledgeGraph(&ontology);
  // name/birth_year/nationality per person; title/year/genre/director per
  // movie; title/artist/year/genre per song; plus acted_in edges.
  EXPECT_GE(kg.num_triples(),
            3 * u.people().size() + 4 * u.movies().size() +
                4 * u.songs().size());
  const auto directed = kg.FindPredicate("directed_by");
  ASSERT_TRUE(directed.ok());
  EXPECT_EQ(kg.TriplesWithPredicate(*directed).size(),
            u.movies().size());
  // Ontology knows the classes.
  EXPECT_TRUE(ontology.taxonomy().Find("Person").ok());
  EXPECT_TRUE(ontology.taxonomy().Find("Movie").ok());
}

TEST(EntityUniverseTest, OntologyValidatesGeneratedTriples) {
  Rng rng(5);
  const auto u = EntityUniverse::Generate(SmallOptions(), rng);
  graph::Ontology ontology;
  const auto kg = u.ToKnowledgeGraph(&ontology);
  const auto directed = kg.FindPredicate("directed_by");
  ASSERT_TRUE(directed.ok());
  for (graph::TripleId t : kg.TriplesWithPredicate(*directed)) {
    EXPECT_TRUE(ontology.ValidateTriple(kg, t).ok());
  }
}

TEST(EntityUniverseTest, RecentFactsExist) {
  UniverseOptions opt = SmallOptions();
  opt.num_movies = 500;
  Rng rng(6);
  const auto u = EntityUniverse::Generate(opt, rng);
  size_t recent = 0;
  for (const auto& m : u.movies()) {
    recent += m.release_year >= opt.recent_year_cutoff;
  }
  EXPECT_GT(recent, 0u);
  EXPECT_LT(recent, u.movies().size());
}

}  // namespace
}  // namespace kg::synth
