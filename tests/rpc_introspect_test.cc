// kIntrospect over the wire: scraping a live server's metrics,
// slow-query ring, and trace dump must return exactly the bytes the
// in-process expositions render; hostile request bodies get clean
// kInvalidArgument responses (connection survives); missing surfaces
// and pre-handshake scrapes refuse with kFailedPrecondition.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/knowledge_graph.h"
#include "obs/introspect.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace kg::rpc {
namespace {

using graph::NodeKind;
using graph::Provenance;

const Provenance kProv{"rpc_introspect_test", 1.0, 0};

graph::KnowledgeGraph SampleKg() {
  graph::KnowledgeGraph kg;
  kg.AddTriple("m1", "type", "Movie", NodeKind::kEntity, NodeKind::kClass,
               kProv);
  kg.AddTriple("m1", "title", "The Harbor", NodeKind::kEntity,
               NodeKind::kText, kProv);
  kg.AddTriple("m1", "directed_by", "ada", NodeKind::kEntity,
               NodeKind::kEntity, kProv);
  return kg;
}

/// The worker offers to the slow ring *after* writing the response, so
/// a scrape racing the final response could see a partially recorded
/// request. For a serial workload on one worker thread the ring offer
/// is the last side effect per request — once the ring holds `n`
/// entries, every observability surface for those requests is settled.
void AwaitRingSize(const obs::SlowQueryRing& ring, size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ring.size() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slow ring never reached " << n << " entries";
    std::this_thread::yield();
  }
}

struct Rig {
  serve::KgSnapshot snap;
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<RpcServer> server;
  InMemoryTransportServer* loopback = nullptr;
  std::unique_ptr<RpcClient> client;
};

Rig MakeRig(obs::MetricsRegistry* registry, obs::Tracer* tracer,
            obs::SlowQueryRing* ring) {
  Rig rig;
  rig.snap = serve::KgSnapshot::Compile(SampleKg());
  rig.engine = std::make_unique<serve::QueryEngine>(rig.snap);
  auto listener = std::make_unique<InMemoryTransportServer>();
  rig.loopback = listener.get();
  RpcServerOptions options;
  options.worker_threads = 1;
  options.registry = registry;
  options.tracer = tracer;
  options.slow_ring = ring;
  rig.server = std::make_unique<RpcServer>(EngineHandler(rig.engine.get()),
                                           std::move(listener), options);
  KG_CHECK_OK(rig.server->Start());
  auto transport = rig.loopback->Connect();
  KG_CHECK_OK(transport.status());
  rig.client = std::make_unique<RpcClient>(std::move(*transport));
  KG_CHECK_OK(rig.client->Handshake().status());
  return rig;
}

// ---- Body codec ---------------------------------------------------------

TEST(RpcIntrospectTest, RequestBodyRoundTripsAllSurfaces) {
  for (const IntrospectWhat what :
       {IntrospectWhat::kMetricsJson, IntrospectWhat::kMetricsPrometheus,
        IntrospectWhat::kSlowQueries, IntrospectWhat::kTrace}) {
    auto decoded =
        DecodeIntrospectRequest(EncodeIntrospectRequest(IntrospectRequest{what}));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->what, what);
  }
}

TEST(RpcIntrospectTest, ResponseBodyRoundTripsHostileStrings) {
  IntrospectResponse resp;
  resp.code = StatusCode::kFailedPrecondition;
  resp.message = std::string("nul\0tab\there", 11);
  resp.payload = "{\"k\":\"v\\n\"}";
  auto decoded = DecodeIntrospectResponse(EncodeIntrospectResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->code, resp.code);
  EXPECT_EQ(decoded->message, resp.message);
  EXPECT_EQ(decoded->payload, resp.payload);
}

TEST(RpcIntrospectTest, RequestDecoderRejectsHostileBytes) {
  // Empty body, out-of-range selectors, trailing bytes.
  EXPECT_FALSE(DecodeIntrospectRequest("").ok());
  for (int raw = static_cast<int>(kMaxIntrospectWhat) + 1; raw <= 255; ++raw) {
    const char byte = static_cast<char>(raw);
    const auto decoded = DecodeIntrospectRequest(std::string_view(&byte, 1));
    ASSERT_FALSE(decoded.ok()) << "selector " << raw;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_FALSE(DecodeIntrospectRequest(std::string(2, '\0')).ok());
}

// ---- Over the wire ------------------------------------------------------

TEST(RpcIntrospectTest, LoopbackScrapeMatchesInProcessBytes) {
  obs::MetricsRegistry registry;
  obs::FixedTraceClock clock;
  obs::Tracer tracer(2026, &clock);
  obs::SlowQueryRing ring(8, 0.0);
  Rig rig = MakeRig(&registry, &tracer, &ring);

  const std::vector<serve::Query> workload = {
      serve::Query::PointLookup("m1", "title"),
      serve::Query::Neighborhood("ada"),
      serve::Query::TopKRelated("m1", 2),
  };
  for (const serve::Query& q : workload) {
    ASSERT_TRUE(rig.client->Execute(q).ok());
  }
#ifndef KG_OBS_NOOP
  AwaitRingSize(ring, workload.size());
#endif

  const auto json = rig.client->Introspect(IntrospectWhat::kMetricsJson);
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(*json, registry.ToJson());

  const auto prom = rig.client->Introspect(IntrospectWhat::kMetricsPrometheus);
  ASSERT_TRUE(prom.ok()) << prom.status();
  EXPECT_EQ(*prom, registry.ToPrometheus());

  const auto slow = rig.client->Introspect(IntrospectWhat::kSlowQueries);
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(*slow, ring.ToJson());

  const auto trace = rig.client->Introspect(IntrospectWhat::kTrace);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(*trace, tracer.ToJson());

  // Scrapes are read-only: a second scrape of a quiesced server renders
  // the same bytes.
  const auto slow2 = rig.client->Introspect(IntrospectWhat::kSlowQueries);
  ASSERT_TRUE(slow2.ok());
  EXPECT_EQ(*slow2, *slow);
}

TEST(RpcIntrospectTest, SlowRingScrapeCarriesWireTraceIds) {
  obs::SlowQueryRing ring(8, 0.0);
  Rig rig = MakeRig(nullptr, nullptr, &ring);

  TraceContext ctx;
  ctx.trace_id = 0xabcdef0123456789ULL;
  ctx.parent_span_id = 0x42ULL;
  ctx.sampled = true;
  ASSERT_TRUE(
      rig.client->Execute(serve::Query::PointLookup("m1", "title"), &ctx)
          .ok());
#ifdef KG_OBS_NOOP
  // Retention compiles to nothing; the scrape still answers cleanly.
  const auto slow = rig.client->Introspect(IntrospectWhat::kSlowQueries);
  ASSERT_TRUE(slow.ok()) << slow.status();
  const auto doc = obs::ParseJson(*slow);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("count")->number, 0.0);
#else
  AwaitRingSize(ring, 1);

  const auto slow = rig.client->Introspect(IntrospectWhat::kSlowQueries);
  ASSERT_TRUE(slow.ok()) << slow.status();
  const auto doc = obs::ParseJson(*slow);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("schema_version")->number, 1.0);
  EXPECT_EQ(doc->Find("count")->number, 1.0);
  const obs::JsonValue& entry = doc->Find("slow_queries")->array[0];
  // The retained request is linked to the wire trace by its trace id.
  EXPECT_EQ(entry.Find("trace_id")->string_value,
            obs::HexSpanId(ctx.trace_id));
  EXPECT_EQ(entry.Find("class")->string_value, "point_lookup");
#endif
}

TEST(RpcIntrospectTest, MissingSurfacesRefuseWithFailedPrecondition) {
  Rig rig = MakeRig(nullptr, nullptr, nullptr);
  for (const IntrospectWhat what :
       {IntrospectWhat::kMetricsJson, IntrospectWhat::kMetricsPrometheus,
        IntrospectWhat::kSlowQueries, IntrospectWhat::kTrace}) {
    const auto result = rig.client->Introspect(what);
    ASSERT_FALSE(result.ok()) << IntrospectWhatName(what);
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
        << IntrospectWhatName(what);
  }
  // The connection survives refused scrapes.
  EXPECT_TRUE(rig.client->Execute(serve::Query::PointLookup("m1", "title"))
                  .ok());
}

TEST(RpcIntrospectTest, MalformedBodyGetsCleanErrorAndConnectionSurvives) {
  obs::MetricsRegistry registry;
  Rig rig = MakeRig(&registry, nullptr, nullptr);

  // Hand-built introspect frame with a hostile body: valid frame, junk
  // selector payload.
  auto transport = rig.loopback->Connect();
  ASSERT_TRUE(transport.ok());
  ITransport* t = transport->get();
  FrameDecoder decoder;
  std::string hs;
  AppendFrame(&hs, MessageType::kHandshakeRequest, 1,
              EncodeHandshakeRequest(
                  HandshakeRequest{serve::kSnapshotSchemaVersion}));
  ASSERT_TRUE(t->Write(hs).ok());
  auto ReadFrame = [&]() -> Result<Frame> {
    std::string chunk;
    for (;;) {
      Frame frame;
      const FrameDecoder::Step step = decoder.Next(&frame);
      if (step == FrameDecoder::Step::kFrame) return frame;
      if (step == FrameDecoder::Step::kError) return decoder.error();
      chunk.clear();
      auto read = t->Read(&chunk, 4096, 5000);
      if (!read.ok()) return read.status();
      if (*read == 0) return Status::DeadlineExceeded("no frame in 5s");
      decoder.Feed(chunk);
    }
  };
  ASSERT_TRUE(ReadFrame().ok());  // Handshake response.

  std::string bad;
  AppendFrame(&bad, MessageType::kIntrospectRequest, 2, "\xff junk body");
  ASSERT_TRUE(t->Write(bad).ok());
  const auto bad_frame = ReadFrame();
  ASSERT_TRUE(bad_frame.ok()) << bad_frame.status();
  ASSERT_EQ(bad_frame->type, MessageType::kIntrospectResponse);
  const auto bad_resp = DecodeIntrospectResponse(bad_frame->body);
  ASSERT_TRUE(bad_resp.ok()) << bad_resp.status();
  EXPECT_EQ(bad_resp->code, StatusCode::kInvalidArgument);

  // Same connection still answers a well-formed scrape.
  std::string good;
  AppendFrame(&good, MessageType::kIntrospectRequest, 3,
              EncodeIntrospectRequest(
                  IntrospectRequest{IntrospectWhat::kMetricsJson}));
  ASSERT_TRUE(t->Write(good).ok());
  const auto good_frame = ReadFrame();
  ASSERT_TRUE(good_frame.ok()) << good_frame.status();
  const auto good_resp = DecodeIntrospectResponse(good_frame->body);
  ASSERT_TRUE(good_resp.ok());
  EXPECT_EQ(good_resp->code, StatusCode::kOk);
  EXPECT_TRUE(obs::ParseJson(good_resp->payload).ok());
}

TEST(RpcIntrospectTest, ScrapeBeforeHandshakeIsRefusedAndDropped) {
  obs::MetricsRegistry registry;
  Rig rig = MakeRig(&registry, nullptr, nullptr);

  auto transport = rig.loopback->Connect();
  ASSERT_TRUE(transport.ok());
  ITransport* t = transport->get();
  std::string frame;
  AppendFrame(&frame, MessageType::kIntrospectRequest, 1,
              EncodeIntrospectRequest(
                  IntrospectRequest{IntrospectWhat::kMetricsJson}));
  ASSERT_TRUE(t->Write(frame).ok());

  FrameDecoder decoder;
  std::string chunk;
  Frame out;
  bool got_refusal = false;
  for (;;) {
    const FrameDecoder::Step step = decoder.Next(&out);
    if (step == FrameDecoder::Step::kFrame) {
      const auto resp = DecodeIntrospectResponse(out.body);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->code, StatusCode::kFailedPrecondition);
      got_refusal = true;
      continue;
    }
    ASSERT_NE(step, FrameDecoder::Step::kError);
    chunk.clear();
    auto read = t->Read(&chunk, 4096, 5000);
    if (!read.ok() || *read == 0) break;  // Server closed the stream.
    decoder.Feed(chunk);
  }
  EXPECT_TRUE(got_refusal);
}

}  // namespace
}  // namespace kg::rpc
