#include "ml/kmeans.h"

#include <gtest/gtest.h>

namespace kg::ml {
namespace {

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(1);
  std::vector<FeatureVector> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      points.push_back({c * 10.0 + rng.Gaussian(0, 0.3),
                        c * 10.0 + rng.Gaussian(0, 0.3)});
    }
  }
  const auto result = KMeans(points, 3, 50, rng);
  // Points within a block share an assignment.
  for (int c = 0; c < 3; ++c) {
    const int rep = result.assignments[c * 30];
    for (int i = 1; i < 30; ++i) {
      EXPECT_EQ(result.assignments[c * 30 + i], rep);
    }
  }
  // The three blocks use three distinct clusters.
  EXPECT_NE(result.assignments[0], result.assignments[30]);
  EXPECT_NE(result.assignments[30], result.assignments[60]);
  EXPECT_LT(result.inertia, 100.0);
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(2);
  std::vector<FeatureVector> points = {{0.0}, {1.0}};
  const auto result = KMeans(points, 10, 10, rng);
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansTest, IdenticalPointsSingleCluster) {
  Rng rng(3);
  std::vector<FeatureVector> points(5, FeatureVector{1.0, 1.0});
  const auto result = KMeans(points, 2, 10, rng);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(4);
  std::vector<FeatureVector> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.UniformDouble(0, 10)});
  }
  Rng r1(5), r2(5);
  const double inertia2 = KMeans(points, 2, 30, r1).inertia;
  const double inertia8 = KMeans(points, 8, 30, r2).inertia;
  EXPECT_LT(inertia8, inertia2);
}

}  // namespace
}  // namespace kg::ml
