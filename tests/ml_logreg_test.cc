#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace kg::ml {
namespace {

Dataset LinearlySeparable(size_t n, Rng& rng) {
  Dataset d;
  d.feature_names = {"x1", "x2"};
  for (size_t i = 0; i < n; ++i) {
    const double x1 = rng.UniformDouble(-1, 1);
    const double x2 = rng.UniformDouble(-1, 1);
    d.examples.push_back(Example{{x1, x2}, x1 + x2 > 0 ? 1 : 0});
  }
  return d;
}

TEST(LogisticRegressionTest, LearnsLinearBoundary) {
  Rng rng(1);
  const Dataset train = LinearlySeparable(500, rng);
  const Dataset test = LinearlySeparable(300, rng);
  LogisticRegression lr;
  lr.Fit(train, {}, rng);
  Confusion c;
  for (const auto& ex : test.examples) {
    c.Add(ex.label, lr.Predict(ex.features));
  }
  EXPECT_GT(c.Accuracy(), 0.95);
}

TEST(LogisticRegressionTest, ProbaIsCalibratedDirectionally) {
  Rng rng(2);
  const Dataset train = LinearlySeparable(500, rng);
  LogisticRegression lr;
  lr.Fit(train, {}, rng);
  EXPECT_GT(lr.PredictProba({0.9, 0.9}), 0.9);
  EXPECT_LT(lr.PredictProba({-0.9, -0.9}), 0.1);
  EXPECT_NEAR(lr.PredictProba({0.0, 0.0}), 0.5, 0.2);
}

TEST(LogisticRegressionTest, WeightsReflectSignal) {
  Rng rng(3);
  Dataset train;
  train.feature_names = {"signal", "noise"};
  for (int i = 0; i < 400; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    train.examples.push_back(Example{
        {label == 1 ? 1.0 : -1.0, rng.UniformDouble(-1, 1)}, label});
  }
  LogisticRegression lr;
  lr.Fit(train, {}, rng);
  EXPECT_GT(lr.weights()[0], std::abs(lr.weights()[1]));
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  Rng rng(4);
  const Dataset train = LinearlySeparable(300, rng);
  LogisticRegression weak, strong;
  LogisticRegression::Options weak_opt, strong_opt;
  weak_opt.l2 = 1e-6;
  strong_opt.l2 = 1.0;
  Rng r1(5), r2(5);
  weak.Fit(train, weak_opt, r1);
  strong.Fit(train, strong_opt, r2);
  const double weak_norm =
      std::abs(weak.weights()[0]) + std::abs(weak.weights()[1]);
  const double strong_norm =
      std::abs(strong.weights()[0]) + std::abs(strong.weights()[1]);
  EXPECT_LT(strong_norm, weak_norm);
}

}  // namespace
}  // namespace kg::ml
