#include "textrich/description_extractor.h"

#include <gtest/gtest.h>

#include "synth/catalog_generator.h"

namespace kg::textrich {
namespace {

TEST(DescriptionExtractorTest, ParsesAttrColonValue) {
  const auto found = ExtractFromDescription(
      "This sofa comes from Velora. flavor: dark roast. color: teal.",
      {"flavor", "color"});
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].attribute, "flavor");
  EXPECT_EQ(found[0].value, "dark roast");
  EXPECT_EQ(found[1].attribute, "color");
  EXPECT_EQ(found[1].value, "teal");
}

TEST(DescriptionExtractorTest, IgnoresUnknownAttributesAndNoise) {
  const auto found = ExtractFromDescription(
      "warranty: 2 years. note: handle with care. flavor: mint.",
      {"flavor"});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attribute, "flavor");
  EXPECT_EQ(found[0].value, "mint");
}

TEST(DescriptionExtractorTest, EmptyValueSkipped) {
  EXPECT_TRUE(ExtractFromDescription("flavor: .", {"flavor"}).empty());
  EXPECT_TRUE(ExtractFromDescription("", {"flavor"}).empty());
}

TEST(DescriptionExtractorTest, HighAccuracyOnGeneratedCatalog) {
  kg::Rng rng(1);
  synth::CatalogOptions opt;
  opt.num_types = 12;
  opt.num_products = 400;
  opt.desc_mention_rate = 0.7;
  const auto catalog = synth::ProductCatalog::Generate(opt, rng);
  size_t extracted = 0, correct = 0;
  for (const auto& product : catalog.products()) {
    const auto found = ExtractFromDescription(
        product.description, catalog.AttributesForType(product.type));
    for (const auto& e : found) {
      ++extracted;
      auto it = product.true_values.find(e.attribute);
      correct += it != product.true_values.end() && it->second == e.value;
    }
  }
  ASSERT_GT(extracted, 400u);
  // Descriptions render true values verbatim: rules should be near-exact.
  EXPECT_GT(static_cast<double>(correct) / extracted, 0.99);
}

TEST(MergeStreamsTest, EarlierStreamsWin) {
  const auto merged = MergeExtractionStreams({
      {{"flavor", "ner-value"}},
      {{"flavor", "desc-value"}, {"color", "desc-color"}},
      {{"flavor", "catalog"}, {"size", "catalog-size"}},
  });
  EXPECT_EQ(merged.at("flavor"), "ner-value");
  EXPECT_EQ(merged.at("color"), "desc-color");
  EXPECT_EQ(merged.at("size"), "catalog-size");
}

}  // namespace
}  // namespace kg::textrich
