#include "core/textrich_kg_pipeline.h"

#include <gtest/gtest.h>

namespace kg::core {
namespace {

TEST(TextRichKgBuildTest, EndToEndBuildsBipartiteGraph) {
  Rng rng(1);
  synth::CatalogOptions copt;
  copt.num_types = 16;
  copt.num_products = 600;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 15000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  TextRichBuildOptions opt;
  const auto build = BuildTextRichKg(catalog, behavior, opt, rng);
  EXPECT_EQ(build.report.products, 600u);
  EXPECT_GT(build.report.extracted_assertions, 1000u);
  // The assembled KG is mostly bipartite: most triples end in text.
  EXPECT_GT(build.report.text_object_fraction, 0.6);
  EXPECT_GT(build.report.kg_triples, 1000u);
  // Cleaning does not reduce accuracy.
  EXPECT_GE(build.report.accuracy_after_cleaning + 0.02,
            build.report.accuracy_before_cleaning);
  EXPECT_GT(build.report.accuracy_after_cleaning, 0.8);
  EXPECT_GT(build.report.hypernyms_mined, 0u);
}

TEST(TextRichKgBuildTest, CleaningFlagControlsStage) {
  Rng rng(2);
  synth::CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 200;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 2000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);
  TextRichBuildOptions no_clean;
  no_clean.clean = false;
  no_clean.mine_taxonomy = false;
  const auto build = BuildTextRichKg(catalog, behavior, no_clean, rng);
  EXPECT_EQ(build.report.extracted_assertions,
            build.report.after_cleaning);
  EXPECT_EQ(build.report.synonyms_added, 0u);
}

}  // namespace
}  // namespace kg::core
