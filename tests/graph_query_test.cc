#include "graph/query.h"

#include <gtest/gtest.h>

namespace kg::graph {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const char* s, const char* p, const char* o,
                   NodeKind ok = NodeKind::kEntity) {
      kg_.AddTriple(s, p, o, NodeKind::kEntity, ok, {"t", 1.0, 0});
    };
    add("m1", "directed_by", "ada");
    add("m2", "directed_by", "ada");
    add("m3", "directed_by", "bob");
    add("m1", "genre", "drama", NodeKind::kText);
    add("m2", "genre", "comedy", NodeKind::kText);
    add("m3", "genre", "drama", NodeKind::kText);
    add("ada", "name", "Ada Novak", NodeKind::kText);
  }

  KnowledgeGraph kg_;
};

TEST_F(QueryTest, SingleBoundPattern) {
  QueryEngine engine(kg_);
  auto result = engine.Query("m1 directed_by ?d");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(kg_.NodeName(result->front().at("d")), "ada");
}

TEST_F(QueryTest, JoinAcrossPatterns) {
  QueryEngine engine(kg_);
  // Movies directed by ada that are dramas.
  auto result = engine.Query("?m directed_by ada . ?m genre drama");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(kg_.NodeName(result->front().at("m")), "m1");
}

TEST_F(QueryTest, MultiVariableJoin) {
  QueryEngine engine(kg_);
  // Directors with a drama: ada (m1) and bob (m3).
  auto result = engine.Query("?m genre drama . ?m directed_by ?d");
  ASSERT_TRUE(result.ok());
  std::set<std::string> directors;
  for (const auto& binding : *result) {
    directors.insert(kg_.NodeName(binding.at("d")));
  }
  EXPECT_EQ(directors, (std::set<std::string>{"ada", "bob"}));
}

TEST_F(QueryTest, QuotedConstants) {
  QueryEngine engine(kg_);
  auto result = engine.Query("?p name 'Ada Novak'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(kg_.NodeName(result->front().at("p")), "ada");
}

TEST_F(QueryTest, UnknownConstantYieldsEmpty) {
  QueryEngine engine(kg_);
  auto result = engine.Query("?m directed_by nobody");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  auto result2 = engine.Query("?m unknown_predicate ?x");
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2->empty());
}

TEST_F(QueryTest, SharedVariableActsAsFilter) {
  QueryEngine engine(kg_);
  // ?m must satisfy both genre constraints simultaneously: impossible.
  auto result = engine.Query("?m genre drama . ?m genre comedy");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(QueryTest, ParseErrors) {
  EXPECT_FALSE(QueryEngine::Parse("").ok());
  EXPECT_FALSE(QueryEngine::Parse("a b").ok());
  EXPECT_FALSE(QueryEngine::Parse("a b c d").ok());
  EXPECT_FALSE(QueryEngine::Parse("?s ?p ?o").ok());  // var predicate.
  EXPECT_FALSE(QueryEngine::Parse("a b 'unterminated").ok());
  EXPECT_TRUE(QueryEngine::Parse("?s p ?o . ?o q r").ok());
}

TEST_F(QueryTest, CartesianProductWhenDisconnected) {
  QueryEngine engine(kg_);
  auto result = engine.Query("?m genre drama . ?x directed_by bob");
  ASSERT_TRUE(result.ok());
  // 2 dramas x 1 bob movie.
  EXPECT_EQ(result->size(), 2u);
}

}  // namespace
}  // namespace kg::graph
