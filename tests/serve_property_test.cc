// Property harness for the kg::serve query path: for seeded random
// (KG, workload) pairs, every QueryEngine answer must equal a brute-force
// scan over the raw KnowledgeGraph, cache-on must equal cache-off, and
// batch-parallel must equal serial at 1/2/8 threads. The KGs come from
// kg::synth universes plus adversarial extra triples (hostile names,
// duplicates, tombstones) so the snapshot compiler sees more than clean
// generator output.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "graph/serialization.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "synth/entity_universe.h"

namespace kg::serve {
namespace {

using graph::KnowledgeGraph;
using graph::NodeKind;
using graph::Triple;
using graph::TripleId;

constexpr int kNumWorlds = 100;
constexpr int kQueriesPerWorld = 60;

// ---- Brute-force reference --------------------------------------------
// Answers queries by scanning AllTriples() on the raw KG — no snapshot,
// no index, no cache. Deliberately written against the spec in
// query_engine.h, independently of the engine's code paths.

std::string Render(const KnowledgeGraph& kg, graph::NodeId n) {
  return RenderNodeName(kg.NodeName(n), kg.GetNodeKind(n));
}

bool NodeMatches(const KnowledgeGraph& kg, graph::NodeId n,
                 const std::string& name, NodeKind kind) {
  return kg.GetNodeKind(n) == kind && kg.NodeName(n) == name;
}

QueryResult BrutePointLookup(const KnowledgeGraph& kg, const Query& q) {
  QueryResult rows;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    if (!NodeMatches(kg, t.subject, q.node, q.node_kind)) continue;
    if (kg.PredicateName(t.predicate) != q.predicate) continue;
    rows.push_back(Render(kg, t.object));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

QueryResult BruteNeighborhood(const KnowledgeGraph& kg, const Query& q) {
  QueryResult rows;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    if (NodeMatches(kg, t.subject, q.node, q.node_kind)) {
      rows.push_back("out\t" + kg.PredicateName(t.predicate) + '\t' +
                     Render(kg, t.object));
    }
    if (NodeMatches(kg, t.object, q.node, q.node_kind)) {
      rows.push_back("in\t" + kg.PredicateName(t.predicate) + '\t' +
                     Render(kg, t.subject));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

QueryResult BruteAttributeByType(const KnowledgeGraph& kg,
                                 const Query& q) {
  std::vector<graph::NodeId> members;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    if (kg.PredicateName(t.predicate) != q.type_predicate) continue;
    if (!NodeMatches(kg, t.object, q.type_name, NodeKind::kClass)) continue;
    members.push_back(t.subject);
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()),
                members.end());
  QueryResult rows;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    if (kg.PredicateName(t.predicate) != q.predicate) continue;
    if (!std::binary_search(members.begin(), members.end(), t.subject)) {
      continue;
    }
    rows.push_back(Render(kg, t.subject) + '\t' + Render(kg, t.object));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<graph::NodeId> BruteAdjacent(const KnowledgeGraph& kg,
                                         graph::NodeId n) {
  std::vector<graph::NodeId> out;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    if (t.subject == n) out.push_back(t.object);
    if (t.object == n) out.push_back(t.subject);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

QueryResult BruteTopKRelated(const KnowledgeGraph& kg, const Query& q) {
  if (q.k == 0) return {};
  graph::NodeId center = graph::kInvalidNode;
  const auto found = kg.FindNode(q.node, q.node_kind);
  if (!found.ok()) return {};
  center = *found;
  // A node interned in the KG may still be absent from every live triple;
  // the snapshot compiles such nodes out, so their shelf is empty either
  // way (no adjacency means no scores).
  std::map<graph::NodeId, size_t> score;
  for (graph::NodeId n : BruteAdjacent(kg, center)) {
    if (n == center) continue;
    for (graph::NodeId m : BruteAdjacent(kg, n)) {
      if (m == center) continue;
      if (kg.GetNodeKind(m) != NodeKind::kEntity) continue;
      ++score[m];
    }
  }
  std::vector<std::pair<graph::NodeId, size_t>> ranked(score.begin(),
                                                       score.end());
  std::sort(ranked.begin(), ranked.end(),
            [&kg](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return kg.NodeName(a.first) < kg.NodeName(b.first);
            });
  if (ranked.size() > q.k) ranked.resize(q.k);
  QueryResult rows;
  for (const auto& [m, count] : ranked) {
    rows.push_back(Render(kg, m) + '\t' + std::to_string(count));
  }
  return rows;
}

QueryResult BruteForce(const KnowledgeGraph& kg, const Query& q) {
  switch (q.kind) {
    case QueryKind::kPointLookup:
      return BrutePointLookup(kg, q);
    case QueryKind::kNeighborhood:
      return BruteNeighborhood(kg, q);
    case QueryKind::kAttributeByType:
      return BruteAttributeByType(kg, q);
    case QueryKind::kTopKRelated:
      return BruteTopKRelated(kg, q);
  }
  return {};
}

// ---- World generation --------------------------------------------------

const std::vector<std::string>& HostileNames() {
  static const std::vector<std::string> kNames = {
      "",
      "tab\there",
      "line\nbreak",
      "back\\slash",
      "\\t literal",
      "h\xc3\xa9llo w\xc3\xb6rld",
      "quote'\"q",
      "ctrl\x7f" "char",
      "person:0",  // Collides with a generated entity name as kText.
  };
  return kNames;
}

struct World {
  KnowledgeGraph kg;
  std::vector<std::string> entity_names;  // Sample pool for queries.
  std::vector<std::string> predicates;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  synth::UniverseOptions options;
  options.num_people = static_cast<size_t>(rng.UniformInt(15, 50));
  options.num_movies = static_cast<size_t>(rng.UniformInt(10, 35));
  options.num_songs = static_cast<size_t>(rng.UniformInt(5, 20));
  const auto universe = synth::EntityUniverse::Generate(options, rng);

  World world;
  world.kg = universe.ToKnowledgeGraph();

  // Class membership so attribute-by-type has something to chew on.
  const graph::Provenance prov{"serve_test", 1.0, 0};
  for (const auto& p : universe.people()) {
    world.kg.AddTriple(synth::EntityUniverse::PersonNodeName(p.id), "type",
                       "Person", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& m : universe.movies()) {
    world.kg.AddTriple(synth::EntityUniverse::MovieNodeName(m.id), "type",
                       "Movie", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& s : universe.songs()) {
    world.kg.AddTriple(synth::EntityUniverse::SongNodeName(s.id), "type",
                       "Song", NodeKind::kEntity, NodeKind::kClass, prov);
  }

  // Adversarial garnish: hostile names in random kinds, duplicate
  // assertions, and tombstones (including one that orphans its nodes).
  const auto& hostile = HostileNames();
  const auto kinds = std::vector<NodeKind>{
      NodeKind::kEntity, NodeKind::kText, NodeKind::kClass};
  std::vector<TripleId> extra;
  for (int i = 0; i < 12; ++i) {
    const auto& s = hostile[rng.UniformIndex(hostile.size())];
    const auto& o = hostile[rng.UniformIndex(hostile.size())];
    extra.push_back(world.kg.AddTriple(
        s, "hostile_" + std::to_string(rng.UniformInt(0, 2)), o,
        kinds[rng.UniformIndex(kinds.size())],
        kinds[rng.UniformIndex(kinds.size())], prov));
  }
  for (int i = 0; i < 3; ++i) {
    world.kg.RemoveTriple(extra[rng.UniformIndex(extra.size())]);
  }
  const TripleId orphaned = world.kg.AddTriple(
      "only_in_tombstone", "gone", "also_gone", NodeKind::kEntity,
      NodeKind::kEntity, prov);
  world.kg.RemoveTriple(orphaned);

  for (const auto& p : universe.people()) {
    world.entity_names.push_back(
        synth::EntityUniverse::PersonNodeName(p.id));
  }
  for (const auto& m : universe.movies()) {
    world.entity_names.push_back(
        synth::EntityUniverse::MovieNodeName(m.id));
  }
  for (const auto& s : universe.songs()) {
    world.entity_names.push_back(synth::EntityUniverse::SongNodeName(s.id));
  }
  world.entity_names.push_back("only_in_tombstone");
  world.entity_names.insert(world.entity_names.end(), hostile.begin(),
                            hostile.end());

  world.predicates = {"name",        "birth_year", "nationality",
                      "title",       "release_year", "genre",
                      "directed_by", "acted_in",   "performed_by",
                      "type",        "hostile_0",  "hostile_1",
                      "no_such_predicate"};
  return world;
}

std::vector<Query> MakeWorkload(const World& world, Rng& rng) {
  std::vector<Query> queries;
  const auto kinds = std::vector<NodeKind>{
      NodeKind::kEntity, NodeKind::kText, NodeKind::kClass};
  const std::vector<std::string> types = {"Person", "Movie", "Song",
                                          "NoSuchType"};
  for (int i = 0; i < kQueriesPerWorld; ++i) {
    const std::string& node =
        world.entity_names[rng.UniformIndex(world.entity_names.size())];
    const std::string& pred =
        world.predicates[rng.UniformIndex(world.predicates.size())];
    // Mostly entity addressing, sometimes a deliberately wrong kind.
    const NodeKind node_kind = rng.Bernoulli(0.85)
                                   ? NodeKind::kEntity
                                   : kinds[rng.UniformIndex(kinds.size())];
    const double roll = rng.UniformDouble();
    if (roll < 0.4) {
      queries.push_back(Query::PointLookup(node, pred, node_kind));
    } else if (roll < 0.65) {
      queries.push_back(Query::Neighborhood(node, node_kind));
    } else if (roll < 0.85) {
      Query q = Query::AttributeByType(
          types[rng.UniformIndex(types.size())], pred);
      if (rng.Bernoulli(0.1)) q.type_predicate = "no_such_predicate";
      queries.push_back(std::move(q));
    } else {
      queries.push_back(Query::TopKRelated(
          node, static_cast<size_t>(rng.UniformInt(0, 12)), node_kind));
    }
  }
  return queries;
}

// ---- The properties ----------------------------------------------------

TEST(ServePropertyTest, EngineMatchesBruteForceCacheAndParallel) {
  int checked_queries = 0;
  for (int world_idx = 0; world_idx < kNumWorlds; ++world_idx) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(world_idx);
    const World world = MakeWorld(seed);
    Rng rng(seed * 31 + 7);
    const std::vector<Query> workload = MakeWorkload(world, rng);

    const KgSnapshot snap = KgSnapshot::Compile(world.kg);

    const QueryEngine uncached(snap);
    ServeOptions cached_options;
    cached_options.cache_capacity = 32;  // Small: forces evictions.
    cached_options.cache_shards = 4;
    const QueryEngine cached(snap, cached_options);

    // Property 1+2: engine == brute force, cache-on == cache-off —
    // including a warm second pass through the cache.
    std::vector<QueryResult> reference;
    reference.reserve(workload.size());
    for (const Query& q : workload) {
      const QueryResult expected = BruteForce(world.kg, q);
      const QueryResult actual = uncached.Execute(q);
      ASSERT_EQ(actual, expected)
          << "world seed " << seed << ", query " << q.CacheKey();
      ASSERT_EQ(cached.Execute(q), expected)
          << "cold cache diverged, world seed " << seed << ", query "
          << q.CacheKey();
      reference.push_back(expected);
      ++checked_queries;
    }
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_EQ(cached.Execute(workload[i]), reference[i])
          << "warm cache diverged, world seed " << seed << ", query "
          << workload[i].CacheKey();
    }

    // Property 3: batch-parallel == serial at 1/2/8 threads, cache on
    // and off.
    for (size_t threads : {1u, 2u, 8u}) {
      for (size_t cache_capacity : {0u, 32u}) {
        ServeOptions options;
        options.exec = ExecPolicy::WithThreads(threads);
        options.cache_capacity = cache_capacity;
        const QueryEngine engine(snap, options);
        ASSERT_EQ(engine.BatchExecute(workload), reference)
            << "world seed " << seed << ", threads " << threads
            << ", cache " << cache_capacity;
      }
    }
  }
  // The suite only counts if it actually exercised the budgeted volume.
  EXPECT_EQ(checked_queries, kNumWorlds * kQueriesPerWorld);
}

// Snapshot compilation itself is deterministic across KG insertion
// orders: serializing the universe KG and re-reading it (which re-interns
// every node in a different id order) must yield the same fingerprint.
TEST(ServePropertyTest, SnapshotFingerprintSurvivesReinterning) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const World world = MakeWorld(seed);
    const KgSnapshot original = KgSnapshot::Compile(world.kg);
    auto reloaded = graph::DeserializeKg(graph::SerializeKg(world.kg));
    ASSERT_TRUE(reloaded.ok()) << reloaded.status();
    const KgSnapshot recompiled = KgSnapshot::Compile(*reloaded);
    EXPECT_EQ(original.Fingerprint(), recompiled.Fingerprint())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace kg::serve
