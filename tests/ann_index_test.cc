// HNSW index contract tests: deterministic seeded construction
// (byte-identical Serialize for equal inputs), search/brute-force
// agreement on small sets, the serialized-container hardening contract
// (every single-byte flip and every truncation rejected, newer
// container refused with retriable kUnavailable), and atomic
// Save/Load.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "ann/hnsw.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"

namespace kg::ann {
namespace {

std::vector<float> RandomVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * dim);
  for (float& v : out) {
    v = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  return out;
}

HnswOptions SmallOptions(size_t dim) {
  HnswOptions o;
  o.dim = dim;
  o.M = 8;
  o.ef_construction = 64;
  o.ef_search = 48;
  o.seed = 17;
  return o;
}

TEST(AnnIndexTest, EmptyIndex) {
  HnswIndex index = HnswIndex::Build({}, SmallOptions(4));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Search(std::vector<float>(4, 0.0f), 5).empty());
  EXPECT_TRUE(index.BruteForce(std::vector<float>(4, 0.0f), 5).empty());

  const std::string bytes = index.Serialize();
  auto back = HnswIndex::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(back->Serialize(), bytes);
}

TEST(AnnIndexTest, SingleVector) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  HnswIndex index = HnswIndex::Build(v, SmallOptions(4));
  ASSERT_EQ(index.size(), 1u);

  auto hits = index.Search(v, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_FLOAT_EQ(hits[0].dist, 0.0f);

  // vector() is clamped, never UB.
  EXPECT_EQ(index.vector(0).size(), 4u);
  EXPECT_TRUE(index.vector(1).empty());
  EXPECT_TRUE(index.vector(123456).empty());
}

TEST(AnnIndexTest, ExactNearestOnSmallSet) {
  // With ef >= n, layer-0 beam search degenerates to exhaustive search,
  // so HNSW must agree with brute force exactly (ids and distances).
  const size_t kN = 64, kDim = 8;
  HnswOptions options = SmallOptions(kDim);
  options.ef_search = kN;
  HnswIndex index = HnswIndex::Build(RandomVectors(kN, kDim, 3), options);

  Rng rng(99);
  for (int q = 0; q < 20; ++q) {
    std::vector<float> query(kDim);
    for (float& v : query) {
      v = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
    }
    EXPECT_EQ(index.Search(query, 10), index.BruteForce(query, 10));
  }
}

TEST(AnnIndexTest, ResultsOrderedByDistThenId) {
  // Duplicate vectors force distance ties; (dist, id) must break them.
  std::vector<float> vectors;
  for (int i = 0; i < 8; ++i) {
    vectors.push_back(1.0f);
    vectors.push_back(2.0f);
  }
  HnswOptions options = SmallOptions(2);
  options.ef_search = 16;
  HnswIndex index = HnswIndex::Build(vectors, options);
  auto hits = index.Search(std::vector<float>{1.0f, 2.0f}, 8);
  ASSERT_EQ(hits.size(), 8u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].id, static_cast<uint32_t>(i));
    EXPECT_FLOAT_EQ(hits[i].dist, 0.0f);
  }
}

TEST(AnnIndexTest, BuildIsDeterministic) {
  const auto vectors = RandomVectors(300, 16, 7);
  HnswOptions options = SmallOptions(16);
  const std::string a = HnswIndex::Build(vectors, options).Serialize();
  const std::string b = HnswIndex::Build(vectors, options).Serialize();
  EXPECT_EQ(a, b) << "equal inputs must serialize byte-identically";

  // A different seed redraws levels: almost surely a different graph.
  options.seed = 18;
  const std::string c = HnswIndex::Build(vectors, options).Serialize();
  EXPECT_NE(a, c);
}

TEST(AnnIndexTest, SerializeRoundTrip) {
  const auto vectors = RandomVectors(200, 12, 11);
  HnswIndex index = HnswIndex::Build(vectors, SmallOptions(12));
  auto back = HnswIndex::Deserialize(index.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back->size(), index.size());
  EXPECT_EQ(back->dim(), index.dim());
  EXPECT_EQ(back->options().M, index.options().M);
  EXPECT_EQ(back->options().seed, index.options().seed);
  EXPECT_EQ(back->Serialize(), index.Serialize());

  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    std::vector<float> query(12);
    for (float& v : query) {
      v = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
    }
    EXPECT_EQ(back->Search(query, 5), index.Search(query, 5));
  }
}

TEST(AnnIndexTest, EveryTruncationRejected) {
  HnswIndex index = HnswIndex::Build(RandomVectors(40, 6, 2),
                                     SmallOptions(6));
  const std::string bytes = index.Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto r = HnswIndex::Deserialize(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes accepted";
  }
  // Trailing garbage is a structural violation too.
  auto r = HnswIndex::Deserialize(bytes + "x");
  EXPECT_FALSE(r.ok());
}

TEST(AnnIndexTest, EverySingleByteFlipRejected) {
  // The header checksum covers every header byte and the payload
  // checksum every payload byte, so no single-byte flip may load.
  HnswIndex index = HnswIndex::Build(RandomVectors(30, 4, 4),
                                     SmallOptions(4));
  const std::string bytes = index.Serialize();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    auto r = HnswIndex::Deserialize(corrupt);
    EXPECT_FALSE(r.ok()) << "flip at byte " << i << " accepted";
  }
}

TEST(AnnIndexTest, NewerContainerVersionIsUnavailable) {
  HnswIndex index = HnswIndex::Build(RandomVectors(10, 4, 6),
                                     SmallOptions(4));
  std::string bytes = index.Serialize();
  // Patch the version field (offset 8, after the 8-byte magic) and
  // re-stamp the header checksum (last 4 header bytes, covering
  // everything before it) so only the version is "wrong".
  const uint32_t newer = kAnnContainerVersion + 1;
  std::memcpy(bytes.data() + 8, &newer, sizeof newer);
  constexpr size_t kHeaderSize = 64;
  const uint32_t checksum =
      Checksum32(std::string_view(bytes.data(), kHeaderSize - 4));
  std::memcpy(bytes.data() + kHeaderSize - 4, &checksum, sizeof checksum);

  auto r = HnswIndex::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
      << r.status().ToString();
}

TEST(AnnIndexTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kg_ann_index_test.bin")
          .string();
  HnswIndex index = HnswIndex::Build(RandomVectors(50, 8, 9),
                                     SmallOptions(8));
  ASSERT_TRUE(index.Save(path).ok());
  auto back = HnswIndex::Load(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Serialize(), index.Serialize());
  std::remove(path.c_str());

  EXPECT_FALSE(HnswIndex::Load(path).ok()) << "missing file accepted";
}

}  // namespace
}  // namespace kg::ann
