#include "graph/knowledge_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/rng.h"

namespace kg::graph {
namespace {

Provenance P(const std::string& source, double conf = 1.0) {
  return Provenance{source, conf, 0};
}

TEST(KnowledgeGraphTest, InternsNodesByNameAndKind) {
  KnowledgeGraph kg;
  const NodeId a = kg.AddNode("Avatar", NodeKind::kEntity);
  const NodeId b = kg.AddNode("Avatar", NodeKind::kEntity);
  const NodeId c = kg.AddNode("Avatar", NodeKind::kText);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(kg.num_nodes(), 2u);
  EXPECT_EQ(kg.NodeName(a), "Avatar");
  EXPECT_EQ(kg.GetNodeKind(c), NodeKind::kText);
}

TEST(KnowledgeGraphTest, FindNodeDistinguishesKind) {
  KnowledgeGraph kg;
  kg.AddNode("x", NodeKind::kEntity);
  EXPECT_TRUE(kg.FindNode("x", NodeKind::kEntity).ok());
  EXPECT_FALSE(kg.FindNode("x", NodeKind::kClass).ok());
  EXPECT_FALSE(kg.FindNode("y", NodeKind::kEntity).ok());
}

TEST(KnowledgeGraphTest, DeduplicatesTriplesAndMergesProvenance) {
  KnowledgeGraph kg;
  const TripleId t1 = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                   NodeKind::kText, P("src1"));
  const TripleId t2 = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                   NodeKind::kText, P("src2"));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(kg.num_triples(), 1u);
  EXPECT_EQ(kg.provenance(t1).size(), 2u);
}

// Regression pin for the duplicate-assertion contract documented on
// AddTriple: a second assertion of the same (s, p, o) with different
// provenance is an append, never a second triple — the ingestion paths
// (store upserts, multi-extractor fusion) rely on every one of these.
TEST(KnowledgeGraphTest, DuplicateAssertionIsProvenanceAppend) {
  KnowledgeGraph kg;
  const TripleId t1 = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                   NodeKind::kText, P("feed_a", 0.3));
  const TripleId t2 = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                   NodeKind::kText, P("feed_b", 0.9));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(kg.num_triples(), 1u);
  EXPECT_EQ(kg.AllTriples().size(), 1u);
  // Provenance accumulates in assertion order; confidence is the best.
  ASSERT_EQ(kg.provenance(t1).size(), 2u);
  EXPECT_EQ(kg.provenance(t1)[0].source, "feed_a");
  EXPECT_EQ(kg.provenance(t1)[1].source, "feed_b");
  EXPECT_DOUBLE_EQ(kg.MaxConfidence(t1), 0.9);
  // Query answers are those of a single triple.
  const NodeId s = *kg.FindNode("s", NodeKind::kEntity);
  const PredicateId p = *kg.FindPredicate("p");
  EXPECT_EQ(kg.Objects(s, p).size(), 1u);
  EXPECT_EQ(kg.TriplesWithSubject(s).size(), 1u);
}

TEST(KnowledgeGraphTest, RemoveHidesFromQueries) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                  NodeKind::kText, P("x"));
  const NodeId s = *kg.FindNode("s", NodeKind::kEntity);
  const PredicateId p = *kg.FindPredicate("p");
  const NodeId o = *kg.FindNode("o", NodeKind::kText);
  EXPECT_TRUE(kg.HasTriple(s, p, o));
  kg.RemoveTriple(t);
  EXPECT_FALSE(kg.HasTriple(s, p, o));
  EXPECT_EQ(kg.num_triples(), 0u);
  EXPECT_TRUE(kg.Objects(s, p).empty());
  EXPECT_TRUE(kg.TriplesWithSubject(s).empty());
  EXPECT_TRUE(kg.AllTriples().empty());
}

TEST(KnowledgeGraphTest, ReAddingRemovedTripleRevives) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                  NodeKind::kText, P("a"));
  kg.RemoveTriple(t);
  const TripleId t2 = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                   NodeKind::kText, P("b"));
  EXPECT_EQ(t, t2);
  EXPECT_EQ(kg.num_triples(), 1u);
  ASSERT_EQ(kg.provenance(t2).size(), 1u);
  EXPECT_EQ(kg.provenance(t2)[0].source, "b");
}

TEST(KnowledgeGraphTest, ObjectsAndSubjectsQueries) {
  KnowledgeGraph kg;
  kg.AddTriple("m1", "directed_by", "p1", NodeKind::kEntity,
               NodeKind::kEntity, P("x"));
  kg.AddTriple("m2", "directed_by", "p1", NodeKind::kEntity,
               NodeKind::kEntity, P("x"));
  kg.AddTriple("m1", "genre", "drama", NodeKind::kEntity, NodeKind::kText,
               P("x"));
  const NodeId m1 = *kg.FindNode("m1", NodeKind::kEntity);
  const NodeId p1 = *kg.FindNode("p1", NodeKind::kEntity);
  const PredicateId directed = *kg.FindPredicate("directed_by");
  EXPECT_EQ(kg.Objects(m1, directed).size(), 1u);
  EXPECT_EQ(kg.Subjects(directed, p1).size(), 2u);
  EXPECT_EQ(kg.TriplesWithPredicate(directed).size(), 2u);
  EXPECT_EQ(kg.TriplesWithSubject(m1).size(), 2u);
  EXPECT_EQ(kg.TriplesWithObject(p1).size(), 2u);
}

TEST(KnowledgeGraphTest, MaxConfidenceTracksBestProvenance) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("s", "p", "o", NodeKind::kEntity,
                                  NodeKind::kText, P("a", 0.4));
  kg.AddTriple("s", "p", "o", NodeKind::kEntity, NodeKind::kText,
               P("b", 0.9));
  EXPECT_DOUBLE_EQ(kg.MaxConfidence(t), 0.9);
}

TEST(KnowledgeGraphTest, TripleToString) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("Seattle", "located_at", "USA",
                                  NodeKind::kEntity, NodeKind::kEntity,
                                  P("x"));
  EXPECT_EQ(kg.TripleToString(t), "Seattle --located_at--> USA");
}

// Property test: after a random interleaving of adds and removes, every
// index agrees with a naive recomputation.
class KgConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KgConsistencyTest, IndexesMatchNaiveScan) {
  Rng rng(GetParam());
  KnowledgeGraph kg;
  std::vector<TripleId> live;
  std::set<std::tuple<NodeId, PredicateId, NodeId>> expected;
  for (int step = 0; step < 400; ++step) {
    if (rng.Bernoulli(0.7) || live.empty()) {
      const std::string s = "n" + std::to_string(rng.UniformInt(0, 20));
      const std::string p = "p" + std::to_string(rng.UniformInt(0, 4));
      const std::string o = "n" + std::to_string(rng.UniformInt(0, 20));
      const TripleId t = kg.AddTriple(s, p, o, NodeKind::kEntity,
                                      NodeKind::kEntity, P("src"));
      const Triple& tr = kg.triple(t);
      expected.insert({tr.subject, tr.predicate, tr.object});
      if (std::find(live.begin(), live.end(), t) == live.end()) {
        live.push_back(t);
      }
    } else {
      const size_t pick = rng.UniformIndex(live.size());
      const TripleId t = live[pick];
      const Triple tr = kg.triple(t);
      kg.RemoveTriple(t);
      expected.erase({tr.subject, tr.predicate, tr.object});
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  EXPECT_EQ(kg.num_triples(), expected.size());
  for (const auto& [s, p, o] : expected) {
    EXPECT_TRUE(kg.HasTriple(s, p, o));
    const auto objects = kg.Objects(s, p);
    EXPECT_NE(std::find(objects.begin(), objects.end(), o), objects.end());
    const auto subjects = kg.Subjects(p, o);
    EXPECT_NE(std::find(subjects.begin(), subjects.end(), s),
              subjects.end());
  }
  std::set<std::tuple<NodeId, PredicateId, NodeId>> actual;
  for (TripleId t : kg.AllTriples()) {
    const Triple& tr = kg.triple(t);
    actual.insert({tr.subject, tr.predicate, tr.object});
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KgConsistencyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace kg::graph
