#include "fuse/confidence_model.h"

#include <gtest/gtest.h>

namespace kg::fuse {
namespace {

TEST(GroupCandidatesTest, GroupsBySpo) {
  std::vector<CandidateTriple> candidates = {
      {"s", "p", "o", "src1", "semistructured", 0.9},
      {"s", "p", "o", "src2", "text", 0.5},
      {"s", "p", "other", "src1", "text", 0.4},
  };
  const auto groups =
      ExtractionConfidenceModel::GroupCandidates(candidates);
  ASSERT_EQ(groups.size(), 2u);
  size_t max_supporters = 0;
  for (const auto& g : groups) {
    max_supporters = std::max(max_supporters, g.supporters.size());
  }
  EXPECT_EQ(max_supporters, 2u);
}

TEST(GroupFeaturesTest, CountsSourcesAndExtractors) {
  std::vector<CandidateTriple> candidates = {
      {"s", "p", "o", "src1", "semistructured", 1.0},
      {"s", "p", "o", "src2", "semistructured", 0.8},
  };
  const auto groups =
      ExtractionConfidenceModel::GroupCandidates(candidates);
  const auto f = ExtractionConfidenceModel::GroupFeatures(groups[0]);
  EXPECT_NEAR(f[0], std::log(3.0), 1e-9);  // two sources.
  EXPECT_NEAR(f[1], std::log(2.0), 1e-9);  // one extractor family.
  EXPECT_DOUBLE_EQ(f[2], 1.0);             // max score.
  EXPECT_DOUBLE_EQ(f[3], 0.9);             // mean score.
  EXPECT_DOUBLE_EQ(f[4], 1.0);             // semistructured indicator.
}

TEST(ConfidenceModelTest, LearnsMultiSourceAgreementSignal) {
  // True triples get asserted by several sources with high extractor
  // scores; false ones are single-source low-score noise.
  kg::Rng rng(1);
  std::vector<CandidateTriple> candidates;
  std::vector<int> truth_labels;  // parallel to groups later.
  for (int i = 0; i < 300; ++i) {
    const std::string s = "e" + std::to_string(i);
    const bool is_true = rng.Bernoulli(0.5);
    const int copies = is_true ? 1 + static_cast<int>(rng.UniformInt(1, 4))
                               : 1;
    for (int c = 0; c < copies; ++c) {
      candidates.push_back(
          {s, "rel", "o" + std::to_string(i),
           "src" + std::to_string(c),
           c % 2 == 0 ? "semistructured" : "webtable",
           is_true ? 0.7 + 0.3 * rng.UniformDouble()
                   : 0.3 + 0.3 * rng.UniformDouble()});
    }
  }
  auto groups = ExtractionConfidenceModel::GroupCandidates(candidates);
  std::vector<int> labels;
  for (const auto& g : groups) {
    labels.push_back(g.supporters.size() > 1 ||
                             g.supporters[0]->extractor_score > 0.65
                         ? 1
                         : 0);
  }
  ExtractionConfidenceModel model;
  model.Fit(groups, labels, rng);
  size_t correct = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    correct += (model.Score(groups[i]) >= 0.5) == (labels[i] == 1);
  }
  EXPECT_GT(static_cast<double>(correct) / groups.size(), 0.85);
}

}  // namespace
}  // namespace kg::fuse
