// The acceptance gate for the observability layer: metrics exposition
// and trace JSON must be byte-identical across 1/2/8-thread runs of
// the same seeded workload. Runs under TSan in CI (obs label), so it
// also exercises the sharded counters and the tracer mutex under real
// concurrency.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/rng.h"
#include "core/textrich_kg_pipeline.h"
#include "graph/knowledge_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "synth/behavior_generator.h"
#include "synth/catalog_generator.h"
#include "synth/entity_universe.h"

namespace kg::obs {
namespace {

// Instrumented batch replay over a small entity snapshot; returns the
// registry exposition. The workload is fixed; only the thread count
// varies between calls.
std::string MeteredServeExposition(size_t threads) {
  synth::UniverseOptions uopt;
  uopt.num_people = 150;
  uopt.num_movies = 250;
  uopt.num_songs = 20;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  const auto snap =
      serve::KgSnapshot::Compile(universe.ToKnowledgeGraph());

  std::vector<serve::Query> workload;
  const ZipfDistribution zipf(universe.people().size(), 1.05);
  const std::vector<std::string> preds = {"name", "birth_year",
                                          "nationality"};
  for (size_t i = 0; i < 4000; ++i) {
    workload.push_back(serve::Query::PointLookup(
        synth::EntityUniverse::PersonNodeName(
            universe.people()[zipf.Sample(rng)].id),
        preds[rng.UniformIndex(preds.size())]));
  }

  MetricsRegistry registry;
  serve::ServeOptions options;
  options.exec = ExecPolicy::WithThreads(threads);
  options.registry = &registry;
  const serve::QueryEngine engine(snap, options);
  const auto results = engine.BatchExecute(workload);
  EXPECT_EQ(results.size(), workload.size());
  return registry.ToJson();
}

TEST(ObsDeterminismTest, ServeMetricsExpositionIdenticalAt1_2_8Threads) {
  const std::string json_1 = MeteredServeExposition(1);
  EXPECT_NE(json_1.find("serve.queries.point_lookup"), std::string::npos);
  EXPECT_EQ(MeteredServeExposition(2), json_1);
  EXPECT_EQ(MeteredServeExposition(8), json_1);
}

// A traced text-rich build under a FixedTraceClock: the exported trace
// is a pure function of (seed, structure) because the sharded
// extraction loop names its chunk spans by chunk begin index and chunk
// geometry never depends on the thread count.
struct TracedBuild {
  std::string trace_json;
  uint64_t kg_fingerprint = 0;
};

TracedBuild TracedTextRichBuild(size_t threads) {
  Rng rng(42);
  synth::CatalogOptions copt;
  copt.num_types = 4;
  copt.num_products = 80;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 400;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  FixedTraceClock clock;
  Tracer tracer(42, &clock);
  core::TextRichBuildOptions opt;
  opt.train_fraction = 0.2;
  opt.exec = ExecPolicy::WithThreads(threads);
  opt.tracer = &tracer;
  Rng build_rng(42);
  const auto build = core::BuildTextRichKg(catalog, behavior, opt, build_rng);
  TracedBuild out;
  out.trace_json = tracer.ToJson();
  out.kg_fingerprint = graph::TripleSetFingerprint(build.kg);
  return out;
}

TEST(ObsDeterminismTest, TextRichTraceIdenticalAt1_2_8Threads) {
  const TracedBuild serial = TracedTextRichBuild(1);
#ifndef KG_OBS_NOOP
  EXPECT_NE(serial.trace_json.find("textrich.build"), std::string::npos);
  EXPECT_NE(serial.trace_json.find("chunk@"), std::string::npos);
#endif
  for (size_t threads : {2u, 8u}) {
    const TracedBuild parallel = TracedTextRichBuild(threads);
    EXPECT_EQ(parallel.trace_json, serial.trace_json)
        << threads << " threads";
    EXPECT_EQ(parallel.kg_fingerprint, serial.kg_fingerprint)
        << threads << " threads";
  }
}

TEST(ObsDeterminismTest, CapturedEventGaugesExposeDeterministically) {
  // Two captures into fresh registries at the same instant expose
  // identically: the bridge is a pure copy of the global counters.
  MetricsRegistry a, b;
  CaptureProcessEvents(a);
  CaptureProcessEvents(b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToPrometheus(), b.ToPrometheus());
}

}  // namespace
}  // namespace kg::obs
