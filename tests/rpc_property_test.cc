// Property harness for the RPC front-end: for seeded random (KG,
// workload) pairs, every answer served over the loopback wire must be
// byte-identical to the in-process QueryEngine answer — with and
// without the result cache behind the server, and with hostile node
// names (embedded NULs, newlines, UTF-8) crossing the wire both ways.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "synth/entity_universe.h"

namespace kg::rpc {
namespace {

using graph::NodeKind;

constexpr int kNumWorlds = 100;
constexpr int kQueriesPerWorld = 30;

struct World {
  graph::KnowledgeGraph kg;
  std::vector<std::string> entity_names;
  std::vector<std::string> predicates;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  synth::UniverseOptions options;
  options.num_people = static_cast<size_t>(rng.UniformInt(10, 30));
  options.num_movies = static_cast<size_t>(rng.UniformInt(8, 20));
  options.num_songs = static_cast<size_t>(rng.UniformInt(4, 12));
  const auto universe = synth::EntityUniverse::Generate(options, rng);

  World world;
  world.kg = universe.ToKnowledgeGraph();
  const graph::Provenance prov{"rpc_property", 1.0, 0};
  for (const auto& p : universe.people()) {
    world.kg.AddTriple(synth::EntityUniverse::PersonNodeName(p.id), "type",
                       "Person", NodeKind::kEntity, NodeKind::kClass, prov);
    world.entity_names.push_back(
        synth::EntityUniverse::PersonNodeName(p.id));
  }
  for (const auto& m : universe.movies()) {
    world.kg.AddTriple(synth::EntityUniverse::MovieNodeName(m.id), "type",
                       "Movie", NodeKind::kEntity, NodeKind::kClass, prov);
    world.entity_names.push_back(
        synth::EntityUniverse::MovieNodeName(m.id));
  }
  for (const auto& s : universe.songs()) {
    world.entity_names.push_back(synth::EntityUniverse::SongNodeName(s.id));
  }

  // Hostile names that must survive the wire encoding intact.
  const std::vector<std::string> hostile = {
      std::string("nul\0inside", 10), "tab\there", "line\nbreak",
      "h\xc3\xa9llo w\xc3\xb6rld", ""};
  for (size_t i = 0; i < hostile.size(); ++i) {
    world.kg.AddTriple(hostile[i], "hostile_edge",
                       hostile[(i + 1) % hostile.size()], NodeKind::kEntity,
                       NodeKind::kEntity, prov);
    world.entity_names.push_back(hostile[i]);
  }

  world.predicates = {"name",      "birth_year",   "title",
                      "genre",     "directed_by",  "acted_in",
                      "performed_by", "type",      "hostile_edge",
                      "no_such_predicate"};
  return world;
}

std::vector<serve::Query> MakeWorkload(const World& world, Rng& rng) {
  std::vector<serve::Query> queries;
  const std::vector<std::string> types = {"Person", "Movie", "NoSuchType"};
  for (int i = 0; i < kQueriesPerWorld; ++i) {
    const std::string& node =
        world.entity_names[rng.UniformIndex(world.entity_names.size())];
    const std::string& pred =
        world.predicates[rng.UniformIndex(world.predicates.size())];
    const double roll = rng.UniformDouble();
    if (roll < 0.4) {
      queries.push_back(serve::Query::PointLookup(node, pred));
    } else if (roll < 0.65) {
      queries.push_back(serve::Query::Neighborhood(node));
    } else if (roll < 0.85) {
      queries.push_back(serve::Query::AttributeByType(
          types[rng.UniformIndex(types.size())], pred));
    } else {
      queries.push_back(serve::Query::TopKRelated(
          node, static_cast<size_t>(rng.UniformInt(0, 8))));
    }
  }
  return queries;
}

// One remote pass: serve `engine` over loopback, run the workload
// through an RpcClient, compare every answer to the local reference.
void CheckRemoteMatchesLocal(const serve::QueryEngine& engine,
                             const std::vector<serve::Query>& workload,
                             const std::vector<serve::QueryResult>& reference,
                             uint64_t seed, const char* label) {
  auto listener = std::make_unique<InMemoryTransportServer>();
  InMemoryTransportServer* loopback = listener.get();
  RpcServer server(EngineHandler(&engine), std::move(listener));
  ASSERT_TRUE(server.Start().ok());

  auto transport = loopback->Connect();
  ASSERT_TRUE(transport.ok()) << transport.status();
  RpcClient client(std::move(*transport));
  const auto schema = client.Handshake();
  ASSERT_TRUE(schema.ok()) << schema.status();

  for (size_t i = 0; i < workload.size(); ++i) {
    const auto remote = client.Execute(workload[i]);
    ASSERT_TRUE(remote.ok())
        << label << ", world seed " << seed << ": " << remote.status();
    ASSERT_EQ(*remote, reference[i])
        << label << ", world seed " << seed << ", query "
        << workload[i].CacheKey();
  }
  server.Stop();
  EXPECT_EQ(server.stats().requests_accepted, workload.size());
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

TEST(RpcPropertyTest, LoopbackAnswersMatchInProcessWithAndWithoutCache) {
  int checked = 0;
  for (int world_idx = 0; world_idx < kNumWorlds; ++world_idx) {
    const uint64_t seed = 5000 + static_cast<uint64_t>(world_idx);
    const World world = MakeWorld(seed);
    Rng rng(seed * 17 + 3);
    const std::vector<serve::Query> workload = MakeWorkload(world, rng);
    const serve::KgSnapshot snap = serve::KgSnapshot::Compile(world.kg);

    // In-process reference, computed before any server exists.
    const serve::QueryEngine reference_engine(snap);
    std::vector<serve::QueryResult> reference;
    reference.reserve(workload.size());
    for (const serve::Query& q : workload) {
      reference.push_back(reference_engine.Execute(q));
    }
    checked += static_cast<int>(workload.size());

    const serve::QueryEngine uncached(snap);
    CheckRemoteMatchesLocal(uncached, workload, reference, seed,
                            "uncached");

    serve::ServeOptions cached_options;
    cached_options.cache_capacity = 16;  // Small: forces evictions.
    cached_options.cache_shards = 4;
    const serve::QueryEngine cached(snap, cached_options);
    CheckRemoteMatchesLocal(cached, workload, reference, seed, "cached");
  }
  EXPECT_EQ(checked, kNumWorlds * kQueriesPerWorld);
}

// The wire encoding round-trips every query the generator can produce:
// decode(encode(q)) has the same cache key (CacheKey is injective).
TEST(RpcPropertyTest, QueryEncodingRoundTripsAcrossWorkloads) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const World world = MakeWorld(seed);
    Rng rng(seed);
    for (const serve::Query& q : MakeWorkload(world, rng)) {
      const auto decoded = DecodeQuery(EncodeQuery(q));
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(decoded->CacheKey(), q.CacheKey());
    }
  }
}

}  // namespace
}  // namespace kg::rpc
