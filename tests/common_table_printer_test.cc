#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace kg {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // All lines equally wide.
  std::istringstream is(out);
  std::string line;
  size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"x"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, BannerFormat) {
  std::ostringstream os;
  PrintBanner(os, "Figure 2");
  EXPECT_EQ(os.str(), "\n== Figure 2 ==\n");
}

}  // namespace
}  // namespace kg
