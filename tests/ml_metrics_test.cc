#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::ml {
namespace {

TEST(ConfusionTest, CountsAndDerivedMetrics) {
  Confusion c;
  c.Add(1, 1);  // tp
  c.Add(1, 1);  // tp
  c.Add(0, 1);  // fp
  c.Add(1, 0);  // fn
  c.Add(0, 0);  // tn
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.F1(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.6);
}

TEST(ConfusionTest, EmptyIsZero) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(PrCurveTest, PerfectRankingReachesTopRight) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> gold = {1, 1, 0, 0};
  const auto curve = PrecisionRecallCurve(scores, gold);
  ASSERT_FALSE(curve.empty());
  // At the threshold passing both positives: P=1, R=1.
  bool found = false;
  for (const auto& pt : curve) {
    if (pt.recall == 1.0 && pt.precision == 1.0) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, gold), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc(scores, gold), 1.0);
}

TEST(PrCurveTest, InvertedRankingScoresZeroAuc) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> gold = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, gold), 0.0);
}

TEST(PrCurveTest, TiedScoresCollapseToOnePoint) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  const std::vector<int> gold = {1, 0, 1};
  const auto curve = PrecisionRecallCurve(scores, gold);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<int> gold;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.UniformDouble());
    gold.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(RocAuc(scores, gold), 0.5, 0.03);
}

TEST(RocAucTest, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2}, {0, 0}), 0.5);
}

TEST(AccuracyScoreTest, Basics) {
  EXPECT_DOUBLE_EQ(AccuracyScore({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(AccuracyScore({}, {}), 0.0);
}

// Property: AP and AUC are monotone under improving a ranking.
class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, AucInUnitInterval) {
  Rng rng(GetParam());
  std::vector<double> scores;
  std::vector<int> gold;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.UniformDouble());
    gold.push_back(rng.Bernoulli(0.3) ? 1 : 0);
  }
  const double auc = RocAuc(scores, gold);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  const double ap = AveragePrecision(scores, gold);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace kg::ml
