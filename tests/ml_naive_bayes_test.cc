#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kg::ml {
namespace {

TEST(NaiveBayesTest, SeparatesDistinctVocabularies) {
  MultinomialNaiveBayes nb;
  nb.Fit({{"green", "tea", "leaf"},
          {"tea", "herbal", "leaf"},
          {"coffee", "bean", "roast"},
          {"espresso", "coffee", "bean"}},
         {0, 0, 1, 1});
  EXPECT_EQ(nb.Predict({"tea", "leaf"}), 0);
  EXPECT_EQ(nb.Predict({"coffee", "roast"}), 1);
  EXPECT_EQ(nb.num_classes(), 2);
}

TEST(NaiveBayesTest, UnseenTokensFallBackToPrior) {
  MultinomialNaiveBayes nb;
  nb.Fit({{"a"}, {"a"}, {"a"}, {"b", "b", "b"}}, {0, 0, 0, 1});
  // Equal token mass per class; the document prior favors class 0.
  EXPECT_EQ(nb.Predict({"zzz", "qqq"}), 0);
}

TEST(NaiveBayesTest, ScoresOrderedBySupport) {
  MultinomialNaiveBayes nb;
  nb.Fit({{"x", "x"}, {"y"}}, {0, 1});
  const auto scores = nb.Scores({"x"});
  EXPECT_GT(scores[0], scores[1]);
}

TEST(NaiveBayesTest, MulticlassSupport) {
  MultinomialNaiveBayes nb;
  nb.Fit({{"red"}, {"green"}, {"blue"}}, {0, 1, 2});
  EXPECT_EQ(nb.num_classes(), 3);
  EXPECT_EQ(nb.Predict({"green"}), 1);
  EXPECT_EQ(nb.Predict({"blue"}), 2);
}

TEST(NaiveBayesTest, SmoothingPreventsZeroProbability) {
  MultinomialNaiveBayes nb;
  nb.Fit({{"a", "b"}, {"c"}}, {0, 1});
  // "c" never seen with class 0; score must stay finite.
  const auto scores = nb.Scores({"c", "c", "c"});
  EXPECT_TRUE(std::isfinite(scores[0]));
  EXPECT_TRUE(std::isfinite(scores[1]));
  EXPECT_GT(scores[1], scores[0]);
}

}  // namespace
}  // namespace kg::ml
