#include "text/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/names.h"

namespace kg::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
}

TEST(LevenshteinSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", ""), 0.0);
  // Prefix boost: martha/marhta classic example ~0.961.
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961, 0.01);
}

TEST(JaccardTest, SetSemantics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "a", "a"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
}

TEST(OverlapCoefficientTest, ContainmentScoresHigh) {
  // "Xin Dong" vs "Xin Luna Dong".
  EXPECT_DOUBLE_EQ(
      OverlapCoefficient({"xin", "dong"}, {"xin", "luna", "dong"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {"a"}), 0.0);
}

TEST(MongeElkanTest, TolerantToTokenNoise) {
  const double sim =
      MongeElkanSimilarity({"marta", "keller"}, {"martha", "keller"});
  EXPECT_GT(sim, 0.9);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a"}, {}), 0.0);
}

TEST(NumericSimilarityTest, DecaysWithDistance) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(5, 5, 2.0), 1.0);
  EXPECT_GT(NumericSimilarity(5, 6, 2.0), NumericSimilarity(5, 9, 2.0));
  EXPECT_DOUBLE_EQ(NumericSimilarity(1, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(2, 2, 0.0), 1.0);
}

TEST(DiceBigramTest, Bounds) {
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("night", "night"), 1.0);
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("", ""), 1.0);
  EXPECT_GT(DiceBigramSimilarity("night", "nacht"), 0.0);
}

// Property sweep: all similarities bounded in [0, 1] and symmetric (the
// symmetric ones) over random noisy name pairs.
class SimilarityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityPropertyTest, BoundsAndSymmetry) {
  Rng rng(GetParam());
  synth::NameFactory names(rng.Fork());
  for (int i = 0; i < 50; ++i) {
    const std::string a = names.PersonName();
    const std::string b = rng.Bernoulli(0.5)
                              ? synth::NameVariant(a, 1.0, rng)
                              : names.PersonName();
    for (double sim : {LevenshteinSimilarity(a, b), JaroSimilarity(a, b),
                       JaroWinklerSimilarity(a, b),
                       DiceBigramSimilarity(a, b)}) {
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0 + 1e-12);
    }
    EXPECT_NEAR(LevenshteinSimilarity(a, b), LevenshteinSimilarity(b, a),
                1e-12);
    EXPECT_NEAR(JaroSimilarity(a, b), JaroSimilarity(b, a), 1e-12);
    EXPECT_NEAR(DiceBigramSimilarity(a, b), DiceBigramSimilarity(b, a),
                1e-12);
    // Identity always maxes.
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, a), 1.0);
  }
}

TEST_P(SimilarityPropertyTest, VariantsScoreAboveStrangers) {
  Rng rng(GetParam() + 1000);
  synth::NameFactory names(rng.Fork());
  int wins = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string name = names.PersonName();
    const std::string variant = synth::NameVariant(name, 1.0, rng);
    const std::string stranger = names.PersonName();
    if (variant == name || stranger == name) continue;
    ++total;
    if (JaroWinklerSimilarity(name, variant) >=
        JaroWinklerSimilarity(name, stranger)) {
      ++wins;
    }
  }
  if (total > 0) {
    EXPECT_GT(static_cast<double>(wins) / total, 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace kg::text
