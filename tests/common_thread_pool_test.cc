#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kg {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPoolTest, WaitIdleWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long> values(1000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long> sum{0};
  pool.ParallelFor(values.size(),
                   [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

}  // namespace
}  // namespace kg
