// StageTimer is now a thin view over an obs::MetricsRegistry: rows are
// reconstructed from "stage.<name>.{calls,items,seconds_ticks}"
// counters, so stage cost shows up in the same exposition as every
// other metric while the historical rows()/Print/Scope API holds.

#include "obs/stage_timer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace kg {
namespace {

TEST(StageTimerTest, RecordAccumulatesCallsSecondsItems) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  StageTimer timer;
  timer.Record("parse", 1.5, 10);
  timer.Record("parse", 0.25, 6);
  const auto rows = timer.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stage, "parse");
  EXPECT_EQ(rows[0].calls, 2u);
  EXPECT_EQ(rows[0].items, 16u);
  // 1.5 and 0.25 are exact in fixed-point ticks.
  EXPECT_DOUBLE_EQ(rows[0].seconds, 1.75);
  EXPECT_DOUBLE_EQ(rows[0].ItemsPerSec(), 16.0 / 1.75);
}

TEST(StageTimerTest, RowsKeepFirstRecordedOrder) {
  StageTimer timer;
  timer.Record("zeta", 0.1);
  timer.Record("alpha", 0.1);
  timer.Record("zeta", 0.1);
  const auto rows = timer.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].stage, "zeta");
  EXPECT_EQ(rows[1].stage, "alpha");
}

TEST(StageTimerTest, ZeroSecondsRowReportsZeroThroughput) {
  StageTimer timer;
  timer.Record("instant", 0.0, 100);
  const auto rows = timer.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].seconds, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].ItemsPerSec(), 0.0);
}

TEST(StageTimerTest, ScopeRecordsOnDestructionWithAddedItems) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  StageTimer timer;
  {
    StageTimer::Scope scope(&timer, "load", 3);
    scope.AddItems(7);
  }
  const auto rows = timer.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stage, "load");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[0].items, 10u);
  EXPECT_GE(rows[0].seconds, 0.0);
}

TEST(StageTimerTest, NullTimerScopeIsANoOp) {
  StageTimer::Scope scope(nullptr, "ignored", 5);
  scope.AddItems(5);
  // Destruction must not crash; nothing to assert beyond survival.
}

TEST(StageTimerTest, MovedFromScopeDoesNotDoubleRecord) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  StageTimer timer;
  {
    StageTimer::Scope a(&timer, "stage", 1);
    StageTimer::Scope b = std::move(a);
    b.AddItems(1);
  }
  const auto rows = timer.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[0].items, 2u);
}

TEST(StageTimerTest, ExternalRegistryExposesStageMetrics) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  obs::MetricsRegistry registry;
  StageTimer timer(&registry);
  timer.Record("fuse", 2.0, 4);
  EXPECT_EQ(registry.GetCounter("stage.fuse.calls").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("stage.fuse.items").Value(), 4u);
  EXPECT_EQ(registry.GetCounter("stage.fuse.seconds_ticks").Value(),
            static_cast<uint64_t>(2.0 * obs::kFixedPointScale));
  // The stage rows ride along in the shared exposition.
  EXPECT_NE(registry.ToJson().find("stage.fuse.calls"), std::string::npos);
  EXPECT_EQ(&timer.registry(), &registry);
}

TEST(StageTimerTest, OwnedRegistryBacksRowsExactly) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  StageTimer timer;
  timer.Record("link", 0.5, 2);
  EXPECT_EQ(timer.registry().GetCounter("stage.link.calls").Value(), 1u);
}

TEST(StageTimerTest, ClearResetsRowsAndValues) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  obs::MetricsRegistry registry;
  StageTimer timer(&registry);
  timer.Record("stage", 1.0, 5);
  timer.Clear();
  EXPECT_TRUE(timer.rows().empty());
  // The registry entry survives (handles are stable) but reads zero.
  EXPECT_EQ(registry.GetCounter("stage.stage.calls").Value(), 0u);
  // Recording after Clear re-creates the row.
  timer.Record("stage", 1.0, 5);
  ASSERT_EQ(timer.rows().size(), 1u);
  EXPECT_EQ(timer.rows()[0].calls, 1u);
}

TEST(StageTimerTest, PrintRendersEveryStageRow) {
  StageTimer timer;
  timer.Record("extract", 0.5, 100);
  timer.Record("assemble", 0.1, 7);
  std::ostringstream os;
  timer.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("extract"), std::string::npos);
  EXPECT_NE(text.find("assemble"), std::string::npos);
  EXPECT_NE(text.find("items/s"), std::string::npos);
}

TEST(StageTimerTest, ConcurrentRecordsSumExactly) {
#ifdef KG_OBS_NOOP
  GTEST_SKIP() << "instrumentation compiled out under KG_OBS_NOOP";
#endif
  StageTimer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&timer] {
      for (int i = 0; i < 500; ++i) timer.Record("hot", 0.001, 2);
    });
  }
  for (std::thread& w : workers) w.join();
  const auto rows = timer.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 2000u);
  EXPECT_EQ(rows[0].items, 4000u);
  EXPECT_DOUBLE_EQ(rows[0].seconds, 2.0);
}

}  // namespace
}  // namespace kg
