#include "common/strings.h"

#include <gtest/gtest.h>

namespace kg {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoSeparatorYieldsWhole) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  const auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(TrimTest, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("kgraph", "kg"));
  EXPECT_FALSE(StartsWith("kg", "kgraph"));
  EXPECT_TRUE(EndsWith("kgraph", "graph"));
  EXPECT_FALSE(EndsWith("graph", "kgraph"));
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%s/%.2f", 3, "x", 1.5), "3/x/1.50");
  EXPECT_EQ(StrFormat("%s", std::string(300, 'a').c_str()),
            std::string(300, 'a'));
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FormatCountTest, InsertsThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-9876), "-9,876");
}

}  // namespace
}  // namespace kg
