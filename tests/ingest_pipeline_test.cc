// Streaming-ingest pipeline contract tests: a drained run commits the
// exact mutation log the serial offline rebuild produces (fingerprint
// equality + zero lost upserts), ticket-ordered commits make subset
// submission deterministic too, chaos degrades units into the report
// instead of wedging the drain, the lifecycle errors are typed, and the
// obs counters agree with the report.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph/knowledge_graph.h"
#include "ingest/crawl.h"
#include "ingest/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/versioned_store.h"
#include "synth/entity_universe.h"

namespace kg::ingest {
namespace {

using graph::KnowledgeGraph;
using graph::TripleSetFingerprint;
using store::StoreOptions;
using store::VersionedKgStore;

synth::EntityUniverse SmallUniverse(uint64_t seed) {
  synth::UniverseOptions uo;
  uo.num_people = 80;
  uo.num_movies = 40;
  uo.num_songs = 30;
  Rng rng(seed);
  return synth::EntityUniverse::Generate(uo, rng);
}

CrawlPlan SmallPlan(const synth::EntityUniverse& universe, uint64_t seed) {
  CrawlPlanOptions po;
  po.num_catalog_sources = 4;
  po.records_per_chunk = 8;
  po.num_websites = 3;
  po.pages_per_site = 10;
  Rng rng(seed);
  return BuildCrawlPlan(universe, po, rng);
}

TEST(IngestPipelineTest, PlanShape) {
  const auto universe = SmallUniverse(1);
  const CrawlPlan plan = SmallPlan(universe, 2);
  ASSERT_EQ(plan.tables.size(), 4u);
  ASSERT_EQ(plan.websites.size(), 3u);
  ASSERT_GT(plan.num_units(), 10u);
  for (size_t i = 0; i < plan.num_units(); ++i) {
    const CrawlUnit& u = plan.units[i];
    EXPECT_EQ(u.seq, i) << "units must be stamped in plan order";
    EXPECT_FALSE(u.unit_id.empty());
    if (u.kind == UnitKind::kCatalogChunk) {
      ASSERT_LT(u.source_index, plan.tables.size());
      EXPECT_LE(u.end, plan.tables[u.source_index].records.size());
    } else {
      ASSERT_LT(u.source_index, plan.websites.size());
      EXPECT_EQ(u.end, u.begin + 1);
    }
    EXPECT_LT(u.begin, u.end);
  }
  // Two builds of the same plan are the same plan.
  Rng rng(2);
  CrawlPlanOptions po;
  po.num_catalog_sources = 4;
  po.records_per_chunk = 8;
  po.num_websites = 3;
  po.pages_per_site = 10;
  const CrawlPlan again = BuildCrawlPlan(universe, po, rng);
  ASSERT_EQ(again.num_units(), plan.num_units());
  for (size_t i = 0; i < plan.num_units(); ++i) {
    EXPECT_EQ(again.units[i].unit_id, plan.units[i].unit_id);
  }
}

TEST(IngestPipelineTest, DrainedRunMatchesOfflineRebuild) {
  const auto universe = SmallUniverse(3);
  KnowledgeGraph base = universe.ToKnowledgeGraph();
  const CrawlPlan plan = SmallPlan(universe, 4);
  const SurfaceLinker linker(base);

  UnitContext oracle_ctx;
  uint64_t oracle_mutations = 0;
  const KnowledgeGraph rebuilt =
      OfflineRebuild(plan, base, linker, oracle_ctx, nullptr,
                     &oracle_mutations);
  ASSERT_GT(oracle_mutations, 0u);

  auto store = VersionedKgStore::Open(base, StoreOptions{});
  ASSERT_TRUE(store.ok());

  obs::MetricsRegistry registry;
  IngestOptions options;
  options.num_workers = 2;
  options.registry = &registry;
  IngestPipeline pipeline(**store, linker, plan, options);
  const IngestReport report = pipeline.RunAll();

  EXPECT_EQ(report.units_submitted, plan.num_units());
  EXPECT_EQ(report.units_processed, plan.num_units());
  EXPECT_EQ(report.units_degraded, 0u);
  EXPECT_EQ(report.mutations_committed, oracle_mutations)
      << "zero-lost-upserts: every extracted mutation must commit";
  EXPECT_EQ(report.mutations_committed, (*store)->applied_mutations());
  EXPECT_EQ((*store)->AuthoritativeFingerprint(),
            TripleSetFingerprint(rebuilt))
      << "drained store must equal the serial offline rebuild";

#ifndef KG_OBS_NOOP
  // The obs counters tell the same story as the report.
  EXPECT_EQ(registry.GetCounter("ingest.units").Value(),
            static_cast<uint64_t>(report.units_processed));
  EXPECT_EQ(registry.GetCounter("ingest.mutations").Value(),
            report.mutations_committed);
  EXPECT_EQ(registry.GetCounter("ingest.commit_batches").Value(),
            report.commit_batches);
#endif
  EXPECT_GT(report.commit_batches, 1u);
}

TEST(IngestPipelineTest, CommitBatchSizeDoesNotChangeContent) {
  const auto universe = SmallUniverse(5);
  KnowledgeGraph base = universe.ToKnowledgeGraph();
  const CrawlPlan plan = SmallPlan(universe, 6);
  const SurfaceLinker linker(base);

  uint64_t fingerprint = 0;
  for (size_t batch : {size_t{1}, size_t{3}, size_t{64}}) {
    auto store = VersionedKgStore::Open(base, StoreOptions{});
    ASSERT_TRUE(store.ok());
    IngestOptions options;
    options.num_workers = 2;
    options.commit_unit_batch = batch;
    IngestPipeline pipeline(**store, linker, plan, options);
    pipeline.RunAll();
    if (fingerprint == 0) {
      fingerprint = (*store)->AuthoritativeFingerprint();
    } else {
      EXPECT_EQ((*store)->AuthoritativeFingerprint(), fingerprint)
          << "commit_unit_batch " << batch;
    }
  }
}

TEST(IngestPipelineTest, SubsetSubmissionFollowsTicketOrder) {
  // Submitting every other unit must commit exactly those units, in
  // submission order — the reorder buffer keys on tickets, not plan seqs.
  const auto universe = SmallUniverse(7);
  KnowledgeGraph base = universe.ToKnowledgeGraph();
  const CrawlPlan plan = SmallPlan(universe, 8);
  const SurfaceLinker linker(base);

  KnowledgeGraph oracle = base;
  UnitContext ctx;
  uint64_t oracle_mutations = 0;
  for (size_t i = 0; i < plan.num_units(); i += 2) {
    const UnitResult r = ProcessUnit(plan, plan.units[i], linker, ctx);
    for (const store::Mutation& m : r.mutations) {
      ApplyMutationToKg(oracle, m);
      ++oracle_mutations;
    }
  }

  auto store = VersionedKgStore::Open(base, StoreOptions{});
  ASSERT_TRUE(store.ok());
  IngestOptions options;
  options.num_workers = 4;
  IngestPipeline pipeline(**store, linker, plan, options);
  pipeline.Start();
  size_t submitted = 0;
  for (size_t i = 0; i < plan.num_units(); i += 2) {
    pipeline.SubmitBlocking(i);
    ++submitted;
  }
  const IngestReport report = pipeline.Finish();

  EXPECT_EQ(report.units_processed, submitted);
  EXPECT_EQ(report.mutations_committed, oracle_mutations);
  EXPECT_EQ((*store)->AuthoritativeFingerprint(),
            TripleSetFingerprint(oracle));
}

TEST(IngestPipelineTest, ChaosDegradesIntoReportNotDrain) {
  const auto universe = SmallUniverse(9);
  KnowledgeGraph base = universe.ToKnowledgeGraph();
  const CrawlPlan plan = SmallPlan(universe, 10);
  const SurfaceLinker linker(base);

  IngestOptions options;
  options.num_workers = 2;
  options.faults = FaultPlan::Uniform(/*seed=*/77, /*rate=*/0.25);
  options.seed = 77;

  // Chaos oracle: the serial rebuild under the same fault plan.
  UnitContext ctx;
  FaultInjector injector(options.faults);
  ctx.faults = &injector;
  ctx.retry = options.retry;
  ctx.seed = options.seed;
  DegradationReport oracle_degradation;
  uint64_t oracle_mutations = 0;
  const KnowledgeGraph rebuilt = OfflineRebuild(
      plan, base, linker, ctx, &oracle_degradation, &oracle_mutations);

  auto store = VersionedKgStore::Open(base, StoreOptions{});
  ASSERT_TRUE(store.ok());
  obs::Tracer tracer(/*seed=*/1);
  obs::MetricsRegistry registry;
  options.registry = &registry;
  options.tracer = &tracer;
  IngestPipeline pipeline(**store, linker, plan, options);
  const IngestReport report = pipeline.RunAll();

  EXPECT_EQ(report.units_processed, plan.num_units())
      << "chaos must degrade units, never wedge the drain";
  EXPECT_GT(report.degradation.sources.size(), 0u)
      << "a 25% fault rate over this many units must leave a mark";
  EXPECT_EQ(report.mutations_committed, oracle_mutations);
  EXPECT_EQ((*store)->AuthoritativeFingerprint(),
            TripleSetFingerprint(rebuilt))
      << "chaos outcomes must be deterministic per (plan, seed)";

  // Degradation rows match the oracle's, in the same order.
  ASSERT_EQ(report.degradation.sources.size(),
            oracle_degradation.sources.size());
  for (size_t i = 0; i < oracle_degradation.sources.size(); ++i) {
    const SourceDegradation& got = report.degradation.sources[i];
    const SourceDegradation& want = oracle_degradation.sources[i];
    EXPECT_EQ(got.source, want.source) << "row " << i;
    EXPECT_EQ(got.retries, want.retries) << "row " << i;
    EXPECT_EQ(got.quarantined, want.quarantined) << "row " << i;
    EXPECT_EQ(got.records_dropped, want.records_dropped) << "row " << i;
    EXPECT_EQ(got.claims_corrupted, want.claims_corrupted) << "row " << i;
  }
  EXPECT_EQ(report.units_degraded, oracle_degradation.quarantined());
}

TEST(IngestPipelineTest, LifecycleErrorsAreTyped) {
  const auto universe = SmallUniverse(11);
  KnowledgeGraph base = universe.ToKnowledgeGraph();
  const CrawlPlan plan = SmallPlan(universe, 12);
  const SurfaceLinker linker(base);
  auto store = VersionedKgStore::Open(base, StoreOptions{});
  ASSERT_TRUE(store.ok());

  IngestPipeline pipeline(**store, linker, plan, IngestOptions{});
  // Submitting before Start is a contract violation, not a shed.
  EXPECT_EQ(pipeline.TrySubmit(0).code(), StatusCode::kFailedPrecondition);
  pipeline.Start();
  EXPECT_TRUE(pipeline.TrySubmit(0).ok());
  const IngestReport report = pipeline.Finish();
  EXPECT_EQ(report.units_processed, 1u);
  // And so is submitting after Finish.
  EXPECT_EQ(pipeline.TrySubmit(1).code(), StatusCode::kFailedPrecondition);
  // Finish is idempotent.
  EXPECT_EQ(pipeline.Finish().units_processed, 1u);
}

}  // namespace
}  // namespace kg::ingest
