#include "extract/dom.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::extract {
namespace {

DomPage MakePage() {
  DomPage page;
  const auto html = page.AddNode(kInvalidDomNode, "html");
  const auto body = page.AddNode(html, "body");
  page.AddNode(body, "h1", "topic", "The Title");
  const auto table = page.AddNode(body, "table");
  for (int r = 0; r < 3; ++r) {
    const auto tr = page.AddNode(table, "tr");
    page.AddNode(tr, "td", "label", "L" + std::to_string(r));
    page.AddNode(tr, "td", "value", "V" + std::to_string(r));
  }
  return page;
}

TEST(DomPageTest, StructureBasics) {
  const DomPage page = MakePage();
  EXPECT_EQ(page.size(), 13u);
  EXPECT_EQ(page.node(0).tag, "html");
  EXPECT_EQ(page.TextNodes().size(), 7u);
}

TEST(DomPageTest, SubtreeTextDocumentOrder) {
  const DomPage page = MakePage();
  // Root subtree contains all text in order.
  const std::string all = page.SubtreeText(0);
  EXPECT_EQ(all, "The Title L0 V0 L1 V1 L2 V2");
}

TEST(DomPageTest, ParentMapInvertsChildren) {
  const DomPage page = MakePage();
  const auto parents = ParentMap(page);
  EXPECT_EQ(parents[0], kInvalidDomNode);
  for (DomNodeId id = 0; id < page.size(); ++id) {
    for (DomNodeId child : page.node(id).children) {
      EXPECT_EQ(parents[child], id);
    }
  }
}

TEST(NodePathTest, OrdinalsCountSameTagSiblings) {
  const DomPage page = MakePage();
  // Second row's value cell.
  const auto parents = ParentMap(page);
  DomNodeId v1 = kInvalidDomNode;
  for (DomNodeId id : page.TextNodes()) {
    if (page.node(id).text == "V1") v1 = id;
  }
  ASSERT_NE(v1, kInvalidDomNode);
  EXPECT_EQ(NodePath(page, v1),
            "/html[0]/body[0]/table[0]/tr[1]/td[1]");
}

TEST(ResolvePathTest, RoundTripsAllNodes) {
  const DomPage page = MakePage();
  for (DomNodeId id = 0; id < page.size(); ++id) {
    EXPECT_EQ(ResolvePath(page, NodePath(page, id)), id);
  }
}

TEST(ResolvePathTest, MissingPathsReturnInvalid) {
  const DomPage page = MakePage();
  EXPECT_EQ(ResolvePath(page, "/html[0]/body[0]/table[0]/tr[9]/td[0]"),
            kInvalidDomNode);
  EXPECT_EQ(ResolvePath(page, "/div[0]"), kInvalidDomNode);
  EXPECT_EQ(ResolvePath(page, ""), kInvalidDomNode);
}

TEST(ResolvePathTest, TransfersAcrossSameTemplatePages) {
  // Two pages, same skeleton, different text: a path computed on one
  // resolves to the structurally-equivalent node on the other.
  DomPage a = MakePage();
  DomPage b = MakePage();
  for (DomNodeId id = 0; id < a.size(); ++id) {
    if (!a.node(id).text.empty()) {
      const std::string path = NodePath(a, id);
      const DomNodeId on_b = ResolvePath(b, path);
      ASSERT_NE(on_b, kInvalidDomNode);
      EXPECT_EQ(b.node(on_b).text, a.node(id).text);
    }
  }
}

class DomRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomRandomTest, PathRoundTripOnRandomTrees) {
  kg::Rng rng(GetParam());
  DomPage page;
  page.AddNode(kInvalidDomNode, "root");
  const char* tags[] = {"div", "span", "td", "p"};
  for (int i = 0; i < 60; ++i) {
    const DomNodeId parent = static_cast<DomNodeId>(
        rng.UniformIndex(page.size()));
    page.AddNode(parent, tags[rng.UniformIndex(4)], "",
                 rng.Bernoulli(0.5) ? "t" + std::to_string(i) : "");
  }
  for (DomNodeId id = 0; id < page.size(); ++id) {
    EXPECT_EQ(ResolvePath(page, NodePath(page, id)), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomRandomTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace kg::extract
