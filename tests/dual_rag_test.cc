#include <gtest/gtest.h>

#include "dual/answerers.h"
#include "dual/qa_eval.h"
#include "synth/qa_generator.h"

namespace kg::dual {
namespace {

struct World {
  synth::EntityUniverse universe;
  std::vector<synth::QaItem> questions;
  LlmSim llm;
};

World MakeWorld(uint64_t seed) {
  synth::UniverseOptions uopt;
  uopt.num_people = 1200;
  uopt.num_movies = 800;
  uopt.num_songs = 50;
  Rng rng(seed);
  World world{synth::EntityUniverse::Generate(uopt, rng), {}, {}};
  synth::CorpusOptions copt;
  world.llm.Train(GenerateFactCorpus(world.universe, copt, rng));
  synth::QaOptions qopt;
  qopt.num_questions = 1500;
  world.questions = GenerateQaWorkload(world.universe, qopt, rng);
  return world;
}

TEST(RagAnswererTest, ContextBeatsParametricMemory) {
  World world = MakeWorld(1);
  const auto kg = world.universe.ToKnowledgeGraph();
  LlmAnswerer llm_only(world.llm);
  RagAnswerer rag(kg, world.llm);
  Rng r1(2), r2(2);
  const auto llm_eval = EvaluateAnswerer(llm_only, world.questions, r1);
  const auto rag_eval = EvaluateAnswerer(rag, world.questions, r2);
  EXPECT_GT(rag_eval.overall.accuracy, llm_eval.overall.accuracy + 0.2);
  EXPECT_LT(rag_eval.overall.hallucination_rate,
            llm_eval.overall.hallucination_rate);
}

TEST(RagAnswererTest, FallsBackToParametricWhenRetrievalMisses) {
  World world = MakeWorld(2);
  graph::KnowledgeGraph empty_kg;
  RagAnswerer rag(empty_kg, world.llm);
  LlmAnswerer llm_only(world.llm);
  Rng r1(3), r2(3);
  const auto rag_eval = EvaluateAnswerer(rag, world.questions, r1);
  const auto llm_eval = EvaluateAnswerer(llm_only, world.questions, r2);
  // With nothing to retrieve, RAG == pure LLM.
  EXPECT_NEAR(rag_eval.overall.accuracy, llm_eval.overall.accuracy, 1e-9);
}

TEST(RagAnswererTest, ResolvesEntityObjectsToNames) {
  // directed_by objects are entity nodes; RAG must surface the person's
  // name, not the internal node id.
  World world = MakeWorld(3);
  const auto kg = world.universe.ToKnowledgeGraph();
  RagAnswerer rag(kg, world.llm);
  Rng rng(4);
  size_t checked = 0, surface_ok = 0;
  for (const auto& q : world.questions) {
    if (q.predicate != "directed_by") continue;
    const auto answer = rag.Answer(q, rng);
    if (!answer.has_value()) continue;
    ++checked;
    surface_ok += answer->rfind("person:", 0) != 0;
  }
  ASSERT_GT(checked, 100u);
  EXPECT_EQ(surface_ok, checked);
}

}  // namespace
}  // namespace kg::dual
