#include "common/fault.h"

#include <gtest/gtest.h>

#include <string>

namespace kg {
namespace {

TEST(FaultPlanTest, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  FaultInjector injector(plan);
  for (size_t attempt = 0; attempt < 5; ++attempt) {
    const auto probe = injector.Probe("src", attempt);
    EXPECT_TRUE(probe.status.ok());
    EXPECT_EQ(probe.kind, FaultKind::kNone);
  }
  EXPECT_FALSE(injector.IsTerminal("src"));
  EXPECT_DOUBLE_EQ(injector.KeepFraction("src"), 1.0);
  EXPECT_EQ(injector.MaybeCorrupt("src", "claim", "v"), "v");
}

TEST(FaultPlanTest, UniformPlanDrivesEveryChannel) {
  const FaultPlan plan = FaultPlan::Uniform(1, 0.5);
  EXPECT_TRUE(plan.active());
  EXPECT_DOUBLE_EQ(plan.transient_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.slow_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.truncate_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.terminal_rate, 0.125);
  EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.1);
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfSeedSourceAttempt) {
  FaultPlan plan;
  plan.seed = 99;
  plan.transient_rate = 0.3;
  plan.slow_rate = 0.2;
  plan.terminal_rate = 0.1;
  plan.truncate_rate = 0.4;
  plan.corrupt_rate = 0.3;
  const FaultInjector a(plan);
  const FaultInjector b(plan);  // Fresh instance: no hidden state.
  for (int s = 0; s < 50; ++s) {
    const std::string source = "source" + std::to_string(s);
    EXPECT_EQ(a.IsTerminal(source), b.IsTerminal(source));
    EXPECT_DOUBLE_EQ(a.KeepFraction(source), b.KeepFraction(source));
    for (size_t attempt = 0; attempt < 4; ++attempt) {
      const auto pa = a.Probe(source, attempt);
      // Re-probing (any order, any count) replays the same outcome.
      const auto pb = b.Probe(source, attempt);
      EXPECT_EQ(pa.kind, pb.kind);
      EXPECT_EQ(pa.status.code(), pb.status.code());
      EXPECT_DOUBLE_EQ(pa.latency_ms, pb.latency_ms);
    }
    EXPECT_EQ(a.MaybeCorrupt(source, "k", "value"),
              b.MaybeCorrupt(source, "k", "value"));
  }
}

TEST(FaultInjectorTest, SeedChangesDecisions) {
  FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.transient_rate = p2.transient_rate = 0.5;
  const FaultInjector a(p1), b(p2);
  int diffs = 0;
  for (int s = 0; s < 200; ++s) {
    const std::string source = "s" + std::to_string(s);
    if (a.Probe(source, 0).kind != b.Probe(source, 0).kind) ++diffs;
  }
  EXPECT_GT(diffs, 20);
}

TEST(FaultInjectorTest, TransientRateRoughlyHonored) {
  FaultPlan plan;
  plan.seed = 7;
  plan.transient_rate = 0.2;
  const FaultInjector injector(plan);
  int failures = 0;
  const int kTrials = 2000;
  for (int s = 0; s < kTrials; ++s) {
    const auto probe =
        injector.Probe("src" + std::to_string(s), /*attempt=*/0);
    if (!probe.status.ok()) {
      ++failures;
      EXPECT_EQ(probe.status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(probe.kind, FaultKind::kTransient);
    }
  }
  const double rate = static_cast<double>(failures) / kTrials;
  EXPECT_NEAR(rate, 0.2, 0.04);
}

TEST(FaultInjectorTest, TerminalSourcesFailEveryAttempt) {
  FaultPlan plan;
  plan.seed = 11;
  plan.terminal_rate = 0.3;
  const FaultInjector injector(plan);
  int terminal = 0;
  for (int s = 0; s < 300; ++s) {
    const std::string source = "t" + std::to_string(s);
    if (!injector.IsTerminal(source)) continue;
    ++terminal;
    for (size_t attempt = 0; attempt < 6; ++attempt) {
      const auto probe = injector.Probe(source, attempt);
      EXPECT_EQ(probe.kind, FaultKind::kTerminal);
      EXPECT_EQ(probe.status.code(), StatusCode::kUnavailable);
    }
  }
  EXPECT_NEAR(terminal / 300.0, 0.3, 0.08);
}

TEST(FaultInjectorTest, KeepFractionBounded) {
  FaultPlan plan;
  plan.seed = 13;
  plan.truncate_rate = 1.0;  // Every source truncated.
  plan.min_truncate_keep = 0.4;
  const FaultInjector injector(plan);
  for (int s = 0; s < 100; ++s) {
    const double keep = injector.KeepFraction("k" + std::to_string(s));
    EXPECT_GE(keep, 0.4);
    EXPECT_LT(keep, 1.0);
  }
}

TEST(FaultInjectorTest, CorruptionMarksValueAndNeverCollides) {
  FaultPlan plan;
  plan.seed = 17;
  plan.corrupt_rate = 1.0;
  const FaultInjector injector(plan);
  const std::string corrupted =
      injector.MaybeCorrupt("src", "claim", "1999");
  EXPECT_NE(corrupted, "1999");
  // Corrupted values are marked with a byte clean values never contain.
  EXPECT_NE(corrupted.find('\x7f'), std::string::npos);
  // Same claim corrupts identically; different claims may differ.
  EXPECT_EQ(injector.MaybeCorrupt("src", "claim", "1999"), corrupted);
}

TEST(DegradationReportTest, AggregatesRows) {
  DegradationReport report;
  SourceDegradation healthy;
  healthy.source = "a";
  healthy.attempts = 1;
  SourceDegradation retried;
  retried.source = "b";
  retried.attempts = 3;
  retried.retries = 2;
  retried.claims_corrupted = 4;
  SourceDegradation dead;
  dead.source = "c";
  dead.attempts = 4;
  dead.retries = 3;
  dead.quarantined = true;
  dead.final_status = Status::Unavailable("down");
  dead.claims_dropped = 17;
  report.sources = {healthy, retried, dead};
  EXPECT_EQ(report.attempted(), 3u);
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_EQ(report.total_retries(), 5u);
  EXPECT_EQ(report.claims_dropped(), 17u);
  EXPECT_EQ(report.claims_corrupted(), 4u);
  EXPECT_EQ(report.Summary(),
            "3 sources, 1 quarantined, 5 retries, 17 claims dropped, "
            "4 corrupted");
}

TEST(FaultKindTest, AllKindsHaveNames) {
  EXPECT_STREQ(FaultKindToString(FaultKind::kNone), "none");
  EXPECT_STREQ(FaultKindToString(FaultKind::kTransient), "transient");
  EXPECT_STREQ(FaultKindToString(FaultKind::kSlow), "slow");
  EXPECT_STREQ(FaultKindToString(FaultKind::kTerminal), "terminal");
}

}  // namespace
}  // namespace kg
