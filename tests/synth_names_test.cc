#include "synth/names.h"

#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"

namespace kg::synth {
namespace {

TEST(NameFactoryTest, DeterministicGivenSeed) {
  NameFactory a{Rng(42)}, b{Rng(42)};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.PersonName(), b.PersonName());
    EXPECT_EQ(a.MovieTitle(), b.MovieTitle());
  }
}

TEST(NameFactoryTest, PersonNamesHaveTwoTokens) {
  NameFactory names{Rng(1)};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SplitWhitespace(names.PersonName()).size(), 2u);
  }
}

TEST(NameFactoryTest, CollisionsArePossible) {
  // The disambiguation challenge requires shared names to exist.
  NameFactory names{Rng(2)};
  std::set<std::string> seen;
  bool collision = false;
  for (int i = 0; i < 3000 && !collision; ++i) {
    collision = !seen.insert(names.PersonName()).second;
  }
  EXPECT_TRUE(collision);
}

TEST(NameVariantTest, ZeroStrengthIsIdentity) {
  Rng rng(3);
  EXPECT_EQ(NameVariant("Marta Keller", 0.0, rng), "Marta Keller");
}

TEST(NameVariantTest, FullStrengthChangesMostNames) {
  Rng rng(4);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (NameVariant("Marta Keller", 1.0, rng) != "Marta Keller") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 80);
}

TEST(AddTypoTest, EditDistanceAtMostTwo) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::string typo = AddTypo("abcdefgh", rng);
    // Substitution/deletion/swap all stay within 2 edits.
    EXPECT_LE(typo.size(), 8u);
    EXPECT_GE(typo.size(), 7u);
  }
}

TEST(AddTypoTest, EmptyStringUnchanged) {
  Rng rng(6);
  EXPECT_EQ(AddTypo("", rng), "");
}

TEST(SyntheticWordTest, PronounceableAndBounded) {
  Rng rng(7);
  std::set<std::string> words;
  for (int i = 0; i < 500; ++i) {
    const std::string w = SyntheticWord(rng, 2);
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 8u);
    words.insert(w);
  }
  // Large vocabulary space.
  EXPECT_GT(words.size(), 300u);
}

}  // namespace
}  // namespace kg::synth
