// Wire-format tests for kg::rpc framing: golden byte layouts (the
// format is a contract — these bytes may never change silently),
// round-trips for every message body, header versioning rejects, and
// the incremental decoder's behavior on split, batched, and trailing
// input.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "rpc/frame.h"

namespace kg::rpc {
namespace {

std::string EncodeFrame(MessageType type, uint32_t request_id,
                        std::string_view body) {
  std::string buf;
  AppendFrame(&buf, type, request_id, body);
  return buf;
}

// After hand-mutating payload bytes, rewrite the frame checksum so only
// the mutated field's own validation can fire.
void FixupChecksum(std::string* frame) {
  const std::string_view payload(frame->data() + kFrameHeaderBytes,
                                 frame->size() - kFrameHeaderBytes);
  const uint32_t checksum = Checksum32(payload);
  for (int i = 0; i < 4; ++i) {
    (*frame)[4 + i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
  }
}

// ---- Golden bytes -------------------------------------------------------

TEST(RpcFrameTest, GoldenHandshakeRequestFrame) {
  HandshakeRequest req;
  req.max_schema_version = 1;
  const std::string frame = EncodeFrame(MessageType::kHandshakeRequest, 7,
                                        EncodeHandshakeRequest(req));
  const std::vector<uint8_t> expected = {
      0x0c, 0x00, 0x00, 0x00,  // payload length = 12
      0x1a, 0x9f, 0x33, 0xc1,  // Checksum32(payload) = 0xc1339f1a
      0x01,                    // protocol version 1
      0x00,                    // type = handshake request
      0x00, 0x00,              // flags, reserved
      0x07, 0x00, 0x00, 0x00,  // request id = 7
      0x01, 0x00, 0x00, 0x00,  // max schema version = 1
  };
  ASSERT_EQ(frame.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(frame[i]), expected[i]) << "byte " << i;
  }
}

TEST(RpcFrameTest, GoldenQueryRequestFrame) {
  const serve::Query query = serve::Query::PointLookup("a", "p");
  const std::string frame =
      EncodeFrame(MessageType::kQueryRequest, 42, EncodeQuery(query));
  const std::vector<uint8_t> expected = {
      0x28, 0x00, 0x00, 0x00,  // payload length = 40
      0x63, 0xa1, 0x3c, 0x11,  // Checksum32(payload) = 0x113ca163
      0x01, 0x02, 0x00, 0x00,  // version 1, type = query request, flags
      0x2a, 0x00, 0x00, 0x00,  // request id = 42
      0x00,                    // kind = point lookup
      0x00,                    // node kind = entity
      0x0a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // k = 10
      0x01, 0x00, 0x00, 0x00, 'a',                     // node
      0x01, 0x00, 0x00, 0x00, 'p',                     // predicate
      0x00, 0x00, 0x00, 0x00,                          // type name = ""
      0x04, 0x00, 0x00, 0x00, 't', 'y', 'p', 'e',      // type predicate
  };
  ASSERT_EQ(frame.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(frame[i]), expected[i]) << "byte " << i;
  }
}

TEST(RpcFrameTest, GoldenQueryRequestFrameWithTraceContext) {
  const serve::Query query = serve::Query::PointLookup("a", "p");
  TraceContext trace;
  trace.trace_id = 0x1122334455667788ULL;
  trace.parent_span_id = 0x99aabbccddeeff00ULL;
  trace.sampled = true;
  std::string frame;
  AppendFrame(&frame, MessageType::kQueryRequest, 42, &trace,
              EncodeQuery(query));
  const std::vector<uint8_t> expected_payload = {
      0x01, 0x02,              // version 1, type = query request
      0x01, 0x00,              // flags: trace context present
      0x2a, 0x00, 0x00, 0x00,  // request id = 42
      0x11,                    // extension length = 17
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // trace id, LE
      0x00, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99,  // parent span, LE
      0x01,                                            // sampled
      // Body: identical to the untraced golden frame — the extension
      // sits between the message header and the body.
      0x00,                    // kind = point lookup
      0x00,                    // node kind = entity
      0x0a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // k = 10
      0x01, 0x00, 0x00, 0x00, 'a',                     // node
      0x01, 0x00, 0x00, 0x00, 'p',                     // predicate
      0x00, 0x00, 0x00, 0x00,                          // type name = ""
      0x04, 0x00, 0x00, 0x00, 't', 'y', 'p', 'e',      // type predicate
  };
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + expected_payload.size());
  // Length prefix covers the whole payload including the extension.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(frame[i]),
              (expected_payload.size() >> (8 * i)) & 0xff)
        << "length byte " << i;
  }
  // Checksum covers the extension bytes too.
  const uint32_t checksum = Checksum32(std::string_view(
      reinterpret_cast<const char*>(expected_payload.data()),
      expected_payload.size()));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(frame[4 + i]), (checksum >> (8 * i)) & 0xff)
        << "checksum byte " << i;
  }
  for (size_t i = 0; i < expected_payload.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(frame[kFrameHeaderBytes + i]),
              expected_payload[i])
        << "payload byte " << i;
  }
}

TEST(RpcFrameTest, NullTraceContextLeavesBytesUnchanged) {
  const std::string body = EncodeQuery(serve::Query::Neighborhood("n"));
  std::string four_arg;
  AppendFrame(&four_arg, MessageType::kQueryRequest, 9, body);
  std::string five_arg_null;
  AppendFrame(&five_arg_null, MessageType::kQueryRequest, 9, nullptr, body);
  EXPECT_EQ(four_arg, five_arg_null);
}

TEST(RpcFrameTest, ChecksumCoversMessageHeader) {
  // A flip in the request id — inside the message header, outside the
  // body — must be caught by the frame checksum.
  std::string frame = EncodeFrame(MessageType::kQueryRequest, 42,
                                  EncodeQuery(serve::Query::Neighborhood("n")));
  frame[kFrameHeaderBytes + 4] ^= 0x01;  // low byte of request id
  FrameDecoder decoder;
  decoder.Feed(frame);
  Frame out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
  EXPECT_NE(decoder.error().message().find("checksum"), std::string::npos);
}

// ---- Round-trips --------------------------------------------------------

TEST(RpcFrameTest, HandshakeRoundTrip) {
  HandshakeRequest req;
  req.max_schema_version = 3;
  auto req2 = DecodeHandshakeRequest(EncodeHandshakeRequest(req));
  ASSERT_TRUE(req2.ok()) << req2.status();
  EXPECT_EQ(req2->max_schema_version, 3u);

  HandshakeResponse resp;
  resp.code = StatusCode::kUnavailable;
  resp.message = "schema too new";
  resp.schema_version = 9;
  auto resp2 = DecodeHandshakeResponse(EncodeHandshakeResponse(resp));
  ASSERT_TRUE(resp2.ok()) << resp2.status();
  EXPECT_EQ(resp2->code, StatusCode::kUnavailable);
  EXPECT_EQ(resp2->message, "schema too new");
  EXPECT_EQ(resp2->schema_version, 9u);
}

TEST(RpcFrameTest, QueryRoundTripAllKindsAndHostileStrings) {
  std::vector<serve::Query> queries = {
      serve::Query::PointLookup("tab\there", "pr\ned", graph::NodeKind::kText),
      serve::Query::Neighborhood("", graph::NodeKind::kClass),
      serve::Query::AttributeByType("Per\x00son", "attr", "member_of"),
      serve::Query::TopKRelated("h\xc3\xa9llo", 123456789, graph::NodeKind::kEntity),
  };
  queries[2].type_name = std::string("Per\0son", 7);  // Embedded NUL.
  for (const serve::Query& q : queries) {
    auto decoded = DecodeQuery(EncodeQuery(q));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    // CacheKey is injective over query fields, so equal keys mean equal
    // queries.
    EXPECT_EQ(decoded->CacheKey(), q.CacheKey());
  }
}

TEST(RpcFrameTest, QueryResponseRoundTrip) {
  QueryResponse resp;
  resp.rows = {"E:alice\t3", "", "out\tacted_in\tE:movie\nwith newline"};
  auto decoded = DecodeQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->code, StatusCode::kOk);
  EXPECT_EQ(decoded->rows, resp.rows);

  QueryResponse err;
  err.code = StatusCode::kInvalidArgument;
  err.message = "bad query";
  auto decoded_err = DecodeQueryResponse(EncodeQueryResponse(err));
  ASSERT_TRUE(decoded_err.ok()) << decoded_err.status();
  EXPECT_EQ(decoded_err->code, StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded_err->message, "bad query");
  EXPECT_TRUE(decoded_err->rows.empty());
}

TEST(RpcFrameTest, TraceContextRoundTrip) {
  for (const bool sampled : {false, true}) {
    TraceContext trace;
    trace.trace_id = 0xdeadbeefcafef00dULL;
    trace.parent_span_id = 0x0123456789abcdefULL;
    trace.sampled = sampled;
    const std::string body = EncodeQuery(serve::Query::PointLookup("n", "p"));
    std::string frame;
    AppendFrame(&frame, MessageType::kQueryRequest, 17, &trace, body);
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    ASSERT_EQ(decoder.Next(&out), FrameDecoder::Step::kFrame)
        << decoder.error();
    EXPECT_EQ(out.type, MessageType::kQueryRequest);
    EXPECT_EQ(out.request_id, 17u);
    ASSERT_TRUE(out.has_trace);
    EXPECT_EQ(out.trace.trace_id, trace.trace_id);
    EXPECT_EQ(out.trace.parent_span_id, trace.parent_span_id);
    EXPECT_EQ(out.trace.sampled, sampled);
    EXPECT_EQ(out.body, body);  // Extension must not leak into the body.
  }
}

TEST(RpcFrameTest, UntracedFrameDecodesWithoutTrace) {
  const std::string frame = EncodeFrame(
      MessageType::kQueryRequest, 5, EncodeQuery(serve::Query::Neighborhood("n")));
  FrameDecoder decoder;
  decoder.Feed(frame);
  Frame out;
  ASSERT_EQ(decoder.Next(&out), FrameDecoder::Step::kFrame);
  EXPECT_FALSE(out.has_trace);
}

TEST(RpcFrameTest, RejectsMalformedTraceExtension) {
  TraceContext trace;
  trace.trace_id = 1;
  trace.parent_span_id = 2;
  trace.sampled = true;
  const std::string body = EncodeQuery(serve::Query::Neighborhood("n"));
  std::string traced;
  AppendFrame(&traced, MessageType::kQueryRequest, 3, &trace, body);
  const size_t ext_at = kFrameHeaderBytes + kMessageHeaderBytes;

  {
    // Wrong extension length byte.
    std::string frame = traced;
    frame[ext_at] = 16;
    FixupChecksum(&frame);
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
    EXPECT_NE(decoder.error().message().find("is not"), std::string::npos);
  }
  {
    // Sampled byte out of range.
    std::string frame = traced;
    frame[ext_at + 1 + 16] = 2;
    FixupChecksum(&frame);
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
    EXPECT_NE(decoder.error().message().find("sampled"), std::string::npos);
  }
  {
    // Declared extension length of 17, but the payload ends mid-extension.
    std::string frame;
    AppendFrame(&frame, MessageType::kHandshakeRequest, 1, &trace,
                std::string_view());
    const size_t new_payload = kMessageHeaderBytes + 1 + 10;
    frame.resize(kFrameHeaderBytes + new_payload);
    for (int i = 0; i < 4; ++i) {
      frame[i] = static_cast<char>((new_payload >> (8 * i)) & 0xff);
    }
    FixupChecksum(&frame);
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
    EXPECT_NE(decoder.error().message().find("truncated"), std::string::npos);
  }
  {
    // Trace flag set but no room for any extension: payload is just the
    // message header.
    std::string frame;
    AppendFrame(&frame, MessageType::kHandshakeRequest, 1,
                std::string_view());
    frame[kFrameHeaderBytes + 2] = 1;  // Set the trace flag.
    FixupChecksum(&frame);
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
    EXPECT_NE(decoder.error().message().find("absent"), std::string::npos);
  }
}

// ---- Header versioning --------------------------------------------------

TEST(RpcFrameTest, RejectsWrongProtocolVersion) {
  std::string frame = EncodeFrame(MessageType::kQueryRequest, 1,
                                  EncodeQuery(serve::Query::Neighborhood("n")));
  // Rewrite the version byte and fix up the checksum so only the
  // version check can fire.
  frame[kFrameHeaderBytes] = 2;
  const std::string_view payload(frame.data() + kFrameHeaderBytes,
                                 frame.size() - kFrameHeaderBytes);
  const uint32_t checksum = Checksum32(payload);
  for (int i = 0; i < 4; ++i) {
    frame[4 + i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
  }
  FrameDecoder decoder;
  decoder.Feed(frame);
  Frame out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
  EXPECT_NE(decoder.error().message().find("protocol version"),
            std::string::npos);
}

TEST(RpcFrameTest, RejectsUnknownMessageTypeAndNonzeroFlags) {
  for (const auto& [offset, value, what] :
       std::vector<std::tuple<size_t, char, std::string>>{
           {1, static_cast<char>(kMaxMessageType + 1), "message type"},
           // Bit 0x1 is the (valid) trace-context flag; bit 0x2 is the
           // lowest still-reserved bit.
           {2, 2, "flags"}}) {
    std::string frame =
        EncodeFrame(MessageType::kQueryRequest, 1,
                    EncodeQuery(serve::Query::Neighborhood("n")));
    frame[kFrameHeaderBytes + offset] = value;
    const std::string_view payload(frame.data() + kFrameHeaderBytes,
                                   frame.size() - kFrameHeaderBytes);
    const uint32_t checksum = Checksum32(payload);
    for (int i = 0; i < 4; ++i) {
      frame[4 + i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
    }
    FrameDecoder decoder;
    decoder.Feed(frame);
    Frame out;
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError) << what;
    EXPECT_NE(decoder.error().message().find(what), std::string::npos);
  }
}

TEST(RpcFrameTest, RejectsOversizeDeclaredLength) {
  std::string frame;
  const uint32_t length = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  frame.append(4, '\0');  // Checksum, never reached.
  FrameDecoder decoder;
  decoder.Feed(frame);
  Frame out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
  EXPECT_NE(decoder.error().message().find("exceeds limit"),
            std::string::npos);
}

// ---- Incremental decoding ----------------------------------------------

TEST(RpcFrameTest, DecodesByteAtATimeAndBatched) {
  std::string stream;
  for (uint32_t id = 1; id <= 5; ++id) {
    AppendFrame(&stream, MessageType::kQueryRequest, id,
                EncodeQuery(serve::Query::PointLookup(
                    "node" + std::to_string(id), "p")));
  }

  // One byte at a time.
  FrameDecoder dribble;
  std::vector<uint32_t> seen;
  for (char c : stream) {
    dribble.Feed(std::string_view(&c, 1));
    Frame out;
    while (dribble.Next(&out) == FrameDecoder::Step::kFrame) {
      seen.push_back(out.request_id);
    }
  }
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(dribble.buffered_bytes(), 0u);

  // Everything in one Feed.
  FrameDecoder batch;
  batch.Feed(stream);
  seen.clear();
  Frame out;
  while (batch.Next(&out) == FrameDecoder::Step::kFrame) {
    seen.push_back(out.request_id);
  }
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 2, 3, 4, 5}));
}

TEST(RpcFrameTest, ErrorStateIsSticky) {
  std::string good = EncodeFrame(MessageType::kQueryRequest, 1,
                                 EncodeQuery(serve::Query::Neighborhood("n")));
  std::string bad = good;
  bad[kFrameHeaderBytes + kMessageHeaderBytes] ^= 0xff;  // Body corruption.
  FrameDecoder decoder;
  decoder.Feed(bad);
  decoder.Feed(good);  // A valid frame after the bad one must not revive it.
  Frame out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Step::kError);
}

TEST(RpcFrameTest, BodyDecodersRejectTrailingBytes) {
  std::string body = EncodeHandshakeRequest(HandshakeRequest{1});
  body.push_back('\0');
  EXPECT_FALSE(DecodeHandshakeRequest(body).ok());

  std::string qbody = EncodeQuery(serve::Query::Neighborhood("n"));
  qbody.append("xx");
  EXPECT_FALSE(DecodeQuery(qbody).ok());
}

TEST(RpcFrameTest, QueryResponseRejectsAbsurdRowCount) {
  QueryResponse resp;
  std::string body = EncodeQueryResponse(resp);
  // Rewrite the row count (last 4 bytes of an empty response) to a
  // value the body cannot possibly hold.
  const size_t count_at = body.size() - 4;
  for (int i = 0; i < 4; ++i) body[count_at + i] = static_cast<char>(0xff);
  auto decoded = DecodeQueryResponse(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kg::rpc
