#include "core/entity_kg_pipeline.h"

#include <gtest/gtest.h>

namespace kg::core {
namespace {

struct World {
  synth::EntityUniverse universe;
  std::map<std::pair<uint32_t, std::string>, std::string> truth;
};

World MakeWorld(uint64_t seed) {
  synth::UniverseOptions uopt;
  uopt.num_people = 200;
  uopt.num_movies = 400;
  uopt.num_songs = 50;
  Rng rng(seed);
  World world{synth::EntityUniverse::Generate(uopt, rng), {}};
  for (const auto& m : world.universe.movies()) {
    world.truth[{m.id, "title"}] = m.title;
    world.truth[{m.id, "release_year"}] = std::to_string(m.release_year);
    world.truth[{m.id, "genre"}] = m.genre;
    world.truth[{m.id, "director"}] =
        world.universe.people()[m.director].name;
  }
  return world;
}

TEST(EntityKgBuilderTest, AnchorIngestCreatesEntities) {
  World world = MakeWorld(1);
  Rng rng(2);
  synth::SourceOptions wiki;
  wiki.name = "wikipedia";
  wiki.coverage = 0.5;
  const auto table = synth::EmitSource(world.universe, wiki, rng);
  EntityKgBuilder::Options opt;
  EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  builder.IngestAnchor(table, rng);
  ASSERT_EQ(builder.reports().size(), 1u);
  EXPECT_EQ(builder.reports()[0].new_entities, table.records.size());
}

TEST(EntityKgBuilderTest, LinkingMergesSharedEntities) {
  World world = MakeWorld(3);
  Rng rng(4);
  synth::SourceOptions wiki, imdb;
  wiki.name = "wikipedia";
  wiki.coverage = 0.6;
  imdb.name = "imdb";
  imdb.coverage = 0.6;
  imdb.schema_dialect = 1;
  const auto wiki_table = synth::EmitSource(world.universe, wiki, rng);
  const auto imdb_table = synth::EmitSource(world.universe, imdb, rng);
  EntityKgBuilder::Options opt;
  opt.forest.num_trees = 25;
  EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  builder.IngestAnchor(wiki_table, rng);
  builder.IngestAndLink(imdb_table, rng);
  const auto& report = builder.reports()[1];
  // Substantial overlap should be linked, precisely.
  EXPECT_GT(report.linked, imdb_table.records.size() / 4);
  EXPECT_GT(report.linkage_precision, 0.9);
  EXPECT_GT(report.linkage_recall, 0.5);
  // Entities grow but far less than the sum of records.
  EXPECT_LT(report.kg_entities_after,
            wiki_table.records.size() + imdb_table.records.size());
}

TEST(EntityKgBuilderTest, FusionProducesAccurateKg) {
  World world = MakeWorld(5);
  Rng rng(6);
  synth::SourceOptions wiki, imdb, third;
  wiki.name = "wikipedia";
  wiki.coverage = 0.5;
  wiki.value_accuracy = 0.98;
  imdb.name = "imdb";
  imdb.coverage = 0.7;
  imdb.schema_dialect = 1;
  imdb.value_accuracy = 0.95;
  third.name = "webdb";
  third.coverage = 0.5;
  third.schema_dialect = 2;
  third.value_accuracy = 0.8;
  EntityKgBuilder::Options opt;
  opt.forest.num_trees = 25;
  EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  builder.IngestAnchor(synth::EmitSource(world.universe, wiki, rng), rng);
  builder.IngestAndLink(synth::EmitSource(world.universe, imdb, rng),
                        rng);
  builder.IngestAndLink(synth::EmitSource(world.universe, third, rng),
                        rng);
  builder.FuseValues();
  EXPECT_GT(builder.kg().num_triples(), 500u);
  // Fused values beat the worst source's accuracy comfortably.
  EXPECT_GT(builder.KgAccuracy(world.truth), 0.85);
}

TEST(EntityKgBuilderTest, VoteFusionAlsoWorks) {
  World world = MakeWorld(7);
  Rng rng(8);
  synth::SourceOptions wiki;
  wiki.name = "wikipedia";
  wiki.coverage = 0.4;
  EntityKgBuilder::Options opt;
  opt.use_accu_fusion = false;
  EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  builder.IngestAnchor(synth::EmitSource(world.universe, wiki, rng), rng);
  builder.FuseValues();
  EXPECT_GT(builder.KgAccuracy(world.truth), 0.8);
}

}  // namespace
}  // namespace kg::core
