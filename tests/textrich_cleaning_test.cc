#include "textrich/cleaning.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace kg::textrich {
namespace {

std::vector<CatalogAssertion> Corpus() {
  std::vector<CatalogAssertion> corpus;
  // 20 ice creams with normal flavors, 1 with "spicy".
  for (uint32_t i = 0; i < 10; ++i) {
    corpus.push_back({i, "icecream", "flavor", "vanilla", "vanilla cup"});
  }
  for (uint32_t i = 10; i < 20; ++i) {
    corpus.push_back(
        {i, "icecream", "flavor", "chocolate", "chocolate cup"});
  }
  corpus.push_back({20, "icecream", "flavor", "spicy", "frozen treat"});
  return corpus;
}

TEST(CatalogCleanerTest, DropsPopulationAnomalies) {
  CatalogCleaner cleaner;
  cleaner.Fit(Corpus());
  CatalogCleaner::Options opt;
  opt.text_rescue = false;
  EXPECT_TRUE(cleaner.ShouldDrop(
      {20, "icecream", "flavor", "spicy", "frozen treat"}, opt));
  EXPECT_FALSE(cleaner.ShouldDrop(
      {0, "icecream", "flavor", "vanilla", "vanilla cup"}, opt));
}

TEST(CatalogCleanerTest, TextEvidenceRescuesRareValues) {
  CatalogCleaner cleaner;
  cleaner.Fit(Corpus());
  CatalogCleaner::Options opt;
  opt.text_rescue = true;
  // Rare value whose product text mentions it verbatim: kept.
  EXPECT_FALSE(cleaner.ShouldDrop({21, "icecream", "flavor", "spicy",
                                   "a spicy chili icecream"},
                                  opt));
  // Rare value with no text support: dropped.
  EXPECT_TRUE(cleaner.ShouldDrop(
      {22, "icecream", "flavor", "spicy", "frozen treat"}, opt));
}

TEST(CatalogCleanerTest, UnseenTypeAttrDropsWithoutText) {
  CatalogCleaner cleaner;
  cleaner.Fit(Corpus());
  CatalogCleaner::Options opt;
  opt.text_rescue = false;
  EXPECT_TRUE(cleaner.ShouldDrop(
      {30, "sofa", "color", "red", "red sofa"}, opt));
}

TEST(CatalogCleanerTest, CleanFiltersBatch) {
  CatalogCleaner cleaner;
  const auto corpus = Corpus();
  cleaner.Fit(corpus);
  CatalogCleaner::Options opt;
  opt.text_rescue = false;
  const auto kept = cleaner.Clean(corpus, opt);
  EXPECT_EQ(kept.size(), corpus.size() - 1);  // Only "spicy" dropped.
}

TEST(CatalogCleanerTest, CleaningImprovesNoisyCorpusAccuracy) {
  // Inject 10% uniform noise into a skewed value population; cleaning
  // should remove mostly-noise assertions.
  kg::Rng rng(1);
  std::vector<CatalogAssertion> corpus;
  size_t noisy = 0;
  for (uint32_t i = 0; i < 500; ++i) {
    CatalogAssertion a;
    a.product_id = i;
    a.type_name = "widget";
    a.attribute = "color";
    if (rng.Bernoulli(0.1)) {
      a.value = "junk" + std::to_string(i);  // unique noise value.
      ++noisy;
    } else {
      a.value = rng.Bernoulli(0.5) ? "red" : "blue";
    }
    corpus.push_back(a);
  }
  CatalogCleaner cleaner;
  cleaner.Fit(corpus);
  const auto kept = cleaner.Clean(corpus, {});
  size_t kept_noise = 0;
  for (const auto& a : kept) {
    kept_noise += a.value.rfind("junk", 0) == 0;
  }
  EXPECT_LT(kept_noise, noisy / 5);
  EXPECT_GT(kept.size(), corpus.size() - noisy - 10);
}

}  // namespace
}  // namespace kg::textrich
