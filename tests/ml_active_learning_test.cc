#include "ml/active_learning.h"

#include <gtest/gtest.h>

namespace kg::ml {
namespace {

// Binary task where the boundary region is rare: uncertainty sampling
// shines because random labels waste budget on easy regions.
Dataset MakeTask(size_t n, Rng& rng) {
  Dataset d;
  d.feature_names = {"x", "noise"};
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble();
    d.examples.push_back(
        Example{{x, rng.UniformDouble()}, x > 0.52 ? 1 : 0});
  }
  return d;
}

TEST(ActiveLearningTest, QualityImprovesWithBudget) {
  Rng rng(1);
  const Dataset pool = MakeTask(2000, rng);
  const Dataset test = MakeTask(500, rng);
  ActiveLearningOptions opt;
  opt.label_budgets = {50, 200, 1000};
  opt.strategy = AcquisitionStrategy::kRandom;
  opt.forest.num_trees = 20;
  const auto results = RunActiveLearning(pool, test, opt, rng);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].labels, 50u);
  EXPECT_EQ(results[2].labels, 1000u);
  EXPECT_GT(results[2].f1, results[0].f1 - 0.02);
  EXPECT_GT(results[2].f1, 0.9);
}

TEST(ActiveLearningTest, UncertaintyBeatsRandomAtSmallBudget) {
  // Average over a few seeds to keep the comparison stable.
  double random_f1 = 0.0, active_f1 = 0.0;
  const int kSeeds = 3;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Rng data_rng(seed);
    const Dataset pool = MakeTask(3000, data_rng);
    const Dataset test = MakeTask(800, data_rng);
    ActiveLearningOptions opt;
    opt.label_budgets = {120};
    opt.forest.num_trees = 25;
    {
      Rng rng(100 + seed);
      opt.strategy = AcquisitionStrategy::kRandom;
      random_f1 += RunActiveLearning(pool, test, opt, rng)[0].f1;
    }
    {
      Rng rng(100 + seed);
      opt.strategy = AcquisitionStrategy::kUncertainty;
      active_f1 += RunActiveLearning(pool, test, opt, rng)[0].f1;
    }
  }
  EXPECT_GT(active_f1 / kSeeds, random_f1 / kSeeds - 0.01);
}

TEST(ActiveLearningTest, BudgetNeverExceedsPool) {
  Rng rng(2);
  const Dataset pool = MakeTask(100, rng);
  const Dataset test = MakeTask(50, rng);
  ActiveLearningOptions opt;
  opt.label_budgets = {100};
  opt.forest.num_trees = 5;
  const auto results = RunActiveLearning(pool, test, opt, rng);
  EXPECT_EQ(results[0].labels, 100u);
}

}  // namespace
}  // namespace kg::ml
