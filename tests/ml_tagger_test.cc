#include "ml/sequence_tagger.h"

#include <gtest/gtest.h>

#include "text/bio.h"

namespace kg::ml {
namespace {

// Synthetic tagging task: the token after "is" is the value.
std::vector<TaggedSequence> MakeData(size_t n, Rng& rng,
                                     const std::string& context = "") {
  const std::vector<std::string> values = {"red", "blue", "green",
                                           "amber", "teal"};
  const std::vector<std::string> fillers = {"the", "thing", "quality",
                                            "very", "nice"};
  std::vector<TaggedSequence> data;
  for (size_t i = 0; i < n; ++i) {
    TaggedSequence seq;
    const size_t pre = rng.UniformIndex(3);
    for (size_t j = 0; j < pre; ++j) {
      seq.tokens.push_back(fillers[rng.UniformIndex(fillers.size())]);
      seq.tags.push_back("O");
    }
    seq.tokens.push_back("is");
    seq.tags.push_back("O");
    seq.tokens.push_back(values[rng.UniformIndex(values.size())]);
    seq.tags.push_back("B-V");
    seq.tokens.push_back(fillers[rng.UniformIndex(fillers.size())]);
    seq.tags.push_back("O");
    if (!context.empty()) seq.context.push_back(context);
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(SequenceTaggerTest, LearnsPositionalPattern) {
  Rng rng(1);
  const auto train = MakeData(200, rng);
  const auto test = MakeData(100, rng);
  SequenceTagger tagger;
  TaggerOptions opt;
  opt.epochs = 12;
  tagger.Fit(train, opt, rng);
  size_t correct = 0, total = 0;
  for (const auto& seq : test) {
    const auto predicted = tagger.Predict(seq.tokens, seq.context);
    for (size_t i = 0; i < seq.tags.size(); ++i) {
      ++total;
      correct += predicted[i] == seq.tags[i];
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(SequenceTaggerTest, EmptyPredictionForEmptyTokens) {
  Rng rng(2);
  SequenceTagger tagger;
  tagger.Fit(MakeData(20, rng), {}, rng);
  EXPECT_TRUE(tagger.Predict({}, {}).empty());
}

TEST(SequenceTaggerTest, TagSetContainsO) {
  Rng rng(3);
  SequenceTagger tagger;
  tagger.Fit(MakeData(20, rng), {}, rng);
  EXPECT_EQ(tagger.tag_set()[0], "O");
  EXPECT_EQ(tagger.num_tags(), 2u);
}

TEST(SequenceTaggerTest, ContextFeaturesSwitchBehavior) {
  // Same surface, different gold depending on context: only a
  // context-aware model can satisfy both.
  Rng rng(4);
  std::vector<TaggedSequence> train;
  for (int i = 0; i < 120; ++i) {
    TaggedSequence seq;
    seq.tokens = {"dark", "roast"};
    if (i % 2 == 0) {
      seq.context = {"attr=flavor"};
      seq.tags = {"B-V", "O"};
    } else {
      seq.context = {"attr=grind"};
      seq.tags = {"O", "B-V"};
    }
    train.push_back(std::move(seq));
  }
  SequenceTagger tagger;
  TaggerOptions opt;
  opt.cross_context_with_tokens = true;
  tagger.Fit(train, opt, rng);
  EXPECT_EQ(tagger.Predict({"dark", "roast"}, {"attr=flavor"}),
            (std::vector<std::string>{"B-V", "O"}));
  EXPECT_EQ(tagger.Predict({"dark", "roast"}, {"attr=grind"}),
            (std::vector<std::string>{"O", "B-V"}));
}

TEST(SequenceTaggerTest, DecodedTagsFormValidSpans) {
  Rng rng(5);
  const auto train = MakeData(100, rng);
  SequenceTagger tagger;
  tagger.Fit(train, {}, rng);
  const auto test = MakeData(50, rng);
  for (const auto& seq : test) {
    const auto tags = tagger.Predict(seq.tokens, {});
    // BioToSpans must not throw/crash and spans stay in range.
    for (const auto& span : text::BioToSpans(tags)) {
      EXPECT_LE(span.end, seq.tokens.size());
      EXPECT_LT(span.begin, span.end);
    }
  }
}

}  // namespace
}  // namespace kg::ml
