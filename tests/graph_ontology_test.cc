#include "graph/ontology.h"

#include <gtest/gtest.h>

namespace kg::graph {
namespace {

class OntologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tax = ontology_.taxonomy();
    person_ = tax.AddType("Person", tax.root());
    movie_ = tax.AddType("Movie", tax.root());
    director_ = tax.AddType("Director", person_);
    ontology_.DeclareRelation({"directed_by", movie_, RangeKind::kEntity,
                               person_, true});
    ontology_.DeclareRelation({"title", movie_, RangeKind::kText, 0,
                               true});
  }

  Ontology ontology_;
  TypeId person_ = 0, movie_ = 0, director_ = 0;
};

TEST_F(OntologyTest, FindRelation) {
  ASSERT_TRUE(ontology_.FindRelation("directed_by").ok());
  EXPECT_EQ(ontology_.FindRelation("directed_by")->domain, movie_);
  EXPECT_FALSE(ontology_.FindRelation("nope").ok());
}

TEST_F(OntologyTest, RedeclareOverwrites) {
  ontology_.DeclareRelation({"title", person_, RangeKind::kText, 0,
                             false});
  EXPECT_EQ(ontology_.FindRelation("title")->domain, person_);
  EXPECT_EQ(ontology_.relations().size(), 2u);
}

TEST_F(OntologyTest, InstanceTypesAndSubsumption) {
  KnowledgeGraph kg;
  const NodeId spielberg = kg.AddNode("spielberg", NodeKind::kEntity);
  ontology_.SetInstanceType(spielberg, director_);
  EXPECT_TRUE(ontology_.IsInstanceOf(spielberg, person_));
  EXPECT_FALSE(ontology_.IsInstanceOf(spielberg, movie_));
  const NodeId unknown = kg.AddNode("mystery", NodeKind::kEntity);
  EXPECT_EQ(ontology_.InstanceType(unknown),
            ontology_.taxonomy().root());
}

TEST_F(OntologyTest, ValidateAcceptsWellTypedTriple) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("jaws", "directed_by", "spielberg",
                                  NodeKind::kEntity, NodeKind::kEntity,
                                  {"s", 1.0, 0});
  ontology_.SetInstanceType(*kg.FindNode("jaws", NodeKind::kEntity),
                            movie_);
  ontology_.SetInstanceType(
      *kg.FindNode("spielberg", NodeKind::kEntity), director_);
  EXPECT_TRUE(ontology_.ValidateTriple(kg, t).ok());
}

TEST_F(OntologyTest, ValidateRejectsDomainViolation) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("spielberg", "directed_by", "lucas",
                                  NodeKind::kEntity, NodeKind::kEntity,
                                  {"s", 1.0, 0});
  ontology_.SetInstanceType(
      *kg.FindNode("spielberg", NodeKind::kEntity), person_);
  ontology_.SetInstanceType(*kg.FindNode("lucas", NodeKind::kEntity),
                            person_);
  const Status status = ontology_.ValidateTriple(kg, t);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(OntologyTest, ValidateRejectsRangeViolation) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("jaws", "directed_by", "1975",
                                  NodeKind::kEntity, NodeKind::kText,
                                  {"s", 1.0, 0});
  ontology_.SetInstanceType(*kg.FindNode("jaws", NodeKind::kEntity),
                            movie_);
  EXPECT_FALSE(ontology_.ValidateTriple(kg, t).ok());
}

TEST_F(OntologyTest, ValidateRejectsUndeclaredRelation) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("a", "mystery_rel", "b",
                                  NodeKind::kEntity, NodeKind::kText,
                                  {"s", 1.0, 0});
  EXPECT_EQ(ontology_.ValidateTriple(kg, t).code(),
            StatusCode::kNotFound);
}

TEST_F(OntologyTest, ValidateRejectsFunctionalViolation) {
  KnowledgeGraph kg;
  const TripleId t = kg.AddTriple("jaws", "directed_by", "spielberg",
                                  NodeKind::kEntity, NodeKind::kEntity,
                                  {"s", 1.0, 0});
  kg.AddTriple("jaws", "directed_by", "lucas", NodeKind::kEntity,
               NodeKind::kEntity, {"s", 1.0, 0});
  ontology_.SetInstanceType(*kg.FindNode("jaws", NodeKind::kEntity),
                            movie_);
  ontology_.SetInstanceType(
      *kg.FindNode("spielberg", NodeKind::kEntity), person_);
  ontology_.SetInstanceType(*kg.FindNode("lucas", NodeKind::kEntity),
                            person_);
  EXPECT_EQ(ontology_.ValidateTriple(kg, t).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace kg::graph
