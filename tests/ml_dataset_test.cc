#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace kg::ml {
namespace {

Dataset MakeDataset(size_t n) {
  Dataset d;
  d.feature_names = {"x"};
  for (size_t i = 0; i < n; ++i) {
    d.examples.push_back(
        Example{{static_cast<double>(i)}, i % 3 == 0 ? 1 : 0});
  }
  return d;
}

TEST(TrainTestSplitTest, PartitionsWithoutLoss) {
  const Dataset d = MakeDataset(100);
  Dataset train, test;
  Rng rng(1);
  TrainTestSplit(d, 0.7, rng, &train, &test);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  std::multiset<double> all;
  for (const auto& ex : train.examples) all.insert(ex.features[0]);
  for (const auto& ex : test.examples) all.insert(ex.features[0]);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.begin(), 0.0);
  EXPECT_EQ(*all.rbegin(), 99.0);
}

TEST(TrainTestSplitTest, ExtremesWork) {
  const Dataset d = MakeDataset(10);
  Dataset train, test;
  Rng rng(2);
  TrainTestSplit(d, 1.0, rng, &train, &test);
  EXPECT_EQ(train.size(), 10u);
  EXPECT_EQ(test.size(), 0u);
}

TEST(StratifiedFoldsTest, PreservesLabelBalance) {
  const Dataset d = MakeDataset(90);  // 30 positive, 60 negative.
  Rng rng(3);
  const auto folds = StratifiedFolds(d, 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 30u);
    size_t pos = 0;
    for (size_t i : fold) pos += d.examples[i].label;
    EXPECT_EQ(pos, 10u);
  }
}

TEST(StratifiedFoldsTest, CoversAllIndicesOnce) {
  const Dataset d = MakeDataset(50);
  Rng rng(4);
  const auto folds = StratifiedFolds(d, 4, rng);
  std::set<size_t> seen;
  for (const auto& fold : folds) {
    for (size_t i : fold) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 50u);
}

}  // namespace
}  // namespace kg::ml
